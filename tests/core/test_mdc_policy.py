"""MdcPolicy behaviour: variant naming, separation flags, placement."""

import pytest

from repro.core.mdc import MdcPolicy
from repro.policies import make_policy
from repro.store import GC_STREAM, LogStructuredStore, StoreConfig


class TestVariants:
    def test_names_match_figure_labels(self):
        assert MdcPolicy().name == "mdc"
        assert MdcPolicy(estimator="exact").name == "mdc-opt"
        assert MdcPolicy(separate_user=False).name == "mdc-no-sep-user"
        assert (
            MdcPolicy(separate_user=False, separate_gc=False).name
            == "mdc-no-sep-user-gc"
        )

    def test_rejects_unknown_estimator(self):
        with pytest.raises(ValueError):
            MdcPolicy(estimator="psychic")

    def test_sort_buffer_only_with_user_separation(self):
        assert MdcPolicy().uses_sort_buffer
        assert not MdcPolicy(separate_user=False).uses_sort_buffer

    def test_describe_lists_flags(self):
        text = MdcPolicy(separate_user=False).describe()
        assert "sep_user=False" in text


class TestPlacement:
    def _store(self, policy, **cfg_overrides):
        cfg = StoreConfig(
            n_segments=32, segment_units=8, fill_factor=0.6,
            clean_trigger=2, clean_batch=2, **cfg_overrides
        )
        return LogStructuredStore(cfg, policy)

    def test_user_sort_key_is_carried_up2(self):
        policy = MdcPolicy()
        store = self._store(policy, sort_buffer_segments=1)
        store.pages.ensure(3)
        store.pages.carried_up2[0:3] = [3.0, 1.0, 2.0]
        keys = policy.user_sort_key([0, 1, 2])
        assert list(keys) == [3.0, 1.0, 2.0]

    def test_user_sort_key_none_without_separation(self):
        policy = MdcPolicy(separate_user=False)
        self._store(policy)
        assert policy.user_sort_key([0, 1]) is None

    def test_opt_sorts_by_oracle(self):
        policy = MdcPolicy(estimator="exact")
        store = self._store(policy, sort_buffer_segments=1)
        store.set_oracle_frequencies([0.5, 0.1, 0.4])
        keys = policy.user_sort_key([0, 1, 2])
        assert list(keys) == [0.5, 0.1, 0.4]

    def test_place_gc_sorts_and_routes_to_gc_stream(self):
        policy = MdcPolicy()
        store = self._store(policy)
        store.pages.ensure(3)
        store.pages.carried_up2[0:3] = [3.0, 1.0, 2.0]
        placed = list(policy.place_gc([0, 1, 2], [9, 9, 9]))
        assert [pid for pid, _ in placed] == [1, 2, 0]  # coldest first
        assert all(stream == GC_STREAM for _, stream in placed)

    def test_place_gc_keeps_order_without_separation(self):
        policy = MdcPolicy(separate_user=False, separate_gc=False)
        store = self._store(policy)
        store.pages.ensure(3)
        store.pages.carried_up2[0:3] = [3.0, 1.0, 2.0]
        placed = list(policy.place_gc([0, 1, 2], [9, 9, 9]))
        assert [pid for pid, _ in placed] == [0, 1, 2]


class TestVictimSelection:
    def test_rank_uses_exact_frequencies_for_opt(self):
        cfg = StoreConfig(
            n_segments=32, segment_units=4, fill_factor=0.5,
            clean_trigger=2, clean_batch=2,
        )
        policy = make_policy("mdc-opt")
        store = LogStructuredStore(cfg, policy)
        # Pages 0-3 hot (one segment), 4-7 cold (another segment).
        store.set_oracle_frequencies([0.2, 0.2, 0.2, 0.2, 0.05, 0.05, 0.05, 0.05])
        for pid in range(9):
            store.write(pid)
        hot_seg, _ = store.pages.location(0)
        cold_seg, _ = store.pages.location(4)
        # Make both segments half empty: same E, same C.
        store.write(0)
        store.write(1)
        store.write(4)
        store.write(5)
        pri = policy.rank([hot_seg, cold_seg])
        # Equal emptiness: clean the cold segment first (smaller decline).
        assert pri[1] < pri[0]

    def test_rank_uses_up2_for_estimated(self, small_config):
        policy = make_policy("mdc")
        store = LogStructuredStore(small_config, policy)
        store.load_sequential(small_config.user_pages)
        a, b = store.sealed_segments()[:2]
        # Same emptiness, but a's last two updates were long ago.
        for pid in store.pages.live_pages_of(store.segments, a)[:4]:
            store.write(pid)
        for _ in range(500):
            store.write(small_config.user_pages - 1)
        for pid in store.pages.live_pages_of(store.segments, b)[:4]:
            store.write(pid)
        pri = policy.rank([a, b])
        assert pri[0] < pri[1]
