"""Frequency-sorted packing helpers (Section 5.3)."""

import numpy as np

from repro.core.sorter import oracle_keys, order_by_key, up2_keys
from repro.store import PageTable


class TestKeys:
    def test_up2_keys_read_carried_estimates(self):
        pt = PageTable(4)
        pt.carried_up2[:] = [5.0, 1.0, 9.0, 3.0]
        assert up2_keys(pt, [2, 0, 1]).tolist() == [9.0, 5.0, 1.0]

    def test_oracle_keys_read_exact_frequencies(self):
        pt = PageTable(3)
        pt.oracle_freq[:] = [0.1, 0.7, 0.2]
        assert oracle_keys(pt, [1, 2]).tolist() == [0.7, 0.2]


class TestOrdering:
    def test_orders_coldest_first(self):
        assert order_by_key([10, 20, 30], [3.0, 1.0, 2.0]) == [20, 30, 10]

    def test_stable_for_ties(self):
        assert order_by_key([1, 2, 3], [0.0, 0.0, 0.0]) == [1, 2, 3]

    def test_clusters_similar_keys_adjacently(self):
        rng = np.random.default_rng(1)
        pids = list(range(100))
        keys = [float(p % 2) for p in pids]  # two hotness groups
        mixed = list(rng.permutation(pids))
        mixed_keys = [keys[p] for p in mixed]
        out = order_by_key(mixed, mixed_keys)
        # After sorting, all members of a group are contiguous.
        group = [p % 2 for p in out]
        assert group == sorted(group)
