"""Frequency-sorted packing helpers (Section 5.3)."""

import numpy as np

from repro.core.sorter import oracle_keys, order_by_key, up2_keys
from repro.store import PageTable


class TestKeys:
    def test_up2_keys_read_carried_estimates(self):
        pt = PageTable(4)
        pt.carried_up2[:] = [5.0, 1.0, 9.0, 3.0]
        assert up2_keys(pt, [2, 0, 1]).tolist() == [9.0, 5.0, 1.0]

    def test_oracle_keys_read_exact_frequencies(self):
        pt = PageTable(3)
        pt.oracle_freq[:] = [0.1, 0.7, 0.2]
        assert oracle_keys(pt, [1, 2]).tolist() == [0.7, 0.2]


class TestOrdering:
    def test_orders_coldest_first(self):
        assert order_by_key([10, 20, 30], [3.0, 1.0, 2.0]) == [20, 30, 10]

    def test_stable_for_ties(self):
        assert order_by_key([1, 2, 3], [0.0, 0.0, 0.0]) == [1, 2, 3]

    def test_clusters_similar_keys_adjacently(self):
        rng = np.random.default_rng(1)
        pids = list(range(100))
        keys = [float(p % 2) for p in pids]  # two hotness groups
        mixed = list(rng.permutation(pids))
        mixed_keys = [keys[p] for p in mixed]
        out = order_by_key(mixed, mixed_keys)
        # After sorting, all members of a group are contiguous.
        group = [p % 2 for p in out]
        assert group == sorted(group)


import hypothesis.strategies as st
from hypothesis import given, settings

from repro.policies import make_policy
from repro.store import LogStructuredStore, StoreConfig

pid_key_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=10**6),
        st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
    ),
    max_size=200,
)


class TestOrderingInvariants:
    """up2-ordering is a stable sort: a permutation, key-monotone, and
    idempotent — for any input."""

    @given(pairs=pid_key_lists)
    @settings(max_examples=100)
    def test_result_is_a_permutation(self, pairs):
        pids = [p for p, _ in pairs]
        keys = [k for _, k in pairs]
        out = order_by_key(pids, keys)
        assert sorted(out) == sorted(pids)

    @given(pairs=pid_key_lists)
    @settings(max_examples=100)
    def test_keys_are_nondecreasing_after_ordering(self, pairs):
        pids = [p for p, _ in pairs]
        keys = [k for _, k in pairs]
        order = np.argsort(np.asarray(keys, dtype=float), kind="stable")
        assert order_by_key(pids, keys) == [pids[i] for i in order]
        assert [keys[i] for i in order] == sorted(keys)

    @given(pairs=pid_key_lists)
    @settings(max_examples=100)
    def test_ordering_is_idempotent(self, pairs):
        pids = [p for p, _ in pairs]
        keys = [k for _, k in pairs]
        once = order_by_key(pids, keys)
        keys_once = [keys[i] for i in np.argsort(np.asarray(keys), kind="stable")]
        assert order_by_key(once, keys_once) == once

    def test_empty_input(self):
        assert order_by_key([], []) == []

    def test_all_cold_input_preserves_arrival_order(self):
        """Equal keys (an all-cold batch) must not be reshuffled."""
        pids = list(range(50, 0, -1))
        assert order_by_key(pids, [0.0] * len(pids)) == pids


class TestStoreIntegration:
    """The sorter's proxy — carried up2 — separates hot from cold in a
    real buffered MDC run."""

    def _hot_cold_store(self):
        cfg = StoreConfig(
            n_segments=32, segment_units=8, fill_factor=0.6,
            clean_trigger=2, clean_batch=2, sort_buffer_segments=1,
        )
        store = LogStructuredStore(cfg, make_policy("mdc"))
        n = cfg.user_pages
        hot = list(range(n // 8))
        store.load_sequential(n)
        for i in range(4000):
            store.write(hot[i % len(hot)])
        store.flush()
        return store, hot, [p for p in range(n) if p not in hot]

    def test_hot_pages_carry_larger_up2_than_cold(self):
        store, hot, cold = self._hot_cold_store()
        carried = store.pages.carried_up2
        hot_mean = float(np.nanmean([carried[p] for p in hot]))
        cold_mean = float(np.nanmean([carried[p] for p in cold]))
        assert hot_mean > cold_mean

    def test_sort_keys_rank_hot_pages_last(self):
        """Coldest-first ordering puts every cold page before the median
        hot page."""
        store, hot, cold = self._hot_cold_store()
        keys = up2_keys(store.pages, hot + cold)
        out = order_by_key(hot + cold, keys)
        positions = {p: i for i, p in enumerate(out)}
        median_hot = sorted(positions[p] for p in hot)[len(hot) // 2]
        assert all(positions[p] < median_hot for p in cold)
