"""Update-frequency estimators and oracle helpers (Section 4.3)."""

import numpy as np
import pytest

from repro.core.frequency import (
    empirical_frequencies,
    estimated_upf,
    generalized_upf,
    midpoint_carry,
    normalize_frequencies,
)


class TestEstimators:
    def test_two_interval_estimate(self):
        # Two updates over 100 ticks -> frequency 0.02.
        assert estimated_upf(u_now=200, up2=100) == pytest.approx(0.02)

    def test_zero_interval_clamped(self):
        assert estimated_upf(u_now=5, up2=5) == 2.0

    def test_generalized_matches_two_interval(self):
        assert generalized_upf(2, 200, 100) == estimated_upf(200, 100)

    def test_generalized_rejects_bad_n(self):
        with pytest.raises(ValueError):
            generalized_upf(0, 10, 5)

    def test_midpoint_carry(self):
        assert midpoint_carry(100.0, 200.0) == 150.0

    def test_midpoint_carry_converges_to_now_under_rapid_updates(self):
        up2 = 0.0
        for now in range(1, 50):
            up2 = midpoint_carry(up2, float(now))
        # A page rewritten every tick becomes maximally hot.
        assert 49.0 - up2 < 2.0


class TestEmpirical:
    def test_counts_shares(self):
        freqs = empirical_frequencies([0, 0, 1, 2], n_pages=4)
        assert freqs.tolist() == [0.5, 0.25, 0.25, 0.0]

    def test_grows_to_max_page_id(self):
        freqs = empirical_frequencies([7], n_pages=2)
        assert len(freqs) == 8
        assert freqs[7] == 1.0

    def test_empty_trace(self):
        assert empirical_frequencies([], n_pages=3).tolist() == [0.0, 0.0, 0.0]

    def test_sums_to_one(self):
        rng = np.random.default_rng(0)
        trace = rng.integers(0, 50, size=1000)
        assert empirical_frequencies(trace).sum() == pytest.approx(1.0)


class TestNormalize:
    def test_scales_to_probability(self):
        out = normalize_frequencies([1.0, 3.0])
        assert out.tolist() == [0.25, 0.75]

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            normalize_frequencies([1.0, -0.5])

    def test_rejects_all_zero(self):
        with pytest.raises(ValueError):
            normalize_frequencies([0.0, 0.0])

    def test_empty_passthrough(self):
        assert normalize_frequencies([]).size == 0


import hypothesis.strategies as st
from hypothesis import given, settings

from repro.policies import make_policy
from repro.store import LogStructuredStore, StoreConfig


class TestDecay:
    """The estimate decays as a segment sits idle, and never exceeds the
    one-update-per-tick ceiling."""

    @given(
        up2=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        now=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        idle=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    )
    @settings(max_examples=200)
    def test_estimate_is_monotone_decreasing_in_idle_time(
        self, up2, now, idle
    ):
        assert estimated_upf(now + idle, up2) <= estimated_upf(now, up2)

    @given(
        up2=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        now=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    )
    @settings(max_examples=200)
    def test_estimate_is_bounded_by_the_clamp_ceiling(self, up2, now):
        assert 0.0 < estimated_upf(now, up2) <= 2.0

    @given(x=st.floats(min_value=0.0, max_value=1e9, allow_nan=False))
    @settings(max_examples=100)
    def test_midpoint_carry_fixed_point(self, x):
        assert midpoint_carry(x, x) == x

    @given(
        old=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        ahead=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    )
    @settings(max_examples=100)
    def test_midpoint_carry_stays_between_old_and_now(self, old, ahead):
        now = old + ahead
        assert old <= midpoint_carry(old, now) <= now


def tiny_store():
    cfg = StoreConfig(
        n_segments=16, segment_units=4, fill_factor=0.5,
        clean_trigger=2, clean_batch=1,
    )
    return LogStructuredStore(cfg, make_policy("mdc"))


class TestStoreEdgeCases:
    """Estimator state on degenerate stores: empty, single hot segment,
    all-cold input."""

    def test_empty_store_has_no_history(self):
        store = tiny_store()
        carried = store.pages.carried_up2
        assert all(c != c for c in carried)  # NaN: no estimate yet
        assert all(u == 0.0 for u in store.segments.up2)
        # The clamp keeps the estimator finite even at time zero.
        assert estimated_upf(0.0, store.segments.up2[0]) == 2.0

    def test_single_hot_segment_orders_up1_after_up2(self):
        """All updates hitting one page keep refreshing the segment that
        holds its previous version; up1 (latest) must never fall behind
        up2 (penultimate), and both must trail the clock."""
        store = tiny_store()
        store.write(0)
        for _ in range(40):
            store.write(0)
            for seg in range(store.config.n_segments):
                assert store.segments.up1[seg] >= store.segments.up2[seg]
                assert store.segments.up2[seg] <= store.clock

    def test_all_cold_input_resolves_to_the_cold_fallback(self):
        """One write per page (no page ever updated twice) must leave
        every page at the shared "coldish" estimate — no page may look
        hotter than another on first-write evidence alone."""
        store = tiny_store()
        n = store.config.user_pages
        store.load_sequential(n)
        carried = [store.pages.carried_up2[p] for p in range(n)]
        finite = [c for c in carried if c == c]
        assert finite  # the device-resident pages got a value
        assert len(set(finite)) == 1  # and it is the same for all
