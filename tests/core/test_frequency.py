"""Update-frequency estimators and oracle helpers (Section 4.3)."""

import numpy as np
import pytest

from repro.core.frequency import (
    empirical_frequencies,
    estimated_upf,
    generalized_upf,
    midpoint_carry,
    normalize_frequencies,
)


class TestEstimators:
    def test_two_interval_estimate(self):
        # Two updates over 100 ticks -> frequency 0.02.
        assert estimated_upf(u_now=200, up2=100) == pytest.approx(0.02)

    def test_zero_interval_clamped(self):
        assert estimated_upf(u_now=5, up2=5) == 2.0

    def test_generalized_matches_two_interval(self):
        assert generalized_upf(2, 200, 100) == estimated_upf(200, 100)

    def test_generalized_rejects_bad_n(self):
        with pytest.raises(ValueError):
            generalized_upf(0, 10, 5)

    def test_midpoint_carry(self):
        assert midpoint_carry(100.0, 200.0) == 150.0

    def test_midpoint_carry_converges_to_now_under_rapid_updates(self):
        up2 = 0.0
        for now in range(1, 50):
            up2 = midpoint_carry(up2, float(now))
        # A page rewritten every tick becomes maximally hot.
        assert 49.0 - up2 < 2.0


class TestEmpirical:
    def test_counts_shares(self):
        freqs = empirical_frequencies([0, 0, 1, 2], n_pages=4)
        assert freqs.tolist() == [0.5, 0.25, 0.25, 0.0]

    def test_grows_to_max_page_id(self):
        freqs = empirical_frequencies([7], n_pages=2)
        assert len(freqs) == 8
        assert freqs[7] == 1.0

    def test_empty_trace(self):
        assert empirical_frequencies([], n_pages=3).tolist() == [0.0, 0.0, 0.0]

    def test_sums_to_one(self):
        rng = np.random.default_rng(0)
        trace = rng.integers(0, 50, size=1000)
        assert empirical_frequencies(trace).sum() == pytest.approx(1.0)


class TestNormalize:
    def test_scales_to_probability(self):
        out = normalize_frequencies([1.0, 3.0])
        assert out.tolist() == [0.25, 0.75]

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            normalize_frequencies([1.0, -0.5])

    def test_rejects_all_zero(self):
        with pytest.raises(ValueError):
            normalize_frequencies([0.0, 0.0])

    def test_empty_passthrough(self):
        assert normalize_frequencies([]).size == 0
