"""The priority functions of Section 4/5, including the paper's
Section 4.5 result that MDC ordering equals greedy ordering under a
uniform update distribution."""

import numpy as np
import pytest

from repro.core.priority import (
    age_priority,
    cost_benefit_paper_priority,
    cost_benefit_priority,
    greedy_priority,
    mdc_decline,
    mdc_decline_exact,
)


class TestMdcDecline:
    def test_prefers_small_decline(self):
        # Segment 0: mostly empty, cold (small decline -> clean first).
        # Segment 1: mostly full, hot (large decline -> wait).
        pri = mdc_decline(
            avail=np.array([90.0, 10.0]),
            live_count=np.array([10.0, 90.0]),
            capacity=100.0,
            age_since_up2=np.array([10_000.0, 10.0]),
        )
        assert pri[0] < pri[1]

    def test_fully_empty_segment_cleans_first(self):
        pri = mdc_decline(
            avail=np.array([100.0, 60.0]),
            live_count=np.array([0.0, 40.0]),
            capacity=100.0,
            age_since_up2=np.array([5.0, 5.0]),
        )
        assert pri[0] == -np.inf

    def test_full_segment_cleans_last(self):
        pri = mdc_decline(
            avail=np.array([0.0, 60.0]),
            live_count=np.array([100.0, 40.0]),
            capacity=100.0,
            age_since_up2=np.array([5.0, 5.0]),
        )
        assert pri[0] == np.inf

    def test_interval_clamped_to_one_tick(self):
        # up2 == now must not divide by zero.
        pri = mdc_decline(
            avail=np.array([50.0]),
            live_count=np.array([50.0]),
            capacity=100.0,
            age_since_up2=np.array([0.0]),
        )
        assert np.isfinite(pri[0])

    def test_colder_segment_has_lower_priority_value(self):
        # Same occupancy; the one not updated for longer declines slower.
        pri = mdc_decline(
            avail=np.array([50.0, 50.0]),
            live_count=np.array([50.0, 50.0]),
            capacity=100.0,
            age_since_up2=np.array([10_000.0, 10.0]),
        )
        assert pri[0] < pri[1]

    def test_matches_transformed_formula(self):
        # Section 5.1.3: ((B-A)/A)^2 / (C * (u_now - up2)).
        a, c, b, dt = 30.0, 70.0, 100.0, 50.0
        pri = mdc_decline(np.array([a]), np.array([c]), b, np.array([dt]))
        assert pri[0] == pytest.approx(((b - a) / a) ** 2 / (c * dt))


class TestMdcDeclineExact:
    def test_matches_exact_formula(self):
        a, c, b, fsum = 30.0, 70.0, 100.0, 0.02
        pri = mdc_decline_exact(np.array([a]), np.array([c]), b, np.array([fsum]))
        assert pri[0] == pytest.approx(((b - a) / (a * c)) ** 2 * fsum)

    def test_agrees_with_estimator_for_fixed_size_pages(self):
        # With unit pages, B - A == C; substituting the estimated
        # frequency sum C * 2/dt into the exact formula recovers the
        # estimator's ordering (Section 4.5's consistency).
        rng = np.random.default_rng(7)
        b = 128.0
        c = rng.integers(1, 127, size=20).astype(float)
        a = b - c
        dt = rng.integers(1, 1000, size=20).astype(float)
        est = mdc_decline(a, c, b, dt)
        exact = mdc_decline_exact(a, c, b, c * 2.0 / dt)
        assert np.array_equal(np.argsort(est), np.argsort(exact))

    def test_negative_float_noise_clamped(self):
        pri = mdc_decline_exact(
            np.array([50.0]), np.array([50.0]), 100.0, np.array([-1e-18])
        )
        assert pri[0] == 0.0


class TestUniformEquivalence:
    """Section 4.5: for uniform updates, Priority[MDC] orders segments
    exactly as Priority[greedy]."""

    def test_mdc_orders_like_greedy_when_upf_constant(self):
        rng = np.random.default_rng(3)
        b = 100.0
        avail = rng.integers(1, 99, size=50).astype(float)
        live = b - avail  # fixed-size pages
        dt = np.full(50, 123.0)  # constant Upf
        mdc_order = np.argsort(mdc_decline(avail, live, b, dt), kind="stable")
        greedy_order = np.argsort(greedy_priority(avail), kind="stable")
        assert np.array_equal(mdc_order, greedy_order)


class TestBaselines:
    def test_age_prefers_oldest(self):
        pri = age_priority(np.array([100.0, 5.0, 50.0]))
        assert np.argmin(pri) == 1

    def test_greedy_prefers_most_available(self):
        pri = greedy_priority(np.array([10.0, 90.0, 50.0]))
        assert np.argmin(pri) == 1

    def test_cost_benefit_balances_age_and_emptiness(self):
        # A half-empty old segment beats a nearly-empty brand-new one.
        pri = cost_benefit_priority(
            avail=np.array([50.0, 90.0]),
            capacity=100.0,
            age=np.array([1000.0, 1.0]),
        )
        assert pri[0] < pri[1]

    def test_cost_benefit_matches_rosenblum_formula(self):
        e, age = 0.25, 40.0
        pri = cost_benefit_priority(np.array([25.0]), 100.0, np.array([age]))
        assert pri[0] == pytest.approx(-(e * age) / (2.0 - e))

    def test_paper_formula_prefers_full_segments(self):
        # The literal Section 6.1.3 text ranks a full segment (E=0)
        # infinitely attractive — documented pathology.
        pri = cost_benefit_paper_priority(
            avail=np.array([0.0, 50.0]),
            capacity=100.0,
            age=np.array([10.0, 10.0]),
        )
        assert pri[0] == -np.inf
        assert pri[0] < pri[1]
