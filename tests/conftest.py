"""Shared fixtures: small store configurations sized for fast tests."""

import pytest

from repro.store import StoreConfig
from repro.testkit.failpoints import FAILPOINTS


@pytest.fixture(autouse=True)
def _reset_failpoints():
    """No failpoint arm or trace may leak between tests."""
    yield
    FAILPOINTS.clear()


@pytest.fixture
def tiny_config():
    """A deliberately tiny device so cleaning happens within a few
    hundred writes."""
    return StoreConfig(
        n_segments=16,
        segment_units=8,
        fill_factor=0.6,
        clean_trigger=2,
        clean_batch=2,
    )


@pytest.fixture
def small_config():
    """Small but statistically meaningful device for behavioural tests."""
    return StoreConfig(
        n_segments=64,
        segment_units=16,
        fill_factor=0.75,
        clean_trigger=3,
        clean_batch=4,
    )


@pytest.fixture
def buffered_config():
    """Small device with a user-write sorting buffer enabled."""
    return StoreConfig(
        n_segments=64,
        segment_units=16,
        fill_factor=0.75,
        clean_trigger=3,
        clean_batch=4,
        sort_buffer_segments=2,
    )
