"""The five TPC-C transactions: effects on the tables."""

import pytest

from repro.tpcc import (
    TpccDatabase,
    TpccRandom,
    TpccScale,
    delivery,
    load_database,
    new_order,
    order_status,
    payment,
    stock_level,
)


@pytest.fixture
def env():
    scale = TpccScale(
        warehouses=1, districts_per_warehouse=2,
        customers_per_district=30, initial_orders_per_district=30,
        items=100,
    )
    db = TpccDatabase(pool_pages=50_000)
    rng = TpccRandom(11)
    load_database(db, scale, rng)
    return db, rng, scale


class TestNewOrder:
    def test_creates_order_rows(self, env):
        db, rng, scale = env
        orders_before = len(db.order)
        lines_before = len(db.order_line)
        queue_before = len(db.new_order)
        committed = 0
        for _ in range(20):
            committed += bool(new_order(db, rng, scale, w_id=1))
        assert len(db.order) == orders_before + committed
        assert len(db.new_order) == queue_before + committed
        assert len(db.order_line) >= lines_before + 5 * committed

    def test_advances_district_counter(self, env):
        db, rng, scale = env
        before = db.district.search((1, 1))[2] + db.district.search((1, 2))[2]
        n = 0
        for _ in range(10):
            n += bool(new_order(db, rng, scale, w_id=1))
        after = db.district.search((1, 1))[2] + db.district.search((1, 2))[2]
        assert after - before == n

    def test_updates_stock(self, env):
        db, rng, scale = env
        ytd_before = sum(
            row[1] for _, row in db.stock.scan_prefix((1,))
        )
        for _ in range(10):
            new_order(db, rng, scale, w_id=1)
        ytd_after = sum(row[1] for _, row in db.stock.scan_prefix((1,)))
        assert ytd_after > ytd_before

    def test_one_percent_rollback(self):
        scale = TpccScale(
            warehouses=1, districts_per_warehouse=2,
            customers_per_district=30, initial_orders_per_district=30,
            items=100,
        )
        db = TpccDatabase(pool_pages=50_000)
        rng = TpccRandom(13)
        load_database(db, scale, rng)
        rollbacks = sum(
            0 if new_order(db, rng, scale, 1) else 1 for _ in range(2000)
        )
        assert 2 <= rollbacks <= 50  # ~1%


class TestPayment:
    def test_flows_money(self, env):
        db, rng, scale = env
        w_ytd = db.warehouse.search((1,))[1]
        assert payment(db, rng, scale, w_id=1)
        assert db.warehouse.search((1,))[1] > w_ytd

    def test_appends_history(self, env):
        db, rng, scale = env
        before = len(db.history)
        for _ in range(5):
            payment(db, rng, scale, w_id=1)
        assert len(db.history) == before + 5

    def test_customer_balance_decreases(self, env):
        db, rng, scale = env
        total_before = sum(
            row[2] for _, row in db.customer.scan_prefix((1,))
        )
        for _ in range(10):
            payment(db, rng, scale, w_id=1)
        total_after = sum(row[2] for _, row in db.customer.scan_prefix((1,)))
        assert total_after < total_before


class TestDelivery:
    def test_drains_new_order_queue(self, env):
        db, rng, scale = env
        before = len(db.new_order)
        assert delivery(db, rng, scale, w_id=1)
        # One order delivered per district with a non-empty queue.
        assert len(db.new_order) == before - scale.districts_per_warehouse

    def test_delivers_oldest_first(self, env):
        db, rng, scale = env
        oldest = next(iter(db.new_order.scan_prefix((1, 1))))[0]
        delivery(db, rng, scale, w_id=1)
        assert db.new_order.search(oldest) is None
        # The delivered order now has a carrier.
        assert db.order.search(oldest)[2] != 0

    def test_empty_queue_is_skipped(self, env):
        db, rng, scale = env
        drained = 0
        while len(db.new_order) > 0:
            delivery(db, rng, scale, w_id=1)
            drained += 1
            assert drained < 100
        assert delivery(db, rng, scale, w_id=1)  # no-op, still commits


class TestReadOnly:
    def test_order_status_mutates_nothing(self, env):
        db, rng, scale = env
        writes_before = db.pool.stats.page_writes
        sizes = db.table_sizes()
        for _ in range(10):
            assert order_status(db, rng, scale, w_id=1)
        db.checkpoint()
        assert db.table_sizes() == sizes
        assert db.pool.stats.page_writes == writes_before  # nothing dirty

    def test_stock_level_mutates_nothing(self, env):
        db, rng, scale = env
        sizes = db.table_sizes()
        for _ in range(10):
            assert stock_level(db, rng, scale, w_id=1)
        db.checkpoint()
        assert db.table_sizes() == sizes
