"""TPC-C spec consistency conditions as a transaction-correctness
oracle."""

import pytest

from repro.tpcc import TpccDatabase, TpccDriver, TpccRandom, TpccScale, load_database
from repro.tpcc.consistency import ConsistencyViolation, check_consistency

SCALE = TpccScale(
    warehouses=2, districts_per_warehouse=3,
    customers_per_district=40, initial_orders_per_district=40,
    items=200,
)


def fresh_db(seed=1):
    db = TpccDatabase(pool_pages=50_000)
    rng = TpccRandom(seed)
    load_database(db, SCALE, rng)
    return db, rng


class TestAfterLoad:
    def test_initial_population_is_consistent(self):
        db, _ = fresh_db()
        performed = check_consistency(db, SCALE)
        assert len(performed) == 2 * SCALE.warehouses


class TestAfterTransactions:
    def test_consistency_survives_the_full_mix(self):
        db, rng = fresh_db(seed=2)
        driver = TpccDriver(db, SCALE, rng, checkpoint_every=100)
        driver.run(1500)
        check_consistency(db, SCALE)

    def test_consistency_with_serialized_pool(self):
        """TPC-C rows (composite keys, strings, floats) round-trip the
        binary page codec through a tiny, constantly-evicting pool."""
        db = TpccDatabase(pool_pages=64, serialize=True)
        rng = TpccRandom(10)
        load_database(db, SCALE, rng)
        TpccDriver(db, SCALE, rng, checkpoint_every=200).run(600)
        assert db.pool.stats.evictions > 0
        check_consistency(db, SCALE)

    def test_consistency_survives_heavy_delivery(self):
        from repro.tpcc import delivery, new_order
        db, rng = fresh_db(seed=3)
        for _ in range(200):
            new_order(db, rng, SCALE, w_id=1)
        for _ in range(100):
            delivery(db, rng, SCALE, w_id=1)
        check_consistency(db, SCALE)


class TestDetection:
    """The checker must actually catch corruption."""

    def test_detects_ytd_drift(self):
        db, _ = fresh_db(seed=4)
        row = db.warehouse.search((1,))
        db.warehouse.update((1,), (row[0], row[1] + 100.0))
        with pytest.raises(ConsistencyViolation, match="consistency 1"):
            check_consistency(db, SCALE)

    def test_detects_order_counter_drift(self):
        db, _ = fresh_db(seed=5)
        d = db.district.search((1, 1))
        db.district.update((1, 1), (d[0], d[1], d[2] + 5))
        with pytest.raises(ConsistencyViolation, match="consistency 2"):
            check_consistency(db, SCALE)

    def test_detects_queue_gap(self):
        db, _ = fresh_db(seed=6)
        queue = [k for k, _ in db.new_order.scan_prefix((1, 1))]
        assert len(queue) >= 3
        db.new_order.delete(queue[1])  # delete from the middle
        with pytest.raises(ConsistencyViolation, match="consistency 3"):
            check_consistency(db, SCALE)

    def test_detects_missing_order_line(self):
        db, _ = fresh_db(seed=7)
        key = next(iter(db.order_line.scan_prefix((1, 1))))[0]
        db.order_line.delete(key)
        with pytest.raises(ConsistencyViolation, match="consistency [46]"):
            check_consistency(db, SCALE)

    def test_detects_orphan_new_order(self):
        db, _ = fresh_db(seed=8)
        key = next(iter(db.new_order.scan_prefix((1, 1))))[0]
        db.order.delete(key)
        with pytest.raises(ConsistencyViolation):
            check_consistency(db, SCALE)
