"""Driver mix and the trace-generation pipeline of Section 6.3."""

import numpy as np
import pytest

from repro.tpcc import (
    TpccDatabase,
    TpccDriver,
    TpccRandom,
    TpccScale,
    generate_tpcc_trace,
    load_database,
)

SMALL = TpccScale(
    warehouses=1, districts_per_warehouse=3,
    customers_per_district=50, initial_orders_per_district=50,
    items=300,
)


class TestDriver:
    def test_mix_roughly_matches_spec(self):
        db = TpccDatabase(pool_pages=50_000)
        rng = TpccRandom(3)
        load_database(db, SMALL, rng)
        driver = TpccDriver(db, SMALL, rng, checkpoint_every=0)
        stats = driver.run(3000)
        shares = {
            name: n / stats.total for name, n in stats.committed.items()
        }
        assert shares["new_order"] == pytest.approx(0.45, abs=0.04)
        assert shares["payment"] == pytest.approx(0.43, abs=0.04)
        for name in ("order_status", "delivery", "stock_level"):
            assert shares[name] == pytest.approx(0.04, abs=0.02)

    def test_checkpoints_fire(self):
        db = TpccDatabase(pool_pages=50_000)
        rng = TpccRandom(4)
        load_database(db, SMALL, rng)
        driver = TpccDriver(db, SMALL, rng, checkpoint_every=100)
        driver.run(500)
        assert driver.stats.checkpoints == 5

    def test_storage_grows(self):
        db = TpccDatabase(pool_pages=50_000)
        rng = TpccRandom(5)
        load_database(db, SMALL, rng)
        before = db.footprint_pages
        TpccDriver(db, SMALL, rng, checkpoint_every=0).run(2000)
        assert db.footprint_pages > before


class TestTraceGeneration:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_tpcc_trace(
            0.6, scale=SMALL, fill_growth=0.1, checkpoint_every=100, seed=9
        )

    def test_fill_grows_by_target(self, trace):
        assert trace.initial_fill == 0.6
        assert trace.final_fill == pytest.approx(0.7, abs=0.03)

    def test_trace_excludes_load_phase(self, trace):
        # The load writes pages 0..N sequentially; a running-phase trace
        # is dominated by *rewrites* of existing pages instead.
        arr = trace.workload.trace
        assert len(arr) > 0
        assert len(np.unique(arr)) < len(arr)  # repeats exist

    def test_trace_is_skewed(self, trace):
        freqs = np.sort(trace.workload.frequencies())[::-1]
        top10 = freqs[: max(1, len(freqs) // 10)].sum()
        assert top10 > 0.2  # hot pages exist (district, queue heads...)

    def test_store_config_is_consistent(self, trace):
        cfg = trace.store_config(segment_units=16)
        assert cfg.n_segments * 16 >= trace.device_pages * 0.9
        assert cfg.fill_factor == pytest.approx(trace.final_fill, abs=0.01)

    def test_rejects_extreme_fill(self):
        with pytest.raises(ValueError):
            generate_tpcc_trace(0.99, scale=SMALL)

    def test_deterministic_given_seed(self):
        a = generate_tpcc_trace(0.6, scale=SMALL, seed=21)
        b = generate_tpcc_trace(0.6, scale=SMALL, seed=21)
        assert np.array_equal(a.workload.trace, b.workload.trace)
