"""TPC-C population: cardinalities, key shapes, spec ratios."""

import pytest

from repro.tpcc import TpccDatabase, TpccRandom, TpccScale, load_database


@pytest.fixture(scope="module")
def loaded():
    scale = TpccScale(
        warehouses=2, districts_per_warehouse=3,
        customers_per_district=30, initial_orders_per_district=30,
        items=200,
    )
    db = TpccDatabase(pool_pages=50_000)
    load_database(db, scale, TpccRandom(7))
    return db, scale


class TestCardinalities:
    def test_scale_validation(self):
        with pytest.raises(ValueError):
            TpccScale(warehouses=0)
        with pytest.raises(ValueError):
            TpccScale(customers_per_district=2)
        with pytest.raises(ValueError):
            TpccScale(
                customers_per_district=10, initial_orders_per_district=20
            )

    def test_spec_scale(self):
        s = TpccScale.spec(warehouses=3)
        assert s.items == 100_000
        assert s.customers_per_district == 3000
        assert s.warehouses == 3

    def test_row_counts(self, loaded):
        db, scale = loaded
        w = scale.warehouses
        d = w * scale.districts_per_warehouse
        c = d * scale.customers_per_district
        o = d * scale.initial_orders_per_district
        assert len(db.warehouse) == w
        assert len(db.district) == d
        assert len(db.customer) == c
        assert len(db.customer_by_name) == c
        assert len(db.history) == c
        assert len(db.order) == o
        assert len(db.order_by_customer) == o
        assert len(db.item) == scale.items
        assert len(db.stock) == w * scale.items

    def test_one_third_undelivered(self, loaded):
        db, scale = loaded
        orders = scale.initial_orders_per_district
        districts = scale.warehouses * scale.districts_per_warehouse
        assert len(db.new_order) == (orders // 3) * districts

    def test_order_lines_between_5_and_15_per_order(self, loaded):
        db, scale = loaded
        per_order = {}
        for (w, d, o, _n), _ in db.order_line.scan_prefix(()):
            per_order[(w, d, o)] = per_order.get((w, d, o), 0) + 1
        assert set(per_order) == {
            key[:3] for key, _ in db.order.scan_prefix(())
        }
        assert all(5 <= n <= 15 for n in per_order.values())


class TestContents:
    def test_district_next_o_id(self, loaded):
        db, scale = loaded
        row = db.district.search((1, 1))
        assert row[2] == scale.initial_orders_per_district + 1

    def test_name_index_points_back(self, loaded):
        db, _ = loaded
        for key, c_id in list(db.customer_by_name.scan_prefix((1, 1)))[:10]:
            w, d, last, first, cid = key
            assert cid == c_id
            row = db.customer.search((w, d, c_id))
            assert row is not None
            assert row[1] == last
            assert row[0] == first

    def test_undelivered_orders_have_no_carrier(self, loaded):
        db, _ = loaded
        for (w, d, o), _empty in db.new_order.scan_prefix(()):
            order = db.order.search((w, d, o))
            assert order[2] == 0  # no carrier yet

    def test_trees_structurally_sound(self, loaded):
        db, _ = loaded
        for name in TpccDatabase.TABLES:
            getattr(db, name).check_structure()

    def test_approximate_rows_estimate(self, loaded):
        db, scale = loaded
        actual = sum(db.table_sizes().values())
        assert actual == pytest.approx(scale.approximate_rows(), rel=0.15)
