"""TPC-C random input generation: NURand, names, determinism."""

import pytest

from repro.tpcc.random_gen import LAST_NAME_SYLLABLES, TpccRandom


class TestNurand:
    def test_in_range(self):
        rng = TpccRandom(0)
        for _ in range(1000):
            v = rng.nurand(255, 1, 3000, c=77)
            assert 1 <= v <= 3000

    def test_is_nonuniform(self):
        rng = TpccRandom(1)
        counts = {}
        for _ in range(20_000):
            v = rng.customer_id(3000)
            counts[v] = counts.get(v, 0) + 1
        # NURand concentrates mass: the most popular value appears far
        # more often than the uniform expectation (~6.7).
        assert max(counts.values()) > 20

    def test_item_ids_in_range(self):
        rng = TpccRandom(2)
        assert all(1 <= rng.item_id(500) <= 500 for _ in range(1000))


class TestNames:
    def test_syllable_composition(self):
        assert TpccRandom.last_name_for(0) == "BARBARBAR"
        assert TpccRandom.last_name_for(371) == "PRICALLYOUGHT"
        assert TpccRandom.last_name_for(999) == "EINGEINGEING"

    def test_random_names_are_valid(self):
        rng = TpccRandom(3)
        for _ in range(100):
            name = rng.last_name()
            # Decomposable into exactly three syllables.
            assert any(name.startswith(s) for s in LAST_NAME_SYLLABLES)


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = TpccRandom(42)
        b = TpccRandom(42)
        assert [a.uniform(1, 100) for _ in range(50)] == [
            b.uniform(1, 100) for _ in range(50)
        ]

    def test_amount_has_two_decimals(self):
        rng = TpccRandom(4)
        for _ in range(100):
            amt = rng.amount(1.0, 5000.0)
            assert amt == round(amt, 2)

    def test_alnum_string_lengths(self):
        rng = TpccRandom(5)
        for _ in range(100):
            s = rng.alnum_string(8, 16)
            assert 8 <= len(s) <= 16
