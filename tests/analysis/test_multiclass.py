"""The k-population generalization of the Section 3 analysis."""

import numpy as np
import pytest

from repro.analysis import hotcold
from repro.analysis.multiclass import (
    bucketize_frequencies,
    distribution_opt_wamp,
    optimal_slack_shares,
    separated_wamp,
)
from repro.workloads import HotColdWorkload, ZipfianWorkload


class TestOptimalShares:
    def test_reduces_to_paper_two_population_result(self):
        # m:1-m -> equal split (Section 3.2).
        updates, dists = hotcold.hotcold_parameters(80)
        shares = optimal_slack_shares(0.8, updates, dists)
        assert shares[0] == pytest.approx(0.5, abs=0.05)

    def test_matches_golden_section_optimum(self):
        updates, dists = (0.7, 0.3), (0.1, 0.9)
        g_scan = hotcold.optimal_slack_split(0.8, updates, dists)
        shares = optimal_slack_shares(0.8, updates, dists)
        assert shares[0] == pytest.approx(g_scan, abs=0.03)

    def test_single_population(self):
        assert optimal_slack_shares(0.8, (1.0,), (1.0,)).tolist() == [1.0]

    def test_shares_sum_to_one(self):
        updates = np.array([0.5, 0.3, 0.15, 0.05])
        dists = np.array([0.05, 0.15, 0.3, 0.5])
        shares = optimal_slack_shares(0.8, updates, dists)
        assert shares.sum() == pytest.approx(1.0)
        assert np.all(shares > 0)

    def test_hotter_smaller_population_gets_disproportionate_slack(self):
        # 50% of updates to 5% of data: the hot set's slack share is
        # far above its data share (0.05), though below 0.5 — optimal
        # slack scales with sqrt(U * Dist), and it matches the exact
        # one-dimensional optimizer.
        updates = (0.5, 0.5)
        dists = (0.05, 0.95)
        shares = optimal_slack_shares(0.8, updates, dists)
        assert shares[0] > 2 * dists[0]
        exact = hotcold.optimal_slack_split(0.8, updates, dists)
        assert shares[0] == pytest.approx(exact, abs=0.03)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            optimal_slack_shares(0.8, (0.6, 0.3), (0.5, 0.5))  # sums != 1
        with pytest.raises(ValueError):
            optimal_slack_shares(0.8, (1.0, 0.0), (0.5, 0.5))  # zero entry


class TestSeparatedWamp:
    def test_two_population_matches_hotcold_module(self):
        updates, dists = hotcold.hotcold_parameters(90)
        ours = separated_wamp(0.8, updates, dists)
        theirs = hotcold.opt_wamp(90, 0.8)
        assert ours == pytest.approx(theirs, rel=0.02)

    def test_optimal_shares_beat_arbitrary_shares(self):
        updates = (0.6, 0.3, 0.1)
        dists = (0.1, 0.3, 0.6)
        best = separated_wamp(0.8, updates, dists)
        uniform_shares = (1 / 3, 1 / 3, 1 / 3)
        assert best <= separated_wamp(0.8, updates, dists, uniform_shares) * (
            1 + 1e-3
        )

    def test_share_validation(self):
        with pytest.raises(ValueError):
            separated_wamp(0.8, (0.5, 0.5), (0.5, 0.5), shares=(0.9, 0.2))


class TestBucketize:
    def test_hotcold_buckets_recover_populations(self):
        wl = HotColdWorkload.from_skew(1000, 80, seed=1)
        updates, dists = bucketize_frequencies(wl.frequencies(), 2)
        # Coldest bucket: 80% of pages with 20% of updates.
        assert dists[0] == pytest.approx(0.8, abs=0.01)
        assert updates[0] == pytest.approx(0.2, abs=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            bucketize_frequencies([], 1)
        with pytest.raises(ValueError):
            bucketize_frequencies([0.5, 0.5], 3)
        with pytest.raises(ValueError):
            bucketize_frequencies([0.0, 0.0], 1)


class TestDistributionOptWamp:
    def test_matches_figure3_opt_for_hotcold(self):
        wl = HotColdWorkload.from_skew(2000, 90, seed=2)
        bound = distribution_opt_wamp(wl.frequencies(), 0.8, k=2)
        assert bound == pytest.approx(hotcold.opt_wamp(90, 0.8), rel=0.03)

    def test_more_buckets_never_hurt(self):
        wl = ZipfianWorkload.eighty_twenty(2000, seed=3)
        freqs = wl.frequencies()
        coarse = distribution_opt_wamp(freqs, 0.8, k=2)
        fine = distribution_opt_wamp(freqs, 0.8, k=16)
        assert fine <= coarse * (1 + 1e-6)

    def test_zipf_bound_below_uniform(self):
        from repro.analysis import emptiness_fixpoint, write_amplification
        wl = ZipfianWorkload.eighty_twenty(2000, seed=3)
        bound = distribution_opt_wamp(wl.frequencies(), 0.8, k=16)
        uniform = write_amplification(emptiness_fixpoint(0.8))
        assert bound < uniform

    def test_90_10_zipf_more_separable_than_80_20(self):
        mild = ZipfianWorkload.eighty_twenty(2000, seed=3)
        steep = ZipfianWorkload.ninety_ten(2000, seed=3)
        assert distribution_opt_wamp(steep.frequencies(), 0.8) < (
            distribution_opt_wamp(mild.frequencies(), 0.8)
        )
