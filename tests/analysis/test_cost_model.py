"""Equations 1-2 and their inversions."""

import pytest

from repro.analysis import cost_model


class TestCost:
    def test_equation_1(self):
        # Section 2.1 example: F=0.8 gives E>=0.2 hence IO/seg <= 10.
        assert cost_model.cost_per_segment(0.2) == pytest.approx(10.0)

    def test_cost_decomposition(self):
        e = 0.25
        reads = cost_model.cleaning_reads(e)
        gc_writes = cost_model.cleaning_writes(e)
        # reads + gc writes + the 1 write of new data = 2/E.
        assert reads + gc_writes + 1.0 == pytest.approx(
            cost_model.cost_per_segment(e)
        )

    @pytest.mark.parametrize("bad", [0.0, -0.5, 1.5])
    def test_rejects_degenerate_emptiness(self, bad):
        with pytest.raises(ValueError):
            cost_model.cost_per_segment(bad)


class TestWamp:
    def test_equation_2(self):
        assert cost_model.write_amplification(0.5) == pytest.approx(1.0)
        assert cost_model.write_amplification(1.0) == 0.0

    def test_inversion_roundtrip(self):
        for e in (0.05, 0.2, 0.5, 0.9):
            w = cost_model.write_amplification(e)
            assert cost_model.emptiness_from_wamp(w) == pytest.approx(e)

    def test_inversion_rejects_negative(self):
        with pytest.raises(ValueError):
            cost_model.emptiness_from_wamp(-0.1)


class TestRatio:
    def test_r_definition(self):
        assert cost_model.emptiness_ratio(0.375, 0.8) == pytest.approx(1.875)

    def test_rejects_bad_fill(self):
        with pytest.raises(ValueError):
            cost_model.emptiness_ratio(0.5, 1.0)
