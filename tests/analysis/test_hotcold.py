"""Section 3 hot/cold separation analysis, checked against Table 2."""

import pytest

from repro.analysis import hotcold

#: Table 2 of the paper (F = 0.8): skew -> (MinCost, Hot:60%, Hot:40%).
PAPER_TABLE2 = {
    90: (2.96, 3.06, 2.99),
    80: (4.00, 4.12, 4.11),
    70: (4.80, 4.90, 4.86),
    60: (5.23, 5.38, 5.38),
    50: (5.38, 5.46, 5.46),
}


class TestSplitFillFactor:
    def test_formula(self):
        # F=0.8, hot set holds 20% of data, half the slack: F_1 =
        # .16 / (.1 + .16).
        f1 = hotcold.split_fill_factor(0.8, 0.2, 0.5)
        assert f1 == pytest.approx(0.16 / 0.26)

    def test_more_slack_lowers_fill(self):
        f_less = hotcold.split_fill_factor(0.8, 0.2, 0.3)
        f_more = hotcold.split_fill_factor(0.8, 0.2, 0.7)
        assert f_more < f_less

    def test_rejects_bad_shares(self):
        with pytest.raises(ValueError):
            hotcold.split_fill_factor(0.8, 0.2, 0.0)
        with pytest.raises(ValueError):
            hotcold.split_fill_factor(1.2, 0.2, 0.5)


class TestParameters:
    def test_m_one_minus_m(self):
        updates, dists = hotcold.hotcold_parameters(80)
        assert updates == pytest.approx((0.8, 0.2))
        assert dists == pytest.approx((0.2, 0.8))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            hotcold.hotcold_parameters(49)
        with pytest.raises(ValueError):
            hotcold.hotcold_parameters(100)


class TestOptimalSplit:
    def test_equal_split_for_m_family(self):
        # Section 3.2: g1/g2 = sqrt(R2/R1) ~ 1 for m:1-m skews.
        for m in (90, 80, 70, 60):
            updates, dists = hotcold.hotcold_parameters(m)
            g = hotcold.optimal_slack_split(0.8, updates, dists)
            assert g == pytest.approx(0.5, abs=0.06)

    def test_analytic_ratio_near_one(self):
        updates, dists = hotcold.hotcold_parameters(80)
        ratio = hotcold.analytic_split_ratio(0.8, updates, dists)
        assert ratio == pytest.approx(1.0, abs=0.1)

    def test_cost_is_flat_near_optimum(self):
        # The paper notes cost "does not change very much over a range
        # of space divisions".
        updates, dists = hotcold.hotcold_parameters(80)
        c50 = hotcold.total_cost(0.8, updates, dists, (0.5, 0.5))
        c60 = hotcold.total_cost(0.8, updates, dists, (0.6, 0.4))
        assert abs(c60 - c50) / c50 < 0.05


class TestTable2:
    @pytest.mark.parametrize("m", sorted(PAPER_TABLE2))
    def test_min_cost_matches_paper(self, m):
        row = hotcold.table2_row(m)
        assert row.min_cost == pytest.approx(PAPER_TABLE2[m][0], rel=0.03)

    @pytest.mark.parametrize("m", sorted(PAPER_TABLE2))
    def test_hot60_matches_paper(self, m):
        row = hotcold.table2_row(m)
        assert row.cost_hot_60 == pytest.approx(PAPER_TABLE2[m][1], rel=0.03)

    @pytest.mark.parametrize("m", sorted(PAPER_TABLE2))
    def test_hot40_matches_paper(self, m):
        row = hotcold.table2_row(m)
        assert row.cost_hot_40 == pytest.approx(PAPER_TABLE2[m][2], rel=0.03)

    def test_skew_reduces_cost(self):
        rows = hotcold.table2()
        costs = [r.min_cost for r in rows]  # 90, 80, 70, 60, 50
        assert costs == sorted(costs)

    def test_uniform_limit_matches_table1(self):
        # At 50:50 the two populations are identical, so separation buys
        # nothing: cost equals the unseparated uniform cost 2/E(0.8).
        from repro.analysis import emptiness_fixpoint
        uniform_cost = 2.0 / emptiness_fixpoint(0.8)
        row = hotcold.table2_row(50)
        assert row.min_cost == pytest.approx(uniform_cost, rel=0.01)


class TestOptWamp:
    def test_wamp_is_cost_transform(self):
        row = hotcold.table2_row(80)
        # Total Wamp equals sum U_i (1-E_i)/E_i which is Cost/2 - 1 when
        # the U_i sum to one.
        assert hotcold.opt_wamp(80) == pytest.approx(row.min_wamp, abs=0.02)

    def test_matches_figure3_reading(self):
        # Figure 3's "opt" series: ~0.5 at 90-10, ~1.0 at 80-20,
        # rising toward the uniform value (~1.7) at 50-50.
        assert hotcold.opt_wamp(90) == pytest.approx(0.5, abs=0.1)
        assert hotcold.opt_wamp(80) == pytest.approx(1.0, abs=0.1)
        assert hotcold.opt_wamp(50) == pytest.approx(1.69, abs=0.05)


class TestValidation:
    def test_partitions_must_sum_to_one(self):
        with pytest.raises(ValueError):
            hotcold.total_cost(0.8, (0.8, 0.1), (0.2, 0.8), (0.5, 0.5))

    def test_exactly_two_populations(self):
        with pytest.raises(ValueError):
            hotcold.total_cost(0.8, (0.5, 0.3, 0.2), (0.2, 0.3, 0.5), (0.4, 0.3, 0.3))
