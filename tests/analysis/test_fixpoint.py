"""Equation 3/4 fixpoints, checked against the paper's Table 1."""

import math

import pytest

from repro.analysis import fixpoint

#: Table 1 of the paper: F -> (E, Cost, R, Wamp).  E and R are printed to
#: 2-3 significant digits there, so comparisons use matching tolerances.
PAPER_TABLE1 = {
    0.975: (0.048, 41.7, 1.94, 19.8),
    0.95: (0.094, 21.3, 1.92, 9.64),
    0.90: (0.19, 10.5, 1.92, 4.26),
    0.85: (0.29, 6.90, 1.90, 2.45),
    0.80: (0.375, 5.33, 1.88, 1.66),
    0.75: (0.45, 4.44, 1.80, 1.22),
    0.70: (0.53, 3.78, 1.77, 0.887),
    0.65: (0.60, 3.33, 1.71, 0.666),
    0.60: (0.67, 2.99, 1.68, 0.493),
    0.55: (0.74, 2.70, 1.64, 0.351),
    0.50: (0.80, 2.50, 1.60, 0.250),
    0.45: (0.85, 2.35, 1.55, 0.176),
    0.40: (0.89, 2.24, 1.49, 0.124),
    0.35: (0.93, 2.15, 1.43, 0.075),
    0.30: (0.96, 2.08, 1.37, 0.042),
    0.25: (0.98, 2.04, 1.31, 0.020),
    0.20: (0.993, 2.014, 1.24, 0.007),
}


class TestFixpoint:
    def test_satisfies_equation_4(self):
        for f in (0.3, 0.5, 0.8, 0.95):
            e = fixpoint.emptiness_fixpoint(f)
            assert e == pytest.approx(1.0 - math.exp(-e / f), abs=1e-9)

    def test_root_is_positive_and_below_one(self):
        for f in (0.1, 0.5, 0.99):
            e = fixpoint.emptiness_fixpoint(f)
            assert 0.0 < e < 1.0

    def test_monotone_in_fill_factor(self):
        values = [fixpoint.emptiness_fixpoint(f / 100) for f in range(10, 100, 5)]
        assert values == sorted(values, reverse=True)

    def test_finite_population_converges_to_limit(self):
        limit = fixpoint.emptiness_fixpoint(0.8)
        finite = fixpoint.emptiness_fixpoint(0.8, n_pages=100_000)
        assert finite == pytest.approx(limit, rel=1e-3)

    def test_small_population_deviates(self):
        # The paper notes P > ~30 is enough; P=2 is visibly different.
        limit = fixpoint.emptiness_fixpoint(0.8)
        tiny = fixpoint.emptiness_fixpoint(0.8, n_pages=2)
        assert abs(tiny - limit) > 0.01

    @pytest.mark.parametrize("bad", [0.0, 1.0, -1.0])
    def test_rejects_degenerate_fill(self, bad):
        with pytest.raises(ValueError):
            fixpoint.emptiness_fixpoint(bad)

    def test_rejects_tiny_population(self):
        with pytest.raises(ValueError):
            fixpoint.emptiness_fixpoint(0.8, n_pages=1)


class TestTable1:
    @pytest.mark.parametrize("f", sorted(PAPER_TABLE1))
    def test_emptiness_matches_paper(self, f):
        # The paper prints E to 2 significant digits (its own simulated
        # MDC-opt column matches our fixpoint more closely than its
        # rounded analysis column, e.g. 0.606 vs "0.60" at F=0.65).
        e_paper = PAPER_TABLE1[f][0]
        row = fixpoint.table1_row(f)
        assert row.emptiness == pytest.approx(e_paper, abs=8e-3)

    @pytest.mark.parametrize("f", sorted(PAPER_TABLE1))
    def test_cost_matches_paper(self, f):
        cost_paper = PAPER_TABLE1[f][1]
        row = fixpoint.table1_row(f)
        assert row.cost == pytest.approx(cost_paper, rel=0.06)

    @pytest.mark.parametrize("f", sorted(PAPER_TABLE1))
    def test_ratio_matches_paper(self, f):
        r_paper = PAPER_TABLE1[f][2]
        row = fixpoint.table1_row(f)
        assert row.ratio == pytest.approx(r_paper, rel=0.04)

    @pytest.mark.parametrize("f", sorted(PAPER_TABLE1))
    def test_wamp_matches_paper(self, f):
        w_paper = PAPER_TABLE1[f][3]
        row = fixpoint.table1_row(f)
        assert row.wamp == pytest.approx(w_paper, rel=0.07, abs=5e-3)

    def test_default_table_covers_paper_grid(self):
        rows = fixpoint.table1()
        assert [r.fill_factor for r in rows] == list(fixpoint.TABLE1_FILL_FACTORS)
        assert len(rows) == 17
