"""The Maximality Lemma (Appendix A) and the MDC ordering argument."""

import itertools

import numpy as np
import pytest

from repro.analysis import lemma


class TestPairedSums:
    def test_same_order_maximizes_small_case(self):
        x = [1.0, 2.0, 3.0]
        y = [10.0, 20.0, 30.0]
        best = lemma.max_paired_sum(x, y)
        for perm in itertools.permutations(y):
            assert lemma.paired_sum(x, perm) <= best + 1e-12

    def test_opposite_order_minimizes_small_case(self):
        x = [1.0, 2.0, 3.0]
        y = [10.0, 20.0, 30.0]
        worst = lemma.min_paired_sum(x, y)
        for perm in itertools.permutations(y):
            assert lemma.paired_sum(x, perm) >= worst - 1e-12

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            lemma.paired_sum([1.0], [1.0, 2.0])


class TestMdcOrdering:
    def test_ascending_decline_minimizes_total_cost(self):
        rng = np.random.default_rng(11)
        costs = rng.uniform(10, 100, size=6)
        declines = rng.uniform(0.1, 5.0, size=6)
        best_order = lemma.mdc_order(declines)
        best = lemma.mdc_processing_cost(
            costs[best_order], declines[best_order]
        )
        for perm in itertools.permutations(range(6)):
            perm = np.asarray(perm)
            total = lemma.mdc_processing_cost(costs[perm], declines[perm])
            assert total >= best - 1e-9

    def test_declines_must_be_nonnegative(self):
        with pytest.raises(ValueError):
            lemma.mdc_processing_cost([1.0], [-1.0])

    def test_interval_scales_linearly(self):
        costs = np.array([10.0, 20.0])
        declines = np.array([1.0, 2.0])
        c1 = lemma.mdc_processing_cost(costs, declines, interval=1.0)
        c2 = lemma.mdc_processing_cost(costs, declines, interval=2.0)
        # Only the decline term doubles.
        assert (costs.sum() - c2) == pytest.approx(2 * (costs.sum() - c1))
