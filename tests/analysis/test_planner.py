"""The over-provisioning planner (inverse Table 1)."""

import pytest

from repro.analysis.planner import (
    fill_for_wamp,
    overprovisioning_for_wamp,
    separation_savings,
    wamp_at_fill,
)
from repro.workloads import HotColdWorkload, UniformWorkload


class TestInversion:
    def test_roundtrip_through_table1(self):
        for f in (0.5, 0.7, 0.8, 0.9):
            w = wamp_at_fill(f)
            assert fill_for_wamp(w) == pytest.approx(f, abs=1e-6)

    def test_table1_spot_values(self):
        # Paper Table 1: F=0.8 -> Wamp 1.66-1.69.
        assert wamp_at_fill(0.8) == pytest.approx(1.693, abs=0.01)
        # And the inverse: Wamp <= 1 needs about 27-28% slack.
        assert overprovisioning_for_wamp(1.0) == pytest.approx(0.275, abs=0.01)

    def test_zero_wamp_needs_everything(self):
        assert fill_for_wamp(0.0) < 0.01

    def test_huge_budget_allows_full_fill(self):
        assert fill_for_wamp(1e9) > 0.999

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            fill_for_wamp(-1.0)

    def test_monotone(self):
        fills = [fill_for_wamp(w) for w in (0.25, 0.5, 1.0, 2.0, 5.0)]
        assert fills == sorted(fills)


class TestSeparationSavings:
    def test_uniform_workload_saves_nothing(self):
        wl = UniformWorkload(1000)
        s = separation_savings(wl.frequencies(), 0.8)
        assert s.wamp_reduction == pytest.approx(0.0, abs=0.01)
        assert s.slack_saved == pytest.approx(0.0, abs=0.01)

    def test_skewed_workload_saves_a_lot(self):
        wl = HotColdWorkload.from_skew(2000, 90, seed=1)
        s = separation_savings(wl.frequencies(), 0.8)
        # Figure 3 at 90-10: opt ~0.48 vs uniform 1.69.
        assert s.uniform_wamp == pytest.approx(1.693, abs=0.01)
        assert s.separated_wamp == pytest.approx(0.48, abs=0.03)
        assert s.wamp_reduction > 0.6
        # A frequency-blind cleaner would need to give up real capacity
        # to match: the equivalent fill factor is far below 0.8.
        assert s.slack_saved > 0.1

    def test_more_skew_more_savings(self):
        mild = HotColdWorkload.from_skew(2000, 70, seed=2)
        steep = HotColdWorkload.from_skew(2000, 95, seed=2)
        assert (
            separation_savings(steep.frequencies(), 0.8).wamp_reduction
            > separation_savings(mild.frequencies(), 0.8).wamp_reduction
        )
