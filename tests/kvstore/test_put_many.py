"""put_many must be state-identical to a sequential put loop."""

import numpy as np
import pytest

from repro.kvstore import KVError, LogStructuredKVStore
from repro.store import StoreConfig
from repro.testkit.trace import state_digest


def make_kv(policy="mdc", **overrides):
    cfg = dict(
        n_segments=64, segment_units=32, fill_factor=0.5,
        clean_trigger=2, clean_batch=4, sort_buffer_segments=1,
    )
    cfg.update(overrides)
    return LogStructuredKVStore(StoreConfig(**cfg), policy=policy, unit_bytes=16)


def random_items(rng, n, keyspace=64, max_bytes=96):
    return [
        (
            "k%d" % rng.integers(0, keyspace),
            bytes(int(rng.integers(1, max_bytes + 1))),
        )
        for _ in range(n)
    ]


class TestDifferential:
    """The oracle: put_many(batch) == for k, v in batch: put(k, v)."""

    @pytest.mark.parametrize("policy", ["mdc", "greedy"])
    def test_batched_equals_sequential(self, policy):
        rng = np.random.default_rng(11)
        items = random_items(rng, 600)
        batched = make_kv(policy)
        sequential = make_kv(policy)
        for start in range(0, len(items), 37):  # uneven chunking
            batched.put_many(items[start:start + 37])
        for key, value in items:
            sequential.put(key, value)
        assert state_digest(batched.store) == state_digest(sequential.store)
        assert dict(batched.items()) == dict(sequential.items())
        batched.check_consistency()

    def test_differential_with_interleaved_deletes(self):
        rng = np.random.default_rng(5)
        batched = make_kv()
        sequential = make_kv()
        for _round in range(20):
            items = random_items(rng, 50, keyspace=32)
            batched.put_many(items)
            for key, value in items:
                sequential.put(key, value)
            victim = "k%d" % rng.integers(0, 32)
            assert batched.delete(victim) == sequential.delete(victim)
        assert state_digest(batched.store) == state_digest(sequential.store)

    def test_duplicate_keys_in_one_batch_last_wins(self):
        kv = make_kv()
        ref = make_kv()
        batch = [("a", b"one"), ("b", b"x"), ("a", b"two"), ("a", b"three")]
        kv.put_many(batch)
        for key, value in batch:
            ref.put(key, value)
        assert kv.get("a") == b"three"
        # Every occurrence is a user write, exactly like the loop.
        assert kv.store.stats.user_writes == ref.store.stats.user_writes
        assert state_digest(kv.store) == state_digest(ref.store)


class TestBatchSemantics:
    def test_empty_batch(self):
        kv = make_kv()
        assert kv.put_many([]) == 0
        assert len(kv) == 0

    def test_returns_count_and_accepts_iterators(self):
        kv = make_kv()
        n = kv.put_many(("it%d" % i, b"v") for i in range(10))
        assert n == 10
        assert len(kv) == 10

    def test_invalid_value_applies_prefix_then_raises(self):
        kv = make_kv()
        ref = make_kv()
        bad = [("a", b"1"), ("b", b"2"), ("c", "not-bytes"), ("d", b"4")]
        with pytest.raises(KVError):
            kv.put_many(bad)
        for key, value in bad:
            try:
                ref.put(key, value)
            except KVError:
                break
        assert kv.get("a") == b"1" and kv.get("b") == b"2"
        assert kv.get("c") is None and kv.get("d") is None
        assert state_digest(kv.store) == state_digest(ref.store)
        kv.check_consistency()

    def test_oversized_value_applies_prefix_then_raises(self):
        kv = make_kv()
        huge = b"x" * (kv.max_value_bytes + 1)
        with pytest.raises(KVError):
            kv.put_many([("ok", b"fine"), ("big", huge)])
        assert kv.get("ok") == b"fine"
        assert "big" not in kv
        kv.check_consistency()

    def test_overwrite_reuses_slot(self):
        kv = make_kv()
        kv.put("a", b"old")
        slot = kv._slot_of["a"]
        kv.put_many([("a", b"new")])
        assert kv._slot_of["a"] == slot
        assert kv.get("a") == b"new"
