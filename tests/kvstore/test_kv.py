"""Key-value store over the log-structured value log."""

import pytest

from repro.kvstore import KVError, LogStructuredKVStore
from repro.store import StoreConfig


def make_kv(policy="mdc", **overrides):
    cfg = dict(
        n_segments=64, segment_units=32, fill_factor=0.5,
        clean_trigger=2, clean_batch=4, sort_buffer_segments=1,
    )
    cfg.update(overrides)
    return LogStructuredKVStore(StoreConfig(**cfg), policy=policy, unit_bytes=16)


class TestCrud:
    def test_put_get(self):
        kv = make_kv()
        kv.put("a", b"hello")
        assert kv.get("a") == b"hello"
        assert "a" in kv
        assert len(kv) == 1

    def test_get_missing_returns_default(self):
        kv = make_kv()
        assert kv.get("nope") is None
        assert kv.get("nope", b"d") == b"d"

    def test_overwrite_replaces(self):
        kv = make_kv()
        kv.put("a", b"one")
        kv.put("a", b"two")
        assert kv.get("a") == b"two"
        assert len(kv) == 1
        kv.check_consistency()

    def test_delete(self):
        kv = make_kv()
        kv.put("a", b"x")
        assert kv.delete("a")
        assert "a" not in kv
        assert not kv.delete("a")
        kv.check_consistency()

    def test_delete_frees_space(self):
        kv = make_kv()
        kv.put("a", b"x" * 160)  # 10 units
        kv.store.flush()  # push past the sort buffer onto the device
        live_before = sum(kv.store.segments.live_units)
        kv.delete("a")
        assert sum(kv.store.segments.live_units) == live_before - 10

    def test_delete_of_buffered_record(self):
        kv = make_kv()
        kv.put("a", b"x" * 160)
        assert kv.delete("a")  # still in the sort buffer: a buffer TRIM
        assert kv.store.buffer.used_units == 0
        kv.check_consistency()

    def test_slot_reuse_after_delete(self):
        kv = make_kv()
        kv.put("a", b"x")
        slot = kv._slot_of["a"]
        kv.delete("a")
        kv.put("b", b"y")
        assert kv._slot_of["b"] == slot

    def test_keys_and_items(self):
        kv = make_kv()
        kv.put("a", b"1")
        kv.put("b", b"2")
        assert sorted(kv.keys()) == ["a", "b"]
        assert dict(kv.items()) == {"a": b"1", "b": b"2"}


class TestSizing:
    def test_values_round_up_to_units(self):
        kv = make_kv()
        kv.put("a", b"x")  # 1 unit despite 1 byte
        kv.put("b", b"y" * 17)  # 2 units of 16 bytes
        assert kv.store.pages.size[kv._slot_of["a"]] == 1
        assert kv.store.pages.size[kv._slot_of["b"]] == 2

    def test_oversized_value_rejected(self):
        kv = make_kv()
        with pytest.raises(KVError):
            kv.put("big", b"z" * (kv.max_value_bytes + 1))

    def test_non_bytes_rejected(self):
        kv = make_kv()
        with pytest.raises(KVError):
            kv.put("a", "not-bytes")

    def test_unit_bytes_validated(self):
        with pytest.raises(KVError):
            LogStructuredKVStore(StoreConfig(), unit_bytes=0)


class TestGcUnderChurn:
    def test_sustained_churn_is_consistent(self):
        kv = make_kv()
        import random
        rng = random.Random(9)
        keys = ["k%03d" % i for i in range(300)]
        for step in range(6000):
            key = rng.choice(keys)
            if key in kv and rng.random() < 0.1:
                kv.delete(key)
            else:
                kv.put(key, bytes(rng.randint(1, 100)))
        assert kv.store.stats.clean_cycles > 0
        kv.check_consistency()

    def test_mdc_cleans_value_log_cheaper_than_greedy(self):
        import random
        wamps = {}
        for policy in ("greedy", "mdc"):
            kv = make_kv(policy=policy, fill_factor=0.75, n_segments=128)
            rng = random.Random(5)
            hot = ["h%02d" % i for i in range(60)]
            cold = ["c%03d" % i for i in range(1500)]
            for key in cold + hot:
                kv.put(key, b"v" * rng.randint(8, 48))
            for _ in range(40_000):
                pool = hot if rng.random() < 0.9 else cold
                kv.put(rng.choice(pool), b"v" * rng.randint(8, 48))
            wamps[policy] = kv.write_amplification
        assert wamps["mdc"] < wamps["greedy"]

    def test_space_report(self):
        kv = make_kv()
        kv.put("a", b"x" * 32)
        report = kv.space_report()
        assert report["keys"] == 1
        assert report["live_bytes"] == 32
        assert 0 < report["utilization"] < 1
        assert "util" in repr(kv)
