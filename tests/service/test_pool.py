"""Store pool: per-shard isolation and budgeted cleaning governance."""

import pytest

from repro.obs import MetricsRegistry
from repro.policies import make_policy
from repro.service import StorePool
from repro.store import StoreConfig


def pool_config(**overrides):
    cfg = dict(
        n_segments=24, segment_units=16, fill_factor=0.5,
        clean_trigger=2, clean_batch=2,
    )
    cfg.update(overrides)
    return StoreConfig(**cfg)


def fill_shard(pool, shard, keys=50, size=24, rounds=1):
    """Load then churn one shard so its free pool shrinks."""
    for r in range(rounds):
        pool[shard].put_many(
            [("s%d-k%d" % (shard, k), bytes(size)) for k in range(keys)]
        )


class TestShape:
    def test_policy_instance_rejected(self):
        with pytest.raises(TypeError):
            StorePool(2, pool_config(), policy=make_policy("greedy"))

    def test_shards_are_independent(self):
        pool = StorePool(2, pool_config(), policy="greedy", unit_bytes=8)
        pool[0].put("a", b"x")
        assert len(pool[0]) == 1 and len(pool[1]) == 0
        assert pool[0].store is not pool[1].store
        assert pool[0].store.policy is not pool[1].store.policy

    def test_add_shard(self):
        pool = StorePool(1, pool_config(), policy="greedy")
        shard = pool.add_shard()
        assert pool.n_shards == 2
        assert pool[1] is shard and len(shard) == 0

    def test_bad_params_raise(self):
        with pytest.raises(ValueError):
            StorePool(0, pool_config())
        with pytest.raises(ValueError):
            StorePool(1, pool_config(), gc_max_share=0.0)
        with pytest.raises(ValueError):
            StorePool(1, pool_config(), gc_budget=0)


class TestGovernance:
    def test_maintain_noop_when_all_shards_healthy(self):
        pool = StorePool(2, pool_config(), policy="greedy", unit_bytes=8)
        assert pool.maintain() == 0

    def test_maintain_tops_up_a_needy_shard(self):
        pool = StorePool(
            2, pool_config(), policy="greedy", unit_bytes=8,
            free_target=6, gc_budget=10_000,
        )
        fill_shard(pool, 0, keys=50, size=24, rounds=6)
        free_before = pool[0].store.free_segment_count
        if free_before >= 6:
            pytest.skip("churn did not push shard below free_target")
        pool.maintain()
        assert pool[0].store.free_segment_count >= min(
            6, free_before + 1
        )
        # The healthy shard was never touched.
        assert pool[1].store.stats.gc_writes == 0

    def test_budget_caps_one_round(self):
        metrics = MetricsRegistry()
        pool = StorePool(
            1, pool_config(), policy="greedy", unit_bytes=8,
            free_target=12, gc_budget=4, metrics=metrics,
        )
        fill_shard(pool, 0, keys=50, size=24, rounds=6)
        if pool[0].store.free_segment_count >= 12:
            pytest.skip("churn did not push shard below free_target")
        spent = pool.maintain()
        # One cleaning cycle may overshoot the threshold check, but the
        # round never starts a new cycle past the budget.
        assert spent <= 4 + pool.config.clean_batch * pool.config.segment_units
        counters = metrics.snapshot().counters
        assert counters.get("gc_governed_pages", 0) == spent

    def test_share_cap_leaves_budget_for_other_shards(self):
        metrics = MetricsRegistry()
        pool = StorePool(
            2, pool_config(), policy="greedy", unit_bytes=8,
            free_target=8, gc_budget=10_000, gc_max_share=0.001,
            metrics=metrics,
        )
        fill_shard(pool, 0, keys=50, size=24, rounds=6)
        fill_shard(pool, 1, keys=50, size=24, rounds=6)
        pool.maintain()
        counters = metrics.snapshot().counters
        # share cap of max(1, ...) = 1 page: each shard stops after one
        # cycle, so both shards got a turn and the round reports capped.
        if counters.get("gc_governed_pages", 0):
            assert counters.get("gc_budget_capped_rounds", 0) >= 0
            gc = [kv.store.stats.gc_writes for kv in pool.shards]
            assert all(g >= 0 for g in gc)

    def test_repeated_maintain_reaches_target(self):
        pool = StorePool(
            1, pool_config(), policy="greedy", unit_bytes=8,
            free_target=5, gc_budget=8,
        )
        fill_shard(pool, 0, keys=50, size=24, rounds=6)
        for _ in range(200):
            if pool[0].store.free_segment_count >= 5:
                break
            if pool.maintain() == 0:
                break
        assert pool[0].store.free_segment_count >= 5
        pool.check_consistency()


class TestAggregates:
    def test_summary_and_wamp_spread(self):
        pool = StorePool(2, pool_config(), policy="greedy", unit_bytes=8)
        fill_shard(pool, 0, keys=50, size=24, rounds=8)
        pool[1].put("only", b"x")
        summary = pool.stats_summary()
        assert summary["shards"] == 2.0
        assert summary["keys"] == float(len(pool[0]) + 1)
        assert summary["user_writes"] > 0
        wamps = pool.wamp_per_shard()
        assert len(wamps) == 2
        assert summary["wamp_spread"] == pytest.approx(
            max(wamps) - min(wamps)
        )
        assert len(pool.free_segments()) == 2
