"""Harness determinism, the op-trace roundtrip, and the serial baseline."""

import dataclasses

import pytest

from repro.service import (
    HarnessConfig,
    ops_stream,
    read_ops_jsonl,
    replay_ops,
    run_harness,
    run_serial_baseline,
    shard_config,
    write_ops_jsonl,
)

QUICK = dict(ops=3000, keys_per_tenant=192, tick_every=128, sample_interval=512)


def quick_cfg(**overrides):
    base = dict(QUICK)
    base.update(overrides)
    return HarnessConfig.quick(**base)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            HarnessConfig(dist="nope")
        with pytest.raises(ValueError):
            HarnessConfig(n_tenants=10, n_clients=4)
        with pytest.raises(ValueError):
            HarnessConfig(delete_frac=1.0)
        with pytest.raises(ValueError):
            HarnessConfig(ops=0)

    def test_shard_config_has_cleaning_headroom(self):
        cfg = quick_cfg()
        sc = shard_config(cfg)
        assert sc.n_segments >= 12
        assert sc.fill_factor == cfg.target_fill
        # Sized down when spread over more shards.
        assert shard_config(cfg, n_shards=1).n_segments > sc.n_segments


class TestOpsStream:
    def test_deterministic_and_sized(self):
        cfg = quick_cfg()
        a = list(ops_stream(cfg))
        b = list(ops_stream(cfg))
        assert a == b
        assert len(a) == cfg.ops

    def test_seed_changes_stream(self):
        assert list(ops_stream(quick_cfg(seed=0))) != list(
            ops_stream(quick_cfg(seed=1))
        )

    def test_ops_shape(self):
        cfg = quick_cfg()
        tenants = {"t%d" % i for i in range(cfg.n_tenants)}
        deletes = 0
        for op, tenant, key, size in ops_stream(cfg):
            assert tenant in tenants
            assert 0 <= key < cfg.keys_per_tenant
            if op == "delete":
                deletes += 1
                assert size == 0
            else:
                assert op == "put"
                assert 1 <= size <= cfg.value_bytes
        assert 0 < deletes < cfg.ops * 0.12

    @pytest.mark.parametrize("dist", ["uniform", "zipf-90-10", "hotcold"])
    def test_all_dists_generate(self, dist):
        cfg = quick_cfg(dist=dist, ops=500)
        assert len(list(ops_stream(cfg))) == 500


class TestDeterminism:
    def test_same_seed_byte_identical_metrics(self, tmp_path):
        cfg = quick_cfg()
        p1, p2 = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        r1 = run_harness(cfg, metrics_out=str(p1))
        r2 = run_harness(cfg, metrics_out=str(p2))
        assert p1.read_bytes() == p2.read_bytes()
        d1, d2 = r1.to_dict(), r2.to_dict()
        # Everything but wall clock is reproducible.
        for volatile in ("elapsed_s", "writes_per_sec"):
            d1.pop(volatile), d2.pop(volatile)
        assert d1 == d2

    def test_replay_matches_generated_run(self, tmp_path):
        cfg = quick_cfg()
        trace = tmp_path / "ops.jsonl"
        n = write_ops_jsonl(cfg, str(trace))
        assert n == cfg.ops
        read_cfg, ops = read_ops_jsonl(str(trace))
        assert read_cfg == cfg
        assert ops == list(ops_stream(cfg))
        p1, p2 = tmp_path / "live.jsonl", tmp_path / "replay.jsonl"
        run_harness(cfg, metrics_out=str(p1))
        replay_ops(read_cfg, ops, metrics_out=str(p2))
        assert p1.read_bytes() == p2.read_bytes()

    def test_read_ops_without_header(self, tmp_path):
        trace = tmp_path / "bare.jsonl"
        trace.write_text(
            '{"op": "put", "tenant": "t0", "key": 3, "size": 8}\n'
            '{"op": "delete", "tenant": "t0", "key": 3, "size": 0}\n'
        )
        cfg, ops = read_ops_jsonl(str(trace))
        assert cfg is None
        assert ops == [("put", "t0", 3, 8), ("delete", "t0", 3, 0)]


class TestResults:
    def test_harness_result_accounting(self):
        cfg = quick_cfg()
        result = run_harness(cfg)
        assert result.ops == cfg.ops == result.puts + result.deletes
        assert result.shards == cfg.n_shards
        assert len(result.wamp_per_shard) == cfg.n_shards
        assert sum(result.ops_per_shard) == cfg.ops
        assert result.batches_flushed > 0
        assert result.keys_live > 0
        assert result.writes_per_sec > 0
        assert "writes/sec" in result.report()

    def test_serial_baseline_runs_unbatched(self):
        cfg = quick_cfg()
        result = run_serial_baseline(cfg)
        assert result.shards == 1
        assert result.ops == cfg.ops
        assert result.batches_flushed == 0
        assert result.queue_depth_p95 == 0
        assert result.keys_live > 0

    def test_result_dict_roundtrip(self):
        result = run_harness(quick_cfg(ops=800))
        d = result.to_dict()
        assert d["label"].startswith("service[")
        assert set(d) == set(dataclasses.asdict(result))
