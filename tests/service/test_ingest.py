"""Ingest queue: flush triggers, coalescing, backpressure, metrics."""

import pytest

from repro.kvstore import LogStructuredKVStore
from repro.obs import MetricsRegistry
from repro.service import IngestQueue
from repro.store import StoreConfig


def make_shards(n=2):
    cfg = StoreConfig(
        n_segments=32, segment_units=16, fill_factor=0.5,
        clean_trigger=2, clean_batch=2,
    )
    return [LogStructuredKVStore(cfg, policy="greedy", unit_bytes=8) for _ in range(n)]


class TestFlushTriggers:
    def test_flush_on_size(self):
        shards = make_shards()
        q = IngestQueue(shards, batch_size=4, flush_interval=100)
        for i in range(3):
            q.put(0, "k%d" % i, b"v")
        assert len(shards[0]) == 0 and q.depth == 3
        q.put(0, "k3", b"v")  # hits batch_size
        assert len(shards[0]) == 4 and q.depth == 0

    def test_flush_on_tick_ages_oldest_op(self):
        shards = make_shards()
        q = IngestQueue(shards, batch_size=100, flush_interval=2)
        q.put(0, "a", b"v")
        assert q.tick() == 0  # age 1: still young
        assert len(shards[0]) == 0
        assert q.tick() == 1  # age 2: flushed
        assert len(shards[0]) == 1

    def test_tick_only_flushes_aged_shards(self):
        shards = make_shards()
        q = IngestQueue(shards, batch_size=100, flush_interval=2)
        q.put(0, "old", b"v")
        q.tick()
        q.put(1, "young", b"v")
        q.tick()
        assert len(shards[0]) == 1  # aged out
        assert len(shards[1]) == 0  # still pending
        assert q.depth == 1

    def test_flush_all_drains_everything(self):
        shards = make_shards()
        q = IngestQueue(shards, batch_size=100, flush_interval=100)
        for i in range(5):
            q.put(i % 2, "k%d" % i, b"v")
        assert q.flush_all() == 5
        assert q.depth == 0
        assert len(shards[0]) + len(shards[1]) == 5


class TestCoalescing:
    def test_last_write_wins_within_batch(self):
        shards = make_shards(1)
        q = IngestQueue(shards, batch_size=100)
        q.put(0, "k", b"one")
        q.put(0, "k", b"two")
        q.put(0, "k", b"three")
        q.flush_all()
        assert shards[0].get("k") == b"three"
        # Coalescing means the store saw ONE user write for the key.
        assert shards[0].store.stats.user_writes == 1

    def test_put_then_delete_coalesces_to_nothing(self):
        shards = make_shards(1)
        q = IngestQueue(shards, batch_size=100)
        q.put(0, "k", b"v")
        q.delete(0, "k")
        q.flush_all()
        assert "k" not in shards[0]
        assert shards[0].store.stats.user_writes == 0

    def test_delete_then_put_survives(self):
        shards = make_shards(1)
        shards[0].put("k", b"old")
        q = IngestQueue(shards, batch_size=100)
        q.delete(0, "k")
        q.put(0, "k", b"new")
        q.flush_all()
        assert shards[0].get("k") == b"new"

    def test_coalesced_counter(self):
        shards = make_shards(1)
        metrics = MetricsRegistry()
        q = IngestQueue(shards, batch_size=100, metrics=metrics)
        for _ in range(5):
            q.put(0, "hot", b"v")
        q.put(0, "cold", b"v")
        q.flush_all()
        snap = metrics.snapshot()
        assert snap.counters["ops_flushed"] == 6
        assert snap.counters["ops_coalesced"] == 4
        assert snap.counters["batches_flushed"] == 1


class TestBackpressure:
    def test_max_depth_flushes_deepest_shard(self):
        shards = make_shards(2)
        metrics = MetricsRegistry()
        q = IngestQueue(
            shards, batch_size=6, flush_interval=100, max_depth=6,
            metrics=metrics,
        )
        q.put(1, "other", b"v")
        for i in range(5):
            q.put(0, "k%d" % i, b"v")
        # Depth hit 6: shard 0 (deepest) was flushed synchronously.
        assert len(shards[0]) == 5
        assert q.depth == 1  # shard 1's op still queued
        assert metrics.snapshot().counters["backpressure_flushes"] == 1

    def test_read_your_writes_pending_value(self):
        shards = make_shards(1)
        q = IngestQueue(shards, batch_size=100)
        assert q.pending_value(0, "k") is None
        q.put(0, "k", b"v1")
        q.put(0, "k", b"v2")
        tag, _key, value = q.pending_value(0, "k")
        assert value == b"v2"
        q.delete(0, "k")
        tag, _key, value = q.pending_value(0, "k")
        assert value is None  # latest op is the delete


class TestShapeAndValidation:
    def test_add_shard_tracks_new_pending_list(self):
        shards = make_shards(1)
        q = IngestQueue(shards, batch_size=100)
        q.add_shard(make_shards(1)[0])
        q.put(1, "k", b"v")
        assert q.flush_all() == 1

    def test_bad_params_raise(self):
        shards = make_shards(1)
        with pytest.raises(ValueError):
            IngestQueue(shards, batch_size=0)
        with pytest.raises(ValueError):
            IngestQueue(shards, flush_interval=0)
        with pytest.raises(ValueError):
            IngestQueue(shards, batch_size=8, max_depth=4)

    def test_depth_samples_record_tick_depths(self):
        shards = make_shards(1)
        q = IngestQueue(shards, batch_size=100, flush_interval=100)
        q.put(0, "a", b"v")
        q.tick()
        q.put(0, "b", b"v")
        q.tick()
        assert q.depth_samples == [1, 2]
