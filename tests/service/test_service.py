"""Service front-end: client semantics, elasticity, observability."""

import numpy as np
import pytest

from repro.obs.export import validate_rows
from repro.service import Service
from repro.store import StoreConfig


def make_service(n_shards=2, **overrides):
    kwargs = dict(
        policy="greedy", unit_bytes=8, batch_size=16, flush_interval=2,
        max_depth=256, seed=0,
    )
    kwargs.update(overrides)
    kwargs["max_depth"] = max(kwargs["max_depth"], kwargs["batch_size"])
    return Service(
        n_shards,
        StoreConfig(
            n_segments=48, segment_units=16, fill_factor=0.5,
            clean_trigger=2, clean_batch=2,
        ),
        **kwargs,
    )


class TestClientSemantics:
    def test_read_your_writes_before_flush(self):
        svc = make_service(batch_size=1000, flush_interval=1000)
        svc.put("k", b"v", tenant="t0")
        assert svc.get("k", tenant="t0") == b"v"  # still queued
        svc.delete("k", tenant="t0")
        assert svc.get("k", tenant="t0") is None
        assert svc.get("k", tenant="t0", default=b"d") == b"d"

    def test_tenants_are_namespaced(self):
        svc = make_service()
        svc.put("k", b"alpha", tenant="a")
        svc.put("k", b"beta", tenant="b")
        svc.put("k", b"none")  # no tenant
        svc.flush()
        assert svc.get("k", tenant="a") == b"alpha"
        assert svc.get("k", tenant="b") == b"beta"
        assert svc.get("k") == b"none"

    def test_against_dict_model(self):
        svc = make_service()
        model = {}
        rng = np.random.default_rng(3)
        tenants = ["t0", "t1", "t2"]
        for step in range(3000):
            tenant = tenants[int(rng.integers(0, len(tenants)))]
            key = "k%d" % rng.integers(0, 80)
            if rng.random() < 0.15:
                svc.delete(key, tenant=tenant)
                model.pop((tenant, key), None)
            else:
                value = bytes(int(rng.integers(1, 40)))
                svc.put(key, value, tenant=tenant)
                model[(tenant, key)] = value
            if step % 100 == 0:
                svc.tick()
        svc.flush()
        for (tenant, key), value in model.items():
            assert svc.get(key, tenant=tenant) == value
        assert len(svc) == len(model)
        svc.pool.check_consistency()

    def test_routing_is_stable_per_key(self):
        svc = make_service(4)
        for i in range(50):
            key = "k%d" % i
            assert svc.shard_of(key, "t") == svc.shard_of(key, "t")
            assert svc.put(key, b"v", tenant="t") == svc.shard_of(key, "t")


class TestTickAndFlush:
    def test_tick_flushes_aged_ops_and_samples(self):
        svc = make_service(batch_size=1000, flush_interval=2)
        svc.put("k", b"v")
        svc.tick()
        assert svc.queue.depth == 1
        svc.tick()
        assert svc.queue.depth == 0
        assert svc.pool[svc.shard_of("k")].get((None, "k")) == b"v"

    def test_queue_depth_p95(self):
        svc = make_service(batch_size=1000, flush_interval=1000)
        assert svc.queue_depth_p95() == 0
        for i in range(10):
            svc.put("k%d" % i, b"v")
            svc.tick()
        assert svc.queue_depth_p95() >= 1


class TestElasticity:
    def test_scale_to_migrates_only_to_new_shards(self):
        svc = make_service(2, batch_size=64)
        model = {}
        for i in range(300):
            tenant = "t%d" % (i % 3)
            value = b"v%d" % i
            svc.put("k%d" % i, value, tenant=tenant)
            model[(tenant, "k%d" % i)] = value
        svc.flush()
        before = {
            (tenant, key): svc.shard_of(key, tenant)
            for (tenant, key) in model
        }
        moved = svc.scale_to(4)
        changed = 0
        for (tenant, key), value in model.items():
            after = svc.shard_of(key, tenant)
            if after != before[(tenant, key)]:
                assert after >= 2  # only onto the new shards
                changed += 1
            assert svc.get(key, tenant=tenant) == value
        assert moved == changed > 0
        # Old shards hold nothing that routes elsewhere now.
        for src in range(2):
            for skey in svc.pool[src].keys():
                tenant, key = skey
                assert svc.shard_of(key, tenant) == src
        svc.pool.check_consistency()
        counters = svc.metrics.snapshot().counters
        assert counters["rebalances"] == 1
        assert counters["keys_migrated"] == moved

    def test_scale_to_same_size_is_noop(self):
        svc = make_service(2)
        assert svc.scale_to(2) == 0

    def test_shrink_raises(self):
        svc = make_service(4)
        with pytest.raises(ValueError):
            svc.scale_to(2)

    def test_writes_after_growth_route_with_new_ring(self):
        svc = make_service(1)
        svc.put("a", b"1", tenant="t")
        svc.flush()
        svc.scale_to(3)
        svc.put("b", b"2", tenant="t")
        svc.flush()
        assert svc.get("a", tenant="t") == b"1"
        assert svc.get("b", tenant="t") == b"2"


class TestObservability:
    def test_rows_pass_schema_validation(self):
        svc = make_service(2, sample_interval=64)
        for i in range(500):
            svc.put("k%d" % (i % 60), bytes(20), tenant="t0")
            if i % 50 == 0:
                svc.tick()
        svc.flush()
        rows = list(svc.rows({"label": "unit-test"}))
        assert validate_rows(rows) == []
        metas = [r for r in rows if r["type"] == "meta"]
        # One service block plus one block per shard.
        assert len(metas) == 3
        assert metas[0]["run"]["component"] == "service"
        assert metas[1]["run"]["component"] == "shard"
        assert metas[0]["run"]["label"] == "unit-test"

    def test_export_rows_writes_file(self, tmp_path):
        svc = make_service(2)
        svc.put("k", b"v")
        svc.flush()
        path = tmp_path / "metrics.jsonl"
        n = svc.export_rows(str(path))
        assert n > 0 and path.exists()

    def test_service_metrics_track_ops(self):
        svc = make_service(2)
        svc.put("a", b"1")
        svc.put("b", b"2")
        svc.delete("a")
        svc.get("b")
        svc.flush()
        counters = svc.metrics.snapshot().counters
        assert counters["puts"] == 2
        assert counters["deletes"] == 1
        assert counters["gets"] == 1
        assert counters["ops_flushed"] == 3

    def test_close_detaches_observers(self):
        svc = make_service(2)
        svc.put("k", b"v")
        svc.close()
        for kv in svc.pool.shards:
            assert kv.store.obs is None
        assert svc.get("k") == b"v"  # flushed by close
