"""Tail-latency contrast and step-granular cleaning governance.

The headline assertion of the PR rides here: on the same seeded client
load, at the same global GC budget, the incremental cleaner's p99
foreground flush stall must come in *strictly below* batch mode's —
measured through the service's own ``flush_stall_pages`` histogram, the
same signal ``repro bench latency`` gates on.
"""

import pytest

from repro.obs import PAGES_EDGES, MetricsRegistry
from repro.service.latency import (
    check_latency_regression,
    check_latency_report,
    latency_history_entry,
    render_latency_report,
    run_latency_bench,
)
from repro.service.pool import CLEANER_MODES, StorePool
from repro.service.service import Service
from repro.store import StoreConfig

CFG = StoreConfig(
    n_segments=32,
    segment_units=8,
    fill_factor=0.65,
    clean_trigger=2,
    clean_batch=2,
)


def fill_shard(kv, n_keys, rounds=3, seed=0):
    """Seed ``n_keys`` records, then overwrite random subsets so sealed
    segments end up with *mixed* liveness — victims that actually have
    pages to relocate (sequential refills leave only fully-dead
    segments, which clean for free)."""
    import numpy as np

    rng = np.random.default_rng(seed)
    kv.put_many([(("k", i), b"\0" * 8) for i in range(n_keys)])
    for r in range(rounds):
        picks = rng.integers(0, n_keys, size=n_keys)
        kv.put_many(
            [(("k", int(i)), bytes([r % 255 + 1]) * 8) for i in picks]
        )


class TestIncrementalGovernance:
    def test_mode_validated(self):
        assert "incremental" in CLEANER_MODES
        with pytest.raises(ValueError):
            StorePool(1, CFG, policy="greedy", cleaner="nope")

    def test_batch_mode_has_no_cleaners(self):
        pool = StorePool(1, CFG, policy="greedy", cleaner="batch")
        assert pool.cleaners is None

    def test_incremental_pool_builds_per_shard_cleaners(self):
        pool = StorePool(3, CFG, policy="greedy", cleaner="incremental")
        assert pool.cleaners is not None and len(pool.cleaners) == 3
        shard = pool.add_shard()
        assert len(pool.cleaners) == 4
        assert pool.cleaners[-1].store is shard.store

    def test_idle_round_restores_free_target(self):
        metrics = MetricsRegistry()
        pool = StorePool(
            2, CFG, policy="greedy", cleaner="incremental",
            pages_per_step=4, free_target=4, gc_budget=256,
            metrics=metrics,
        )
        for kv in pool.shards:
            fill_shard(kv, 120)
        assert any(
            kv.store.free_segment_count < 4 for kv in pool.shards
        )
        guard = 0
        while any(c.needs_cleaning() for c in pool.cleaners) and guard < 200:
            pool.maintain(idle=True)
            guard += 1
        assert all(
            kv.store.free_segment_count >= 4 for kv in pool.shards
        )
        counters = metrics.snapshot().counters
        assert counters.get("gc_governed_steps", 0) > 0
        assert counters.get("gc_governed_pages", 0) > 0
        pool.check_consistency()

    def test_loaded_round_defers_non_urgent_shards(self):
        metrics = MetricsRegistry()
        pool = StorePool(
            1, CFG, policy="greedy", cleaner="incremental",
            pages_per_step=4, free_target=8, gc_budget=256,
            metrics=metrics,
        )
        kv = pool.shards[0]
        fill_shard(kv, 120)
        # Put the shard between trigger and free_target: needy but not
        # urgent.
        cleaner = pool.cleaners[0]
        guard = 0
        while cleaner.behind() and guard < 200:
            cleaner.step()
            guard += 1
        assert cleaner.needs_cleaning()
        moved = pool.maintain()  # loaded round: must defer
        assert moved == 0
        counters = metrics.snapshot().counters
        assert counters.get("gc_deferred_shards", 0) >= 1
        # The idle round then does the deferred work.
        assert pool.maintain(idle=True) > 0

    def test_step_bounded_by_pages_per_step_when_loaded(self):
        pool = StorePool(
            1, CFG, policy="greedy", cleaner="incremental",
            pages_per_step=2, free_target=6, gc_budget=256,
        )
        fill_shard(pool.shards[0], 120)
        store = pool.shards[0].store
        if not pool.cleaners[0].behind():
            # Drive the shard below the reactive trigger so the loaded
            # round has urgent work.
            while (
                store.free_segment_count >= store.config.clean_trigger
                and len(pool.shards[0]) > 0
            ):
                fill_shard(pool.shards[0], 40, rounds=1)
                if pool.cleaners[0].behind():
                    break
        if not pool.cleaners[0].behind():
            pytest.skip("could not drive the shard below trigger")
        moved = pool.maintain()
        assert 0 < moved <= 2

    def test_stats_summary_reports_pending(self):
        pool = StorePool(1, CFG, policy="greedy", cleaner="incremental")
        assert "cleaner_pending" in pool.stats_summary()
        batch_pool = StorePool(1, CFG, policy="greedy", cleaner="batch")
        assert "cleaner_pending" not in batch_pool.stats_summary()


class TestServicePlumbing:
    def test_service_accepts_cleaner_mode(self):
        svc = Service(2, CFG, policy="greedy", cleaner="incremental",
                      pages_per_step=8)
        assert svc.pool.cleaners is not None
        for i in range(300):
            svc.put(("t", i % 60), b"x" * 8)
            if i % 32 == 31:
                svc.tick()
        svc.flush()
        svc.tick()
        svc.pool.check_consistency()
        svc.close()

    def test_flush_stall_histogram_populated(self):
        svc = Service(1, CFG, policy="greedy", batch_size=16)
        for i in range(400):
            svc.put(("t", i % 60), b"x" * 8)
        svc.flush()
        hist = svc.metrics.histogram("flush_stall_pages", PAGES_EDGES)
        assert hist.count > 0  # stall-free flushes observe 0 too
        svc.close()


@pytest.fixture(scope="module")
def latency_report():
    """One seeded contrast run shared by the assertions below (the
    expensive part; ~16k ops per mode)."""
    return run_latency_bench(quick=True, seed=0, ops=16000)


class TestLatencyContrast:
    def test_incremental_p99_strictly_lower(self, latency_report):
        batch = latency_report["modes"]["batch"]
        incr = latency_report["modes"]["incremental"]
        assert batch["flush_stall_p99_pages"] > 0
        assert (
            incr["flush_stall_p99_pages"] < batch["flush_stall_p99_pages"]
        )

    def test_equal_budget_wamp(self, latency_report):
        """The stall win must not be bought with extra GC writes."""
        batch = latency_report["modes"]["batch"]
        incr = latency_report["modes"]["incremental"]
        assert incr["wamp_aggregate"] <= batch["wamp_aggregate"] * 1.25

    def test_report_passes_its_own_gate(self, latency_report):
        assert check_latency_report(latency_report) == []

    def test_render_mentions_both_modes(self, latency_report):
        text = render_latency_report(latency_report)
        assert "batch" in text and "incremental" in text
        assert "p99 stall ratio" in text

    def test_history_entry_shape(self, latency_report):
        entry = latency_history_entry(latency_report, sha="abc123")
        assert entry["sha"] == "abc123"
        assert entry["benchmark"] == "latency"
        assert set(entry["modes"]) == {"batch", "incremental"}

    def test_regression_check_catches_ratio_drift(self, latency_report):
        baseline = dict(latency_report, stall_p99_ratio=0.0)
        drifted = dict(latency_report, stall_p99_ratio=0.4)
        assert check_latency_regression(drifted, baseline, margin=0.25)
        assert (
            check_latency_regression(latency_report, baseline, margin=0.25)
            == []
        )


class TestGateLogic:
    def _report(self, batch_p99, incr_p99, batch_wamp=1.0, incr_wamp=1.0):
        return {
            "gate_ratio": 0.5,
            "wamp_slack": 0.25,
            "stall_p99_ratio": (
                incr_p99 / batch_p99 if batch_p99 else 0.0
            ),
            "modes": {
                "batch": {
                    "flush_stall_p99_pages": batch_p99,
                    "wamp_aggregate": batch_wamp,
                },
                "incremental": {
                    "flush_stall_p99_pages": incr_p99,
                    "wamp_aggregate": incr_wamp,
                },
            },
        }

    def test_flat_batch_run_is_a_problem(self):
        assert check_latency_report(self._report(0.0, 0.0))

    def test_ratio_above_gate_is_a_problem(self):
        assert check_latency_report(self._report(10.0, 6.0))

    def test_wamp_overrun_is_a_problem(self):
        assert check_latency_report(
            self._report(10.0, 1.0, batch_wamp=1.0, incr_wamp=1.5)
        )

    def test_good_report_is_clean(self):
        assert check_latency_report(self._report(10.0, 1.0)) == []
