"""The trace plane end to end: span chains through the real service,
telemetry rows, SLO wiring, determinism with tracing attached."""

import json

import pytest

from repro.obs import SLOTracker, Tracer, critical_path_report, load_rows, validate_rows
from repro.obs.trace import load_spans
from repro.service.harness import HarnessConfig, build_service, run_harness

#: Small but real: enough ops over a small page budget that flushes,
#: governance, and cleaning all fire.
CFG = HarnessConfig.quick(
    ops=4_000, keys_per_tenant=512, tick_every=128, seed=3
)

#: High-pressure batch-cleaner shape: every flush can land a whole
#: cleaning cycle inline, so the stall tail is populated.
STALL_CFG = HarnessConfig.quick(
    ops=6_000,
    keys_per_tenant=512,
    tick_every=128,
    seed=3,
    target_fill=0.70,
    clean_trigger=2,
    clean_batch=8,
    batch_size=64,
    flush_interval=2,
    free_target=10,
    gc_budget=128,
).scaled(cleaner="batch")


class TestServiceSpans:
    @pytest.fixture(scope="class")
    def spans(self, tmp_path_factory):
        trace = tmp_path_factory.mktemp("trace") / "spans.jsonl"
        run_harness(CFG, trace_out=str(trace))
        return load_spans(str(trace)), str(trace)

    def test_span_file_validates_as_schema_v2(self, spans):
        rows, path = spans
        all_rows = load_rows(path)
        assert validate_rows(all_rows) == []
        assert all_rows[0]["schema"] == 2
        assert all_rows[0]["run"]["component"] == "trace"

    def test_expected_span_kinds_present(self, spans):
        rows, _ = spans
        names = {r["name"] for r in rows}
        assert "service.put" in names
        assert "router.route" in names
        assert "queue.flush" in names
        assert "shard.put_many" in names
        assert "pool.maintain" in names
        assert "service.tick" in names

    def test_flush_parents_put_many(self, spans):
        rows, _ = spans
        by_id = {r["span"]: r for r in rows}
        put_manys = [r for r in rows if r["name"] == "shard.put_many"]
        assert put_manys
        for row in put_manys:
            assert by_id[row["parent"]]["name"] == "queue.flush"

    def test_flush_spans_carry_queue_attrs(self, spans):
        rows, _ = spans
        flush = next(r for r in rows if r["name"] == "queue.flush")
        attrs = flush["attrs"]
        assert {"shard", "ops", "queue_wait_ticks", "stall_pages",
                "coalesced"} <= set(attrs)

    def test_route_spans_only_on_memo_misses(self, spans):
        rows, _ = spans
        routes = [r for r in rows if r["name"] == "router.route"]
        puts = [r for r in rows if r["name"] == "service.put"]
        # Memoization: far fewer route lookups than puts.
        assert 0 < len(routes) < len(puts)


class TestDeterminismWithTracing:
    def test_metrics_bytes_unchanged_by_tracer(self, tmp_path):
        plain = tmp_path / "plain.jsonl"
        traced = tmp_path / "traced.jsonl"
        run_harness(CFG, metrics_out=str(plain))
        run_harness(
            CFG, metrics_out=str(traced),
            trace_out=str(tmp_path / "spans.jsonl"),
        )
        assert plain.read_bytes() == traced.read_bytes()

    def test_span_identity_deterministic_across_runs(self, tmp_path):
        def identity(path):
            run_harness(CFG, trace_out=str(path))
            return [
                (r["trace"], r["span"], r["parent"], r["name"], r.get("clock"))
                for r in load_spans(str(path))
            ]

        assert identity(tmp_path / "a.jsonl") == identity(tmp_path / "b.jsonl")

    def test_sample_zero_keeps_header_only(self, tmp_path):
        trace = tmp_path / "spans.jsonl"
        run_harness(CFG, trace_out=str(trace), trace_sample=0.0)
        rows = load_rows(str(trace))
        assert rows[0]["type"] == "meta"
        assert load_spans(str(trace)) == []


class TestStallAttribution:
    def test_stall_spans_and_critical_path(self, tmp_path):
        trace = tmp_path / "spans.jsonl"
        run_harness(STALL_CFG, trace_out=str(trace))
        rows = load_spans(str(trace))
        names = {r["name"] for r in rows}
        # The batch shape must actually exercise cleaning under flushes.
        assert "store.clean_begin" in names or "store.write_stall" in names
        report = critical_path_report(rows)
        assert report["stalled_flushes"] > 0
        assert report["tail_samples"] > 0
        # The acceptance bar: >= 95% of tail samples attributed.
        assert report["attribution_fraction"] >= 0.95
        assert report["by_cause"]


class TestTelemetry:
    def test_telemetry_rows_written_and_validate(self, tmp_path):
        out = tmp_path / "telemetry.jsonl"
        run_harness(CFG, telemetry_out=str(out))
        rows = load_rows(str(out))
        assert validate_rows(rows) == []
        assert rows[0]["run"]["component"] == "telemetry"
        telem = [r for r in rows if r["type"] == "telemetry"]
        assert telem
        last = telem[-1]
        assert len(last["shards"]) == CFG.n_shards
        shard = last["shards"][0]
        assert {"shard", "wamp", "fill", "free_segments", "queue_depth",
                "write_stalls", "stall_p99_pages"} <= set(shard)
        assert last["slo"]["objective"] == 0.95

    def test_telemetry_slo_tracks_flush_stalls(self):
        service = build_service(STALL_CFG)
        try:
            assert isinstance(service.slo, SLOTracker)
            assert service.queue.on_stall == service.slo.record
        finally:
            service.close()


class TestAttachDetach:
    def test_attach_wires_every_layer_and_detach_unwires(self):
        service = build_service(CFG)
        try:
            tracer = Tracer(seed=1)
            assert service.attach_tracer(tracer) is tracer
            assert service.queue.tracer is tracer
            assert service.pool.tracer is tracer
            for observer in service.observers:
                assert observer.tracer is tracer
            service.attach_tracer(None)
            assert service.queue.tracer is None
            assert service.pool.tracer is None
            for observer in service.observers:
                assert observer.tracer is None
        finally:
            service.close()
