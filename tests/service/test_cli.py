"""The service CLI surface: serve, loadgen, bench service."""

import json

from repro.cli import main

QUICK = [
    "--quick", "--ops", "2500", "--keys-per-tenant", "192",
    "--tick-every", "128",
]


class TestServe:
    def test_serve_reports_and_exports(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.jsonl"
        history = tmp_path / "history.jsonl"
        code = main(
            ["serve", *QUICK, "--metrics-out", str(metrics),
             "--history", str(history)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "writes/sec" in out
        assert "Wamp" in out
        assert metrics.exists()
        entry = json.loads(history.read_text().strip())
        assert entry["benchmark"] == "service-serve"
        assert entry["shards"] == 4
        assert entry["writes_per_sec"] > 0

    def test_serve_metrics_validate(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.jsonl"
        assert main(
            ["serve", *QUICK, "--metrics-out", str(metrics), "--no-history"]
        ) == 0
        capsys.readouterr()
        assert main(["obs", "validate", str(metrics)]) == 0
        assert "schema valid" in capsys.readouterr().out

    def test_serve_deterministic_across_processes(self, tmp_path, capsys):
        m1, m2 = tmp_path / "m1.jsonl", tmp_path / "m2.jsonl"
        for path in (m1, m2):
            assert main(
                ["serve", *QUICK, "--seed", "5", "--metrics-out", str(path),
                 "--no-history"]
            ) == 0
        assert m1.read_bytes() == m2.read_bytes()


class TestLoadgenRoundtrip:
    def test_loadgen_then_serve_from(self, tmp_path, capsys):
        trace = tmp_path / "ops.jsonl"
        assert main(["loadgen", str(trace), *QUICK]) == 0
        out = capsys.readouterr().out
        assert "2500 ops" in out
        assert trace.exists()
        metrics = tmp_path / "metrics.jsonl"
        code = main(
            ["serve", "--from", str(trace), "--metrics-out", str(metrics),
             "--no-history"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "replayed 2500 ops" in out
        assert metrics.exists()

    def test_serve_from_matches_generated(self, tmp_path, capsys):
        trace = tmp_path / "ops.jsonl"
        assert main(["loadgen", str(trace), *QUICK, "--seed", "3"]) == 0
        live, replay = tmp_path / "live.jsonl", tmp_path / "replay.jsonl"
        assert main(
            ["serve", *QUICK, "--seed", "3", "--metrics-out", str(live),
             "--no-history"]
        ) == 0
        assert main(
            ["serve", "--from", str(trace), "--metrics-out", str(replay),
             "--no-history"]
        ) == 0
        assert live.read_bytes() == replay.read_bytes()

    def test_serve_from_missing_file_errors(self, tmp_path, capsys):
        assert main(
            ["serve", "--from", str(tmp_path / "nope.jsonl"), "--no-history"]
        ) == 1
        assert "serve error" in capsys.readouterr().err


class TestBenchService:
    def test_bench_service_writes_report_and_history(self, tmp_path, capsys):
        out = tmp_path / "BENCH_service.json"
        history = tmp_path / "history.jsonl"
        code = main(
            ["bench", "service", "--quick", "--ops", "2500",
             "--shards-list", "1,2", "--out", str(out),
             "--history", str(history)]
        )
        stdout = capsys.readouterr().out
        assert code == 0, stdout
        assert "serial 1 shard" in stdout
        report = json.loads(out.read_text())
        assert set(report["shards"]) == {"1", "2"}
        assert report["serial"]["writes_per_sec"] > 0
        entry = json.loads(history.read_text().strip())
        assert entry["benchmark"] == "service"

    def test_bad_shards_list_errors(self, tmp_path, capsys):
        assert main(
            ["bench", "service", "--shards-list", "a,b",
             "--out", str(tmp_path / "r.json")]
        ) == 1
        assert "shards-list" in capsys.readouterr().err
