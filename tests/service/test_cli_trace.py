"""The observability CLI surface added with the trace plane:
serve --trace-out/--telemetry-out, obs chrome/critical/tail --follow,
and repro top."""

import json

from repro.cli import main

QUICK = [
    "--quick", "--ops", "2500", "--keys-per-tenant", "192",
    "--tick-every", "128", "--no-history",
]


def _traced_run(tmp_path, capsys):
    spans = tmp_path / "spans.jsonl"
    telemetry = tmp_path / "telemetry.jsonl"
    assert main(
        ["serve", *QUICK, "--trace-out", str(spans),
         "--telemetry-out", str(telemetry)]
    ) == 0
    capsys.readouterr()
    return spans, telemetry


class TestServeTraceFlags:
    def test_serve_writes_both_files_and_reports(self, tmp_path, capsys):
        spans = tmp_path / "spans.jsonl"
        telemetry = tmp_path / "telemetry.jsonl"
        assert main(
            ["serve", *QUICK, "--trace-out", str(spans),
             "--telemetry-out", str(telemetry)]
        ) == 0
        out = capsys.readouterr().out
        assert "causal spans written to" in out
        assert "telemetry rows written to" in out
        assert spans.exists() and telemetry.exists()

    def test_span_and_telemetry_files_validate(self, tmp_path, capsys):
        spans, telemetry = _traced_run(tmp_path, capsys)
        for path in (spans, telemetry):
            assert main(["obs", "validate", str(path)]) == 0
            assert "schema valid" in capsys.readouterr().out

    def test_trace_sample_flag_thins_spans(self, tmp_path, capsys):
        spans = tmp_path / "spans.jsonl"
        assert main(
            ["serve", *QUICK, "--trace-out", str(spans),
             "--trace-sample", "0.0"]
        ) == 0
        lines = spans.read_text().strip().splitlines()
        assert len(lines) == 1  # meta header only


class TestObsChrome:
    def test_chrome_export_default_path(self, tmp_path, capsys):
        spans, _ = _traced_run(tmp_path, capsys)
        assert main(["obs", "chrome", str(spans)]) == 0
        out = capsys.readouterr().out
        assert "Perfetto" in out
        exported = tmp_path / "spans.trace.json"
        trace = json.loads(exported.read_text())
        assert trace["traceEvents"]
        assert all(e["ph"] == "X" for e in trace["traceEvents"])

    def test_chrome_export_explicit_out(self, tmp_path, capsys):
        spans, _ = _traced_run(tmp_path, capsys)
        out_path = tmp_path / "t.json"
        assert main(
            ["obs", "chrome", str(spans), "--out", str(out_path)]
        ) == 0
        assert json.loads(out_path.read_text())["displayTimeUnit"] == "ms"

    def test_chrome_on_spanless_file_errors(self, tmp_path, capsys):
        _, telemetry = _traced_run(tmp_path, capsys)
        assert main(["obs", "chrome", str(telemetry)]) == 1
        assert "no span rows" in capsys.readouterr().err


class TestObsCritical:
    def test_critical_report_renders(self, tmp_path, capsys):
        spans, _ = _traced_run(tmp_path, capsys)
        assert main(["obs", "critical", str(spans)]) == 0
        out = capsys.readouterr().out
        assert "flush(es)" in out
        assert "attributed" in out

    def test_critical_json_mode(self, tmp_path, capsys):
        spans, _ = _traced_run(tmp_path, capsys)
        assert main(["obs", "critical", str(spans), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["flushes"] > 0
        assert 0.0 <= report["attribution_fraction"] <= 1.0

    def test_min_attribution_gate_can_fail(self, tmp_path, capsys):
        # A fabricated childless stalled flush: attribution 0.0.
        spans = tmp_path / "spans.jsonl"
        rows = [
            {"type": "meta", "schema": 2, "run": {"component": "trace"}},
            {"type": "span", "trace": "t", "span": "f0", "parent": None,
             "name": "queue.flush", "start_us": 0, "dur_us": 10,
             "attrs": {"stall_pages": 9.0}},
        ]
        spans.write_text("".join(json.dumps(r) + "\n" for r in rows))
        assert main(
            ["obs", "critical", str(spans), "--min-attribution", "0.95"]
        ) == 1
        assert "below required" in capsys.readouterr().err


class TestObsTailFollow:
    def test_follow_stops_on_idle_timeout(self, tmp_path, capsys):
        path = tmp_path / "metrics.jsonl"
        rows = [
            {"type": "meta", "schema": 2, "run": {}},
            {"type": "event", "seq": 1, "clock": 5, "kind": "clean_cycle"},
        ]
        path.write_text("".join(json.dumps(r) + "\n" for r in rows))
        assert main(
            ["obs", "tail", str(path), "--follow", "--idle-timeout", "0.05"]
        ) == 0
        out = capsys.readouterr().out
        assert "clean_cycle" in out


class TestTopCommand:
    def test_top_renders_frames_from_telemetry(self, tmp_path, capsys):
        _, telemetry = _traced_run(tmp_path, capsys)
        assert main(
            ["top", str(telemetry), "--frames", "1", "--no-clear",
             "--idle-timeout", "0.05"]
        ) == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "SLO" in out

    def test_top_on_empty_file_errors(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(
            ["top", str(empty), "--idle-timeout", "0.05"]
        ) == 1
        assert "no telemetry rows" in capsys.readouterr().err
