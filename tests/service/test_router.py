"""Consistent-hash router: determinism, growth, edge cases, affinity."""

import pytest

from repro.service import ConsistentHashRouter, RouterError, encode_key


def sample_keys():
    keys = ["k%d" % i for i in range(64)]
    keys += [i for i in range(64)]
    keys += [b"raw%d" % i for i in range(16)]
    keys += [("t", i) for i in range(16)]
    keys += ["", b"", 0, -7, ("",), "x" * 100_000]
    return keys


class TestEncoding:
    def test_distinct_types_never_collide(self):
        assert encode_key("1") != encode_key(1)
        assert encode_key("1") != encode_key(b"1")
        assert encode_key(("a", "b")) != encode_key(("ab",))
        assert encode_key(("a", ("b",))) != encode_key(("a", "b"))

    def test_empty_keys_are_routable(self):
        router = ConsistentHashRouter(4)
        for key in ("", b"", ()):
            assert 0 <= router.shard_for(key) < 4

    def test_oversized_key_routes(self):
        router = ConsistentHashRouter(4)
        assert 0 <= router.shard_for("x" * 1_000_000) < 4

    def test_unroutable_types_raise(self):
        router = ConsistentHashRouter(2)
        for bad in (True, False, None, 1.5, ["a"], {"k": 1}):
            with pytest.raises(RouterError):
                router.shard_for(bad)


class TestDeterminism:
    def test_same_params_same_mapping(self):
        a = ConsistentHashRouter(8, replicas=32, seed=3)
        b = ConsistentHashRouter(8, replicas=32, seed=3)
        for key in sample_keys():
            assert a.shard_for(key) == b.shard_for(key)

    def test_seed_changes_mapping(self):
        a = ConsistentHashRouter(8, seed=0)
        b = ConsistentHashRouter(8, seed=1)
        moved = sum(
            1 for key in sample_keys() if a.shard_for(key) != b.shard_for(key)
        )
        assert moved > 0

    def test_keys_spread_over_all_shards(self):
        router = ConsistentHashRouter(4, replicas=64)
        owners = {router.shard_for("k%d" % i) for i in range(2000)}
        assert owners == {0, 1, 2, 3}


class TestGrowth:
    def test_single_shard_routes_everything_to_zero(self):
        router = ConsistentHashRouter(1)
        for key in sample_keys():
            assert router.shard_for(key) == 0
            assert router.shard_for(key, tenant="t0") == 0

    @pytest.mark.parametrize("spread", [1.0, 0.25])
    def test_growth_moves_keys_only_to_new_shards(self, spread):
        keys = ["g%d" % i for i in range(3000)]
        n = 1
        router = ConsistentHashRouter(n, tenant_spread=spread)
        before = {k: router.shard_for(k, tenant="t1") for k in keys}
        for n_next in (2, 3, 5, 8):
            grown = router.grown(n_next)
            moved = 0
            for k in keys:
                after = grown.shard_for(k, tenant="t1")
                if after != before[k]:
                    assert after >= n, (
                        "key moved between pre-existing shards on growth"
                    )
                    moved += 1
                before[k] = after
            assert moved > 0  # growth actually takes load
            router, n = grown, n_next

    def test_grown_equals_fresh_construction(self):
        grown = ConsistentHashRouter(2, replicas=16, seed=9).grown(6)
        fresh = ConsistentHashRouter(6, replicas=16, seed=9)
        for key in sample_keys():
            assert grown.shard_for(key) == fresh.shard_for(key)

    def test_shrink_raises(self):
        with pytest.raises(RouterError):
            ConsistentHashRouter(4).grown(2)


class TestTenantAffinity:
    def test_spread_narrows_a_tenants_shard_set(self):
        wide = ConsistentHashRouter(16, tenant_spread=1.0)
        narrow = ConsistentHashRouter(16, tenant_spread=0.15)
        assert len(narrow.tenant_shards("acme", sample=512)) < len(
            wide.tenant_shards("acme", sample=512)
        )

    def test_affinity_stable_under_reseeding(self):
        # Re-building the router from the same parameters must
        # reproduce each tenant's shard set exactly; changing the seed
        # re-anchors tenants deterministically (both builds with the
        # new seed again agree).
        for seed in (0, 1, 42):
            a = ConsistentHashRouter(8, seed=seed, tenant_spread=0.3)
            b = ConsistentHashRouter(8, seed=seed, tenant_spread=0.3)
            for tenant in ("t0", "t1", "acme"):
                assert a.tenant_shards(tenant) == b.tenant_shards(tenant)
                for i in range(100):
                    key = "k%d" % i
                    assert a.shard_for(key, tenant=tenant) == b.shard_for(
                        key, tenant=tenant
                    )

    def test_distinct_tenants_anchor_differently(self):
        router = ConsistentHashRouter(16, tenant_spread=0.1)
        sets = {
            tenant: tuple(router.tenant_shards(tenant))
            for tenant in ("t%d" % i for i in range(12))
        }
        assert len(set(sets.values())) > 1

    def test_no_tenant_ignores_affinity(self):
        router = ConsistentHashRouter(8, tenant_spread=0.2)
        plain = ConsistentHashRouter(8, tenant_spread=1.0)
        for i in range(100):
            assert router.shard_for("k%d" % i) == plain.shard_for("k%d" % i)


class TestValidation:
    def test_bad_params_raise(self):
        with pytest.raises(RouterError):
            ConsistentHashRouter(0)
        with pytest.raises(RouterError):
            ConsistentHashRouter(2, replicas=0)
        with pytest.raises(RouterError):
            ConsistentHashRouter(2, tenant_spread=0.0)
        with pytest.raises(RouterError):
            ConsistentHashRouter(2, tenant_spread=1.5)
