"""Variable-size pages end-to-end (paper Section 4.4).

The paper generalizes the declining-cost formula to variable-size pages
(a log of records rather than fixed 4 KB pages — the key-value-store
setting its related work cites).  These tests drive the store with a
size-skewed workload and check that space accounting, cleaning, and the
MDC priority all hold together.
"""

import numpy as np
import pytest

from repro.bench import prepare_store
from repro.policies import make_policy
from repro.store import LogStructuredStore, StoreConfig
from repro.workloads import HotColdWorkload


def drive_variable(store, workload, sizes, n_writes):
    for batch in workload.batches(n_writes):
        for pid in batch:
            store.write(pid, size=sizes[pid])


class TestVariableSizeCleaning:
    @pytest.fixture
    def setup(self):
        cfg = StoreConfig(
            n_segments=128, segment_units=64, fill_factor=0.7,
            clean_trigger=3, clean_batch=4,
        )
        rng = np.random.default_rng(4)
        # Record sizes 1..8 units, skewed toward small records.
        n_pages = cfg.device_units * 7 // (10 * 4)  # mean size ~3.9
        sizes = rng.integers(1, 9, size=n_pages).tolist()
        return cfg, sizes, n_pages

    def test_accounting_survives_cleaning(self, setup):
        cfg, sizes, n_pages = setup
        store = LogStructuredStore(cfg, make_policy("greedy"))
        wl = HotColdWorkload.from_skew(n_pages, 80, seed=2)
        store.load_sequential(n_pages, sizes)
        drive_variable(store, wl, sizes, 30_000)
        assert store.stats.clean_cycles > 0
        store.check_invariants()

    def test_mdc_beats_greedy_with_variable_sizes(self, setup):
        cfg, sizes, n_pages = setup
        wamps = {}
        for name in ("greedy", "mdc"):
            store = LogStructuredStore(cfg, make_policy(name))
            wl = HotColdWorkload.from_skew(n_pages, 90, seed=2)
            store.load_sequential(n_pages, sizes)
            mark = None
            total = 60_000
            for start in range(0, total, 10_000):
                drive_variable(store, wl, sizes, 10_000)
                if start >= total // 2 and mark is None:
                    mark = store.stats.snapshot()
            wamps[name] = store.stats.window_since(mark).write_amplification
        assert wamps["mdc"] < wamps["greedy"]

    def test_size_change_on_rewrite(self, setup):
        cfg, sizes, n_pages = setup
        store = LogStructuredStore(cfg, make_policy("greedy"))
        store.write(0, size=8)
        store.write(0, size=2)  # record shrank
        seg, _ = store.pages.location(0)
        assert store.segments.live_units[seg] == 2
        store.check_invariants()

    def test_interior_fragmentation_counts_as_available(self):
        cfg = StoreConfig(
            n_segments=16, segment_units=10, fill_factor=0.5,
            clean_trigger=2, clean_batch=2,
        )
        store = LogStructuredStore(cfg, make_policy("greedy"))
        # Two 4-unit records fill 8 of 10 units; a 3-unit record cannot
        # fit, so the segment seals with 2 units of interior waste that
        # count toward its available (reclaimable) space.
        store.write(0, size=4)
        store.write(1, size=4)
        store.write(2, size=3)
        seg0, _ = store.pages.location(0)
        seg2, _ = store.pages.location(2)
        assert seg0 != seg2
        assert store.segments.available_units(seg0) == 2
