"""Examples stay importable and structured.

Full example runs take minutes; importing them catches bit-rot (syntax
errors, renamed APIs) cheaply.  Each example guards its workload behind
``if __name__ == "__main__"`` so import is side-effect free.
"""

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports_cleanly(path):
    spec = importlib.util.spec_from_file_location("example_" + path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert callable(getattr(module, "main", None)), (
        "%s must define a main() entry point" % path.name
    )
    assert module.__doc__, "%s needs a module docstring" % path.name


def test_expected_example_lineup():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "ssd_ftl_simulation",
        "tpcc_trace_replay",
        "analysis_vs_simulation",
        "compare_policies",
        "value_log_kv",
        "predictive_oracle",
        "sweep_quickstart",
    } <= names
