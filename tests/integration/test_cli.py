"""The command-line interface."""

import pytest

from repro.cli import main
from repro.policies import available_policies


class TestCli:
    def test_policies_lists_registry(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert out == available_policies()

    def test_simulate_prints_summary(self, capsys):
        code = main(
            [
                "simulate", "--policy", "greedy", "--dist", "uniform",
                "--fill", "0.6", "--multiplier", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "greedy" in out
        assert "Wamp" in out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    @pytest.mark.parametrize(
        "argv,func",
        [
            (["table1"], "table1_experiment"),
            (["table2", "--quick"], "table2_experiment"),
            (["fig3"], "fig3_experiment"),
            (["fig4", "--quick"], "fig4_experiment"),
            (["fig5", "--dist", "uniform"], "fig5_experiment"),
            (["fig6", "--warehouses", "2"], "fig6_experiment"),
        ],
    )
    def test_experiment_commands_invoke_backend(self, argv, func, capsys, monkeypatch):
        import repro.cli as cli

        calls = {}

        def fake(*args, **kwargs):
            calls["args"] = args
            calls["kwargs"] = kwargs
            return "RENDERED-%s" % func

        monkeypatch.setattr(cli, func, fake)
        assert main(argv) == 0
        assert "RENDERED-%s" % func in capsys.readouterr().out
        if "--quick" in argv:
            assert calls["kwargs"]["write_multiplier"] < 10
        if argv[0] == "fig5":
            assert calls["args"] == ("uniform",)
        if argv[0] == "fig6":
            assert calls["kwargs"]["scale"].warehouses == 2

    def test_ablation_invokes_both_backends(self, capsys, monkeypatch):
        import repro.cli as cli

        monkeypatch.setattr(cli, "ablation_estimator_experiment", lambda **k: "EST")
        monkeypatch.setattr(cli, "ablation_batch_experiment", lambda **k: "BATCH")
        assert main(["ablation"]) == 0
        out = capsys.readouterr().out
        assert "EST" in out and "BATCH" in out

    def test_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--policy", "fifo"])

    def test_fig5_rejects_unknown_dist(self):
        with pytest.raises(SystemExit):
            main(["fig5", "--dist", "pareto"])

    def test_seed_flag_reaches_the_experiment(self, capsys, monkeypatch):
        import repro.cli as cli

        calls = {}

        def fake(*args, **kwargs):
            calls["kwargs"] = kwargs
            return "RENDERED"

        monkeypatch.setattr(cli, "fig4_experiment", fake)
        assert main(["fig4", "--seed", "7"]) == 0
        assert calls["kwargs"]["seed"] == 7
        capsys.readouterr()


class TestSweepCli:
    def test_sweep_demo_end_to_end(self, capsys, tmp_path):
        out = str(tmp_path / "run")
        code = main(
            ["sweep", "demo", "--workers", "2", "--out", out, "--no-progress"]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "Demo grid" in printed
        assert "4 jobs (4 run, 0 resumed)" in printed
        assert (tmp_path / "run" / "manifest.jsonl").exists()
        assert (tmp_path / "run" / "summary.json").exists()

        # Re-invoking with --resume executes nothing but prints the same
        # table from the journaled results.
        code = main(
            [
                "sweep", "demo", "--workers", "2", "--out", out,
                "--resume", "--no-progress",
            ]
        )
        assert code == 0
        resumed = capsys.readouterr().out
        assert "4 jobs (0 run, 4 resumed)" in resumed
        assert resumed.split("\nsweep demo:")[0] == (
            printed.split("\nsweep demo:")[0]
        )

    def test_sweep_refuses_existing_dir_without_resume(self, capsys, tmp_path):
        out = str(tmp_path / "run")
        assert main(["sweep", "demo", "--out", out, "--no-progress"]) == 0
        capsys.readouterr()
        assert main(["sweep", "demo", "--out", out, "--no-progress"]) == 1
        assert "resume" in capsys.readouterr().err

    def test_sweep_rejects_unknown_grid(self):
        with pytest.raises(SystemExit):
            main(["sweep", "fig7"])

    def test_sweep_seed_changes_the_grid(self, capsys, tmp_path):
        out = str(tmp_path / "run")
        args = ["sweep", "demo", "--out", out, "--no-progress"]
        assert main(args) == 0
        capsys.readouterr()
        # Same directory, different seed: a different grid, refused.
        assert main(args + ["--resume", "--seed", "1"]) == 1
        assert "grid" in capsys.readouterr().err
