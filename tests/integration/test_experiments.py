"""The experiment functions (bench/CLI backend) at miniature sizes."""

import pytest

from repro.bench import (
    ablation_batch_experiment,
    ablation_estimator_experiment,
    fig3_experiment,
    fig4_experiment,
    fig5_experiment,
    fig6_experiment,
    table1_experiment,
    table2_experiment,
)
from repro.tpcc import TpccScale


class TestTables:
    def test_table1_small(self):
        out = table1_experiment(fill_factors=(0.5, 0.8), write_multiplier=3)
        assert len(out.data["rows"]) == 2
        assert "Table 1" in out.rendered
        f, slack, e, e_age, e_opt, cost, ratio, wamp, wamp_sim = out.data["rows"][0]
        assert f == 0.5
        assert 0 < e_age < 1 and 0 < e_opt < 1

    def test_table2_small(self):
        out = table2_experiment(skews=(90,), write_multiplier=6)
        rows = out.data["rows"]
        assert rows[0][1] == "90:10"
        assert rows[0][5] > 2.0  # simulated cost is at least the floor


class TestFigures:
    def test_fig3_small(self):
        out = fig3_experiment(
            skews=(90,), policies=("greedy", "mdc"), write_multiplier=6
        )
        assert set(out.data["series"]) == {"greedy", "mdc", "opt"}
        assert len(out.data["series"]["opt"]) == 1

    def test_fig4_small(self):
        out = fig4_experiment(buffer_sizes=(0, 4), write_multiplier=6)
        assert len(out.data["wamp"]) == 2

    def test_fig5_small(self):
        out = fig5_experiment(
            "uniform", fills=(0.6,), policies=("age",), write_multiplier=6
        )
        assert out.data["series"]["age"][0] > 0

    def test_fig5_rejects_unknown_dist(self):
        with pytest.raises(ValueError):
            fig5_experiment("pareto", fills=(0.6,), policies=("age",))

    def test_fig6_small(self):
        tiny = TpccScale(
            warehouses=1, districts_per_warehouse=2,
            customers_per_district=50, initial_orders_per_district=50,
            items=300,
        )
        out = fig6_experiment(
            fills=(0.6,), policies=("greedy", "mdc"), scale=tiny
        )
        assert len(out.data["series"]["mdc"]) == 1
        assert out.data["traces"][0]["writes"] > 0


class TestAblations:
    def test_estimator_small(self):
        out = ablation_estimator_experiment(write_multiplier=6)
        assert set(out.data["wamp"]) == {"mdc-up1", "mdc", "mdc-opt"}

    def test_batch_small(self):
        out = ablation_batch_experiment(batches=(1, 8), write_multiplier=6)
        assert len(out.data["wamp"]) == 2
