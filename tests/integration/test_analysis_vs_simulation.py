"""The paper's Section 8.1 cross-checks, at test-sized devices.

Analysis and simulation were developed independently in this repository
(closed-form math vs a discrete-event store), so their agreement is a
strong end-to-end correctness signal for both.
"""

import pytest

from repro.analysis import emptiness_fixpoint, opt_wamp
from repro.bench import run_simulation
from repro.store import StoreConfig
from repro.workloads import HotColdWorkload, UniformWorkload


class TestUniformFixpoint:
    @pytest.mark.parametrize("fill", [0.5, 0.7, 0.8])
    def test_age_cleaning_matches_equation_4(self, fill):
        cfg = StoreConfig(
            n_segments=512, segment_units=32, fill_factor=fill,
            clean_trigger=2, clean_batch=4,
        ).with_reserve_compensation()
        wl = UniformWorkload(cfg.user_pages, seed=5)
        result = run_simulation(cfg, "age", wl, write_multiplier=10)
        assert result.mean_cleaned_emptiness == pytest.approx(
            emptiness_fixpoint(fill), rel=0.08
        )

    def test_wamp_consistent_with_emptiness(self):
        # Equation 2 must hold between the store's own two measurements.
        cfg = StoreConfig(fill_factor=0.8)
        wl = UniformWorkload(cfg.user_pages, seed=5)
        result = run_simulation(cfg, "greedy", wl, write_multiplier=15)
        e = result.mean_cleaned_emptiness
        assert result.wamp == pytest.approx((1 - e) / e, rel=0.06)


class TestHotColdOptimum:
    def test_mdc_opt_approaches_analytic_opt(self):
        cfg = StoreConfig(fill_factor=0.8, sort_buffer_segments=16)
        wl = HotColdWorkload.from_skew(cfg.user_pages, 90, seed=5)
        result = run_simulation(cfg, "mdc-opt", wl, write_multiplier=25)
        assert result.wamp == pytest.approx(opt_wamp(90, 0.8), rel=0.15)

    def test_greedy_cannot_reach_the_optimum(self):
        cfg = StoreConfig(fill_factor=0.8)
        wl = HotColdWorkload.from_skew(cfg.user_pages, 90, seed=5)
        result = run_simulation(cfg, "greedy", wl, write_multiplier=25)
        # Greedy leaves cold segments pinned; the gap to the separated
        # optimum is the headline effect of the paper.
        assert result.wamp > 2.5 * opt_wamp(90, 0.8)


class TestPolicyOrdering:
    def test_skewed_ordering_holds_end_to_end(self):
        wamps = {}
        for name in ("age", "greedy", "mdc"):
            cfg = StoreConfig(fill_factor=0.8, sort_buffer_segments=16)
            wl = HotColdWorkload.from_skew(cfg.user_pages, 90, seed=6)
            wamps[name] = run_simulation(
                cfg, name, wl, write_multiplier=20
            ).wamp
        assert wamps["mdc"] < wamps["greedy"] < wamps["age"]
