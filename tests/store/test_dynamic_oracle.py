"""Mid-run oracle updates (the Section 8.2 extension)."""

import pytest

from repro.policies import make_policy
from repro.store import LogStructuredStore, StoreConfig


@pytest.fixture
def store(tiny_config):
    return LogStructuredStore(tiny_config, make_policy("mdc-opt"))


class TestSetPageFrequency:
    def test_updates_live_segment_sum(self, store):
        store.set_oracle_frequencies([0.5, 0.5])
        store.write(0)
        store.write(1)
        seg, _ = store.pages.location(0)
        store.set_page_frequency(0, 0.1)
        assert store.segments.freq_sum[seg] == pytest.approx(0.6)
        assert store.pages.oracle_freq[0] == 0.1
        store.check_invariants()

    def test_unwritten_page_needs_no_adjustment(self, store):
        store.set_page_frequency(42, 0.25)
        assert store.pages.oracle_freq[42] == 0.25
        store.check_invariants()

    def test_subsequent_invalidation_stays_consistent(self, store):
        n = store.config.segment_units + 1
        store.set_oracle_frequencies([1.0 / n] * n)
        for pid in range(n):
            store.write(pid)
        store.set_page_frequency(0, 0.9)
        store.write(0)  # invalidate must subtract the *new* value
        store.check_invariants()

    def test_many_updates_under_cleaning_pressure(self, store):
        n = store.config.user_pages
        store.set_oracle_frequencies([1.0 / n] * n)
        store.load_sequential(n)
        for step in range(2000):
            pid = (step * 7) % n
            if step % 3 == 0:
                store.set_page_frequency(pid, ((step % 10) + 1) / (10.0 * n))
            store.write(pid)
        store.check_invariants()


class TestShiftingOracleSignal:
    def test_current_frequencies_track_the_hot_window(self):
        from repro.workloads import ShiftingHotSetWorkload

        wl = ShiftingHotSetWorkload(
            500, update_fraction=0.9, data_fraction=0.1,
            shift_every=50, seed=3,
        )
        freqs = wl.current_frequencies()
        assert freqs.sum() == pytest.approx(1.0)
        hot = wl.current_hot_pages()
        cold_level = freqs.min()
        assert all(freqs[p] > cold_level for p in hot)
        # After shifting, the signal moves with the window.
        list(wl.batches(500))
        freqs2 = wl.current_frequencies()
        assert not (freqs == freqs2).all()
