"""Checkpoint / restore of a running store."""

import pytest

from repro.policies import make_policy
from repro.store import (
    LogStructuredStore,
    PersistenceError,
    StoreConfig,
    load_store,
    save_store,
)


def churned_store(policy_name, cfg, writes=6000):
    store = LogStructuredStore(cfg, make_policy(policy_name))
    n = cfg.user_pages
    if policy_name.endswith("-opt"):
        store.set_oracle_frequencies([1.0 / n] * n)
    store.load_sequential(n)
    for i in range(writes):
        store.write((i * i) % n)
    return store


@pytest.fixture
def cfg():
    return StoreConfig(
        n_segments=48, segment_units=16, fill_factor=0.7,
        clean_trigger=3, clean_batch=3,
    )


class TestRoundTrip:
    @pytest.mark.parametrize("policy", ["greedy", "age", "mdc", "mdc-opt", "multi-log"])
    def test_state_survives_round_trip(self, policy, cfg, tmp_path):
        original = churned_store(policy, cfg)
        path = tmp_path / "ckpt.npz"
        save_store(original, path)
        restored = load_store(path, make_policy(policy))
        assert restored.clock == original.clock
        assert restored.stats.snapshot() == original.stats.snapshot()
        assert restored.pages.seg.tolist() == original.pages.seg.tolist()
        assert restored.pages.slot.tolist() == original.pages.slot.tolist()
        assert restored.segments.live_count.tolist() == original.segments.live_count.tolist()
        assert restored.segments.up2.tolist() == original.segments.up2.tolist()
        assert list(restored.free_list) == list(original.free_list)
        assert restored.open_segments == original.open_segments
        restored.check_invariants()

    def test_continuation_is_deterministic(self, cfg, tmp_path):
        """Running on after a restore matches the uninterrupted run."""
        a = churned_store("greedy", cfg)
        path = tmp_path / "ckpt.npz"
        save_store(a, path)
        b = load_store(path, make_policy("greedy"))
        n = cfg.user_pages
        for i in range(3000):
            pid = (i * 13 + 7) % n
            a.write(pid)
            b.write(pid)
        assert a.pages.seg.tolist() == b.pages.seg.tolist()
        assert a.stats.gc_writes == b.stats.gc_writes
        assert a.stats.write_amplification == b.stats.write_amplification

    def test_multilog_classes_restored(self, cfg, tmp_path):
        original = churned_store("multi-log", cfg)
        path = tmp_path / "ckpt.npz"
        save_store(original, path)
        restored_policy = make_policy("multi-log")
        load_store(path, restored_policy)
        assert restored_policy._classes == original.policy._classes
        assert restored_policy._seg_class.tolist() == original.policy._seg_class.tolist()


class TestSafety:
    def test_policy_mismatch_rejected(self, cfg, tmp_path):
        store = churned_store("greedy", cfg)
        path = tmp_path / "ckpt.npz"
        save_store(store, path)
        with pytest.raises(PersistenceError):
            load_store(path, make_policy("mdc"))

    def test_buffered_pages_flushed_before_save(self, tmp_path):
        cfg = StoreConfig(
            n_segments=48, segment_units=16, fill_factor=0.7,
            clean_trigger=3, clean_batch=3, sort_buffer_segments=1,
        )
        store = LogStructuredStore(cfg, make_policy("mdc"))
        store.write(0)
        path = tmp_path / "ckpt.npz"
        save_store(store, path)
        restored = load_store(path, make_policy("mdc"))
        seg, _ = restored.pages.location(0)
        assert seg >= 0  # on the device, not lost in an unsaved buffer
