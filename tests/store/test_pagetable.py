"""PageTable growth, sentinels, and liveness resolution."""

import math

from repro.store import PageTable, SegmentTable
from repro.store.pagetable import IN_BUFFER, IN_FLIGHT, NEVER_WRITTEN


class TestGrowth:
    def test_starts_at_requested_size(self):
        pt = PageTable(5)
        assert len(pt) == 5
        assert all(s == NEVER_WRITTEN for s in pt.seg)

    def test_ensure_grows_all_columns(self):
        pt = PageTable(2)
        pt.ensure(10)
        assert len(pt) == 11
        assert len(pt.slot) == 11
        assert len(pt.carried_up2) == 11
        assert len(pt.last_write) == 11
        assert len(pt.size) == 11
        assert len(pt.oracle_freq) == 11

    def test_ensure_is_idempotent(self):
        pt = PageTable(5)
        pt.ensure(3)
        assert len(pt) == 5

    def test_new_pages_have_no_history(self):
        pt = PageTable(1)
        assert math.isnan(pt.carried_up2[0])
        assert pt.size[0] == 1
        assert pt.oracle_freq[0] == 0.0


class TestLiveness:
    def test_is_live_slot_matches_pointer(self):
        pt = PageTable(3)
        pt.seg[1] = 7
        pt.slot[1] = 2
        assert pt.is_live_slot(7, 2, 1)
        assert not pt.is_live_slot(7, 1, 1)
        assert not pt.is_live_slot(6, 2, 1)

    def test_sentinels_never_match_real_segments(self):
        pt = PageTable(3)
        for sentinel in (NEVER_WRITTEN, IN_BUFFER, IN_FLIGHT):
            pt.seg[0] = sentinel
            # A real segment id is always >= 0, so a sentinel-marked page
            # can never be reported live in any actual segment.
            for seg in range(3):
                assert not pt.is_live_slot(seg, 0, 0)

    def test_live_pages_of_filters_stale_slots(self):
        segs = SegmentTable(n_segments=2, capacity=4)
        pt = PageTable(4)
        # Segment 0 received pages 0, 1, 2; page 1 has since moved away,
        # and page 0 was rewritten into the same segment at slot 3.
        segs.set_slots(0, [0, 1, 2, 0])
        pt.seg[0], pt.slot[0] = 0, 3
        pt.seg[1], pt.slot[1] = 1, 0
        pt.seg[2], pt.slot[2] = 0, 2
        live = pt.live_pages_of(segs, 0)
        assert sorted(live) == [0, 2]

    def test_location(self):
        pt = PageTable(1)
        pt.seg[0], pt.slot[0] = 5, 3
        assert pt.location(0) == (5, 3)
