"""The preemptible cleaning cycle: ``clean_begin`` / ``clean_step``.

Two equivalence obligations anchor this tier.  First, a cycle driven in
bounded steps with no foreground work in between must leave the store
**byte-identical** (same ``state_digest``) to the historical one-shot
``clean()`` — preemption may change *when* pages move, never *what* a
cycle does.  Second, when foreground writes do interleave with steps,
placement legitimately diverges from batch mode, but the store must
stay oracle-equivalent the whole way: live page set, per-page sizes,
and the paper's counter identities (Equation 2 in completed form, plus
append-flow conservation) hold at every preemption point.
"""

import pytest

from repro.policies import make_policy
from repro.store import (
    IN_RELOCATION,
    IncrementalCleaner,
    LogStructuredStore,
    StoreConfig,
    StoreError,
)
from repro.testkit.oracle import OracleStore, verify_equivalence
from repro.testkit.trace import state_digest
from repro.workloads import HotColdWorkload, UniformWorkload, ZipfianWorkload

POLICIES = ["greedy", "cost-benefit", "mdc"]

WORKLOADS = {
    "uniform": lambda n, seed: UniformWorkload(n, seed=seed),
    "hot-cold": lambda n, seed: HotColdWorkload(n, seed=seed),
    "zipfian": lambda n, seed: ZipfianWorkload(n, seed=seed),
}


def make_cfg():
    return StoreConfig(
        n_segments=32,
        segment_units=8,
        fill_factor=0.65,
        clean_trigger=2,
        clean_batch=2,
    )


def make_store(policy_name):
    return LogStructuredStore(make_cfg(), make_policy(policy_name))


def preload(store, writes):
    for pid in writes:
        store.write(pid)


def workload_writes(kind, n_writes, seed):
    cfg = make_cfg()
    n_pages = cfg.user_pages
    wl = WORKLOADS[kind](n_pages, seed)
    out = []
    for batch in wl.batches(n_writes):
        out.extend(int(p) for p in batch)
    return out


class TestSteppedCycleEqualsBatch:
    """No-interleaving differential: chunked steps == one-shot clean."""

    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("kind", sorted(WORKLOADS))
    @pytest.mark.parametrize("step", [1, 3, None])
    def test_digest_identical_across_step_sizes(self, policy, kind, step):
        writes = workload_writes(kind, 3000, seed=11)
        batch = make_store(policy)
        stepped = make_store(policy)
        preload(batch, writes)
        preload(stepped, writes)
        assert state_digest(batch) == state_digest(stepped)
        # Several explicit cycles, the second store always in steps.
        for _ in range(4):
            if batch.sealed_segments().size == 0:
                break
            batch.clean()
            stepped.clean_begin()
            while stepped.clean_cursor is not None:
                stepped.clean_step(step)
            assert state_digest(batch) == state_digest(stepped)
        batch.check_invariants()
        stepped.check_invariants()

    @pytest.mark.parametrize("seed", [0, 7, 23])
    def test_digest_identical_across_seeds(self, seed):
        writes = workload_writes("zipfian", 2500, seed=seed)
        batch = make_store("greedy")
        stepped = make_store("greedy")
        preload(batch, writes)
        preload(stepped, writes)
        for _ in range(3):
            if batch.sealed_segments().size == 0:
                break
            batch.clean()
            stepped.clean_begin()
            while stepped.clean_cursor is not None:
                stepped.clean_step(2)
        assert state_digest(batch) == state_digest(stepped)


class TestCursorMechanics:
    def _store_with_cursor(self):
        store = make_store("greedy")
        preload(store, workload_writes("uniform", 2000, seed=3))
        assert store.sealed_segments().size > 0
        store.clean_begin()
        return store

    def test_begin_while_active_raises(self):
        store = self._store_with_cursor()
        if store.clean_cursor is None:
            pytest.skip("victims had no live pages at this seed")
        with pytest.raises(StoreError):
            store.clean_begin()

    def test_step_budget_respected(self):
        store = self._store_with_cursor()
        pending = store.clean_pending
        if pending < 3:
            pytest.skip("cycle too small to bound at this seed")
        moved = store.clean_step(2)
        assert moved <= 2
        assert store.clean_pending == pending - moved

    def test_step_with_no_cursor_is_noop(self):
        store = make_store("greedy")
        assert store.clean_step(5) == 0
        assert store.clean_step(None) == 0

    def test_cycle_counted_once_on_finish(self):
        store = self._store_with_cursor()
        cycles_before = store.stats.clean_cycles
        while store.clean_cursor is not None:
            store.clean_step(1)
        assert store.stats.clean_cycles == cycles_before + 1

    def test_zero_live_victim_cycle_closes_immediately(self):
        # Seal segments then obsolete every page in them: the victims
        # stage nothing and the cycle must not linger half-open.
        store = make_store("greedy")
        s = store.config.segment_units
        for pid in range(2 * s):
            store.write(pid)
        for pid in range(2 * s):
            store.trim(pid)
        assert store.sealed_segments().size > 0
        store.clean_begin()
        store.clean_step(None)
        assert store.clean_cursor is None
        store.check_invariants()

    def test_staged_pages_marked_in_relocation(self):
        store = self._store_with_cursor()
        cur = store.clean_cursor
        if cur is None or cur.remaining == 0:
            pytest.skip("victims had no live pages at this seed")
        staged = cur.pending[cur.pos:]
        assert (store.pages.seg[staged] == IN_RELOCATION).all()

    def test_relocating_units_counted_in_fill_factor(self):
        store = self._store_with_cursor()
        if store.clean_pending == 0:
            pytest.skip("victims had no live pages at this seed")
        assert store.relocating_units() > 0
        live = int(store.segments.live_units.sum()) + store.relocating_units()
        assert store.fill_factor_now() == pytest.approx(
            live / store.config.device_units
        )

    def test_overwrite_of_staged_page_skip_credits(self):
        store = make_store("greedy")
        preload(store, workload_writes("uniform", 2000, seed=3))
        # Headroom first, so the probing write below cannot trip the
        # reactive path (which would drain the cursor before writing).
        while (
            store.free_segment_count < store.config.clean_trigger + 3
            and store.sealed_segments().size > 0
        ):
            store.clean()
        # A write that opens a fresh segment drains the cursor (the
        # allocation backstop), so leave room in the open segment for
        # the probing write below before the cycle begins.
        dummy = 0
        store.write(dummy)
        while (
            store.segments.used_units[int(store.pages.seg[dummy])]
            >= store.config.segment_units
        ):
            store.write(dummy)
        store.clean_begin()
        cur = store.clean_cursor
        if cur is None or cur.remaining == 0:
            pytest.skip("victims had no live pages at this seed")
        victim_pid = int(cur.pending[cur.pos])
        gc_before = store.stats.gc_writes
        store.write(victim_pid)  # obsoletes the staged copy
        assert store.pages.seg[victim_pid] != IN_RELOCATION
        assert store.relocating_dead_units() > 0
        store.clean_step(None)
        # The obsoleted copy was skipped, not relocated: gc_writes rose
        # by strictly less than the staged count would imply.
        assert store.stats.gc_writes - gc_before < len(cur.pending)
        store.check_invariants()


class TestInterleavedOracleEquivalence:
    """Steps interleaved with foreground writes: placement diverges
    from batch mode, the oracle contract must not."""

    @pytest.mark.parametrize("kind", sorted(WORKLOADS))
    def test_equivalence_at_every_checkpoint(self, kind):
        cfg = make_cfg()
        store = LogStructuredStore(cfg, make_policy("greedy"))
        oracle = OracleStore(cfg)
        cleaner = IncrementalCleaner(store, pages_per_step=3)
        writes = workload_writes(kind, 6000, seed=5)
        for i, pid in enumerate(writes):
            store.write(pid)
            oracle.write(pid)
            if i % 7 == 0:
                cleaner.step()
            if i % 500 == 499:
                store.check_invariants()
                assert verify_equivalence(store, oracle) == []
        # Drain whatever cycle is mid-flight and re-verify.
        while store.clean_cursor is not None:
            cleaner.drain()
        store.check_invariants()
        assert verify_equivalence(store, oracle) == []
        assert cleaner.pages_relocated > 0
        assert cleaner.cycles_started > 0

    def test_trims_interleaved_with_steps(self):
        cfg = make_cfg()
        store = LogStructuredStore(cfg, make_policy("greedy"))
        oracle = OracleStore(cfg)
        cleaner = IncrementalCleaner(store, pages_per_step=2)
        n = cfg.user_pages
        for i in range(4000):
            pid = (i * 13 + 5) % n
            if i % 9 == 8:
                store.trim(pid)
                oracle.trim(pid)
            else:
                store.write(pid)
                oracle.write(pid)
            if i % 5 == 0:
                cleaner.step()
        while store.clean_cursor is not None:
            cleaner.drain()
        store.check_invariants()
        assert verify_equivalence(store, oracle) == []


class TestIncrementalCleanerEngine:
    def test_rejects_nonpositive_step_budget(self):
        store = make_store("greedy")
        with pytest.raises(ValueError):
            IncrementalCleaner(store, pages_per_step=0)

    def test_default_free_target_above_trigger(self):
        store = make_store("greedy")
        cleaner = IncrementalCleaner(store)
        assert cleaner.free_target > store.config.clean_trigger

    def test_no_work_when_pool_healthy(self):
        store = make_store("greedy")
        cleaner = IncrementalCleaner(store)
        assert not cleaner.needs_cleaning()
        assert cleaner.step() == 0
        assert cleaner.stats()["steps_run"] == 0

    def test_steps_restore_free_target(self):
        store = make_store("greedy")
        preload(store, workload_writes("uniform", 2500, seed=9))
        cleaner = IncrementalCleaner(store, pages_per_step=4)
        guard = 0
        while cleaner.needs_cleaning() and guard < 500:
            cleaner.step()
            guard += 1
        assert store.free_segment_count >= cleaner.free_target
        assert store.clean_cursor is None
        store.check_invariants()

    def test_behind_tracks_reactive_trigger(self):
        store = make_store("greedy")
        cleaner = IncrementalCleaner(store)
        assert not cleaner.behind()  # fresh store: whole pool free

    def test_deadline_preemption_counted(self):
        store = make_store("greedy")
        preload(store, workload_writes("uniform", 2500, seed=9))
        cleaner = IncrementalCleaner(store, pages_per_step=10_000)
        moved = cleaner.step(deadline_s=0.0)
        # An already-expired deadline stops after the first slice.
        assert 0 <= moved <= 8
        if moved:
            assert cleaner.deadline_preemptions == 1

    def test_idle_tick_is_a_step(self):
        store = make_store("greedy")
        preload(store, workload_writes("uniform", 2500, seed=9))
        cleaner = IncrementalCleaner(store, pages_per_step=4)
        if not cleaner.needs_cleaning():
            pytest.skip("pool already at target at this seed")
        assert cleaner.idle_tick() > 0

    def test_legacy_clean_still_whole_cycle(self):
        """``clean()`` remains the one-shot API: no cursor survives it."""
        store = make_store("greedy")
        preload(store, workload_writes("uniform", 2500, seed=9))
        if store.sealed_segments().size == 0:
            pytest.skip("nothing sealed at this seed")
        store.clean()
        assert store.clean_cursor is None
        assert store.clean_pending == 0
