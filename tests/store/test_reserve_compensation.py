"""The reserve-compensation config helper used by precision benches."""

import pytest

from repro.store import ConfigError, StoreConfig


class TestWithReserveCompensation:
    def test_keeps_user_pages_of_original_device(self):
        base = StoreConfig(n_segments=512, segment_units=32, fill_factor=0.8,
                           clean_trigger=4, clean_batch=8)
        comp = base.with_reserve_compensation()
        assert comp.user_pages == base.user_pages
        assert comp.n_segments == base.n_segments + base.clean_trigger + 2

    def test_effective_fill_matches_target(self):
        base = StoreConfig(n_segments=1024, segment_units=32,
                           fill_factor=0.9, clean_trigger=2, clean_batch=4)
        comp = base.with_reserve_compensation()
        # Excluding the standing reserve, the cleanable region's fill is
        # the requested one.
        cleanable = (comp.n_segments - comp.clean_trigger - 2) * comp.segment_units
        assert comp.user_pages / cleanable == pytest.approx(0.9, rel=0.01)

    def test_override_validation(self):
        with pytest.raises(ConfigError):
            StoreConfig(user_pages_override=0)
        with pytest.raises(ConfigError):
            StoreConfig(
                n_segments=16, segment_units=8, fill_factor=0.5,
                clean_trigger=2, clean_batch=2,
                user_pages_override=16 * 8,  # larger than usable space
            )

    def test_override_wins_over_fill_factor(self):
        cfg = StoreConfig(
            n_segments=64, segment_units=16, fill_factor=0.5,
            clean_trigger=2, clean_batch=2, user_pages_override=100,
        )
        assert cfg.user_pages == 100
