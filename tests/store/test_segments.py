"""SegmentTable bookkeeping (structure-of-arrays layout)."""

import numpy as np
import pytest

from repro.store import FREE, OPEN, SEALED, SegmentTable
from repro.store.segments import NO_STREAM


@pytest.fixture
def table():
    return SegmentTable(n_segments=4, capacity=8)


class TestLifecycle:
    def test_starts_free_and_empty(self, table):
        assert len(table) == 4
        for s in range(4):
            assert table.state[s] == FREE
            assert table.live_count[s] == 0
            assert table.available_units(s) == 8
            assert table.emptiness(s) == 1.0
            assert table.slot_list(s) == []
            assert table.stream[s] == NO_STREAM

    def test_reset_restores_pristine_state(self, table):
        table.state[1] = SEALED
        table.live_count[1] = 3
        table.live_units[1] = 3
        table.used_units[1] = 8
        table.seal_time[1] = 42
        table.up1[1] = 40.0
        table.up2[1] = 35.0
        table.up2_sum[1] = 100.0
        table.freq_sum[1] = 0.5
        table.stream[1] = 2
        table.set_slots(1, [7, 8, 9])
        table.reset(1)
        assert table.state[1] == FREE
        assert table.live_count[1] == 0
        assert table.live_units[1] == 0
        assert table.used_units[1] == 0
        assert table.up2[1] == 0.0
        assert table.slot_list(1) == []
        assert table.slot_size_list(1) == []
        assert table.stream[1] == NO_STREAM

    def test_reset_does_not_bleed_across_segments(self, table):
        table.set_slots(0, [1, 2])
        table.set_slots(1, [7, 8, 9])
        table.reset(1)
        assert table.slot_list(0) == [1, 2]
        assert table.slot_list(1) == []


class TestSlotLog:
    def test_append_slot_returns_positions_in_order(self, table):
        assert table.append_slot(2, 10, 1) == 0
        assert table.append_slot(2, 11, 2) == 1
        assert table.slot_list(2) == [10, 11]
        assert table.slot_size_list(2) == [1, 2]
        assert table.slot_count[2] == 2

    def test_set_slots_defaults_to_unit_sizes(self, table):
        table.set_slots(3, [4, 5, 6])
        assert table.slot_size_list(3) == [1, 1, 1]

    def test_set_slots_rejects_overflow(self, table):
        with pytest.raises(ValueError):
            table.set_slots(0, list(range(9)))

    def test_views_track_the_backing_matrix(self, table):
        table.set_slots(0, [4, 5])
        view = table.slot_pages_of(0)
        table.slot_page[0, 1] = 9
        assert view.tolist() == [4, 9]

    def test_gather_slots_concatenates_in_segment_order(self, table):
        table.set_slots(2, [20, 21, 22], [1, 2, 1])
        table.set_slots(0, [7])
        pids, owners, local = table.gather_slots(
            np.asarray([2, 0, 1], dtype=np.int64)
        )
        assert pids.tolist() == [20, 21, 22, 7]
        assert owners.tolist() == [2, 2, 2, 0]
        assert local.tolist() == [0, 1, 2, 0]

    def test_gather_slots_empty_victim_set(self, table):
        pids, owners, local = table.gather_slots(
            np.empty(0, dtype=np.int64)
        )
        assert pids.size == 0
        assert owners.size == 0
        assert local.size == 0


class TestAccounting:
    def test_available_units_tracks_live_units(self, table):
        table.live_units[2] = 5
        assert table.available_units(2) == 3

    def test_emptiness_is_a_over_b(self, table):
        table.live_units[2] = 6
        assert table.emptiness(2) == pytest.approx(0.25)

    def test_state_name(self, table):
        table.state[0] = OPEN
        table.state[1] = SEALED
        assert table.state_name(0) == "open"
        assert table.state_name(1) == "sealed"
        assert table.state_name(2) == "free"

    def test_describe_mentions_key_fields(self, table):
        table.state[3] = SEALED
        table.live_count[3] = 2
        text = table.describe(3)
        assert "segment 3" in text
        assert "sealed" in text
        assert "C=2" in text
