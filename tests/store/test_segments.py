"""SegmentTable bookkeeping."""

import pytest

from repro.store import FREE, OPEN, SEALED, SegmentTable


@pytest.fixture
def table():
    return SegmentTable(n_segments=4, capacity=8)


class TestLifecycle:
    def test_starts_free_and_empty(self, table):
        assert len(table) == 4
        for s in range(4):
            assert table.state[s] == FREE
            assert table.live_count[s] == 0
            assert table.available_units(s) == 8
            assert table.emptiness(s) == 1.0
            assert table.slots[s] == []

    def test_reset_restores_pristine_state(self, table):
        table.state[1] = SEALED
        table.live_count[1] = 3
        table.live_units[1] = 3
        table.used_units[1] = 8
        table.seal_time[1] = 42
        table.up1[1] = 40.0
        table.up2[1] = 35.0
        table.up2_sum[1] = 100.0
        table.freq_sum[1] = 0.5
        table.slots[1] = [7, 8, 9]
        table.slot_sizes[1] = [1, 1, 1]
        table.reset(1)
        assert table.state[1] == FREE
        assert table.live_count[1] == 0
        assert table.live_units[1] == 0
        assert table.used_units[1] == 0
        assert table.up2[1] == 0.0
        assert table.slots[1] == []
        assert table.slot_sizes[1] == []

    def test_reset_does_not_share_slot_lists(self, table):
        table.reset(0)
        table.reset(1)
        table.slots[0].append(99)
        assert table.slots[1] == []


class TestAccounting:
    def test_available_units_tracks_live_units(self, table):
        table.live_units[2] = 5
        assert table.available_units(2) == 3

    def test_emptiness_is_a_over_b(self, table):
        table.live_units[2] = 6
        assert table.emptiness(2) == pytest.approx(0.25)

    def test_state_name(self, table):
        table.state[0] = OPEN
        table.state[1] = SEALED
        assert table.state_name(0) == "open"
        assert table.state_name(1) == "sealed"
        assert table.state_name(2) == "free"

    def test_describe_mentions_key_fields(self, table):
        table.state[3] = SEALED
        table.live_count[3] = 2
        text = table.describe(3)
        assert "segment 3" in text
        assert "sealed" in text
        assert "C=2" in text
