"""StoreConfig validation and derived quantities."""

import dataclasses

import pytest

from repro.store import ConfigError, StoreConfig, paper_config
from repro.store.config import (
    PAPER_CLEAN_BATCH,
    PAPER_CLEAN_TRIGGER,
    PAPER_DEVICE_SEGMENTS,
    PAPER_SEGMENT_PAGES,
)


class TestValidation:
    def test_defaults_are_valid(self):
        StoreConfig()

    def test_rejects_tiny_device(self):
        with pytest.raises(ConfigError):
            StoreConfig(n_segments=2)

    def test_rejects_zero_segment_units(self):
        with pytest.raises(ConfigError):
            StoreConfig(segment_units=0)

    @pytest.mark.parametrize("fill", [0.0, 1.0, -0.1, 1.5])
    def test_rejects_degenerate_fill_factor(self, fill):
        with pytest.raises(ConfigError):
            StoreConfig(fill_factor=fill)

    def test_rejects_nonpositive_trigger(self):
        with pytest.raises(ConfigError):
            StoreConfig(clean_trigger=0)

    def test_rejects_nonpositive_batch(self):
        with pytest.raises(ConfigError):
            StoreConfig(clean_batch=0)

    def test_rejects_negative_sort_buffer(self):
        with pytest.raises(ConfigError):
            StoreConfig(sort_buffer_segments=-1)

    def test_rejects_slack_below_trigger(self):
        # 95% fill of 64 segments leaves 3.2 segments of slack, which
        # cannot cover a trigger of 8.
        with pytest.raises(ConfigError) as err:
            StoreConfig(n_segments=64, fill_factor=0.95, clean_trigger=8)
        assert "slack" in str(err.value)

    def test_is_frozen(self):
        cfg = StoreConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.n_segments = 1


class TestDerived:
    def test_device_units(self):
        cfg = StoreConfig(n_segments=64, segment_units=32, fill_factor=0.5)
        assert cfg.device_units == 64 * 32

    def test_user_pages_scaled_by_fill(self):
        cfg = StoreConfig(n_segments=64, segment_units=32, fill_factor=0.5)
        assert cfg.user_pages == 1024

    def test_scaled_replaces_fields(self):
        cfg = StoreConfig()
        other = cfg.scaled(fill_factor=0.5)
        assert other.fill_factor == 0.5
        assert other.n_segments == cfg.n_segments
        assert cfg.fill_factor != 0.5  # original untouched


class TestPaperConfig:
    def test_matches_section_6_1_1(self):
        cfg = paper_config()
        assert cfg.n_segments == PAPER_DEVICE_SEGMENTS == 51200
        assert cfg.segment_units == PAPER_SEGMENT_PAGES == 512
        assert cfg.clean_trigger == PAPER_CLEAN_TRIGGER == 32
        assert cfg.clean_batch == PAPER_CLEAN_BATCH == 64

    def test_override(self):
        cfg = paper_config(fill_factor=0.5, clean_batch=128)
        assert cfg.fill_factor == 0.5
        assert cfg.clean_batch == 128
