"""Differential equivalence of the vectorized write engine.

``write_batch`` must be *byte-identical* to per-page ``write``: the two
executions of the same update stream end in the same state digest (page
table, segment table, stats, clock — everything the testkit hashes).
The grids below cross every registered policy family with the three
synthetic distributions, plus the edge cases where the batch engine
falls back to (or splits around) the scalar path: segment boundaries,
sizes that stop fitting, rewrites inside a single batch, interleaved
trims, and errors thrown mid-batch.
"""

import numpy as np
import pytest

from repro.policies import available_policies, make_policy
from repro.store import LogStructuredStore, PageSizeError, StoreConfig
from repro.testkit.trace import state_digest


def _config(sort_buffer=0):
    return StoreConfig(
        n_segments=48,
        segment_units=16,
        fill_factor=0.7,
        clean_trigger=3,
        clean_batch=3,
        sort_buffer_segments=sort_buffer,
        seed=5,
    )


def _pair(policy_name, sort_buffer=0):
    cfg = _config(sort_buffer)
    return (
        cfg,
        LogStructuredStore(cfg, make_policy(policy_name)),
        LogStructuredStore(cfg, make_policy(policy_name)),
    )


def _stream(dist, n_pages, total, seed=42):
    rng = np.random.default_rng(seed)
    if dist == "uniform":
        pids = rng.integers(0, n_pages, size=total)
    elif dist == "hotcold":
        hot = max(1, n_pages // 10)
        coin = rng.random(total) < 0.9
        pids = np.where(
            coin,
            rng.integers(0, hot, size=total),
            rng.integers(hot, n_pages, size=total),
        )
    else:  # zipfian: heavy duplicates exercise the in-run rewrite path
        pids = np.minimum(rng.zipf(1.2, size=total) - 1, n_pages - 1)
    return np.ascontiguousarray(pids, dtype=np.int64)


def _drive_both(scalar_store, batch_store, pids, sizes=None, chunk=97):
    """Same stream through both paths, in identical chunks."""
    for start in range(0, len(pids), chunk):
        part = pids[start : start + chunk]
        part_sizes = None if sizes is None else sizes[start : start + chunk]
        for i, pid in enumerate(part):
            scalar_store.write(
                int(pid), 1 if part_sizes is None else int(part_sizes[i])
            )
        batch_store.write_batch(part, sizes=part_sizes)


def _assert_identical(scalar_store, batch_store):
    assert state_digest(scalar_store) == state_digest(batch_store)
    batch_store.check_invariants()


@pytest.mark.parametrize("policy_name", available_policies())
@pytest.mark.parametrize("dist", ["uniform", "hotcold", "zipfian"])
def test_batch_matches_scalar_all_policies(policy_name, dist):
    cfg, scalar_store, batch_store = _pair(policy_name)
    if policy_name.endswith("-opt"):
        freqs = np.linspace(0.001, 0.2, cfg.user_pages).tolist()
        scalar_store.set_oracle_frequencies(freqs)
        batch_store.set_oracle_frequencies(freqs)
    scalar_store.load_sequential(cfg.user_pages)
    batch_store.load_sequential(cfg.user_pages)
    pids = _stream(dist, cfg.user_pages, 3000)
    _drive_both(scalar_store, batch_store, pids)
    _assert_identical(scalar_store, batch_store)


@pytest.mark.parametrize("policy_name", ["mdc", "greedy"])
def test_batch_matches_scalar_with_sort_buffer(policy_name):
    cfg, scalar_store, batch_store = _pair(policy_name, sort_buffer=2)
    scalar_store.load_sequential(cfg.user_pages)
    batch_store.load_sequential(cfg.user_pages)
    pids = _stream("zipfian", cfg.user_pages, 3000)
    _drive_both(scalar_store, batch_store, pids)
    scalar_store.flush()
    batch_store.flush()
    _assert_identical(scalar_store, batch_store)


def test_batch_matches_scalar_variable_sizes():
    cfg, scalar_store, batch_store = _pair("mdc")
    n = cfg.user_pages // 3
    rng = np.random.default_rng(7)
    init = rng.integers(1, 3, size=n)
    for store in (scalar_store, batch_store):
        for pid in range(n):
            store.write(pid, int(init[pid]))
    pids = _stream("hotcold", n, 2500)
    sizes = rng.integers(1, 5, size=len(pids))
    _drive_both(scalar_store, batch_store, pids, sizes=sizes)
    _assert_identical(scalar_store, batch_store)


def test_batch_matches_scalar_with_interleaved_trims():
    cfg, scalar_store, batch_store = _pair("cost-benefit")
    scalar_store.load_sequential(cfg.user_pages)
    batch_store.load_sequential(cfg.user_pages)
    rng = np.random.default_rng(11)
    for _ in range(25):
        pids = _stream("uniform", cfg.user_pages, 100, seed=int(rng.integers(1 << 30)))
        for i, pid in enumerate(pids):
            scalar_store.write(int(pid))
        batch_store.write_batch(pids)
        victim = int(rng.integers(0, cfg.user_pages))
        assert scalar_store.trim(victim) == batch_store.trim(victim)
    _assert_identical(scalar_store, batch_store)


def test_in_batch_rewrites_match_scalar():
    """Heavy duplication inside single batches (the in-run rewrite path:
    a page's old slot is in the very segment the run is filling)."""
    cfg, scalar_store, batch_store = _pair("greedy")
    scalar_store.load_sequential(cfg.user_pages)
    batch_store.load_sequential(cfg.user_pages)
    rng = np.random.default_rng(3)
    # Batches drawn from a tiny page set: most writes repeat a page that
    # was just written a few positions earlier in the same batch.
    for _ in range(20):
        pids = rng.integers(0, 5, size=64).astype(np.int64)
        for pid in pids:
            scalar_store.write(int(pid))
        batch_store.write_batch(pids)
    _assert_identical(scalar_store, batch_store)


def test_batch_split_at_segment_boundaries():
    """Property: wherever a batch straddles seal/clean boundaries, the
    split must be invisible — any chunking of the same stream produces
    the same final state."""
    cfg = _config()
    pids = _stream("uniform", cfg.user_pages, 2000)
    digests = []
    for chunk in (1, 7, 64, cfg.segment_units, 555, len(pids)):
        store = LogStructuredStore(cfg, make_policy("greedy"))
        store.load_sequential(cfg.user_pages)
        for start in range(0, len(pids), chunk):
            store.write_batch(pids[start : start + chunk])
        digests.append(state_digest(store))
    assert len(set(digests)) == 1


def test_batch_sizes_straddling_capacity():
    """Variable sizes chosen so runs end exactly at, just below, and
    just above the open segment's remaining capacity."""
    cfg, scalar_store, batch_store = _pair("greedy")
    # Few enough pages that even at the maximum size everything still
    # fits on the device with cleaning headroom.
    n = 20
    for store in (scalar_store, batch_store):
        for pid in range(n):
            store.write(pid, 1)
    rng = np.random.default_rng(19)
    u = cfg.segment_units
    sizes = np.array(
        [u, 1, u - 1, 2, u // 2, u // 2, 1, u, 3] * 40, dtype=np.int64
    )
    pids = rng.integers(0, n, size=len(sizes)).astype(np.int64)
    _drive_both(scalar_store, batch_store, pids, sizes=sizes, chunk=9)
    _assert_identical(scalar_store, batch_store)


def test_invalid_size_fails_after_identical_prefix():
    """An oversized page mid-batch must fail exactly where the scalar
    loop fails — with every preceding write applied."""
    cfg, scalar_store, batch_store = _pair("greedy")
    scalar_store.load_sequential(cfg.user_pages)
    batch_store.load_sequential(cfg.user_pages)
    pids = np.arange(10, dtype=np.int64)
    sizes = np.ones(10, dtype=np.int64)
    sizes[6] = cfg.segment_units + 1
    with pytest.raises(PageSizeError):
        for i, pid in enumerate(pids):
            scalar_store.write(int(pid), int(sizes[i]))
    with pytest.raises(PageSizeError):
        batch_store.write_batch(pids, sizes=sizes)
    _assert_identical(scalar_store, batch_store)


def test_batch_rejects_bad_shapes():
    cfg = _config()
    store = LogStructuredStore(cfg, make_policy("greedy"))
    with pytest.raises(ValueError):
        store.write_batch(np.zeros((2, 2), dtype=np.int64))
    with pytest.raises(ValueError):
        store.write_batch(
            np.arange(4, dtype=np.int64), sizes=np.ones(3, dtype=np.int64)
        )
    store.write_batch(np.empty(0, dtype=np.int64))  # no-op, no error
    assert store.clock == 0


def test_batch_grows_page_table():
    cfg = _config()
    store = LogStructuredStore(cfg, make_policy("greedy"))
    high = np.array([cfg.user_pages + 100, cfg.user_pages + 500], dtype=np.int64)
    store.write_batch(high)
    assert store.pages.seg[int(high[1])] >= 0
