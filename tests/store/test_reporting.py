"""Store introspection reports."""

import numpy as np
import pytest

from repro.policies import make_policy
from repro.store import LogStructuredStore
from repro.store.reporting import (
    checkerboard,
    describe,
    emptiness_histogram,
    temperature_report,
)
from repro.store.segments import FREE, OPEN, SEALED


@pytest.fixture
def busy_store(small_config):
    store = LogStructuredStore(small_config, make_policy("greedy"))
    n = small_config.user_pages
    store.load_sequential(n)
    for i in range(5000):
        store.write((i * 7) % n)
    return store


class TestHistogram:
    def test_counts_all_sealed_segments(self, busy_store):
        hist = emptiness_histogram(busy_store)
        assert sum(hist) == len(busy_store.sealed_segments())

    def test_bucket_count(self, busy_store):
        assert len(emptiness_histogram(busy_store, buckets=5)) == 5
        with pytest.raises(ValueError):
            emptiness_histogram(busy_store, buckets=0)

    def test_full_segments_in_first_bucket(self, small_config):
        store = LogStructuredStore(small_config, make_policy("greedy"))
        store.load_sequential(small_config.user_pages)
        hist = emptiness_histogram(store)
        assert hist[0] == sum(hist)  # everything fully live after load

    def test_no_sealed_segments_gives_zero_histogram(self, small_config):
        store = LogStructuredStore(small_config, make_policy("greedy"))
        assert emptiness_histogram(store, buckets=7) == [0] * 7

    def test_matches_scalar_reference(self, busy_store):
        """The vectorized histogram equals the per-segment loop."""
        segs = busy_store.segments
        for buckets in (3, 10, 17):
            expected = [0] * buckets
            for seg in range(segs.state.size):
                if segs.state[seg] != SEALED:
                    continue
                e = (segs.capacity - segs.live_units[seg]) / segs.capacity
                expected[min(buckets - 1, int(e * buckets))] += 1
            assert emptiness_histogram(busy_store, buckets) == expected


class TestCheckerboard:
    def test_marks_live_and_dead(self, small_config):
        store = LogStructuredStore(small_config, make_policy("greedy"))
        store.load_sequential(small_config.user_pages)
        seg, _ = store.pages.location(0)
        store.write(0)
        board = checkerboard(store, seg)
        assert board[0] == "."
        assert board.count("#") == store.segments.live_count[seg]
        assert len(board) == store.segments.slot_count[seg]

    def test_open_segment_shows_only_written_slots(self, small_config):
        """An open segment's board covers just the slots written so far;
        a rewrite inside it leaves a dead slot next to the live one."""
        store = LogStructuredStore(small_config, make_policy("greedy"))
        store.load_sequential(small_config.user_pages)
        store.write(0)  # relocates page 0 into an open segment...
        store.write(0)  # ...then obsoletes that very slot
        seg, _ = store.pages.location(0)
        assert store.segments.state[seg] == OPEN
        board = checkerboard(store, seg)
        assert board.count("#") == store.segments.live_count[seg]
        assert "." in board and "#" in board
        assert len(board) == store.segments.slot_count[seg]

    def test_free_segment_is_all_dead(self, busy_store):
        """A free segment — including one recycled by cleaning — shows
        no live pages: its slot list was wiped by the reset, so the
        board is empty rather than crashing on stale slots."""
        assert busy_store.stats.clean_cycles > 0
        free_segs = np.flatnonzero(busy_store.segments.state == FREE)
        assert free_segs.size > 0
        for seg in free_segs[:4]:
            board = checkerboard(busy_store, int(seg))
            assert "#" not in board
            assert board == "." * int(busy_store.segments.slot_count[int(seg)])


class TestDescribe:
    def test_mentions_key_metrics(self, busy_store):
        text = describe(busy_store)
        assert "Wamp" in text
        assert "wear" in text
        assert "histogram" in text
        assert "greedy" in text

    def test_reports_cumulative_and_windowed_wamp(self, busy_store):
        """Both figures appear: the cumulative one always, the windowed
        one when a measurement window is supplied."""
        text = describe(busy_store)
        assert "cumulative" in text
        assert "n/a windowed" in text  # no window, no observer

        snap = busy_store.stats.snapshot()
        n = busy_store.config.user_pages
        for i in range(1000):
            busy_store.write((i * 3) % n)
        window = busy_store.stats.window_since(snap)
        text = describe(busy_store, window=window)
        assert "%.3f windowed (over %d user writes)" % (
            window.write_amplification, window.user_writes,
        ) in text

    def test_uses_attached_observer_window(self, busy_store):
        from repro.obs import StoreObserver

        with StoreObserver(busy_store) as observer:
            n = busy_store.config.user_pages
            for i in range(1000):
                busy_store.write((i * 3) % n)
            text = describe(busy_store)
            assert "%.3f windowed" % (
                observer.window().write_amplification,
            ) in text


class TestTemperature:
    def test_empty_store(self, small_config):
        store = LogStructuredStore(small_config, make_policy("greedy"))
        assert temperature_report(store)["segments"] == 0

    def test_no_oracle_uses_recency_fallback(self, busy_store):
        """Without oracle frequencies (``freq_sum`` all zero) the rate
        falls back to ``2 / age`` from the up2 recency, the same
        two-interval shape MDC's estimator uses."""
        segs = busy_store.segments
        mask = (segs.state == SEALED) & (segs.live_count > 0)
        assert not segs.freq_sum[mask].any()  # greedy installs no oracle
        age = np.maximum(1.0, busy_store.clock - segs.up2[mask])
        rates = 2.0 / age
        mean = rates.mean()
        expected_cv = np.sqrt(((rates - mean) ** 2).mean()) / mean
        report = temperature_report(busy_store)
        assert report["segments"] == int(mask.sum())
        assert report["cv"] == pytest.approx(float(expected_cv))
        assert report["cv"] > 0.0

    def test_oracle_rates_used_when_installed(self, small_config):
        from repro.workloads import HotColdWorkload

        store = LogStructuredStore(small_config, make_policy("greedy"))
        wl = HotColdWorkload.from_skew(small_config.user_pages, 90, seed=3)
        store.set_oracle_frequencies(wl.frequencies())
        store.load_sequential(wl.n_pages)
        segs = store.segments
        mask = (segs.state == SEALED) & (segs.live_count > 0)
        assert (segs.freq_sum[mask] > 0).all()
        rates = segs.freq_sum[mask] / segs.live_count[mask]
        mean = rates.mean()
        expected_cv = np.sqrt(((rates - mean) ** 2).mean()) / mean
        assert temperature_report(store)["cv"] == pytest.approx(
            float(expected_cv)
        )

    def test_separated_store_has_higher_cv(self):
        """A separating policy leaves segments with more heterogeneous
        update rates than a mixing one under a skewed workload."""
        from repro.bench import run_simulation, prepare_store, drive
        from repro.store import StoreConfig
        from repro.workloads import HotColdWorkload

        cvs = {}
        for policy, buffer_segs in (("greedy", 0), ("mdc-opt", 8)):
            cfg = StoreConfig(
                n_segments=128, segment_units=32, fill_factor=0.8,
                clean_trigger=3, clean_batch=6,
                sort_buffer_segments=buffer_segs,
            )
            wl = HotColdWorkload.from_skew(cfg.user_pages, 90, seed=8)
            store = LogStructuredStore(cfg, make_policy(policy))
            # Install the oracle for BOTH stores so the report measures
            # the same quantity (true per-segment rates); greedy simply
            # does not consult it.
            store.set_oracle_frequencies(wl.frequencies())
            store.load_sequential(wl.n_pages)
            drive(store, wl, 40_000)
            cvs[policy] = temperature_report(store)["cv"]
        assert cvs["mdc-opt"] > cvs["greedy"]