"""Store introspection reports."""

import pytest

from repro.policies import make_policy
from repro.store import LogStructuredStore
from repro.store.reporting import (
    checkerboard,
    describe,
    emptiness_histogram,
    temperature_report,
)


@pytest.fixture
def busy_store(small_config):
    store = LogStructuredStore(small_config, make_policy("greedy"))
    n = small_config.user_pages
    store.load_sequential(n)
    for i in range(5000):
        store.write((i * 7) % n)
    return store


class TestHistogram:
    def test_counts_all_sealed_segments(self, busy_store):
        hist = emptiness_histogram(busy_store)
        assert sum(hist) == len(busy_store.sealed_segments())

    def test_bucket_count(self, busy_store):
        assert len(emptiness_histogram(busy_store, buckets=5)) == 5
        with pytest.raises(ValueError):
            emptiness_histogram(busy_store, buckets=0)

    def test_full_segments_in_first_bucket(self, small_config):
        store = LogStructuredStore(small_config, make_policy("greedy"))
        store.load_sequential(small_config.user_pages)
        hist = emptiness_histogram(store)
        assert hist[0] == sum(hist)  # everything fully live after load


class TestCheckerboard:
    def test_marks_live_and_dead(self, small_config):
        store = LogStructuredStore(small_config, make_policy("greedy"))
        store.load_sequential(small_config.user_pages)
        seg, _ = store.pages.location(0)
        store.write(0)
        board = checkerboard(store, seg)
        assert board[0] == "."
        assert board.count("#") == store.segments.live_count[seg]
        assert len(board) == len(store.segments.slots[seg])


class TestDescribe:
    def test_mentions_key_metrics(self, busy_store):
        text = describe(busy_store)
        assert "Wamp" in text
        assert "wear" in text
        assert "histogram" in text
        assert "greedy" in text


class TestTemperature:
    def test_empty_store(self, small_config):
        store = LogStructuredStore(small_config, make_policy("greedy"))
        assert temperature_report(store)["segments"] == 0

    def test_separated_store_has_higher_cv(self):
        """A separating policy leaves segments with more heterogeneous
        update rates than a mixing one under a skewed workload."""
        from repro.bench import run_simulation, prepare_store, drive
        from repro.store import StoreConfig
        from repro.workloads import HotColdWorkload

        cvs = {}
        for policy, buffer_segs in (("greedy", 0), ("mdc-opt", 8)):
            cfg = StoreConfig(
                n_segments=128, segment_units=32, fill_factor=0.8,
                clean_trigger=3, clean_batch=6,
                sort_buffer_segments=buffer_segs,
            )
            wl = HotColdWorkload.from_skew(cfg.user_pages, 90, seed=8)
            store = LogStructuredStore(cfg, make_policy(policy))
            # Install the oracle for BOTH stores so the report measures
            # the same quantity (true per-segment rates); greedy simply
            # does not consult it.
            store.set_oracle_frequencies(wl.frequencies())
            store.load_sequential(wl.n_pages)
            drive(store, wl, 40_000)
            cvs[policy] = temperature_report(store)["cv"]
        assert cvs["mdc-opt"] > cvs["greedy"]