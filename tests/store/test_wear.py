"""Erase-count (flash wear) tracking."""

import pytest

from repro.policies import make_policy
from repro.store import LogStructuredStore


class TestWear:
    def test_fresh_store_has_no_wear(self, tiny_config):
        store = LogStructuredStore(tiny_config, make_policy("greedy"))
        summary = store.wear_summary()
        assert summary["total_erases"] == 0
        assert summary["cv"] == 0.0

    def test_cleaning_increments_erases(self, small_config):
        store = LogStructuredStore(small_config, make_policy("greedy"))
        store.load_sequential(small_config.user_pages)
        victim = store.sealed_segments()[0]
        for pid in store.pages.live_pages_of(store.segments, victim)[:4]:
            store.write(pid)
        store.policy.select_victims = lambda c, n=None: [victim]
        store.clean()
        assert store.segments.erase_count[victim] == 1
        assert store.wear_summary()["total_erases"] == 1

    def test_total_erases_equals_segments_cleaned(self, small_config):
        store = LogStructuredStore(small_config, make_policy("greedy"))
        n = small_config.user_pages
        store.load_sequential(n)
        for i in range(20_000):
            store.write((i * 11) % n)
        assert (
            store.wear_summary()["total_erases"]
            == store.stats.segments_cleaned
        )

    def test_wear_spreads_across_segments(self, small_config):
        store = LogStructuredStore(small_config, make_policy("age"))
        n = small_config.user_pages
        store.load_sequential(n)
        for i in range(30_000):
            store.write((i * 11) % n)
        summary = store.wear_summary()
        # Age-based cleaning is a circular buffer: the most even wear a
        # policy can achieve.
        assert summary["max"] - summary["min"] <= 3
        assert summary["cv"] < 0.3
