"""Crash safety around incremental-cleaning preemption points.

The ``store.clean.step`` failpoint sits at the top of every step —
before any mutation — so an injected fault there models a crash landing
exactly between cleaner steps.  The cycle must be resumable afterwards
as if nothing happened, and a checkpoint taken mid-cycle must drain the
cursor first so no ``IN_RELOCATION`` sentinel ever reaches disk.
"""

import pytest

from repro.policies import make_policy
from repro.store import (
    IN_RELOCATION,
    IncrementalCleaner,
    LogStructuredStore,
    StoreConfig,
    load_store,
    save_store,
)
from repro.testkit.failpoints import FAILPOINTS, InjectedFault
from repro.testkit.trace import state_digest
from repro.workloads import UniformWorkload


@pytest.fixture
def cfg():
    return StoreConfig(
        n_segments=32, segment_units=8, fill_factor=0.65,
        clean_trigger=2, clean_batch=2,
    )


def loaded_store(cfg, n_writes=2200, seed=3):
    store = LogStructuredStore(cfg, make_policy("greedy"))
    wl = UniformWorkload(cfg.user_pages, seed=seed)
    for batch in wl.batches(n_writes):
        for pid in batch:
            store.write(int(pid))
    return store


def begin_cycle(store):
    while (
        store.free_segment_count < store.config.clean_trigger + 3
        and store.sealed_segments().size > 0
    ):
        store.clean()
    store.clean_begin()
    cur = store.clean_cursor
    assert cur is not None
    assert cur.remaining > 4, "seed must stage enough pages to preempt"
    return cur


class TestFaultBetweenSteps:
    def test_fault_leaves_cursor_resumable(self, cfg):
        store = loaded_store(cfg)
        cur = begin_cycle(store)
        store.clean_step(2)
        pos = cur.pos
        relocated = cur.relocated
        with FAILPOINTS.armed("store.clean.step"):
            with pytest.raises(InjectedFault):
                store.clean_step(2)
        # The failpoint fires before any mutation: nothing moved.
        assert store.clean_cursor is cur
        assert cur.pos == pos
        assert cur.relocated == relocated
        store.check_invariants()
        # Resume to completion once the fault clears.
        store.clean_step(None)
        assert store.clean_cursor is None
        store.check_invariants()

    def test_faulted_run_equals_unfaulted_run(self, cfg):
        """A fault between steps, then resume, must land on the exact
        state an unfaulted stepped run produces."""
        crashed = loaded_store(cfg)
        smooth = loaded_store(cfg)
        begin_cycle(crashed)
        begin_cycle(smooth)
        crashed.clean_step(3)
        smooth.clean_step(3)
        with FAILPOINTS.armed("store.clean.step"):
            with pytest.raises(InjectedFault):
                crashed.clean_step(3)
        while crashed.clean_cursor is not None:
            crashed.clean_step(3)
        while smooth.clean_cursor is not None:
            smooth.clean_step(3)
        assert state_digest(crashed) == state_digest(smooth)

    def test_fault_mid_engine_step_is_contained(self, cfg):
        """The engine surfaces the fault; the store stays consistent
        and the next engine step picks the cycle back up."""
        store = loaded_store(cfg)
        cleaner = IncrementalCleaner(store, pages_per_step=3)
        begin_cycle(store)
        with FAILPOINTS.armed("store.clean.step"):
            with pytest.raises(InjectedFault):
                cleaner.step()
        store.check_invariants()
        while store.clean_cursor is not None:
            cleaner.step()
        store.check_invariants()

    def test_fault_skip_hits_a_later_step(self, cfg):
        store = loaded_store(cfg)
        begin_cycle(store)
        with FAILPOINTS.armed("store.clean.step", skip=2) as arm:
            store.clean_step(1)
            store.clean_step(1)
            with pytest.raises(InjectedFault):
                store.clean_step(1)
        assert arm.fired == 1
        store.clean_step(None)
        store.check_invariants()


class TestCheckpointMidCycle:
    def test_save_drains_cursor(self, cfg, tmp_path):
        store = loaded_store(cfg)
        begin_cycle(store)
        store.clean_step(2)
        assert store.clean_pending > 0
        path = tmp_path / "mid.npz"
        save_store(store, path)
        # The save drained the cycle in the live store...
        assert store.clean_cursor is None
        assert not (store.pages.seg == IN_RELOCATION).any()
        # ...and the checkpoint restores that drained state exactly.
        restored = load_store(path, make_policy("greedy"))
        assert not (restored.pages.seg == IN_RELOCATION).any()
        assert state_digest(restored) == state_digest(store)
        restored.check_invariants()

    def test_recovery_preserves_live_set(self, cfg, tmp_path):
        """Interleaved run, checkpoint at an arbitrary mid-cycle point,
        reload: the recovered store serves exactly the model's pages."""
        store = LogStructuredStore(cfg, make_policy("greedy"))
        cleaner = IncrementalCleaner(store, pages_per_step=2)
        model = {}
        n = cfg.user_pages
        for i in range(2600):
            pid = (i * 11 + 1) % n
            if i % 10 == 9:
                store.trim(pid)
                model.pop(pid, None)
            else:
                store.write(pid)
                model[pid] = True
            if i % 6 == 0:
                cleaner.step()
        path = tmp_path / "ckpt.npz"
        save_store(store, path)  # may drain a mid-flight cycle
        restored = load_store(path, make_policy("greedy"))
        restored.check_invariants()
        pages = restored.pages
        live = {pid for pid in range(len(pages.seg)) if pages.seg[pid] != -1}
        assert live == set(model)
        # The recovered store keeps working — including more cleaning.
        recleaner = IncrementalCleaner(restored, pages_per_step=2)
        for i in range(600):
            restored.write((i * 5 + 2) % n)
            if i % 6 == 0:
                recleaner.step()
        restored.check_invariants()

    def test_crash_during_mid_cycle_save_keeps_old_checkpoint(
        self, cfg, tmp_path
    ):
        """Atomicity still holds when the save itself dies after the
        cursor drain: the previous checkpoint stays loadable."""
        store = loaded_store(cfg)
        path = tmp_path / "ckpt.npz"
        save_store(store, path)
        good = state_digest(load_store(path, make_policy("greedy")))
        begin_cycle(store)
        store.clean_step(1)
        with FAILPOINTS.armed("persistence.save.pre_rename"):
            with pytest.raises(InjectedFault):
                save_store(store, path)
        restored = load_store(path, make_policy("greedy"))
        assert state_digest(restored) == good
