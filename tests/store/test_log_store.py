"""LogStructuredStore mechanics: write path, sealing, cleaning cycle,
space accounting, up2 carry-forward, and regression tests for the
stale-pointer races around cleaning."""

import math

import pytest

from repro.policies import make_policy
from repro.store import (
    GC_STREAM,
    IN_BUFFER,
    LogStructuredStore,
    OutOfSpaceError,
    PageSizeError,
    SEALED,
    StoreConfig,
)


def greedy_store(cfg):
    return LogStructuredStore(cfg, make_policy("greedy"))


class TestWritePath:
    def test_write_advances_clock_and_counters(self, tiny_config):
        store = greedy_store(tiny_config)
        store.write(0)
        assert store.clock == 1
        assert store.stats.user_writes == 1
        assert store.stats.gc_writes == 0

    def test_write_places_page_in_open_segment(self, tiny_config):
        store = greedy_store(tiny_config)
        store.write(5)
        seg, slot = store.pages.location(5)
        assert seg >= 0
        assert store.segments.slot_page[seg, slot] == 5
        assert store.segments.live_count[seg] == 1

    def test_overwrite_invalidates_old_slot(self, tiny_config):
        store = greedy_store(tiny_config)
        store.write(5)
        old_seg, old_slot = store.pages.location(5)
        store.write(5)
        new_seg, new_slot = store.pages.location(5)
        assert (new_seg, new_slot) != (old_seg, old_slot)
        assert not store.pages.is_live_slot(old_seg, old_slot, 5)

    def test_overwrite_updates_segment_space_accounting(self, tiny_config):
        store = greedy_store(tiny_config)
        for pid in range(tiny_config.segment_units):
            store.write(pid)
        # First segment is full and sealed; overwrite one of its pages.
        seg, _ = store.pages.location(0)
        before = store.segments.available_units(seg)
        store.write(0)
        assert store.segments.available_units(seg) == before + 1
        assert store.segments.live_count[seg] == tiny_config.segment_units - 1

    def test_rejects_bad_page_size(self, tiny_config):
        store = greedy_store(tiny_config)
        with pytest.raises(PageSizeError):
            store.write(0, size=0)
        with pytest.raises(PageSizeError):
            store.write(0, size=tiny_config.segment_units + 1)

    def test_page_table_grows_on_demand(self, tiny_config):
        store = greedy_store(tiny_config)
        store.write(1000)
        assert len(store.pages) >= 1001
        seg, _ = store.pages.location(1000)
        assert seg >= 0

    def test_segment_seals_when_full(self, tiny_config):
        store = greedy_store(tiny_config)
        s = tiny_config.segment_units
        for pid in range(s + 1):
            store.write(pid)
        first_seg, _ = store.pages.location(0)
        assert store.segments.state[first_seg] == SEALED
        assert store.segments.seal_time[first_seg] > 0


class TestUp2Rules:
    """The Section 5.2.2 update-history carry-forward rules."""

    def test_segment_up_pair_advances_on_overwrite(self, tiny_config):
        store = greedy_store(tiny_config)
        # s+1 writes so the first segment is sealed (sealing is lazy:
        # it happens when the overflow write needs a fresh segment).
        for pid in range(tiny_config.segment_units + 1):
            store.write(pid)
        seg, _ = store.pages.location(0)
        assert store.segments.state[seg] == SEALED
        store.write(0)
        first_update = store.clock
        store.write(1)
        assert store.segments.up1[seg] == store.clock
        assert store.segments.up2[seg] == first_update

    def test_rewritten_page_carries_midpoint(self, tiny_config):
        store = greedy_store(tiny_config)
        for pid in range(tiny_config.segment_units):
            store.write(pid)
        seg, _ = store.pages.location(0)
        seg_up2 = store.segments.up2[seg]
        store.write(0)
        expected = seg_up2 + 0.5 * (store.clock - seg_up2)
        assert store.pages.carried_up2[0] == pytest.approx(expected)

    def test_sealed_segment_up2_is_average_of_carried(self, tiny_config):
        store = greedy_store(tiny_config)
        s = tiny_config.segment_units
        for pid in range(s + 1):
            store.write(pid)
        seg, _ = store.pages.location(0)
        carried = [store.pages.carried_up2[p] for p in range(s)]
        assert store.segments.up2[seg] == pytest.approx(
            sum(carried) / len(carried)
        )

    def test_gc_pages_inherit_source_segment_up2(self, small_config):
        store = greedy_store(small_config)
        store.load_sequential(small_config.user_pages)
        # Overwrite a few pages of one sealed segment, then clean it.
        victim, _ = store.pages.location(0)
        for pid in store.pages.live_pages_of(store.segments, victim)[:5]:
            store.write(pid)
        src_up2 = store.segments.up2[victim]
        survivors = store.pages.live_pages_of(store.segments, victim)
        store.policy.select_victims = lambda c, n=None: [victim]
        store.clean()
        for pid in survivors:
            assert store.pages.carried_up2[pid] == pytest.approx(src_up2)


class TestCleaning:
    def test_cleaning_triggers_below_threshold(self, tiny_config):
        store = greedy_store(tiny_config)
        store.load_sequential(tiny_config.user_pages)
        before = store.stats.clean_cycles
        # Keep rewriting; the free pool must stay at/above the trigger.
        for i in range(tiny_config.user_pages * 3):
            store.write(i % tiny_config.user_pages)
        assert store.stats.clean_cycles > before
        assert store.free_segment_count >= tiny_config.clean_trigger

    def test_clean_frees_victims_and_relocates_live(self, small_config):
        store = greedy_store(small_config)
        store.load_sequential(small_config.user_pages)
        victim = store.sealed_segments()[0]
        live_before = store.pages.live_pages_of(store.segments, victim)
        store.policy.select_victims = lambda c, n=None: [victim]
        gc_before = store.stats.gc_writes
        store.clean()
        assert store.segments.state[victim] != SEALED
        assert store.stats.gc_writes == gc_before + len(live_before)
        for pid in live_before:
            seg, slot = store.pages.location(pid)
            assert seg >= 0
            assert store.segments.slot_page[seg, slot] == pid

    def test_clean_returns_reclaimed_units(self, small_config):
        store = greedy_store(small_config)
        store.load_sequential(small_config.user_pages)
        victim = store.sealed_segments()[0]
        for pid in store.pages.live_pages_of(store.segments, victim)[:4]:
            store.write(pid)
        avail = store.segments.available_units(victim)
        store.policy.select_victims = lambda c, n=None: [victim]
        assert store.clean() == avail

    def test_clean_records_emptiness_statistics(self, small_config):
        store = greedy_store(small_config)
        store.load_sequential(small_config.user_pages)
        victim = store.sealed_segments()[0]
        for pid in store.pages.live_pages_of(store.segments, victim)[:8]:
            store.write(pid)
        expected_e = store.segments.emptiness(victim)
        store.policy.select_victims = lambda c, n=None: [victim]
        cleaned_before = store.stats.segments_cleaned
        e_before = store.stats.cleaned_emptiness_sum
        store.clean()
        assert store.stats.segments_cleaned == cleaned_before + 1
        assert store.stats.cleaned_emptiness_sum - e_before == pytest.approx(
            expected_e
        )

    def test_out_of_space_when_nothing_reclaimable(self):
        cfg = StoreConfig(
            n_segments=16, segment_units=8, fill_factor=0.5,
            clean_trigger=2, clean_batch=2,
        )
        store = greedy_store(cfg)
        store.load_sequential(cfg.user_pages)
        # Write fresh pages only (never overwriting): all segments stay
        # fully live, so cleaning cannot reclaim anything.
        with pytest.raises(OutOfSpaceError):
            for pid in range(cfg.user_pages, cfg.device_units * 2):
                store.write(pid)


class TestSortBuffer:
    def test_buffered_pages_marked_in_buffer(self, buffered_config):
        store = LogStructuredStore(buffered_config, make_policy("mdc"))
        store.write(0)
        assert store.pages.seg[0] == IN_BUFFER
        assert 0 in store.buffer

    def test_flush_places_all_buffered_pages(self, buffered_config):
        store = LogStructuredStore(buffered_config, make_policy("mdc"))
        for pid in range(10):
            store.write(pid)
        store.flush()
        for pid in range(10):
            seg, _ = store.pages.location(pid)
            assert seg >= 0

    def test_rewrite_of_buffered_page_keeps_one_copy(self, buffered_config):
        store = LogStructuredStore(buffered_config, make_policy("mdc"))
        store.write(0)
        store.write(0)
        assert len(store.buffer) == 1
        assert store.stats.user_writes == 2

    def test_buffer_flushes_when_full(self, buffered_config):
        store = LogStructuredStore(buffered_config, make_policy("mdc"))
        cap = buffered_config.sort_buffer_segments * buffered_config.segment_units
        for pid in range(cap + 1):
            store.write(pid)
        # One overflow write forces a flush of the first `cap` pages.
        assert len(store.buffer) == 1
        seg, _ = store.pages.location(0)
        assert seg >= 0

    def test_policies_without_separation_skip_buffer(self, buffered_config):
        store = LogStructuredStore(buffered_config, make_policy("greedy"))
        assert store.buffer is None
        store = LogStructuredStore(
            buffered_config, make_policy("mdc-no-sep-user")
        )
        assert store.buffer is None


class TestOracle:
    def test_oracle_frequencies_tracked_per_segment(self, tiny_config):
        store = greedy_store(tiny_config)
        freqs = [0.125] * 8
        store.set_oracle_frequencies(freqs)
        for pid in range(8):
            store.write(pid)
        seg, _ = store.pages.location(0)
        assert store.segments.freq_sum[seg] == pytest.approx(1.0)

    def test_invalidation_subtracts_frequency(self, tiny_config):
        store = greedy_store(tiny_config)
        n = tiny_config.segment_units + 1
        store.set_oracle_frequencies([1.0 / n] * n)
        for pid in range(n):
            store.write(pid)
        seg0, _ = store.pages.location(0)
        assert store.segments.state[seg0] == SEALED
        before = store.segments.freq_sum[seg0]
        store.write(0)  # page 0 moves to the open segment
        assert store.segments.freq_sum[seg0] == pytest.approx(before - 1.0 / n)


class TestRaceRegressions:
    """The two stale-pointer bugs found during bring-up.

    1. A page whose old slot was invalidated but whose new version had
       not yet been placed must not be treated as live by a cleaning
       cycle that runs in between (it would be relocated *and* placed,
       leaking a phantom live slot).
    2. A policy whose GC shares streams with user writes must not leak
       OPEN segments when cleaning re-opens the stream a user emit was
       about to allocate for.

    Both manifest as invariant violations within a few thousand writes,
    so the regression test is simply a long-ish deterministic run with
    invariant checks, per policy, on a device small enough for constant
    cleaning.
    """

    @pytest.mark.parametrize(
        "policy_name", ["greedy", "mdc", "mdc-opt", "multi-log", "multi-log-opt"]
    )
    def test_invariants_hold_under_pressure(self, policy_name):
        cfg = StoreConfig(
            n_segments=32, segment_units=8, fill_factor=0.7,
            clean_trigger=2, clean_batch=2, sort_buffer_segments=1,
        )
        store = LogStructuredStore(cfg, make_policy(policy_name))
        n = cfg.user_pages
        if policy_name.endswith("-opt"):
            store.set_oracle_frequencies([1.0 / n] * n)
        store.load_sequential(n)
        # Deterministic skewed pattern: page i hit with period ~ i+1.
        for step in range(4000):
            store.write((step * step) % n)
            if step % 500 == 0:
                store.check_invariants()
        store.check_invariants()

    def test_open_segments_do_not_leak(self):
        cfg = StoreConfig(
            n_segments=32, segment_units=8, fill_factor=0.7,
            clean_trigger=4, clean_batch=2,
        )
        store = LogStructuredStore(cfg, make_policy("multi-log"))
        n = cfg.user_pages
        store.load_sequential(n)
        for step in range(5000):
            store.write((step * 7) % n)
        open_states = sum(1 for s in store.segments.state if s == 1)
        assert open_states == len(store.open_segments)


class TestIntrospection:
    def test_fill_factor_now_close_to_config(self, small_config):
        store = greedy_store(small_config)
        store.load_sequential(small_config.user_pages)
        assert store.fill_factor_now() == pytest.approx(
            small_config.fill_factor, abs=0.02
        )

    def test_repr_mentions_policy(self, tiny_config):
        store = greedy_store(tiny_config)
        assert "greedy" in repr(store)

    def test_live_page_count(self, tiny_config):
        store = greedy_store(tiny_config)
        store.write(0)
        store.write(1)
        store.write(0)
        assert store.live_page_count() == 2
