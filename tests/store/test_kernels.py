"""Parity suite for the optional compiled kernels.

Three layers, matching the contract in ``repro.store.kernels``:

1. The pure fallbacks are property-tested against brute-force oracles
   (these are the reference implementations the whole suite runs on).
2. Wherever numba is importable, every numba kernel is Hypothesis-fuzzed
   for *bit-identity* against its fallback — same outputs, same IEEE-754
   float bits.  These cases skip cleanly on machines without numba.
3. End-to-end: a store run under ``REPRO_KERNEL=python`` in a subprocess
   must produce the same :func:`repro.testkit.trace.state_digest` as the
   in-process run under whatever mode is active.
"""

import json
import os
import subprocess
import sys
import textwrap

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.store import kernels
from repro.store.kernels import (
    ACTIVE,
    HAVE_NUMBA,
    ascending_prefix,
    fold_add,
    kernel_info,
    prev_occurrence,
)

page_id_arrays = st.lists(
    st.integers(min_value=0, max_value=40), min_size=0, max_size=200
).map(lambda xs: np.asarray(xs, dtype=np.int64))

float_arrays = st.lists(
    st.floats(
        min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
    ),
    min_size=0,
    max_size=120,
).map(lambda xs: np.asarray(xs, dtype=np.float64))

priority_arrays = st.lists(
    st.floats(
        min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False
    ),
    min_size=1,
    max_size=150,
).map(lambda xs: np.asarray(xs, dtype=np.float64))


class TestFallbacksAgainstOracles:
    """The reference implementations vs the dumbest possible model."""

    @given(pids=page_id_arrays)
    @settings(max_examples=100, deadline=None)
    def test_prev_occurrence_matches_linear_scan(self, pids):
        got = prev_occurrence(pids)
        last = {}
        for i, p in enumerate(pids.tolist()):
            assert got[i] == last.get(p, -1)
            last[p] = i

    @given(current=st.floats(-1e6, 1e6), values=float_arrays)
    @settings(max_examples=100, deadline=None)
    def test_fold_add_is_bit_identical_to_scalar_loop(self, current, values):
        acc = float(current)
        for v in values.tolist():
            acc += v
        # Bit-identity, not approx: the fold feeds accounting that the
        # differential oracle compares with ==.
        assert fold_add(current, values) == acc

    @given(priorities=priority_arrays, data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_ascending_prefix_is_stable_argsort_prefix(
        self, priorities, data
    ):
        need = data.draw(
            st.integers(min_value=1, max_value=priorities.size), label="need"
        )
        got = ascending_prefix(priorities, need)
        full = np.argsort(priorities, kind="stable")
        assert got.size >= need
        np.testing.assert_array_equal(got, full[: got.size])

    def test_nan_priorities_fall_back_to_full_sort(self):
        # Enough NaNs that the need-th smallest is NaN: the cut is
        # undefined and the kernel must hand back the full stable sort.
        priorities = np.array([float(i) for i in range(6)] + [np.nan] * 35)
        got = ascending_prefix(priorities, 10)
        np.testing.assert_array_equal(
            got, np.argsort(priorities, kind="stable")
        )

    def test_nan_outside_the_prefix_is_harmless(self):
        priorities = np.array([np.nan] + [float(i) for i in range(40)])
        got = ascending_prefix(priorities, 2)
        full = np.argsort(priorities, kind="stable")
        np.testing.assert_array_equal(got, full[: got.size])


@pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
class TestNumbaBitIdentity:
    """Every compiled kernel vs its fallback, on the same inputs."""

    @given(pids=page_id_arrays)
    @settings(max_examples=100, deadline=None)
    def test_prev_occurrence_parity(self, pids):
        np.testing.assert_array_equal(
            kernels._prev_occurrence_nb(pids),
            kernels._prev_occurrence_py(pids),
        )

    @given(current=st.floats(-1e6, 1e6), values=float_arrays)
    @settings(max_examples=100, deadline=None)
    def test_fold_add_parity_is_bitwise(self, current, values):
        nb = kernels._fold_add_nb(float(current), values)
        py = kernels._fold_add_py(float(current), values)
        assert np.float64(nb).tobytes() == np.float64(py).tobytes()

    @given(priorities=priority_arrays, data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_prefix_gather_parity(self, priorities, data):
        need = data.draw(
            st.integers(min_value=1, max_value=priorities.size), label="need"
        )
        np.testing.assert_array_equal(
            kernels._prefix_gather_nb(priorities, need),
            kernels._prefix_gather_py(priorities, need),
        )


def _digest_script():
    return textwrap.dedent(
        """
        import json
        from repro.policies import make_policy
        from repro.store import LogStructuredStore, StoreConfig
        from repro.store.kernels import ACTIVE
        from repro.testkit.trace import state_digest
        from repro.bench.experiments import make_workload

        cfg = StoreConfig(
            n_segments=48, segment_units=16, fill_factor=0.7,
            clean_trigger=3, clean_batch=4, seed=11,
        )
        store = LogStructuredStore(cfg, make_policy("cost-benefit"))
        workload = make_workload("zipf-80-20", cfg.user_pages, 11)
        for chunk in workload.batches(4000, 512):
            store.write_batch(chunk)
        store.flush()
        print(json.dumps({"active": ACTIVE, "digest": state_digest(store)}))
        """
    )


class TestModeSwitch:
    def test_kernel_info_reports_active_mode(self):
        info = kernel_info()
        assert info["active"] == ACTIVE
        assert info["active"] in ("python", "numba")
        assert info["have_numba"] == HAVE_NUMBA

    def test_forced_python_digest_matches_active_mode(self):
        """REPRO_KERNEL=python must be indistinguishable end to end."""
        env = dict(os.environ, REPRO_KERNEL="python")
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", "")) if p
        )
        out = subprocess.run(
            [sys.executable, "-c", _digest_script()],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        forced = json.loads(out.stdout)
        assert forced["active"] == "python"

        import io
        from contextlib import redirect_stdout

        buf = io.StringIO()
        with redirect_stdout(buf):
            exec(compile(_digest_script(), "<digest>", "exec"), {})
        local = json.loads(buf.getvalue())
        assert forced["digest"] == local["digest"]

    def test_bad_mode_rejected_at_import(self):
        env = dict(os.environ, REPRO_KERNEL="turbo")
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", "")) if p
        )
        out = subprocess.run(
            [sys.executable, "-c", "import repro.store.kernels"],
            capture_output=True,
            text=True,
            env=env,
        )
        assert out.returncode != 0
        assert "REPRO_KERNEL" in out.stderr

    @pytest.mark.skipif(HAVE_NUMBA, reason="numba is installed here")
    def test_requiring_numba_without_it_is_loud(self):
        env = dict(os.environ, REPRO_KERNEL="numba")
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", "")) if p
        )
        out = subprocess.run(
            [sys.executable, "-c", "import repro.store.kernels"],
            capture_output=True,
            text=True,
            env=env,
        )
        assert out.returncode != 0
        assert "numba is not importable" in out.stderr
