"""Write-amplification accounting: cumulative counters, snapshots,
window deltas, and the Equation 1/2 derived metrics."""

import pytest

from repro.store import StoreStats


@pytest.fixture
def stats():
    return StoreStats()


class TestCumulative:
    def test_zero_start(self, stats):
        assert stats.user_writes == 0
        assert stats.write_amplification == 0.0

    def test_wamp_is_gc_over_user(self, stats):
        stats.user_writes = 100
        stats.gc_writes = 50
        assert stats.write_amplification == pytest.approx(0.5)


class TestWindows:
    def test_window_delta_excludes_history(self, stats):
        stats.user_writes = 100
        stats.gc_writes = 200  # terrible warm-up
        mark = stats.snapshot()
        stats.user_writes += 100
        stats.gc_writes += 10
        window = stats.window_since(mark)
        assert window.user_writes == 100
        assert window.gc_writes == 10
        assert window.write_amplification == pytest.approx(0.1)

    def test_empty_window_is_not_a_division_error(self, stats):
        mark = stats.snapshot()
        window = stats.window_since(mark)
        assert window.write_amplification == 0.0
        assert window.mean_cleaned_emptiness == 0.0
        assert window.cost_per_segment == float("inf")

    def test_mean_cleaned_emptiness(self, stats):
        mark = stats.snapshot()
        stats.segments_cleaned = 4
        stats.cleaned_emptiness_sum = 2.0
        window = stats.window_since(mark)
        assert window.mean_cleaned_emptiness == pytest.approx(0.5)
        # Equation 1 at E=0.5: Cost = 2/E = 4.
        assert window.cost_per_segment == pytest.approx(4.0)

    def test_snapshot_is_immutable_copy(self, stats):
        mark = stats.snapshot()
        stats.user_writes = 10
        assert mark.user_writes == 0
        with pytest.raises(Exception):
            mark.user_writes = 5
