"""Write streams: user/GC separation, multi-stream policies, flush
edge cases."""

import pytest

from repro.policies import make_policy
from repro.store import GC_STREAM, LogStructuredStore, StoreConfig


class TestGcStream:
    def test_gc_pages_do_not_share_user_open_segment(self, small_config):
        store = LogStructuredStore(small_config, make_policy("greedy"))
        store.load_sequential(small_config.user_pages)
        victim = store.sealed_segments()[0]
        for pid in store.pages.live_pages_of(store.segments, victim)[:4]:
            store.write(pid)
        user_seg = store.open_segments.get(0)
        store.policy.select_victims = lambda c, n=None: [victim]
        store.clean()
        gc_seg = store.open_segments.get(GC_STREAM)
        assert gc_seg is not None
        assert gc_seg != user_seg

    def test_gc_destination_holds_only_survivors(self, small_config):
        store = LogStructuredStore(small_config, make_policy("greedy"))
        store.load_sequential(small_config.user_pages)
        victim = store.sealed_segments()[0]
        survivors = set(store.pages.live_pages_of(store.segments, victim))
        store.policy.select_victims = lambda c, n=None: [victim]
        store.clean()
        gc_seg = store.open_segments[GC_STREAM]
        assert set(store.segments.slot_list(gc_seg)) <= survivors


class TestMultiStream:
    def test_multilog_opens_one_segment_per_active_class(self):
        cfg = StoreConfig(
            n_segments=128, segment_units=16, fill_factor=0.6,
            clean_trigger=3, clean_batch=3,
        )
        store = LogStructuredStore(cfg, make_policy("multi-log"))
        n = cfg.user_pages
        store.load_sequential(n)
        # Page 0 is written every other update: a hot class emerges.
        for i in range(600):
            store.write(0)
            store.write(1 + (i % (n - 1)))
        assert len(store.open_segments) >= 2
        # Every mapped open segment really is open.
        for seg in store.open_segments.values():
            assert store.segments.state[seg] == 1


class TestFlushEdgeCases:
    def test_flush_without_buffer_is_noop(self, small_config):
        store = LogStructuredStore(small_config, make_policy("greedy"))
        store.write(0)
        before = store.stats.snapshot()
        store.flush()
        assert store.stats.snapshot() == before

    def test_flush_empty_buffer_is_noop(self, buffered_config):
        store = LogStructuredStore(buffered_config, make_policy("mdc"))
        store.flush()
        assert store.stats.user_device_writes == 0

    def test_double_flush_idempotent(self, buffered_config):
        store = LogStructuredStore(buffered_config, make_policy("mdc"))
        for pid in range(5):
            store.write(pid)
        store.flush()
        writes = store.stats.user_device_writes
        store.flush()
        assert store.stats.user_device_writes == writes


class TestLoadSequential:
    def test_load_with_sizes(self, small_config):
        store = LogStructuredStore(small_config, make_policy("greedy"))
        sizes = [1 + (i % 3) for i in range(100)]
        store.load_sequential(100, sizes)
        assert sum(store.segments.live_units) == sum(sizes)
        store.check_invariants()

    def test_sealed_excludes_open_and_free(self, small_config):
        store = LogStructuredStore(small_config, make_policy("greedy"))
        store.load_sequential(small_config.user_pages)
        sealed = set(store.sealed_segments())
        assert not sealed & set(store.free_list)
        assert not sealed & set(store.open_segments.values())
