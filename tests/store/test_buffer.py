"""SortBuffer semantics: occupancy, dedup-by-replace, drain order."""

import pytest

from repro.store import SortBuffer


class TestBasics:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            SortBuffer(0)

    def test_add_and_contains(self):
        buf = SortBuffer(4)
        buf.add(10, 1)
        assert 10 in buf
        assert 11 not in buf
        assert len(buf) == 1
        assert buf.used_units == 1

    def test_fits_respects_capacity(self):
        buf = SortBuffer(3)
        buf.add(1, 2)
        assert buf.fits(1)
        assert not buf.fits(2)

    def test_drain_returns_insertion_order_and_empties(self):
        buf = SortBuffer(8)
        for pid in (5, 3, 9):
            buf.add(pid, 1)
        assert buf.drain() == [5, 3, 9]
        assert len(buf) == 0
        assert buf.used_units == 0
        assert 5 not in buf


class TestReplace:
    def test_replace_keeps_single_copy(self):
        buf = SortBuffer(8)
        buf.add(1, 1)
        buf.replace(1, 1)
        assert len(buf) == 1
        assert buf.used_units == 1

    def test_replace_adjusts_occupancy_for_new_size(self):
        buf = SortBuffer(8)
        buf.add(1, 2)
        buf.replace(1, 5)
        assert buf.used_units == 5
        buf.replace(1, 1)
        assert buf.used_units == 1

    def test_drain_after_replace_has_one_entry(self):
        buf = SortBuffer(8)
        buf.add(1, 1)
        buf.add(2, 1)
        buf.replace(1, 2)
        assert buf.drain() == [1, 2]
