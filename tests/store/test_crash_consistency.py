"""Crash consistency of checkpoint save/load.

A checkpoint that survives these tests is safe against the two failure
modes that matter: corruption of the file at rest (truncation, bit rot)
must be *detected* at load, and a crash at any instant during save must
leave the previous checkpoint loadable (write-temp-then-rename
atomicity, probed via failpoints inside ``save_store``)."""

import pytest

from repro.policies import make_policy
from repro.store import (
    LogStructuredStore,
    PersistenceError,
    StoreConfig,
    load_store,
    save_store,
)
from repro.testkit.failpoints import FAILPOINTS, InjectedFault


@pytest.fixture
def cfg():
    return StoreConfig(
        n_segments=32, segment_units=8, fill_factor=0.65,
        clean_trigger=2, clean_batch=2,
    )


@pytest.fixture
def store(cfg):
    s = LogStructuredStore(cfg, make_policy("greedy"))
    n = cfg.user_pages
    s.load_sequential(n)
    for i in range(2000):
        s.write((i * 7 + 3) % n)
    return s


class TestCorruptionDetection:
    @pytest.mark.parametrize("keep_fraction", [0.0, 0.3, 0.9])
    def test_truncated_checkpoint_rejected(
        self, store, tmp_path, keep_fraction
    ):
        path = tmp_path / "ckpt.npz"
        save_store(store, path)
        blob = path.read_bytes()
        path.write_bytes(blob[: int(len(blob) * keep_fraction)])
        with pytest.raises(PersistenceError):
            load_store(path, make_policy("greedy"))

    def test_bit_flips_never_corrupt_silently(self, store, tmp_path):
        """For single-byte flips across the file, every load must either
        raise ``PersistenceError`` or — when the flip lands in dead zip
        metadata the reader never consumes — restore the *exact*
        original state.  A load that succeeds with different state is
        silent corruption, the one unacceptable outcome."""
        path = tmp_path / "ckpt.npz"
        save_store(store, path)
        blob = bytearray(path.read_bytes())
        bad = tmp_path / "bad.npz"
        rejected = 0
        for pos in range(7, len(blob), max(1, len(blob) // 40)):
            blob[pos] ^= 0xFF
            bad.write_bytes(bytes(blob))
            blob[pos] ^= 0xFF
            try:
                restored = load_store(bad, make_policy("greedy"))
            except PersistenceError:
                rejected += 1
            else:
                assert restored.clock == store.clock
                assert restored.pages.seg.tolist() == store.pages.seg.tolist()
                assert restored.pages.slot.tolist() == store.pages.slot.tolist()
                assert restored.stats.snapshot() == store.stats.snapshot()
                assert restored.segments.live_count.tolist() == store.segments.live_count.tolist()
        # The payload dominates the file, so most flips must be caught.
        assert rejected > 0

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "ckpt.npz"
        path.write_bytes(b"this is not a checkpoint")
        with pytest.raises(PersistenceError):
            load_store(path, make_policy("greedy"))

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises((PersistenceError, OSError)):
            load_store(tmp_path / "nope.npz", make_policy("greedy"))


class TestAtomicity:
    """Crash at every stage of the save; the previous checkpoint must
    survive and no temp litter may accumulate."""

    def _save_ok(self, store, path):
        save_store(store, path)
        return load_store(path, make_policy("greedy")).clock

    @pytest.mark.parametrize(
        "stage", ["persistence.save.pre_write", "persistence.save.pre_rename"]
    )
    def test_crash_during_save_preserves_previous_checkpoint(
        self, store, tmp_path, stage
    ):
        path = tmp_path / "ckpt.npz"
        old_clock = self._save_ok(store, path)
        store.write(0)  # new state the interrupted save would capture
        with FAILPOINTS.armed(stage):
            with pytest.raises(InjectedFault):
                save_store(store, path)
        restored = load_store(path, make_policy("greedy"))
        assert restored.clock == old_clock
        restored.check_invariants()

    @pytest.mark.parametrize(
        "stage", ["persistence.save.pre_write", "persistence.save.pre_rename"]
    )
    def test_crash_during_first_save_leaves_no_file(
        self, store, tmp_path, stage
    ):
        path = tmp_path / "ckpt.npz"
        with FAILPOINTS.armed(stage):
            with pytest.raises(InjectedFault):
                save_store(store, path)
        assert not path.exists()

    @pytest.mark.parametrize(
        "stage", ["persistence.save.pre_write", "persistence.save.pre_rename"]
    )
    def test_interrupted_save_leaves_no_temp_litter(
        self, store, tmp_path, stage
    ):
        path = tmp_path / "ckpt.npz"
        with FAILPOINTS.armed(stage):
            with pytest.raises(InjectedFault):
                save_store(store, path)
        leftovers = [p.name for p in tmp_path.iterdir()]
        assert leftovers == []

    def test_save_passes_through_all_stages(self, store, tmp_path):
        path = tmp_path / "ckpt.npz"
        with FAILPOINTS.tracing():
            save_store(store, path)
        assert FAILPOINTS.count("persistence.save.pre_write") == 1
        assert FAILPOINTS.count("persistence.save.pre_rename") == 1
        assert FAILPOINTS.count("persistence.save.post_rename") == 1

    def test_retry_after_interrupted_save_succeeds(self, store, tmp_path):
        path = tmp_path / "ckpt.npz"
        with FAILPOINTS.armed("persistence.save.pre_rename"):
            with pytest.raises(InjectedFault):
                save_store(store, path)
        save_store(store, path)  # no stale temp blocks the retry
        restored = load_store(path, make_policy("greedy"))
        assert restored.clock == store.clock
