"""Small public helpers."""

import pytest

from repro.store import segments_needed
from repro.store.log_store import GC_STREAM


class TestSegmentsNeeded:
    def test_exact_fit(self):
        assert segments_needed(128, 64) == 2

    def test_rounds_up(self):
        assert segments_needed(129, 64) == 3

    def test_zero(self):
        assert segments_needed(0, 64) == 0


class TestConstants:
    def test_gc_stream_is_not_a_user_stream(self):
        assert GC_STREAM < 0
