"""ShiftingHotSetWorkload: hot pages become cold over time."""

import numpy as np
import pytest

from repro.workloads import ShiftingHotSetWorkload


class TestShifting:
    def test_hot_set_moves(self):
        wl = ShiftingHotSetWorkload(1000, shift_every=100, seed=1)
        first = set(wl.current_hot_pages().tolist())
        list(wl.batches(1000))
        later = set(wl.current_hot_pages().tolist())
        assert first != later

    def test_hot_set_size_constant(self):
        wl = ShiftingHotSetWorkload(1000, data_fraction=0.2, shift_every=50)
        size = len(wl.current_hot_pages())
        list(wl.batches(500))
        assert len(wl.current_hot_pages()) == size == 200

    def test_long_run_frequencies_uniform(self):
        wl = ShiftingHotSetWorkload(100, seed=2)
        freqs = wl.frequencies()
        assert np.allclose(freqs, 1.0 / 100)

    def test_short_window_is_skewed(self):
        wl = ShiftingHotSetWorkload(
            1000, update_fraction=0.9, data_fraction=0.1,
            shift_every=1_000_000, seed=3,
        )
        hot = set(wl.current_hot_pages().tolist())
        batch = np.concatenate(list(wl.batches(20_000)))
        share = sum(1 for p in batch.tolist() if p in hot) / len(batch)
        assert share > 0.85

    def test_whole_population_eventually_hot(self):
        # shift advance (7 pages per 10 writes) is co-prime with the
        # population, so the sampled window positions cover everything.
        wl = ShiftingHotSetWorkload(
            200, data_fraction=0.25, shift_every=10, shift_pages=7, seed=4
        )
        ever_hot = set()
        for _ in range(20):
            ever_hot.update(wl.current_hot_pages().tolist())
            list(wl.batches(100))
        assert len(ever_hot) > 150

    def test_reset_restores_initial_hot_set(self):
        wl = ShiftingHotSetWorkload(500, shift_every=10, seed=5)
        first = wl.current_hot_pages().tolist()
        list(wl.batches(1000))
        wl.reset()
        assert wl.current_hot_pages().tolist() == first

    def test_validation(self):
        with pytest.raises(ValueError):
            ShiftingHotSetWorkload(100, update_fraction=0.0)
        with pytest.raises(ValueError):
            ShiftingHotSetWorkload(100, shift_every=0)
        with pytest.raises(ValueError):
            ShiftingHotSetWorkload(100, data_fraction=1.5)
