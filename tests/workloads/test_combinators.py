"""Workload mixtures and phase schedules."""

import numpy as np
import pytest

from repro.workloads import (
    HotColdWorkload,
    MixedWorkload,
    PhasedWorkload,
    UniformWorkload,
    ZipfianWorkload,
)


class TestMixed:
    def test_frequencies_are_weighted_blend(self):
        hot = HotColdWorkload.from_skew(100, 90, seed=1)
        flat = UniformWorkload(100, seed=2)
        mixed = MixedWorkload([hot, flat], [0.75, 0.25], seed=3)
        expected = 0.75 * hot.frequencies() + 0.25 * flat.frequencies()
        assert np.allclose(mixed.frequencies(), expected)
        assert mixed.frequencies().sum() == pytest.approx(1.0)

    def test_weights_normalized(self):
        a = UniformWorkload(10, seed=1)
        b = UniformWorkload(10, seed=2)
        mixed = MixedWorkload([a, b], [3.0, 1.0])
        assert mixed.weights == [0.75, 0.25]

    def test_empirical_mixture(self):
        hot = HotColdWorkload(200, update_fraction=0.99, data_fraction=0.05, seed=4)
        flat = UniformWorkload(200, seed=5)
        mixed = MixedWorkload([hot, flat], [0.5, 0.5], seed=6)
        hot_set = set(hot.hot_pages.tolist())
        draws = np.concatenate(list(mixed.batches(40_000)))
        hot_share = sum(1 for p in draws.tolist() if p in hot_set) / len(draws)
        # ~0.5*0.99 from the hot component plus the flat component's
        # incidental hits on the 5% hot pages.
        assert hot_share == pytest.approx(0.5 * 0.99 + 0.5 * 0.05, abs=0.02)

    def test_validation(self):
        a = UniformWorkload(10)
        with pytest.raises(ValueError):
            MixedWorkload([], [])
        with pytest.raises(ValueError):
            MixedWorkload([a], [1.0, 2.0])
        with pytest.raises(ValueError):
            MixedWorkload([a, UniformWorkload(20)], [1, 1])
        with pytest.raises(ValueError):
            MixedWorkload([a, a], [1.0, 0.0])

    def test_reset_reproduces(self):
        mixed = MixedWorkload(
            [UniformWorkload(50, seed=1), ZipfianWorkload(50, seed=2)],
            [1, 1],
            seed=7,
        )
        first = np.concatenate(list(mixed.batches(200)))
        mixed.reset()
        assert np.array_equal(first, np.concatenate(list(mixed.batches(200))))


class TestPhased:
    def test_phases_run_in_order(self):
        # Phase 1 only touches pages < 10, phase 2 only pages >= 10.
        lo = HotColdWorkload(20, update_fraction=0.999, data_fraction=0.5, seed=1)
        lo.hot_pages = np.arange(10)
        lo.cold_pages = np.arange(10, 20)
        hi = HotColdWorkload(20, update_fraction=0.999, data_fraction=0.5, seed=2)
        hi.hot_pages = np.arange(10, 20)
        hi.cold_pages = np.arange(10)
        phased = PhasedWorkload([(lo, 100), (hi, 100)], seed=3)
        draws = np.concatenate(list(phased.batches(200)))
        assert (draws[:100] < 10).mean() > 0.95
        assert (draws[100:] >= 10).mean() > 0.95

    def test_schedule_wraps(self):
        a = UniformWorkload(10, seed=1)
        b = UniformWorkload(10, seed=2)
        phased = PhasedWorkload([(a, 5), (b, 5)], seed=3)
        list(phased.batches(12))  # a(5), b(5), a(2...)
        assert phased.current_phase is a
        list(phased.batches(3))  # ...a(3 more) completes a -> b
        assert phased.current_phase is b

    def test_long_run_frequencies_weighted_by_length(self):
        hot = HotColdWorkload.from_skew(100, 90, seed=1)
        flat = UniformWorkload(100, seed=2)
        phased = PhasedWorkload([(hot, 300), (flat, 100)], seed=3)
        expected = 0.75 * hot.frequencies() + 0.25 * flat.frequencies()
        assert np.allclose(phased.frequencies(), expected)

    def test_validation(self):
        a = UniformWorkload(10)
        with pytest.raises(ValueError):
            PhasedWorkload([])
        with pytest.raises(ValueError):
            PhasedWorkload([(a, 0)])
        with pytest.raises(ValueError):
            PhasedWorkload([(a, 10), (UniformWorkload(20), 10)])

    def test_reset_restarts_schedule(self):
        a = UniformWorkload(10, seed=1)
        b = UniformWorkload(10, seed=2)
        phased = PhasedWorkload([(a, 7), (b, 7)], seed=3)
        first = np.concatenate(list(phased.batches(20)))
        phased.reset()
        assert np.array_equal(first, np.concatenate(list(phased.batches(20))))
