"""ZipfianWorkload: skew factors, permuted ranks, sampling fidelity."""

import numpy as np
import pytest

from repro.workloads import ZIPF_80_20, ZIPF_90_10, ZipfianWorkload


class TestConstruction:
    def test_named_constructors(self):
        assert ZipfianWorkload.eighty_twenty(100).theta == ZIPF_80_20 == 0.99
        assert ZipfianWorkload.ninety_ten(100).theta == ZIPF_90_10 == 1.35

    def test_rejects_nonpositive_theta(self):
        with pytest.raises(ValueError):
            ZipfianWorkload(10, theta=0.0)

    def test_frequencies_sum_to_one(self):
        wl = ZipfianWorkload(1000, theta=0.99)
        assert wl.frequencies().sum() == pytest.approx(1.0)

    def test_every_page_unique_frequency(self):
        # The paper uses Zipf precisely because "all pages have unique
        # update frequencies".
        wl = ZipfianWorkload(500, theta=0.99)
        freqs = wl.frequencies()
        assert len(np.unique(freqs)) == 500


class TestSkew:
    def test_higher_theta_is_more_skewed(self):
        mild = ZipfianWorkload(10_000, theta=0.99)
        steep = ZipfianWorkload(10_000, theta=1.35)
        assert steep.update_share_of_top(0.1) > mild.update_share_of_top(0.1)

    def test_90_10_label_roughly_holds(self):
        # The m:1-m reading of a Zipf factor depends on the population
        # size; the classic labels hold around ~1000 pages (YCSB-style)
        # and grow more skewed for larger populations.
        wl = ZipfianWorkload.ninety_ten(1000)
        share = wl.update_share_of_top(0.10)
        assert share == pytest.approx(0.9, abs=0.08)

    def test_80_20_label_roughly_holds(self):
        wl = ZipfianWorkload.eighty_twenty(1000)
        share = wl.update_share_of_top(0.20)
        assert share == pytest.approx(0.8, abs=0.08)

    def test_skew_grows_with_population(self):
        small = ZipfianWorkload.ninety_ten(1000).update_share_of_top(0.10)
        large = ZipfianWorkload.ninety_ten(100_000).update_share_of_top(0.10)
        assert large > small

    def test_hot_pages_are_scattered(self):
        wl = ZipfianWorkload(1000, theta=0.99, seed=5)
        freqs = wl.frequencies()
        top = np.argsort(freqs)[-10:]
        assert top.max() - top.min() > 100  # not a contiguous block


class TestSampling:
    def test_empirical_matches_probabilities(self):
        wl = ZipfianWorkload(100, theta=1.0, seed=0)
        counts = np.zeros(100)
        for batch in wl.batches(200_000):
            counts += np.bincount(batch, minlength=100)
        empirical = counts / counts.sum()
        assert np.allclose(empirical, wl.frequencies(), atol=0.004)

    def test_reset_reproduces(self):
        wl = ZipfianWorkload(100, theta=0.99, seed=9)
        a = np.concatenate(list(wl.batches(500)))
        wl.reset()
        b = np.concatenate(list(wl.batches(500)))
        assert np.array_equal(a, b)
