"""UniformWorkload: distribution and reproducibility."""

import numpy as np
import pytest

from repro.workloads import UniformWorkload


class TestDistribution:
    def test_frequencies_sum_to_one(self):
        wl = UniformWorkload(100)
        freqs = wl.frequencies()
        assert freqs.sum() == pytest.approx(1.0)
        assert np.all(freqs == freqs[0])

    def test_samples_cover_population(self):
        wl = UniformWorkload(50, seed=1)
        seen = set()
        for batch in wl.batches(5000):
            seen.update(batch.tolist())
        assert seen == set(range(50))

    def test_empirical_matches_expected(self):
        wl = UniformWorkload(10, seed=2)
        counts = np.zeros(10)
        for batch in wl.batches(50_000):
            counts += np.bincount(batch, minlength=10)
        shares = counts / counts.sum()
        assert np.allclose(shares, 0.1, atol=0.01)


class TestProtocol:
    def test_rejects_empty_population(self):
        with pytest.raises(ValueError):
            UniformWorkload(0)

    def test_batches_yield_exact_count(self):
        wl = UniformWorkload(10, seed=0)
        total = sum(len(b) for b in wl.batches(12_345, batch=1000))
        assert total == 12_345

    def test_reset_reproduces_stream(self):
        wl = UniformWorkload(10, seed=3)
        first = np.concatenate(list(wl.batches(100)))
        wl.reset()
        second = np.concatenate(list(wl.batches(100)))
        assert np.array_equal(first, second)

    def test_different_seeds_differ(self):
        a = np.concatenate(list(UniformWorkload(100, seed=1).batches(100)))
        b = np.concatenate(list(UniformWorkload(100, seed=2).batches(100)))
        assert not np.array_equal(a, b)
