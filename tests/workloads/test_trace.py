"""Trace recording, persistence, and replay."""

import numpy as np
import pytest

from repro.workloads import TraceRecorder, TraceWorkload


class TestRecorder:
    def test_records_in_order(self):
        rec = TraceRecorder()
        for pid in (3, 1, 4, 1, 5):
            rec.record(pid)
        assert rec.to_array().tolist() == [3, 1, 4, 1, 5]

    def test_record_many(self):
        rec = TraceRecorder()
        rec.record_many([1, 2])
        rec.record_many([3])
        assert rec.to_array().tolist() == [1, 2, 3]
        assert len(rec) == 3

    def test_compaction_preserves_order(self):
        rec = TraceRecorder()
        expected = list(range(200_000))  # crosses the compaction chunk
        rec.record_many(expected)
        rec.record(999_999)
        assert rec.to_array().tolist() == expected + [999_999]

    def test_empty(self):
        assert TraceRecorder().to_array().size == 0


class TestReplay:
    def test_replays_in_order(self):
        wl = TraceWorkload([5, 3, 5, 2])
        out = np.concatenate(list(wl.batches(4)))
        assert out.tolist() == [5, 3, 5, 2]
        assert not wl.wrapped

    def test_wraps_past_end(self):
        wl = TraceWorkload([1, 2])
        out = np.concatenate(list(wl.batches(5)))
        assert out.tolist() == [1, 2, 1, 2, 1]
        assert wl.wrapped

    def test_frequencies_are_empirical(self):
        wl = TraceWorkload([0, 0, 0, 3])
        freqs = wl.frequencies()
        assert freqs[0] == pytest.approx(0.75)
        assert freqs[3] == pytest.approx(0.25)
        assert freqs.sum() == pytest.approx(1.0)

    def test_population_from_max_id(self):
        wl = TraceWorkload([0, 7, 2])
        assert wl.n_pages == 8
        assert wl.distinct_pages() == 3

    def test_rejects_bad_traces(self):
        with pytest.raises(ValueError):
            TraceWorkload([])
        with pytest.raises(ValueError):
            TraceWorkload([1, -2])

    def test_save_load_roundtrip(self, tmp_path):
        wl = TraceWorkload([9, 1, 9, 4])
        path = tmp_path / "trace.npz"
        wl.save(path)
        loaded = TraceWorkload.load(path)
        assert loaded.trace.tolist() == [9, 1, 9, 4]

    def test_reset_rewinds(self):
        wl = TraceWorkload([1, 2, 3])
        list(wl.batches(2))
        wl.reset()
        out = np.concatenate(list(wl.batches(3)))
        assert out.tolist() == [1, 2, 3]
