"""HotColdWorkload: the m:1-m populations of Section 3."""

import numpy as np
import pytest

from repro.workloads import HotColdWorkload


class TestConstruction:
    def test_from_skew(self):
        wl = HotColdWorkload.from_skew(1000, 80)
        assert wl.update_fraction == 0.8
        assert wl.data_fraction == pytest.approx(0.2)
        assert wl.skew_label == "80-20"

    def test_hot_and_cold_partition_pages(self):
        wl = HotColdWorkload(100, update_fraction=0.9)
        hot = set(wl.hot_pages.tolist())
        cold = set(wl.cold_pages.tolist())
        assert hot | cold == set(range(100))
        assert not hot & cold

    def test_hot_set_is_scattered_not_prefix(self):
        wl = HotColdWorkload(1000, update_fraction=0.9, seed=4)
        # A random subset should not be the contiguous prefix.
        assert set(wl.hot_pages.tolist()) != set(range(len(wl.hot_pages)))

    def test_rejects_bad_fractions(self):
        with pytest.raises(ValueError):
            HotColdWorkload(10, update_fraction=1.0)
        with pytest.raises(ValueError):
            HotColdWorkload(10, update_fraction=0.8, data_fraction=0.0)
        with pytest.raises(ValueError):
            HotColdWorkload.from_skew(10, 45)


class TestDistribution:
    def test_frequencies_sum_to_one(self):
        wl = HotColdWorkload.from_skew(500, 80)
        assert wl.frequencies().sum() == pytest.approx(1.0)

    def test_hot_pages_have_higher_frequency(self):
        wl = HotColdWorkload.from_skew(500, 80)
        freqs = wl.frequencies()
        assert freqs[wl.hot_pages[0]] > freqs[wl.cold_pages[0]]
        # 80:20 -> hot page is (0.8/0.2)/(0.2/0.8) = 16x hotter.
        ratio = freqs[wl.hot_pages[0]] / freqs[wl.cold_pages[0]]
        assert ratio == pytest.approx(16.0, rel=0.05)

    def test_empirical_update_share(self):
        wl = HotColdWorkload.from_skew(200, 90, seed=1)
        hot = set(wl.hot_pages.tolist())
        hits = 0
        total = 0
        for batch in wl.batches(50_000):
            hits += sum(1 for p in batch.tolist() if p in hot)
            total += len(batch)
        assert hits / total == pytest.approx(0.9, abs=0.01)

    def test_50_50_is_not_uniform_within_population(self):
        # 50:50 still has two populations (half the updates to half the
        # data at equal per-page rates) — i.e. it IS uniform per page.
        wl = HotColdWorkload.from_skew(100, 50)
        freqs = wl.frequencies()
        assert np.allclose(freqs, freqs[0])
