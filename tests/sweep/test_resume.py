"""Checkpointed resume: interrupted sweeps finish with identical output.

The interruption is simulated by truncating a finished sweep's manifest
to its first k job records (plus a torn, half-written trailing line —
what a SIGKILL mid-append leaves behind) and resuming from the copy.
"""

import json

import pytest

from repro.bench.experiments import demo_experiment
from repro.sweep import (
    MANIFEST_NAME,
    Manifest,
    SweepError,
    parallel_experiment,
)

K = 2  # jobs "finished" before the simulated kill


@pytest.fixture(scope="module")
def full_run(tmp_path_factory):
    """One uninterrupted sweep of the demo grid (4 jobs)."""
    out_dir = tmp_path_factory.mktemp("full")
    report = parallel_experiment(demo_experiment, workers=2, out_dir=out_dir)
    return report, out_dir


class TestResume:
    def make_interrupted_dir(self, full_dir, target_dir, torn=True):
        """Copy header + first K job lines, optionally add a torn tail."""
        lines = (full_dir / MANIFEST_NAME).read_text().splitlines()
        kept = lines[: 1 + K]  # header + K jobs
        text = "\n".join(kept) + "\n"
        if torn:
            text += lines[1 + K][: len(lines[1 + K]) // 2]
        target_dir.mkdir(exist_ok=True)
        (target_dir / MANIFEST_NAME).write_text(text)

    def test_resume_skips_finished_jobs_and_matches_byte_for_byte(
        self, full_run, tmp_path
    ):
        report, full_dir = full_run
        self.make_interrupted_dir(full_dir, tmp_path / "resume")
        resumed = parallel_experiment(
            demo_experiment, workers=2, out_dir=tmp_path / "resume", resume=True
        )
        assert resumed.stats.skipped == K
        assert resumed.stats.executed == report.stats.total - K
        assert resumed.output.rendered == report.output.rendered
        assert resumed.output.data == report.output.data

    def test_fully_journaled_sweep_resumes_without_executing(
        self, full_run, tmp_path
    ):
        report, full_dir = full_run
        target = tmp_path / "complete"
        target.mkdir()
        (target / MANIFEST_NAME).write_text(
            (full_dir / MANIFEST_NAME).read_text()
        )
        resumed = parallel_experiment(
            demo_experiment, workers=2, out_dir=target, resume=True
        )
        assert resumed.stats.executed == 0
        assert resumed.stats.skipped == report.stats.total
        assert resumed.output.rendered == report.output.rendered

    def test_existing_manifest_without_resume_flag_is_refused(self, full_run):
        _, full_dir = full_run
        with pytest.raises(SweepError, match="resume"):
            parallel_experiment(demo_experiment, workers=1, out_dir=full_dir)

    def test_resuming_a_different_grid_is_refused(self, full_run, tmp_path):
        _, full_dir = full_run
        self.make_interrupted_dir(full_dir, tmp_path / "other", torn=False)
        with pytest.raises(SweepError, match="different|grid"):
            parallel_experiment(
                demo_experiment,
                workers=1,
                out_dir=tmp_path / "other",
                resume=True,
                seed=1,  # different seeds = a different grid
            )

    def test_changed_job_specs_are_not_served_stale_results(
        self, full_run, tmp_path
    ):
        """Even with a matching header, jobs are matched by spec digest."""
        report, full_dir = full_run
        target = tmp_path / "stale"
        target.mkdir()
        lines = (full_dir / MANIFEST_NAME).read_text().splitlines()
        records = [json.loads(line) for line in lines]
        # Corrupt one job's digest: it no longer matches any current job.
        records[1]["digest"] = "0" * 16
        (target / MANIFEST_NAME).write_text(
            "\n".join(json.dumps(r, sort_keys=True) for r in records) + "\n"
        )
        resumed = parallel_experiment(
            demo_experiment, workers=1, out_dir=target, resume=True
        )
        assert resumed.stats.executed == 1  # the no-longer-covered job reran
        assert resumed.output.rendered == report.output.rendered


class TestManifestFile:
    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / MANIFEST_NAME
        path.write_text(
            '{"kind": "sweep", "version": 1, "experiment": "x", '
            '"grid_digest": "abc"}\n'
            "{corrupt not json\n"
            '{"kind": "job", "digest": "d1", "label": "l", "elapsed": 0.1, '
            '"attempts": 1, "result": {}}\n'
        )
        with pytest.raises(SweepError, match="corrupt"):
            Manifest(path).load()

    def test_torn_final_line_is_dropped(self, tmp_path):
        path = tmp_path / MANIFEST_NAME
        path.write_text(
            '{"kind": "job", "digest": "d1", "label": "l", "elapsed": 0.1, '
            '"attempts": 1, "result": {}}\n'
            '{"kind": "job", "digest": "d2", "la'
        )
        completed = Manifest(path).load()
        assert set(completed) == {"d1"}

    def test_unknown_record_kind_raises(self, tmp_path):
        path = tmp_path / MANIFEST_NAME
        path.write_text('{"kind": "mystery"}\n{"kind": "job", "digest": "d"}\n')
        with pytest.raises(SweepError, match="unknown record kind"):
            Manifest(path).load()

    def test_records_survive_close_and_reload(self, tmp_path):
        manifest = Manifest(tmp_path / MANIFEST_NAME)
        manifest.ensure_header("exp", "digest123")
        manifest.record(
            digest="j1", label="greedy", result={"wamp": 1.0},
            elapsed=0.5, attempts=2,
        )
        manifest.close()
        reloaded = Manifest(tmp_path / MANIFEST_NAME)
        completed = reloaded.load()
        assert completed["j1"]["result"] == {"wamp": 1.0}
        assert completed["j1"]["attempts"] == 2
        # Header round-trips: same grid fine, different grid refused.
        reloaded.ensure_header("exp", "digest123")
        with pytest.raises(SweepError):
            reloaded.ensure_header("exp", "otherdigest")
