"""Parent-side sweep spans: the executor's sweep.run/sweep.job trace."""

from repro.obs.trace import Tracer
from repro.store import StoreConfig
from repro.sweep import run_sweep, spec_from_call
from repro.workloads import HotColdWorkload

TINY = StoreConfig(
    n_segments=64, segment_units=8, fill_factor=0.75,
    clean_trigger=2, clean_batch=2,
)


def tiny_specs(policies=("greedy", "age")):
    return [
        spec_from_call(
            TINY,
            policy,
            HotColdWorkload.from_skew(TINY.user_pages, 80, seed=0),
            write_multiplier=2.0,
        )
        for policy in policies
    ]


def _failing_runner(spec_dict):
    raise ValueError("injected failure")


class TestInlineSweepSpans:
    def test_root_and_job_spans_recorded(self):
        tracer = Tracer()
        specs = tiny_specs()
        results, stats = run_sweep(specs, workers=1, tracer=tracer)
        assert len(results) == 2
        rows = tracer.rows()
        roots = [r for r in rows if r["name"] == "sweep.run"]
        jobs = [r for r in rows if r["name"] == "sweep.job"]
        assert len(roots) == 1
        assert len(jobs) == 2
        root = roots[0]
        for job in jobs:
            assert job["parent"] == root["span"]
            assert job["attrs"]["status"] == "ok"
            assert job["attrs"]["attempt"] == 1
        assert root["attrs"]["executed"] == 2

    def test_failed_jobs_span_status(self):
        tracer = Tracer()
        _, stats = run_sweep(
            tiny_specs(("greedy",)), workers=1, retries=1,
            job_runner=_failing_runner, tracer=tracer,
        )
        assert len(stats.failed) == 1
        jobs = [r for r in tracer.rows() if r["name"] == "sweep.job"]
        assert [j["attrs"]["status"] for j in jobs] == ["error", "error"]
        assert [j["attrs"]["attempt"] for j in jobs] == [1, 2]

    def test_no_tracer_is_the_default(self):
        results, _ = run_sweep(tiny_specs(("greedy",)), workers=1)
        assert len(results) == 1


class TestPoolSweepSpans:
    def test_pool_jobs_traced_from_dispatch(self):
        tracer = Tracer()
        results, stats = run_sweep(
            tiny_specs(), workers=2, start_method="fork", tracer=tracer,
        )
        assert len(results) == 2
        assert stats.pool_mode == "fork"
        jobs = [r for r in tracer.rows() if r["name"] == "sweep.job"]
        assert len(jobs) == 2
        labels = {j["attrs"]["label"] for j in jobs}
        assert len(labels) == 2
        assert all(j["attrs"]["status"] == "ok" for j in jobs)
        assert all(j["dur_us"] > 0 for j in jobs)
