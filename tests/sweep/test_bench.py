"""The sweep-pool scaling benchmark and its hardware-conditional gate.

The gate logic is tested as a pure function over fabricated reports;
one smoke run on the demo grid (milliseconds per job) pins the report
contract end to end.
"""

import json

import pytest

from repro.sweep.bench import (
    MIN_SPEEDUP_AT_4,
    MIN_SPEEDUP_POOL_OF_1,
    MIN_SPEEDUP_SMALL,
    check_sweep_report,
    render_sweep_bench,
    run_sweep_bench,
    speedup_floor,
    write_sweep_report,
)


def fake_report(speedup=2.5, effective=4, cpus=4, identical=True):
    return {
        "benchmark": "sweep-pool-scaling",
        "grid": "fig5-zipf-80-20",
        "quick": True,
        "seed": 0,
        "jobs": 42,
        "cpu_count": cpus,
        "outputs_identical": identical,
        "serial": {"workers": 1, "wall_clock_s": 50.0, "job_wall_s": 50.0},
        "pool": {
            "workers_requested": 4,
            "workers_effective": effective,
            "pool_mode": "fork",
            "wall_clock_s": 50.0 / speedup if speedup else 0.0,
            "job_wall_s": 50.0,
            "overhead_s": {"spawn": 0.01, "dispatch": 0.01, "drain": 0.01},
            "worker_recycles": 0,
        },
        "speedup_pool_vs_serial": speedup,
    }


class TestSpeedupFloor:
    def test_four_workers_on_four_cores_needs_2x(self):
        assert speedup_floor(4, 4) == MIN_SPEEDUP_AT_4
        assert speedup_floor(8, 16) == MIN_SPEEDUP_AT_4

    def test_pool_of_one_bounds_overhead(self):
        assert speedup_floor(1, 1) == MIN_SPEEDUP_POOL_OF_1

    def test_between_must_not_lose(self):
        assert speedup_floor(2, 2) == MIN_SPEEDUP_SMALL
        assert speedup_floor(4, 2) == MIN_SPEEDUP_SMALL  # few CPUs: no 2x


class TestCheckSweepReport:
    def test_good_report_passes(self):
        assert check_sweep_report(fake_report()) == []

    def test_output_mismatch_always_fails(self):
        problems = check_sweep_report(fake_report(identical=False))
        assert any("differs" in p for p in problems)

    def test_low_speedup_on_multicore_fails(self):
        problems = check_sweep_report(fake_report(speedup=1.4))
        assert any("below the 2.00x floor" in p for p in problems)

    def test_pool_of_one_tolerates_small_overhead(self):
        assert check_sweep_report(
            fake_report(speedup=0.96, effective=1, cpus=1)
        ) == []
        problems = check_sweep_report(
            fake_report(speedup=0.80, effective=1, cpus=1)
        )
        assert any("0.95x floor" in p for p in problems)

    def test_missing_speedup_fails(self):
        report = fake_report()
        report["speedup_pool_vs_serial"] = None
        problems = check_sweep_report(report)
        assert any("n/a" in p for p in problems)


class TestDemoSmoke:
    @pytest.fixture(scope="class")
    def report(self):
        return run_sweep_bench(grid="demo", workers=2)

    def test_outputs_identical_and_json_ready(self, report, tmp_path):
        assert report["outputs_identical"] is True
        assert report["pool"]["pool_mode"] != "inline"
        assert report["pool"]["workers_requested"] == 2
        assert report["jobs"] > 0
        path = tmp_path / "BENCH_sweep.json"
        write_sweep_report(report, str(path))
        assert json.loads(path.read_text()) == report

    def test_render_mentions_headline(self, report):
        text = render_sweep_bench(report)
        assert "outputs identical: True" in text
        assert "pool overhead" in text
