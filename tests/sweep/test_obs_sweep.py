"""Observability through the sweep engine (``repro sweep --obs``)."""

import json

import pytest

from repro.bench.experiments import demo_experiment
from repro.obs import validate_file
from repro.sweep.executor import ObsJobRunner
from repro.sweep.report import (
    CONVERGENCE_NAME,
    METRICS_NAME,
    parallel_experiment,
)
from repro.sweep.spec import SweepError, expand_grid


class TestObsJobRunner:
    def test_runs_job_and_writes_metrics(self, tmp_path):
        spec = expand_grid(demo_experiment)[0]
        runner = ObsJobRunner(str(tmp_path), sample_interval=50)
        payload = runner(spec.to_dict())
        assert payload["policy"] == spec.policy
        path = runner.job_metrics_path(spec.digest())
        assert validate_file(path, require_decisions=True) == []

    def test_is_picklable(self, tmp_path):
        import pickle

        runner = ObsJobRunner(str(tmp_path), sample_interval=7)
        clone = pickle.loads(pickle.dumps(runner))
        assert clone.metrics_dir == runner.metrics_dir
        assert clone.sample_interval == 7

    def test_observability_does_not_change_results(self, tmp_path):
        from repro.sweep.executor import execute_job

        spec = expand_grid(demo_experiment)[0]
        plain = execute_job(spec.to_dict())
        observed = ObsJobRunner(str(tmp_path))(spec.to_dict())
        assert plain == observed


class TestParallelExperimentObs:
    def test_obs_requires_out_dir(self):
        with pytest.raises(SweepError):
            parallel_experiment(demo_experiment, workers=1, obs=True)

    def test_sweep_merges_metrics_in_spec_order(self, tmp_path):
        report = parallel_experiment(
            demo_experiment,
            workers=2,
            out_dir=tmp_path,
            obs=True,
            sample_interval=50,
        )
        specs = expand_grid(demo_experiment)
        merged = tmp_path / METRICS_NAME
        assert validate_file(str(merged), require_decisions=True) == []
        from repro.obs import load_rows

        metas = [
            r for r in load_rows(str(merged)) if r["type"] == "meta"
        ]
        assert [m["run"]["digest"] for m in metas] == [
            s.digest() for s in specs
        ]
        assert report.summary["obs"]["jobs_with_metrics"] == len(specs)
        convergence = json.loads((tmp_path / CONVERGENCE_NAME).read_text())
        assert len(convergence) == len(specs)
        assert all(block["clock"] for block in convergence)

    def test_obs_output_identical_to_serial(self, tmp_path):
        serial = demo_experiment()
        swept = parallel_experiment(
            demo_experiment, workers=2, out_dir=tmp_path, obs=True
        )
        assert swept.output.rendered == serial.rendered
