"""Executor: parallel correctness, deterministic seeding, retry paths.

The misbehaving job runners live at module level (with state markers on
disk) so they survive the trip into worker processes.
"""

import functools
import os
import pathlib
import time

import pytest

from repro.store import StoreConfig
from repro.sweep import (
    JobSpec,
    execute_job,
    run_sweep,
    spec_from_call,
)
from repro.workloads import HotColdWorkload

TINY = StoreConfig(
    n_segments=64, segment_units=8, fill_factor=0.75,
    clean_trigger=2, clean_batch=2,
)


def tiny_specs(policies=("greedy", "age", "mdc"), seed=0):
    return [
        spec_from_call(
            TINY,
            policy,
            HotColdWorkload.from_skew(TINY.user_pages, 80, seed=seed),
            write_multiplier=2.0,
        )
        for policy in policies
    ]


def _marker(marker_dir, spec_dict):
    digest = JobSpec.from_dict(spec_dict).digest()
    return pathlib.Path(marker_dir) / digest


def _flaky_runner(marker_dir, spec_dict):
    """Raises on each job's first attempt, succeeds on the second."""
    marker = _marker(marker_dir, spec_dict)
    if not marker.exists():
        marker.write_text("attempted")
        raise RuntimeError("injected first-attempt failure")
    return execute_job(spec_dict)


def _always_failing_runner(spec_dict):
    raise ValueError("injected permanent failure")


def _crash_once_runner(marker_dir, spec_dict):
    """Hard-kills the worker process on each job's first attempt."""
    marker = _marker(marker_dir, spec_dict)
    if not marker.exists():
        marker.write_text("attempted")
        os._exit(3)
    return execute_job(spec_dict)


def _hang_once_runner(marker_dir, spec_dict):
    """Outlives any sane per-job timeout on the first attempt."""
    marker = _marker(marker_dir, spec_dict)
    if not marker.exists():
        marker.write_text("attempted")
        time.sleep(60)
    return execute_job(spec_dict)


class TestExecution:
    def test_inline_and_parallel_results_are_identical(self):
        specs = tiny_specs()
        inline, inline_stats = run_sweep(specs, workers=1)
        parallel, parallel_stats = run_sweep(specs, workers=2)
        assert inline == parallel
        assert inline_stats.executed == parallel_stats.executed == len(specs)
        assert not inline_stats.failed and not parallel_stats.failed

    def test_same_spec_is_bit_reproducible(self):
        spec = tiny_specs(policies=("mdc",))[0]
        assert execute_job(spec.to_dict()) == execute_job(spec.to_dict())

    def test_different_seeds_change_results(self):
        a, _ = run_sweep(tiny_specs(policies=("greedy",), seed=0), workers=1)
        b, _ = run_sweep(tiny_specs(policies=("greedy",), seed=1), workers=1)
        (ra,), (rb,) = a.values(), b.values()
        assert ra["window"] != rb["window"]

    def test_duplicate_specs_collapse_to_one_job(self):
        specs = tiny_specs(policies=("greedy",)) * 3
        results, stats = run_sweep(specs, workers=1)
        assert stats.total == stats.executed == 1
        assert len(results) == 1

    def test_progress_events_cover_every_job(self):
        events = []
        specs = tiny_specs()
        run_sweep(specs, workers=2, progress=events.append)
        assert len(events) == len(specs)
        assert {e.status for e in events} == {"done"}
        assert events[-1].done == len(specs)
        assert all(e.total == len(specs) for e in events)


class TestRetry:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_raising_worker_is_retried_and_recovers(self, tmp_path, workers):
        specs = tiny_specs()
        events = []
        results, stats = run_sweep(
            specs,
            workers=workers,
            retries=1,
            job_runner=functools.partial(_flaky_runner, str(tmp_path)),
            progress=events.append,
        )
        assert not stats.failed
        assert stats.executed == len(specs)
        clean, _ = run_sweep(specs, workers=1)
        assert results == clean
        assert sum(1 for e in events if e.status == "retry") == len(specs)

    def test_exhausted_retries_report_failure(self):
        specs = tiny_specs(policies=("greedy", "age"))
        results, stats = run_sweep(
            specs, workers=1, retries=2, job_runner=_always_failing_runner
        )
        assert results == {}
        assert len(stats.failed) == len(specs)
        for failure in stats.failed:
            assert failure.attempts == 3  # 1 initial + 2 retries
            assert "injected permanent failure" in failure.error

    def test_crashed_worker_process_is_retried(self, tmp_path):
        specs = tiny_specs(policies=("greedy", "mdc"))
        results, stats = run_sweep(
            specs,
            workers=2,
            retries=1,
            job_runner=functools.partial(_crash_once_runner, str(tmp_path)),
        )
        assert not stats.failed
        clean, _ = run_sweep(specs, workers=1)
        assert results == clean

    def test_crash_without_retries_reports_exitcode(self, tmp_path):
        specs = tiny_specs(policies=("greedy",))
        results, stats = run_sweep(
            specs,
            workers=2,
            retries=0,
            job_runner=functools.partial(_crash_once_runner, str(tmp_path)),
        )
        assert results == {}
        assert len(stats.failed) == 1
        assert "worker died" in stats.failed[0].error

    def test_timed_out_job_is_killed_and_retried(self, tmp_path):
        specs = tiny_specs(policies=("greedy",))
        start = time.perf_counter()
        results, stats = run_sweep(
            specs,
            workers=2,
            retries=1,
            timeout=1.0,
            job_runner=functools.partial(_hang_once_runner, str(tmp_path)),
        )
        assert not stats.failed
        assert time.perf_counter() - start < 30  # nowhere near the 60s sleep
        clean, _ = run_sweep(specs, workers=1)
        assert results == clean


class TestWorkerClamp:
    """Worker counts above the CPU count are clamped at the
    ``parallel_experiment`` layer — oversubscribing a CPU-bound sweep
    only adds scheduling overhead — while ``run_sweep`` itself honors
    the request literally (the crash/timeout tests above depend on
    getting worker *processes* even on a single-CPU box)."""

    def test_run_sweep_honors_request_literally(self):
        specs = tiny_specs(policies=("greedy",))
        _, stats = run_sweep(specs, workers=64)
        assert stats.workers == 64
        assert stats.workers_requested == 64
        assert stats.executed == 1

    def test_nonpositive_request_runs_inline(self):
        specs = tiny_specs(policies=("greedy",))
        _, stats = run_sweep(specs, workers=0)
        assert stats.workers == 1
        assert stats.executed == 1

    def test_parallel_experiment_clamps_and_records_request(self):
        from repro.bench.experiments import demo_experiment
        from repro.sweep.executor import default_workers
        from repro.sweep.report import parallel_experiment

        report = parallel_experiment(demo_experiment, workers=64)
        stats = report.stats
        assert stats.workers_requested == 64
        assert stats.workers == min(64, default_workers())
        assert stats.workers <= (os.cpu_count() or 1)
        assert report.summary["workers"] == stats.workers
        assert report.summary["workers_requested"] == 64
        assert report.summary["cpu_count"] == os.cpu_count()
