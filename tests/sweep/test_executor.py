"""Executor: parallel correctness, deterministic seeding, retry paths.

The misbehaving job runners live at module level (with state markers on
disk) so they survive the trip into worker processes.
"""

import functools
import os
import pathlib
import time

import pytest

from repro.store import StoreConfig
from repro.sweep import (
    JobSpec,
    execute_job,
    run_sweep,
    spec_from_call,
)
from repro.workloads import HotColdWorkload

TINY = StoreConfig(
    n_segments=64, segment_units=8, fill_factor=0.75,
    clean_trigger=2, clean_batch=2,
)


def tiny_specs(policies=("greedy", "age", "mdc"), seed=0):
    return [
        spec_from_call(
            TINY,
            policy,
            HotColdWorkload.from_skew(TINY.user_pages, 80, seed=seed),
            write_multiplier=2.0,
        )
        for policy in policies
    ]


def _marker(marker_dir, spec_dict):
    digest = JobSpec.from_dict(spec_dict).digest()
    return pathlib.Path(marker_dir) / digest


def _flaky_runner(marker_dir, spec_dict):
    """Raises on each job's first attempt, succeeds on the second."""
    marker = _marker(marker_dir, spec_dict)
    if not marker.exists():
        marker.write_text("attempted")
        raise RuntimeError("injected first-attempt failure")
    return execute_job(spec_dict)


def _always_failing_runner(spec_dict):
    raise ValueError("injected permanent failure")


def _crash_once_runner(marker_dir, spec_dict):
    """Hard-kills the worker process on each job's first attempt."""
    marker = _marker(marker_dir, spec_dict)
    if not marker.exists():
        marker.write_text("attempted")
        os._exit(3)
    return execute_job(spec_dict)


def _hang_once_runner(marker_dir, spec_dict):
    """Outlives any sane per-job timeout on the first attempt."""
    marker = _marker(marker_dir, spec_dict)
    if not marker.exists():
        marker.write_text("attempted")
        time.sleep(60)
    return execute_job(spec_dict)


class TestExecution:
    def test_inline_and_parallel_results_are_identical(self):
        specs = tiny_specs()
        inline, inline_stats = run_sweep(specs, workers=1)
        parallel, parallel_stats = run_sweep(specs, workers=2)
        assert inline == parallel
        assert inline_stats.executed == parallel_stats.executed == len(specs)
        assert not inline_stats.failed and not parallel_stats.failed

    def test_same_spec_is_bit_reproducible(self):
        spec = tiny_specs(policies=("mdc",))[0]
        assert execute_job(spec.to_dict()) == execute_job(spec.to_dict())

    def test_different_seeds_change_results(self):
        a, _ = run_sweep(tiny_specs(policies=("greedy",), seed=0), workers=1)
        b, _ = run_sweep(tiny_specs(policies=("greedy",), seed=1), workers=1)
        (ra,), (rb,) = a.values(), b.values()
        assert ra["window"] != rb["window"]

    def test_duplicate_specs_collapse_to_one_job(self):
        specs = tiny_specs(policies=("greedy",)) * 3
        results, stats = run_sweep(specs, workers=1)
        assert stats.total == stats.executed == 1
        assert len(results) == 1

    def test_progress_events_cover_every_job(self):
        events = []
        specs = tiny_specs()
        run_sweep(specs, workers=2, progress=events.append)
        assert len(events) == len(specs)
        assert {e.status for e in events} == {"done"}
        assert events[-1].done == len(specs)
        assert all(e.total == len(specs) for e in events)


class TestRetry:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_raising_worker_is_retried_and_recovers(self, tmp_path, workers):
        specs = tiny_specs()
        events = []
        results, stats = run_sweep(
            specs,
            workers=workers,
            retries=1,
            job_runner=functools.partial(_flaky_runner, str(tmp_path)),
            progress=events.append,
        )
        assert not stats.failed
        assert stats.executed == len(specs)
        clean, _ = run_sweep(specs, workers=1)
        assert results == clean
        assert sum(1 for e in events if e.status == "retry") == len(specs)

    def test_exhausted_retries_report_failure(self):
        specs = tiny_specs(policies=("greedy", "age"))
        results, stats = run_sweep(
            specs, workers=1, retries=2, job_runner=_always_failing_runner
        )
        assert results == {}
        assert len(stats.failed) == len(specs)
        for failure in stats.failed:
            assert failure.attempts == 3  # 1 initial + 2 retries
            assert "injected permanent failure" in failure.error

    def test_crashed_worker_process_is_retried(self, tmp_path):
        specs = tiny_specs(policies=("greedy", "mdc"))
        results, stats = run_sweep(
            specs,
            workers=2,
            retries=1,
            job_runner=functools.partial(_crash_once_runner, str(tmp_path)),
        )
        assert not stats.failed
        clean, _ = run_sweep(specs, workers=1)
        assert results == clean

    def test_crash_without_retries_reports_exitcode(self, tmp_path):
        specs = tiny_specs(policies=("greedy",))
        results, stats = run_sweep(
            specs,
            workers=2,
            retries=0,
            job_runner=functools.partial(_crash_once_runner, str(tmp_path)),
        )
        assert results == {}
        assert len(stats.failed) == 1
        assert "worker died" in stats.failed[0].error

    def test_timed_out_job_is_killed_and_retried(self, tmp_path):
        specs = tiny_specs(policies=("greedy",))
        start = time.perf_counter()
        results, stats = run_sweep(
            specs,
            workers=2,
            retries=1,
            timeout=1.0,
            job_runner=functools.partial(_hang_once_runner, str(tmp_path)),
        )
        assert not stats.failed
        assert time.perf_counter() - start < 30  # nowhere near the 60s sleep
        clean, _ = run_sweep(specs, workers=1)
        assert results == clean


class TestWorkerClamp:
    """The executor clamps the pool to ``min(request, jobs, cpus)`` —
    oversubscribing a CPU-bound sweep only adds scheduling overhead —
    but any request > 1 still gets worker *processes* (possibly a pool
    of one): the crash/timeout tests above depend on per-process
    isolation even on a single-CPU box."""

    def test_pool_clamps_to_jobs_and_cpus(self):
        from repro.sweep.executor import default_workers

        specs = tiny_specs(policies=("greedy",))
        _, stats = run_sweep(specs, workers=64)
        assert stats.workers_requested == 64
        assert stats.workers == min(64, len(specs), default_workers())
        assert stats.workers_effective == stats.workers
        assert stats.pool_mode != "inline"  # clamped, but still a pool
        assert stats.executed == 1

    def test_nonpositive_request_runs_inline(self):
        specs = tiny_specs(policies=("greedy",))
        _, stats = run_sweep(specs, workers=0)
        assert stats.workers == 1
        assert stats.pool_mode == "inline"
        assert stats.executed == 1

    def test_parallel_experiment_records_request_and_effective(self):
        from repro.sweep.executor import default_workers
        from repro.sweep.report import parallel_experiment

        from repro.bench.experiments import demo_experiment

        report = parallel_experiment(demo_experiment, workers=64)
        stats = report.stats
        assert stats.workers_requested == 64
        assert stats.workers == min(64, stats.total, default_workers())
        assert stats.workers <= (os.cpu_count() or 1)
        assert report.summary["workers"] == stats.workers
        assert report.summary["workers_requested"] == 64
        assert report.summary["workers_effective"] == stats.workers
        assert report.summary["pool_mode"] == stats.pool_mode
        assert report.summary["cpu_count"] == os.cpu_count()
        assert set(report.summary["pool_overhead_s"]) == {
            "spawn", "dispatch", "drain",
        }


class TestPoolDeterminism:
    """Sweep outputs must be byte-identical no matter how the pool is
    shaped: inline, fork workers, or spawn workers (spawn re-imports
    everything, so it would expose any state smuggled through fork)."""

    def test_results_identical_across_pool_modes(self):
        import json

        specs = tiny_specs()
        inline, inline_stats = run_sweep(specs, workers=1)
        fork, fork_stats = run_sweep(specs, workers=2, start_method="fork")
        spawn, spawn_stats = run_sweep(specs, workers=2, start_method="spawn")
        canon = lambda r: json.dumps(r, sort_keys=True)
        assert canon(inline) == canon(fork) == canon(spawn)
        assert inline_stats.pool_mode == "inline"
        assert fork_stats.pool_mode == "fork"
        assert spawn_stats.pool_mode == "spawn"

    def test_pool_phase_overheads_are_recorded(self):
        specs = tiny_specs()
        _, stats = run_sweep(specs, workers=2)
        assert stats.spawn_seconds > 0.0
        assert stats.dispatch_seconds > 0.0
        assert stats.drain_seconds > 0.0
        assert stats.worker_recycles == 0


class TestWorkerRecycle:
    def test_crash_recycles_worker_and_resumes_manifest(self, tmp_path):
        from repro.sweep.manifest import Manifest

        specs = tiny_specs()
        manifest = Manifest(tmp_path / "manifest.jsonl")
        manifest.ensure_header("recycle-test", "deadbeef")
        results, stats = run_sweep(
            specs,
            workers=2,
            retries=1,
            manifest=manifest,
            job_runner=functools.partial(_crash_once_runner, str(tmp_path)),
        )
        manifest.close()
        assert not stats.failed
        assert stats.worker_recycles >= len(specs)  # one kill per job
        clean, _ = run_sweep(specs, workers=1)
        assert results == clean

        # The manifest journaled every job plus the run record; a
        # fresh sweep over it resumes instead of re-running.
        resumed = Manifest(tmp_path / "manifest.jsonl")
        assert len(resumed.completed()) == len(specs)
        runs = resumed.runs()
        assert len(runs) == 1
        assert runs[0]["worker_recycles"] == stats.worker_recycles
        assert runs[0]["workers_requested"] == 2
        assert runs[0]["workers_effective"] == stats.workers
        again, again_stats = run_sweep(specs, workers=2, manifest=resumed)
        resumed.close()
        assert again == results
        assert again_stats.skipped == len(specs)
        assert again_stats.executed == 0

    def test_timeout_kill_counts_as_recycle(self, tmp_path):
        specs = tiny_specs(policies=("greedy",))
        _, stats = run_sweep(
            specs,
            workers=2,
            retries=1,
            timeout=1.0,
            job_runner=functools.partial(_hang_once_runner, str(tmp_path)),
        )
        assert not stats.failed
        assert stats.worker_recycles >= 1
