"""Sweep aggregation equals the serial path; summaries are written."""

import io
import json
import os

import pytest

from repro.bench.experiments import demo_experiment, fig4_experiment
from repro.sweep import (
    SUMMARY_NAME,
    ProgressPrinter,
    SweepError,
    parallel_experiment,
    run_named_sweep,
)


class TestSerialEquivalence:
    def test_demo_sweep_matches_serial_byte_for_byte(self):
        serial = demo_experiment()
        swept = parallel_experiment(demo_experiment, workers=2)
        assert swept.output.rendered == serial.rendered
        assert swept.output.data == serial.data

    def test_kwargs_forward_to_both_paths(self):
        kwargs = dict(skews=(70,), policies=("age", "greedy"), seed=5)
        serial = demo_experiment(**kwargs)
        swept = parallel_experiment(demo_experiment, workers=2, **kwargs)
        assert swept.output.rendered == serial.rendered

    def test_real_experiment_grid_matches_serial(self):
        """fig4 at reduced size: the actual paper pipeline, swept."""
        kwargs = dict(buffer_sizes=(0, 4), write_multiplier=1.0)
        serial = fig4_experiment(**kwargs)
        swept = parallel_experiment(fig4_experiment, workers=2, **kwargs)
        assert swept.output.rendered == serial.rendered
        assert swept.output.data["wamp"] == serial.data["wamp"]


class TestArtifacts:
    def test_summary_and_rendered_output_are_written(self, tmp_path):
        report = parallel_experiment(
            demo_experiment, workers=2, out_dir=tmp_path
        )
        summary = json.loads((tmp_path / SUMMARY_NAME).read_text())
        assert summary["experiment"] == "demo_experiment"
        assert summary["jobs"] == 4
        assert summary["executed"] == 4
        assert summary["workers"] == min(2, os.cpu_count() or 1)
        assert summary["workers_requested"] == 2
        assert summary["wall_clock_s"] > 0
        assert summary["speedup_vs_serial_estimate"] > 0
        assert (tmp_path / "demo.txt").read_text().rstrip("\n") == (
            report.output.rendered
        )

    def test_in_memory_sweep_writes_nothing(self, tmp_path):
        parallel_experiment(demo_experiment, workers=1)
        assert list(tmp_path.iterdir()) == []


class TestNamedSweeps:
    def test_demo_grid_by_name(self, tmp_path):
        report = run_named_sweep(
            "demo", workers=2, out_dir=tmp_path, quick=True
        )
        assert report.summary["experiment"] == "demo"
        serial = demo_experiment(write_multiplier=1.0)  # quick = 4.0 / 4
        assert report.output.rendered == serial.rendered

    def test_unknown_grid_raises(self):
        with pytest.raises(SweepError, match="unknown grid"):
            run_named_sweep("fig6")


class TestProgressPrinter:
    def test_prints_one_line_per_event_and_closes(self):
        stream = io.StringIO()
        printer = ProgressPrinter(stream=stream)
        parallel_experiment(demo_experiment, workers=2, progress=printer)
        text = stream.getvalue()
        assert text.count("\r") == 4
        assert "[4/4]" in text
        assert text.endswith("\n")  # closed by parallel_experiment
