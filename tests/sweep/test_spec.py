"""Job specs: serialization, digests, and grid expansion."""

import pytest

from repro.bench.experiments import (
    demo_experiment,
    fig3_experiment,
    fig4_experiment,
    fig5_experiment,
    table1_experiment,
)
from repro.store import StoreConfig
from repro.sweep import (
    SWEEP_GRIDS,
    JobSpec,
    SweepError,
    expand_grid,
    grid_digest,
    run_job,
    spec_from_call,
    sweep_grid_names,
    workload_from_spec,
    workload_to_spec,
)
from repro.sweep.spec import result_from_dict, result_to_dict
from repro.workloads import (
    HotColdWorkload,
    TraceWorkload,
    UniformWorkload,
    ZipfianWorkload,
)

TINY = StoreConfig(
    n_segments=64, segment_units=8, fill_factor=0.75,
    clean_trigger=2, clean_batch=2,
)


class TestWorkloadSpecs:
    @pytest.mark.parametrize(
        "workload",
        [
            UniformWorkload(100, seed=3),
            ZipfianWorkload(100, theta=0.99, seed=4),
            ZipfianWorkload.ninety_ten(100, seed=5),
            HotColdWorkload(100, update_fraction=0.9, seed=6),
            HotColdWorkload.from_skew(100, 70, seed=7),
        ],
        ids=["uniform", "zipf-80-20", "zipf-90-10", "hotcold", "hotcold-skew"],
    )
    def test_round_trip_rebuilds_identical_stream(self, workload):
        clone = workload_from_spec(workload_to_spec(workload))
        assert type(clone) is type(workload)
        assert (clone.frequencies() == workload.frequencies()).all()
        assert (next(clone.batches(64)) == next(workload.batches(64))).all()

    def test_trace_workloads_are_rejected(self):
        with pytest.raises(SweepError):
            workload_to_spec(TraceWorkload([1, 2, 3, 2, 1]))


class TestJobSpec:
    def spec(self, policy="greedy", seed=0):
        wl = HotColdWorkload.from_skew(TINY.user_pages, 80, seed=seed)
        return spec_from_call(TINY, policy, wl, write_multiplier=2.0)

    def test_dict_round_trip(self):
        spec = self.spec()
        clone = JobSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.digest() == spec.digest()

    def test_digest_changes_with_any_parameter(self):
        base = self.spec()
        assert self.spec().digest() == base.digest()
        assert self.spec(policy="age").digest() != base.digest()
        assert self.spec(seed=1).digest() != base.digest()
        bigger = JobSpec.from_dict(
            dict(base.to_dict(), write_multiplier=3.0)
        )
        assert bigger.digest() != base.digest()

    def test_policy_instances_are_rejected(self):
        from repro.policies import make_policy

        wl = UniformWorkload(TINY.user_pages, seed=0)
        with pytest.raises(SweepError):
            spec_from_call(TINY, make_policy("greedy"), wl)

    def test_run_job_matches_direct_simulation(self):
        from repro.bench.runner import run_simulation

        spec = self.spec(policy="mdc")
        direct = run_simulation(
            TINY,
            "mdc",
            HotColdWorkload.from_skew(TINY.user_pages, 80, seed=0),
            write_multiplier=2.0,
        )
        via_spec = run_job(spec)
        assert via_spec.wamp == direct.wamp
        assert via_spec.window == direct.window

    def test_result_dict_round_trip(self):
        result = run_job(self.spec(policy="age"))
        clone = result_from_dict(result_to_dict(result))
        assert clone == result
        assert clone.wamp == result.wamp


class TestGridExpansion:
    def test_demo_grid_covers_policies_times_skews(self):
        specs = expand_grid(demo_experiment)
        assert len(specs) == 4  # 2 policies x 2 skews
        assert {s.policy for s in specs} == {"greedy", "mdc"}
        assert len({s.digest() for s in specs}) == 4

    def test_fig4_grid_is_one_job_per_buffer_size(self):
        specs = expand_grid(fig4_experiment, buffer_sizes=(0, 4, 16))
        assert len(specs) == 3
        assert {s.config.sort_buffer_segments for s in specs} == {0, 4, 16}
        assert all(s.policy == "mdc" for s in specs)

    def test_fig5_grid_covers_policy_cross_fill(self):
        specs = expand_grid(
            fig5_experiment,
            dist="zipf-80-20",
            fills=(0.6, 0.8),
            policies=("greedy", "age", "mdc"),
        )
        assert len(specs) == 6
        assert {s.config.fill_factor for s in specs} == {0.6, 0.8}

    def test_table1_grid_runs_two_policies_per_fill(self):
        specs = expand_grid(table1_experiment, fill_factors=(0.5, 0.8))
        assert len(specs) == 4
        assert {s.policy for s in specs} == {"age", "mdc-opt"}

    def test_seed_propagates_into_every_job(self):
        for spec in expand_grid(fig3_experiment, skews=(80,), seed=9):
            assert spec.workload["seed"] == 9

    def test_grid_digest_is_order_insensitive_but_seed_sensitive(self):
        a = expand_grid(demo_experiment)
        b = expand_grid(demo_experiment)
        assert grid_digest(a) == grid_digest(list(reversed(b)))
        assert grid_digest(a) != grid_digest(expand_grid(demo_experiment, seed=1))


class TestNamedGrids:
    def test_registry_names(self):
        assert "fig5" in sweep_grid_names()
        assert "demo" in sweep_grid_names()
        assert "fig6" not in sweep_grid_names()  # serial-only (traces)

    def test_quick_quarters_the_write_multiplier(self):
        _, kwargs, _ = SWEEP_GRIDS["fig5"].resolve(quick=True)
        assert kwargs["write_multiplier"] == pytest.approx(25.0 / 4.0)

    def test_fig5_takes_dist_and_names_the_run(self):
        _, kwargs, name = SWEEP_GRIDS["fig5"].resolve(dist="uniform")
        assert kwargs["dist"] == "uniform"
        assert name == "fig5-uniform"
        with pytest.raises(SweepError):
            SWEEP_GRIDS["fig5"].resolve(dist="pareto")

    def test_dist_rejected_by_grids_without_one(self):
        with pytest.raises(SweepError):
            SWEEP_GRIDS["table1"].resolve(dist="uniform")
