"""The log-structured file system layer."""

import pytest

from repro.lfs import FsError, LogStructuredFileSystem
from repro.store import StoreConfig


def make_fs(policy="greedy", block_bytes=64, **overrides):
    cfg = dict(
        n_segments=64, segment_units=32, fill_factor=0.5,
        clean_trigger=2, clean_batch=4,
    )
    cfg.update(overrides)
    return LogStructuredFileSystem(
        StoreConfig(**cfg), policy=policy, block_bytes=block_bytes
    )


class TestNamespace:
    def test_mkdir_and_listdir(self):
        fs = make_fs()
        fs.mkdir("/home")
        fs.mkdir("/home/user")
        assert fs.listdir("/") == ["home"]
        assert fs.listdir("/home") == ["user"]

    def test_create_and_exists(self):
        fs = make_fs()
        fs.create("/a.txt")
        assert fs.exists("/a.txt")
        assert not fs.exists("/b.txt")

    def test_duplicate_create_rejected(self):
        fs = make_fs()
        fs.create("/a")
        with pytest.raises(FsError):
            fs.create("/a")
        with pytest.raises(FsError):
            fs.mkdir("/a")

    def test_relative_paths_rejected(self):
        fs = make_fs()
        with pytest.raises(FsError):
            fs.create("a.txt")

    def test_missing_parent_rejected(self):
        fs = make_fs()
        with pytest.raises(FsError):
            fs.create("/nope/a.txt")

    def test_walk(self):
        fs = make_fs()
        fs.mkdir("/d")
        fs.create("/d/f1")
        fs.create("/top")
        seen = list(fs.walk("/"))
        assert seen[0] == ("/", ["d"], ["top"])
        assert ("/d", [], ["f1"]) in seen


class TestReadWrite:
    def test_roundtrip(self):
        fs = make_fs()
        fs.create("/f")
        fs.write("/f", 0, b"hello world")
        assert fs.read("/f") == b"hello world"
        assert fs.stat("/f")["size"] == 11

    def test_write_across_block_boundaries(self):
        fs = make_fs(block_bytes=8)
        fs.create("/f")
        payload = bytes(range(50))
        fs.write("/f", 3, payload)
        assert fs.read("/f", 3, 50) == payload
        assert fs.stat("/f")["blocks"] == (3 + 50 + 7) // 8

    def test_overwrite_middle(self):
        fs = make_fs(block_bytes=8)
        fs.create("/f")
        fs.write("/f", 0, b"A" * 40)
        fs.write("/f", 10, b"BBBB")
        assert fs.read("/f") == b"A" * 10 + b"BBBB" + b"A" * 26

    def test_sparse_hole_reads_zero(self):
        fs = make_fs(block_bytes=8)
        fs.create("/f")
        fs.write("/f", 30, b"end")
        assert fs.read("/f", 0, 8) == b"\0" * 8
        assert fs.read("/f", 30, 3) == b"end"
        # Hole blocks consume no device space.
        assert fs.stat("/f")["blocks"] < 33 // 8 + 1

    def test_read_past_eof(self):
        fs = make_fs()
        fs.create("/f")
        fs.write("/f", 0, b"xy")
        assert fs.read("/f", 10, 5) == b""

    def test_overwrite_relocates_instead_of_duplicating(self):
        fs = make_fs(block_bytes=8)
        fs.create("/f")
        fs.write("/f", 0, b"12345678")
        used_before = fs.df()["used_blocks"]
        for _ in range(10):
            fs.write("/f", 0, b"abcdefgh")
        assert fs.df()["used_blocks"] == used_before


class TestDeleteAndTruncate:
    def test_unlink_frees_all_blocks(self):
        fs = make_fs(block_bytes=8)
        fs.create("/f")
        fs.write("/f", 0, b"z" * 64)
        assert fs.df()["used_blocks"] == 8
        fs.unlink("/f")
        assert fs.df()["used_blocks"] == 0
        assert not fs.exists("/f")

    def test_truncate_shrinks(self):
        fs = make_fs(block_bytes=8)
        fs.create("/f")
        fs.write("/f", 0, b"q" * 64)
        fs.truncate("/f", 20)
        assert fs.stat("/f")["size"] == 20
        assert fs.read("/f") == b"q" * 20
        assert fs.df()["used_blocks"] == 3

    def test_truncate_grow_is_sparse(self):
        fs = make_fs(block_bytes=8)
        fs.create("/f")
        fs.write("/f", 0, b"q")
        fs.truncate("/f", 100)
        assert fs.stat("/f")["size"] == 100
        assert fs.read("/f", 50, 4) == b"\0" * 4
        assert fs.df()["used_blocks"] == 1

    def test_unlink_missing_raises(self):
        fs = make_fs()
        with pytest.raises(FsError):
            fs.unlink("/ghost")

    def test_block_reuse_after_unlink(self):
        fs = make_fs(block_bytes=8)
        fs.create("/a")
        fs.write("/a", 0, b"x" * 32)
        fs.unlink("/a")
        fs.create("/b")
        fs.write("/b", 0, b"y" * 32)
        fs.check_consistency()


class TestChurnAndCleaning:
    def test_file_churn_triggers_cleaning(self):
        import random
        fs = make_fs(policy="mdc", fill_factor=0.75, n_segments=128,
                     sort_buffer_segments=1)
        rng = random.Random(3)
        # A log directory of hot small files and a cold archive.
        fs.mkdir("/log")
        fs.mkdir("/archive")
        for i in range(40):
            fs.create("/archive/big%02d" % i)
            fs.write("/archive/big%02d" % i, 0, bytes(64) * 30)
        for i in range(10):
            fs.create("/log/hot%d" % i)
        for step in range(8000):
            name = "/log/hot%d" % rng.randrange(10)
            fs.write(name, rng.randrange(4) * 64, bytes([step % 251]) * 64)
        assert fs.store.stats.clean_cycles > 0
        fs.check_consistency()
        # Cold archive data survived the cleaning churn intact.
        assert fs.read("/archive/big00", 0, 16) == bytes(16)

    def test_mdc_cleans_cheaper_than_greedy_under_skew(self):
        import random
        wamps = {}
        for policy in ("greedy", "mdc"):
            # The device holds 128 * 32 = 4096 blocks; the cold archive
            # fills ~73% of it so cleaning works against real residency
            # (the config's fill_factor only sizes synthetic workloads —
            # file data determines the real occupancy).
            fs = make_fs(policy=policy, fill_factor=0.8, n_segments=128,
                         sort_buffer_segments=4)
            rng = random.Random(7)
            # ~2400 cold blocks + ~600 hot blocks = 73% of the device;
            # the hot set is far larger than MDC's 128-block sort buffer
            # and 10% of the churn rewrites cold files, so segments mix
            # temperatures and cleaning has real work to do.
            for i in range(40):
                fs.create("/cold%02d" % i)
                fs.write("/cold%02d" % i, 0, bytes(64) * 60)
            for i in range(60):
                fs.create("/hot%02d" % i)
                fs.write("/hot%02d" % i, 0, bytes(64) * 10)
            for step in range(40_000):
                if rng.random() < 0.1:
                    name = "/cold%02d" % rng.randrange(40)
                    fs.write(name, rng.randrange(60) * 64, b"c" * 64)
                else:
                    name = "/hot%02d" % rng.randrange(60)
                    fs.write(name, rng.randrange(10) * 64, b"w" * 64)
            wamps[policy] = fs.write_amplification
        assert 0.0 < wamps["mdc"] < wamps["greedy"]
