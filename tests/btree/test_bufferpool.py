"""Buffer pool mechanics: LRU order, pinning, write-back accounting."""

import pytest

from repro.btree import BufferPool, BufferPoolError, LEAF
from repro.workloads import TraceRecorder


class TestLru:
    def test_capacity_floor(self):
        with pytest.raises(ValueError):
            BufferPool(3)

    def test_evicts_least_recently_used(self):
        pool = BufferPool(4)
        nodes = [pool.allocate(LEAF) for _ in range(4)]
        pool.get(nodes[0].page_id)  # touch 0: now 1 is the LRU
        pool.allocate(LEAF)  # forces one eviction
        assert pool.stats.evictions == 1
        # Node 1 went to disk; getting it back is a miss.
        misses = pool.stats.misses
        pool.get(nodes[1].page_id)
        assert pool.stats.misses == misses + 1

    def test_get_missing_page_raises(self):
        pool = BufferPool(4)
        with pytest.raises(KeyError):
            pool.get(999)

    def test_hit_ratio(self):
        pool = BufferPool(4)
        node = pool.allocate(LEAF)
        for _ in range(9):
            pool.get(node.page_id)
        assert pool.stats.hit_ratio == pytest.approx(1.0)


class TestPinning:
    def test_pinned_pages_are_not_evicted(self):
        pool = BufferPool(4)
        nodes = [pool.allocate(LEAF) for _ in range(4)]
        for n in nodes[:3]:
            pool.pin(n.page_id)
        pool.allocate(LEAF)  # must evict the only unpinned page
        assert all(
            pool.get(n.page_id) is not None for n in nodes[:3]
        )

    def test_all_pinned_raises(self):
        pool = BufferPool(4)
        for _ in range(4):
            node = pool.allocate(LEAF)
            pool.pin(node.page_id)
        with pytest.raises(BufferPoolError):
            pool.allocate(LEAF)

    def test_unpin_reenables_eviction(self):
        pool = BufferPool(4)
        nodes = [pool.allocate(LEAF) for _ in range(4)]
        for n in nodes:
            pool.pin(n.page_id)
        pool.unpin(nodes[0].page_id)
        pool.allocate(LEAF)  # evicts nodes[0]
        assert pool.stats.evictions == 1

    def test_nested_pins(self):
        pool = BufferPool(4)
        node = pool.allocate(LEAF)
        pool.pin(node.page_id)
        pool.pin(node.page_id)
        pool.unpin(node.page_id)
        for _ in range(5):
            pool.allocate(LEAF)
        # Still pinned once: never evicted.
        assert node.page_id not in pool._disk


class TestWriteBack:
    def test_eviction_of_dirty_page_records_trace(self):
        recorder = TraceRecorder()
        pool = BufferPool(4, recorder=recorder)
        first = pool.allocate(LEAF)  # dirty on allocation
        for _ in range(4):
            pool.allocate(LEAF)
        assert first.page_id in recorder.to_array().tolist()

    def test_clean_eviction_writes_nothing(self):
        pool = BufferPool(4)
        node = pool.allocate(LEAF)
        pool.checkpoint()  # node now clean
        writes = pool.stats.page_writes
        for _ in range(4):
            pool.allocate(LEAF)
            pool.checkpoint()
        # Evicting the clean copy of `node` added no extra write for it.
        trace = pool.recorder.to_array().tolist()
        assert trace.count(node.page_id) == 1
        assert pool.stats.page_writes >= writes

    def test_free_drops_everywhere(self):
        pool = BufferPool(4)
        node = pool.allocate(LEAF)
        pool.free(node.page_id)
        with pytest.raises(KeyError):
            pool.get(node.page_id)

    def test_flush_all_round_trips(self):
        pool = BufferPool(8)
        node = pool.allocate(LEAF)
        node.keys.append(5)
        node.values.append("v")
        pool.mark_dirty(node.page_id)
        pool.flush_all()
        assert pool.cached_count() == 0
        again = pool.get(node.page_id)
        assert again.keys == [5]
