"""B+-tree correctness: ordering, splits, scans, deletes, persistence
across buffer-pool evictions."""

import random

import pytest

from repro.btree import BPlusTree, BufferPool, entries_per_page


def make_tree(pool_pages=1000, key_bytes=16, value_bytes=64):
    pool = BufferPool(pool_pages)
    return BPlusTree(pool, key_bytes=key_bytes, value_bytes=value_bytes)


class TestBasics:
    def test_empty_tree(self):
        tree = make_tree()
        assert len(tree) == 0
        assert tree.search(1) is None
        assert 1 not in tree

    def test_insert_and_search(self):
        tree = make_tree()
        assert tree.insert(5, "five")
        assert tree.search(5) == "five"
        assert 5 in tree
        assert len(tree) == 1

    def test_duplicate_insert_rejected(self):
        tree = make_tree()
        tree.insert(5, "a")
        assert not tree.insert(5, "b")
        assert tree.search(5) == "a"
        assert len(tree) == 1

    def test_update_requires_existence(self):
        tree = make_tree()
        assert not tree.update(1, "x")
        tree.insert(1, "x")
        assert tree.update(1, "y")
        assert tree.search(1) == "y"

    def test_upsert(self):
        tree = make_tree()
        tree.upsert(1, "a")
        tree.upsert(1, "b")
        assert tree.search(1) == "b"
        assert len(tree) == 1

    def test_delete(self):
        tree = make_tree()
        tree.insert(1, "a")
        assert tree.delete(1)
        assert tree.search(1) is None
        assert not tree.delete(1)
        assert len(tree) == 0


class TestSplits:
    def test_many_inserts_stay_sorted(self):
        tree = make_tree()
        keys = list(range(2000))
        random.Random(1).shuffle(keys)
        for k in keys:
            tree.insert(k, k * 10)
        assert len(tree) == 2000
        assert tree.height > 1
        tree.check_structure()
        for k in (0, 999, 1999):
            assert tree.search(k) == k * 10

    def test_reverse_order_inserts(self):
        tree = make_tree()
        for k in reversed(range(1000)):
            tree.insert(k, k)
        tree.check_structure()
        assert [k for k, _ in tree.scan(0, 1000)] == list(range(1000))

    def test_wide_rows_split_sooner(self):
        narrow = make_tree(value_bytes=8)
        wide = make_tree(value_bytes=600)
        for k in range(200):
            narrow.insert(k, "v")
            wide.insert(k, "v")
        assert wide.height >= narrow.height
        assert wide.pool.allocated_pages > narrow.pool.allocated_pages

    def test_capacity_derives_from_entry_bytes(self):
        assert entries_per_page(100) == (4096 - 96) // 100
        with pytest.raises(ValueError):
            entries_per_page(4096)


class TestScans:
    def test_range_scan_half_open(self):
        tree = make_tree()
        for k in range(100):
            tree.insert(k, -k)
        out = list(tree.scan(10, 20))
        assert [k for k, _ in out] == list(range(10, 20))
        out = list(tree.scan(10, 20, inclusive=True))
        assert out[-1] == (20, -20)

    def test_scan_crosses_leaves(self):
        tree = make_tree(value_bytes=600)  # small leaves
        for k in range(500):
            tree.insert(k, k)
        assert [k for k, _ in tree.scan(0, 499, inclusive=True)] == list(range(500))

    def test_prefix_scan_composite_keys(self):
        tree = make_tree()
        for w in range(3):
            for d in range(4):
                tree.insert((w, d), w * 10 + d)
        out = list(tree.scan_prefix((1,)))
        assert [k for k, _ in out] == [(1, 0), (1, 1), (1, 2), (1, 3)]

    def test_last_key_with_prefix(self):
        tree = make_tree()
        for o in range(5):
            tree.insert((2, 7, o), o)
        assert tree.last_key_with_prefix((2, 7)) == (2, 7, 4)
        assert tree.last_key_with_prefix((9, 9)) is None


class TestDeleteHeavy:
    def test_queue_pattern_like_new_order(self):
        # TPC-C's NEW-ORDER table: insert at the tail, delete from the
        # head, forever.
        tree = make_tree(value_bytes=8)
        head = 0
        tail = 0
        for _ in range(3000):
            tree.insert(tail, "row")
            tail += 1
            if tail - head > 50:
                assert tree.delete(head)
                head += 1
        assert len(tree) == tail - head
        assert [k for k, _ in tree.scan(0, tail)] == list(range(head, tail))


class TestEvictionPersistence:
    def test_data_survives_tiny_pool(self):
        # Pool far smaller than the tree: every operation churns through
        # evictions and disk reads, which must be lossless.
        pool = BufferPool(8)
        tree = BPlusTree(pool, key_bytes=16, value_bytes=64)
        keys = list(range(1500))
        random.Random(2).shuffle(keys)
        for k in keys:
            tree.insert(k, k + 7)
        for k in (0, 42, 777, 1499):
            assert tree.search(k) == k + 7
        tree.check_structure()
        assert pool.stats.evictions > 0
        assert pool.stats.page_writes > 0

    def test_write_back_records_trace(self):
        pool = BufferPool(8)
        tree = BPlusTree(pool, key_bytes=16, value_bytes=64)
        for k in range(2000):
            tree.insert(k, k)
        trace = pool.recorder.to_array()
        assert len(trace) == pool.stats.page_writes
        assert len(trace) > 0

    def test_checkpoint_flushes_dirty(self):
        pool = BufferPool(100)
        tree = BPlusTree(pool, key_bytes=16, value_bytes=64)
        for k in range(50):
            tree.insert(k, k)
        written = pool.checkpoint()
        assert written > 0
        assert pool.checkpoint() == 0  # nothing dirty anymore
