"""Binary page codec: round trips and serialized buffer-pool mode."""

import random

import pytest

from repro.btree import BPlusTree, BufferPool, INTERNAL, LEAF, Node, PAGE_BYTES
from repro.btree.codec import CodecError, decode_node, encode_node, encoded_size


def roundtrip(node):
    return decode_node(node.page_id, encode_node(node))


class TestRoundTrip:
    def test_empty_leaf(self):
        node = Node(7, LEAF)
        out = roundtrip(node)
        assert out.page_id == 7
        assert out.is_leaf
        assert out.keys == [] and out.values == []
        assert out.next_leaf == -1

    def test_leaf_with_mixed_payloads(self):
        node = Node(1, LEAF)
        node.keys = [(1, 2), (1, 3), (2, 0)]
        node.values = [
            ("name", 3.5, 42),
            None,
            b"\x00\xffraw",
        ]
        node.next_leaf = 99
        out = roundtrip(node)
        assert out.keys == node.keys
        assert out.values == node.values
        assert out.next_leaf == 99

    def test_internal_node(self):
        node = Node(2, INTERNAL)
        node.keys = [(5,), (9,)]
        node.children = [10, 11, 12]
        out = roundtrip(node)
        assert not out.is_leaf
        assert out.keys == node.keys
        assert out.children == [10, 11, 12]

    def test_unicode_and_nested_tuples(self):
        node = Node(3, LEAF)
        node.keys = [("wärehouse", ("nested", 1))]
        node.values = [("ünïcode", (1, (2, (3,))))]
        out = roundtrip(node)
        assert out.keys == node.keys
        assert out.values == node.values

    def test_tpcc_like_rows(self):
        node = Node(4, LEAF)
        node.keys = [(1, 2, 3), (1, 2, 4)]
        node.values = [
            ("FIRST", "BARBARBAR", -10.0, 10.0, 1, 0, "GC", "x" * 80),
            ("OTHER", "OUGHTPRI", 5.5, 0.0, 2, 1, "BC", "y" * 80),
        ]
        out = roundtrip(node)
        assert out.values == node.values


class TestErrors:
    def test_unsupported_type(self):
        node = Node(1, LEAF)
        node.keys = [1]
        node.values = [{"not": "allowed"}]
        with pytest.raises(CodecError):
            encode_node(node)

    def test_bool_rejected(self):
        node = Node(1, LEAF)
        node.keys = [True]
        node.values = [1]
        with pytest.raises(CodecError):
            encode_node(node)

    def test_truncated_image(self):
        node = Node(1, LEAF)
        node.keys = [123]
        node.values = ["abc"]
        data = encode_node(node)
        for cut in range(len(data)):
            with pytest.raises(CodecError):
                decode_node(1, data[:cut])

    def test_corrupt_tag(self):
        node = Node(1, LEAF)
        node.keys = [1]
        node.values = [2]
        data = bytearray(encode_node(node))
        data[-9] = 200  # stomp the value's type tag
        with pytest.raises(CodecError):
            decode_node(1, bytes(data))



class TestCapacityHonesty:
    def test_full_leaf_fits_the_page_for_fixed_width_ints(self):
        # key_bytes=16, value_bytes=64: capacity math says this many
        # entries; integer keys with 64-byte payloads must actually fit.
        pool = BufferPool(100)
        tree = BPlusTree(pool, key_bytes=16, value_bytes=64)
        node = Node(0, LEAF)
        for i in range(tree.leaf_capacity):
            node.keys.append(i)
            node.values.append(b"v" * 64)
        assert encoded_size(node) <= PAGE_BYTES


class TestSerializedPool:
    def test_tree_survives_serialized_evictions(self):
        pool = BufferPool(8, serialize=True)
        tree = BPlusTree(pool, key_bytes=16, value_bytes=64)
        keys = list(range(1200))
        random.Random(3).shuffle(keys)
        for k in keys:
            tree.insert((k, "pad"), ("value", float(k)))
        for k in (0, 500, 1199):
            assert tree.search((k, "pad")) == ("value", float(k))
        tree.check_structure()
        assert pool.stats.evictions > 0

    def test_serialized_and_object_pools_agree(self):
        results = []
        for serialize in (False, True):
            pool = BufferPool(8, serialize=serialize)
            tree = BPlusTree(pool, key_bytes=16, value_bytes=64)
            for k in range(800):
                tree.insert(k, k * 3)
            results.append([v for _, v in tree.scan(0, 800)])
        assert results[0] == results[1]
