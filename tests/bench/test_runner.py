"""The simulation driver: oracle wiring, measurement windows,
convergence loop."""

import pytest

from repro.bench import prepare_store, run_simulation, run_until_converged, sweep
from repro.store import StoreConfig
from repro.workloads import UniformWorkload


@pytest.fixture
def cfg():
    return StoreConfig(
        n_segments=64, segment_units=16, fill_factor=0.7,
        clean_trigger=3, clean_batch=4,
    )


class TestPrepare:
    def test_loads_population(self, cfg):
        wl = UniformWorkload(cfg.user_pages, seed=0)
        store = prepare_store(cfg, "greedy", wl)
        assert store.live_page_count() == cfg.user_pages

    def test_opt_policies_get_oracle(self, cfg):
        wl = UniformWorkload(cfg.user_pages, seed=0)
        store = prepare_store(cfg, "mdc-opt", wl)
        assert store.pages.oracle_freq[0] == pytest.approx(1.0 / cfg.user_pages)

    def test_non_opt_policies_skip_oracle(self, cfg):
        wl = UniformWorkload(cfg.user_pages, seed=0)
        store = prepare_store(cfg, "mdc", wl)
        assert store.pages.oracle_freq[0] == 0.0


class TestRunSimulation:
    def test_result_fields(self, cfg):
        wl = UniformWorkload(cfg.user_pages, seed=1)
        result = run_simulation(cfg, "greedy", wl, total_writes=5000)
        assert result.policy == "greedy"
        assert result.workload == "UniformWorkload"
        assert result.total_user_writes == cfg.user_pages + 5000
        assert result.wamp > 0.0
        assert 0.0 < result.mean_cleaned_emptiness < 1.0
        assert "greedy" in result.summary()

    def test_window_excludes_warmup(self, cfg):
        wl = UniformWorkload(cfg.user_pages, seed=1)
        result = run_simulation(
            cfg, "greedy", wl, total_writes=8000, measure_fraction=0.25
        )
        assert result.window.user_writes == 2000

    def test_rejects_bad_measure_fraction(self, cfg):
        wl = UniformWorkload(cfg.user_pages, seed=1)
        with pytest.raises(ValueError):
            run_simulation(cfg, "greedy", wl, measure_fraction=0.0)

    def test_multilog_reports_log_count(self, cfg):
        wl = UniformWorkload(cfg.user_pages, seed=1)
        result = run_simulation(cfg, "multi-log", wl, total_writes=5000)
        assert result.extras["n_logs"] >= 1


class TestConvergence:
    def test_stops_when_stable(self, cfg):
        wl = UniformWorkload(cfg.user_pages, seed=2)
        result = run_until_converged(
            cfg, "greedy", wl, round_multiplier=5.0, rel_tol=0.1, max_rounds=8
        )
        assert result.wamp > 0.0
        # Convergence means it did not need all rounds' worth of writes.
        assert result.total_user_writes < cfg.user_pages * (1 + 5 * 8)


class TestSweep:
    def test_one_result_per_cell(self, cfg):
        results = sweep(
            [cfg, cfg.scaled(fill_factor=0.6)],
            ["greedy", "age"],
            lambda c: UniformWorkload(c.user_pages, seed=3),
            total_writes=3000,
        )
        assert len(results) == 4
        assert {r.policy for r in results} == {"greedy", "age"}
