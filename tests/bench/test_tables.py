"""Plain-text table/series rendering."""

from repro.bench import banner, format_series, format_table
from repro.bench.tables import format_cell


class TestCells:
    def test_float_precision(self):
        assert format_cell(1.23456, precision=2) == "1.23"

    def test_int_passthrough(self):
        assert format_cell(42) == "42"

    def test_nan_renders_dash(self):
        assert format_cell(float("nan")) == "-"

    def test_string_passthrough(self):
        assert format_cell("mdc") == "mdc"


class TestTable:
    def test_headers_and_alignment(self):
        out = format_table(["F", "Wamp"], [[0.8, 1.666], [0.5, 0.25]])
        lines = out.splitlines()
        assert lines[0].startswith("F")
        assert "Wamp" in lines[0]
        assert set(lines[1]) <= {"-", " "}
        assert "1.666" in out
        assert len(lines) == 4

    def test_title_prepended(self):
        out = format_table(["a"], [[1]], title="Table 1")
        assert out.splitlines()[0] == "Table 1"

    def test_wide_cells_stretch_columns(self):
        out = format_table(["x"], [["longer-than-header"]])
        header, underline, row = out.splitlines()
        assert len(underline) == len("longer-than-header")


class TestSeries:
    def test_one_row_per_series(self):
        out = format_series(
            "fill", [0.5, 0.8],
            {"mdc": [0.2, 0.7], "greedy": [0.3, 1.9]},
        )
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[2].lstrip().startswith("mdc")


class TestBanner:
    def test_contains_text(self):
        out = banner("Figure 5a")
        assert "Figure 5a" in out
        assert out.splitlines()[0].startswith("=")
