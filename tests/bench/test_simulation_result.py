"""SimulationResult derived metrics."""

import pytest

from repro.bench import run_simulation
from repro.store import StoreConfig
from repro.workloads import ZipfianWorkload


class TestMetrics:
    @pytest.fixture(scope="class")
    def buffered_result(self):
        cfg = StoreConfig(
            n_segments=128, segment_units=32, fill_factor=0.75,
            clean_trigger=3, clean_batch=4, sort_buffer_segments=4,
        )
        wl = ZipfianWorkload.eighty_twenty(cfg.user_pages, seed=11)
        return run_simulation(cfg, "mdc", wl, write_multiplier=12)

    def test_device_wamp_at_least_logical(self, buffered_result):
        # Absorption removes logical writes from the device denominator,
        # so the device-flow metric can only be >= the paper's metric.
        assert buffered_result.device_wamp >= buffered_result.wamp

    def test_device_wamp_obeys_equation_2(self, buffered_result):
        e = buffered_result.mean_cleaned_emptiness
        assert buffered_result.device_wamp == pytest.approx(
            (1 - e) / e, rel=0.08
        )

    def test_metrics_coincide_without_buffer(self):
        cfg = StoreConfig(
            n_segments=128, segment_units=32, fill_factor=0.75,
            clean_trigger=3, clean_batch=4,
        )
        wl = ZipfianWorkload.eighty_twenty(cfg.user_pages, seed=11)
        result = run_simulation(cfg, "greedy", wl, write_multiplier=12)
        assert result.device_wamp == pytest.approx(result.wamp)
