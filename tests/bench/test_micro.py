"""The store microbenchmark harness (``repro bench micro``).

Runs are tiny here — these tests pin the report contract (structure,
rendering, baseline checking, JSON round-trip), not the performance
numbers themselves; the committed ``BENCH_store.json`` carries those.
"""

import pathlib

import numpy as np
import pytest

from repro.bench.micro import (
    MICRO_WORKLOADS,
    append_history,
    check_against_baseline,
    history_entry,
    load_history,
    load_report,
    micro_workload,
    render_micro,
    run_micro,
    write_report,
)

_TINY = dict(n_writes=2000, trials=1, workloads=("uniform",))


@pytest.fixture(scope="module")
def tiny_report():
    return run_micro(**_TINY)


class TestWorkloads:
    @pytest.mark.parametrize("name", MICRO_WORKLOADS)
    def test_streams_are_fixed_seed(self, name):
        a = micro_workload(name, 1000, 500, seed=3)
        b = micro_workload(name, 1000, 500, seed=3)
        np.testing.assert_array_equal(a, b)
        assert a.dtype == np.int64
        assert a.min() >= 0 and a.max() < 1000

    def test_different_seeds_differ(self):
        a = micro_workload("uniform", 1000, 500, seed=0)
        b = micro_workload("uniform", 1000, 500, seed=1)
        assert not np.array_equal(a, b)

    def test_unknown_workload_raises(self):
        with pytest.raises(ValueError):
            micro_workload("bimodal", 1000, 500, seed=0)


class TestReport:
    def test_report_structure(self, tiny_report):
        assert tiny_report["benchmark"] == "store-micro"
        cell = tiny_report["workloads"]["uniform"]
        for path in ("scalar", "batch"):
            stats = cell[path]
            assert stats["wall_s"] > 0
            assert stats["writes_per_sec"] > 0
            assert stats["clean_cycles"] >= 0
            assert "cycle_p50_ms" in stats and "cycle_p95_ms" in stats
        assert cell["speedup"] == pytest.approx(
            cell["batch"]["writes_per_sec"] / cell["scalar"]["writes_per_sec"]
        )

    def test_render_mentions_every_workload(self, tiny_report):
        text = render_micro(tiny_report)
        assert "uniform" in text
        assert "speedup" in text

    def test_roundtrip(self, tiny_report, tmp_path):
        path = tmp_path / "bench.json"
        write_report(tiny_report, str(path))
        assert load_report(str(path)) == tiny_report

    def test_profile_dump(self, tmp_path):
        path = tmp_path / "micro.prof"
        report = run_micro(profile_path=str(path), **_TINY)
        assert report["profile"] == str(path)
        assert path.stat().st_size > 0

    def test_batch_and_scalar_do_identical_simulation(self, tiny_report):
        cell = tiny_report["workloads"]["uniform"]
        assert cell["scalar"]["clean_cycles"] == cell["batch"]["clean_cycles"]


class TestBaselineCheck:
    def _report(self, rate):
        return {
            "workloads": {"uniform": {"batch": {"writes_per_sec": rate}}}
        }

    def test_passes_within_tolerance(self):
        base = self._report(100_000.0)
        assert check_against_baseline(self._report(80_000.0), base) == []

    def test_fails_beyond_tolerance(self):
        base = self._report(100_000.0)
        problems = check_against_baseline(self._report(60_000.0), base)
        assert len(problems) == 1
        assert "uniform" in problems[0]

    def test_tolerance_is_configurable(self):
        base = self._report(100_000.0)
        assert check_against_baseline(
            self._report(60_000.0), base, tolerance=0.5
        ) == []

    def test_workloads_missing_from_run_are_ignored(self):
        base = {
            "workloads": {
                "uniform": {"batch": {"writes_per_sec": 1.0}},
                "zipfian": {"batch": {"writes_per_sec": 1e12}},
            }
        }
        assert check_against_baseline(self._report(1.0), base) == []


class TestHistory:
    def test_entry_carries_headline_numbers(self, tiny_report):
        entry = history_entry(tiny_report, sha="abc123")
        assert entry["sha"] == "abc123"
        assert entry["benchmark"] == "store-micro"
        cell = entry["workloads"]["uniform"]
        assert cell["batch_writes_per_sec"] == (
            tiny_report["workloads"]["uniform"]["batch"]["writes_per_sec"]
        )
        assert cell["speedup"] == tiny_report["workloads"]["uniform"]["speedup"]

    def test_sha_defaults_to_git_head(self, tiny_report):
        entry = history_entry(tiny_report)
        assert entry["sha"]  # repo HEAD, GITHUB_SHA, or "unknown"

    def test_append_and_load_round_trip(self, tiny_report, tmp_path):
        path = tmp_path / "nested" / "history.jsonl"
        first = append_history(tiny_report, path=str(path), sha="one")
        second = append_history(tiny_report, path=str(path), sha="two")
        entries = load_history(str(path))
        assert entries == [first, second]
        assert [e["sha"] for e in entries] == ["one", "two"]

    def test_load_missing_history_is_empty(self, tmp_path):
        assert load_history(str(tmp_path / "none.jsonl")) == []


def test_committed_history_is_well_formed():
    """benchmarks/history.jsonl (the committed trajectory) stays
    parseable, with every entry keyed by a commit.  The trajectory is
    multi-benchmark (store-micro, service, latency share it), so shape
    checks key off each entry's ``benchmark`` tag."""
    path = pathlib.Path(__file__).resolve().parents[2] / "benchmarks"
    entries = load_history(str(path / "history.jsonl"))
    assert entries, "the seeded benchmark history must not be empty"
    for entry in entries:
        assert entry["sha"]
        kind = entry.get("benchmark", "store-micro")
        if kind == "store-micro":
            assert entry["workloads"]
        elif kind == "service":
            assert entry["shards"]
        elif kind == "latency":
            assert set(entry["modes"]) == {"batch", "incremental"}


def test_committed_baseline_is_well_formed():
    """BENCH_store.json (the CI baseline) stays loadable and complete."""
    path = pathlib.Path(__file__).resolve().parents[2] / "BENCH_store.json"
    report = load_report(str(path))
    assert set(report["workloads"]) == set(MICRO_WORKLOADS)
    for cell in report["workloads"].values():
        assert cell["batch"]["writes_per_sec"] > cell["scalar"]["writes_per_sec"]
