"""The hot-path profiling harness (``repro bench profile``).

Tiny runs — these pin the artifact contract (three phases, ranked
cumtime rows, JSON round-trip), not where the time actually goes; the
committed ``benchmarks/results/PROFILE_store.json`` carries that.
"""

import json

import pytest

from repro.bench.profile import render_profile, run_profile, write_profile


@pytest.fixture(scope="module")
def tiny_report():
    return run_profile(n_writes=3000, top=5)


class TestReport:
    def test_covers_the_three_hot_paths(self, tiny_report):
        assert tiny_report["benchmark"] == "store-profile"
        assert set(tiny_report["phases"]) == {
            "write_batch", "clean_step", "rank_columns",
        }
        assert tiny_report["kernel"]["active"] in ("python", "numba")

    def test_rows_are_ranked_by_cumtime(self, tiny_report):
        for phase, cell in tiny_report["phases"].items():
            assert cell["wall_s"] >= 0
            rows = cell["top"]
            assert 0 < len(rows) <= 5
            cums = [r["cumtime_s"] for r in rows]
            assert cums == sorted(cums, reverse=True)
            for row in rows:
                assert row["ncalls"] >= 1
                assert row["tottime_s"] <= row["cumtime_s"] + 1e-9

    def test_write_phase_profiles_the_write_engine(self, tiny_report):
        rows = tiny_report["phases"]["write_batch"]["top"]
        assert any("write_batch" in r["function"] for r in rows)

    def test_rank_phase_profiles_the_policy(self, tiny_report):
        rows = tiny_report["phases"]["rank_columns"]["top"]
        assert any("rank_columns" in r["function"] for r in rows)


class TestArtifact:
    def test_json_round_trip(self, tiny_report, tmp_path):
        path = tmp_path / "nested" / "PROFILE_store.json"
        write_profile(tiny_report, str(path))
        assert json.loads(path.read_text()) == tiny_report

    def test_render_mentions_every_phase(self, tiny_report):
        text = render_profile(tiny_report)
        for phase in ("write_batch", "clean_step", "rank_columns"):
            assert phase in text
