"""Windowed Wamp time series."""

import pytest

from repro.bench.timeseries import TimeSeries, wamp_timeseries
from repro.store import StoreConfig
from repro.workloads import UniformWorkload


class TestTimeSeriesHelpers:
    def test_windows_to_converge(self):
        ts = TimeSeries(
            window_writes=100,
            series={"p": [5.0, 2.0, 1.1, 1.0, 1.02, 0.99]},
        )
        # 1.1 is 11% above the final 0.99; convergence starts at 1.0.
        assert ts.windows_to_converge("p", rel_tol=0.1) == 3
        assert ts.windows_to_converge("p", rel_tol=0.2) == 2

    def test_oscillating_curve_converges_only_at_the_end(self):
        ts = TimeSeries(window_writes=10, series={"p": [1.0, 5.0, 1.0, 5.0]})
        assert ts.windows_to_converge("p", rel_tol=0.01) == 3

    def test_rendered_contains_axis(self):
        ts = TimeSeries(window_writes=100, series={"p": [1.0, 2.0]})
        out = ts.rendered("T")
        assert "writes" in out and "100" in out and "200" in out


class TestMeasurement:
    def test_curves_have_requested_windows(self):
        cfg = StoreConfig(
            n_segments=64, segment_units=16, fill_factor=0.7,
            clean_trigger=3, clean_batch=4,
        )
        ts = wamp_timeseries(
            cfg,
            ["greedy", "age"],
            lambda: UniformWorkload(cfg.user_pages, seed=2),
            n_windows=4,
            window_multiplier=1.5,
        )
        assert set(ts.series) == {"greedy", "age"}
        assert all(len(c) == 4 for c in ts.series.values())
        assert ts.window_writes == int(1.5 * cfg.user_pages)

    def test_uniform_greedy_settles_near_fixpoint(self):
        from repro.analysis import emptiness_fixpoint

        cfg = StoreConfig(
            n_segments=256, segment_units=32, fill_factor=0.7,
            clean_trigger=3, clean_batch=4,
        )
        ts = wamp_timeseries(
            cfg,
            ["greedy"],
            lambda: UniformWorkload(cfg.user_pages, seed=2),
            n_windows=6,
            window_multiplier=3.0,
        )
        e = emptiness_fixpoint(0.7)
        assert ts.series["greedy"][-1] == pytest.approx((1 - e) / e, rel=0.15)
