"""ASCII chart rendering."""

import pytest

from repro.bench.charts import bar_chart, line_plot


class TestBarChart:
    def test_bars_scale_to_peak(self):
        out = bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_zero_value_has_no_bar(self):
        out = bar_chart(["x", "y"], [0.0, 3.0], width=10)
        assert out.splitlines()[0].count("#") == 0

    def test_values_printed(self):
        out = bar_chart(["mdc"], [0.531], unit=" Wamp")
        assert "0.531 Wamp" in out

    def test_title(self):
        out = bar_chart(["a"], [1.0], title="Figure 3")
        assert out.splitlines()[0] == "Figure 3"

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            bar_chart([], [])
        with pytest.raises(ValueError):
            bar_chart(["a"], [-1.0])


class TestLinePlot:
    def test_markers_for_each_series(self):
        out = line_plot(
            [0.5, 0.8], {"mdc": [0.2, 0.7], "greedy": [0.3, 1.9]}
        )
        assert "M" in out
        assert "G" in out
        assert "M=mdc" in out
        assert "G=greedy" in out

    def test_marker_collision_falls_back(self):
        out = line_plot([0, 1], {"mdc": [1, 2], "multi": [2, 3]})
        legend = out.splitlines()[-1]
        markers = [part.split("=")[0] for part in legend.split()]
        assert len(set(markers)) == 2

    def test_higher_values_plot_higher(self):
        out = line_plot([0, 1], {"s": [0.0, 10.0]}, height=5, width=11)
        rows = [l.split("|", 1)[1] for l in out.splitlines() if "|" in l]
        top_row = rows[0]
        bottom_row = rows[-1]
        assert top_row.rstrip().endswith("S")
        assert bottom_row.startswith("S")

    def test_validation(self):
        with pytest.raises(ValueError):
            line_plot([1], {"s": [1]})
        with pytest.raises(ValueError):
            line_plot([1, 2], {})
        with pytest.raises(ValueError):
            line_plot([1, 2], {"s": [1, 2, 3]})
