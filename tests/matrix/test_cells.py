"""Cell specs: content addressing, labels, and the runner dispatch."""

import pytest

from repro.matrix.cells import (
    CellResult,
    cell_metric,
    cells_for_experiment,
    dig,
    matches_where,
    matrix_digest,
)
from repro.matrix.config import MatrixConfigError, parse_config
from repro.sweep.spec import JobSpec

from .conftest import fabricate_sim_result


def one_exp(**overrides):
    doc = {
        "name": "e",
        "kind": "sim",
        "matrix": {"policy": ["age"]},
        "params": {"write_multiplier": 4.0},
    }
    doc.update(overrides)
    return parse_config({"name": "t", "experiments": [doc]}).experiments[0]


class TestContentAddressing:
    def test_same_config_same_digests(self):
        a = cells_for_experiment(one_exp())
        b = cells_for_experiment(one_exp())
        assert [c.digest() for c in a] == [c.digest() for c in b]
        assert matrix_digest(a) == matrix_digest(b)

    def test_param_change_changes_digest(self):
        a = cells_for_experiment(one_exp())[0]
        b = cells_for_experiment(
            one_exp(params={"write_multiplier": 8.0})
        )[0]
        assert a.digest() != b.digest()

    def test_matrix_digest_is_order_insensitive(self):
        cells = cells_for_experiment(
            one_exp(matrix={"policy": ["age", "greedy"]})
        )
        assert matrix_digest(cells) == matrix_digest(list(reversed(cells)))

    def test_obs_flag_does_not_change_digest(self):
        a = cells_for_experiment(one_exp())[0]
        b = cells_for_experiment(one_exp(obs=True))[0]
        assert a.digest() == b.digest()
        assert not a.obs and b.obs

    def test_sim_payload_is_a_jobspec(self):
        cell = cells_for_experiment(one_exp())[0]
        spec = JobSpec.from_dict(cell.payload)
        assert spec.policy == "age"
        assert spec.workload["kind"] == "uniform"
        assert spec.config.fill_factor == pytest.approx(0.8)

    def test_sim_label_names_the_point(self):
        cell = cells_for_experiment(one_exp())[0]
        assert cell.label == "e/age/uniform/F0.80/s0"

    def test_bench_payload_json_safe(self):
        exp = one_exp(kind="service", matrix={}, params={"quick": True})
        cell = cells_for_experiment(exp)[0]
        # Tuple defaults must become lists so manifest JSON round trips
        # compare equal.
        assert cell.payload["shards"] == [1, 2, 4]
        assert cell.label == "e/service/s0"

    def test_invalid_geometry_is_a_config_error(self):
        # fill 0.99 at a tiny store leaves fewer slack segments than the
        # cleaner needs; the store constructor rejects it and the matrix
        # layer converts that into an actionable config error.
        exp = one_exp(
            params={"fill": 0.99, "n_segments": 8, "segment_units": 4}
        )
        with pytest.raises(MatrixConfigError, match="invalid store geometry"):
            cells_for_experiment(exp)


class TestMetricsAccess:
    def test_dig_resolves_dotted_paths(self):
        assert dig({"a": {"b": {"c": 3}}}, "a.b.c") == 3
        with pytest.raises(KeyError):
            dig({"a": {}}, "a.b.c")

    def test_sim_shorthand_metrics(self):
        cell = cells_for_experiment(one_exp())[0]
        result = fabricate_sim_result(cell.payload, wamp=1.5)
        cr = CellResult(spec=cell, result=result)
        assert cell_metric(cr, "wamp") == pytest.approx(1.5)
        assert cell_metric(cr, "mean_cleaned_emptiness") == pytest.approx(
            1.0 / 2.5
        )

    def test_non_numeric_metric_rejected(self):
        cell = cells_for_experiment(one_exp())[0]
        cr = CellResult(spec=cell, result={"policy": "age"})
        with pytest.raises(MatrixConfigError, match="not numeric"):
            cell_metric(cr, "policy")

    def test_matches_where(self):
        axes = {"policy": "age", "fill": 0.5, "seed": 0}
        assert matches_where(axes, {})
        assert matches_where(axes, {"policy": "age"})
        assert not matches_where(axes, {"policy": "greedy"})
        assert not matches_where(axes, {"missing": 1})
