"""End-to-end matrix runs on a tiny grid: execution, resume, obs merge."""

import json

import pytest

from repro.matrix.cells import CellResult
from repro.matrix.config import parse_config
from repro.matrix.runner import _history_entry_for, run_matrix
from repro.sweep.spec import SweepError

#: A geometry small enough that one cell simulates in well under a
#: second: 64x8 segments at half fill, two writes per user page.
TINY = {
    "n_segments": 64,
    "segment_units": 8,
    "fill": 0.5,
    "clean_trigger": 2,
    "clean_batch": 2,
    "write_multiplier": 2.0,
}


def tiny_config(obs=False, samples=1, policies=("age",), checks=()):
    return parse_config(
        {
            "name": "tiny",
            "experiments": [
                {
                    "name": "grid",
                    "kind": "sim",
                    "matrix": {"policy": list(policies)},
                    "params": dict(TINY),
                    "samples": samples,
                    "obs": obs,
                    "checks": list(checks),
                }
            ],
            "results": [{"type": "table", "experiment": "grid"}],
        }
    )


class TestRunMatrix:
    def test_runs_cells_and_writes_artifacts(self, tmp_path):
        cfg = tiny_config(policies=("age", "greedy"))
        run = run_matrix(
            cfg, out_dir=str(tmp_path / "out"), workers=1, history=False
        )
        assert run.ok
        assert run.stats.executed == 2 and run.stats.skipped == 0
        assert len(run.results["grid"]) == 2
        assert not any(c.resumed for c in run.results["grid"])
        report = (tmp_path / "out" / "report.md").read_text()
        assert "# Matrix run: tiny" in report
        gates = json.loads((tmp_path / "out" / "gates.json").read_text())
        assert gates["cells"] == 2 and gates["executed"] == 2

    def test_resume_skips_completed_cells(self, tmp_path):
        cfg = tiny_config()
        out = str(tmp_path / "out")
        first = run_matrix(cfg, out_dir=out, workers=1, history=False)
        second = run_matrix(
            cfg, out_dir=out, resume=True, workers=1, history=False
        )
        assert second.stats.executed == 0
        assert second.stats.skipped == first.stats.total
        assert all(c.resumed for c in second.results["grid"])
        # Resumed results replay the journaled payloads bit-for-bit.
        assert [c.result for c in second.results["grid"]] == [
            c.result for c in first.results["grid"]
        ]

    def test_existing_manifest_without_resume_rejected(self, tmp_path):
        cfg = tiny_config()
        out = str(tmp_path / "out")
        run_matrix(cfg, out_dir=out, workers=1, history=False)
        with pytest.raises(SweepError, match="--resume"):
            run_matrix(cfg, out_dir=out, workers=1, history=False)

    def test_changed_grid_cannot_reuse_manifest(self, tmp_path):
        out = str(tmp_path / "out")
        run_matrix(tiny_config(), out_dir=out, workers=1, history=False)
        other = tiny_config(policies=("greedy",))
        with pytest.raises(SweepError):
            run_matrix(other, out_dir=out, resume=True, workers=1,
                       history=False)

    def test_obs_cells_merge_and_validate(self, tmp_path):
        cfg = tiny_config(obs=True)
        run = run_matrix(
            cfg, out_dir=str(tmp_path / "out"), workers=1, history=False
        )
        assert run.ok and not run.obs_problems
        merged = tmp_path / "out" / "metrics-grid.jsonl"
        assert merged.exists()
        rows = merged.read_text().strip().splitlines()
        assert rows  # meta header + samples at minimum

    def test_gates_feed_run_verdict(self, tmp_path):
        cfg = tiny_config(
            checks=[{"type": "metric", "metric": "wamp", "max": 0.0001}]
        )
        run = run_matrix(
            cfg, out_dir=str(tmp_path / "out"), workers=1, history=False
        )
        assert not run.ok
        (verdict,) = run.verdicts
        assert not verdict.passed

    def test_history_off_appends_nothing(self, tmp_path):
        history = tmp_path / "history.jsonl"
        cfg = tiny_config()
        run = run_matrix(
            cfg,
            out_dir=str(tmp_path / "out"),
            workers=1,
            history=False,
            history_path=str(history),
        )
        assert run.history_entries == []
        assert not history.exists()

    def test_sim_cells_never_write_history(self, tmp_path):
        # Only bench cells carry a history family; a sim-only matrix
        # leaves the trajectory untouched even with history on.
        history = tmp_path / "history.jsonl"
        run = run_matrix(
            tiny_config(),
            out_dir=str(tmp_path / "out"),
            workers=1,
            history=True,
            history_path=str(history),
        )
        assert run.history_entries == []
        assert not history.exists()


class TestCli:
    def test_bench_run_end_to_end(self, tmp_path, capsys):
        from repro.cli import main

        config = tmp_path / "tiny.yml"
        config.write_text(
            "name: cli-tiny\n"
            "experiments:\n"
            "  - name: grid\n"
            "    matrix:\n"
            "      policy: [age]\n"
            "    params:\n"
            "      n_segments: 64\n"
            "      segment_units: 8\n"
            "      fill: 0.5\n"
            "      clean_trigger: 2\n"
            "      clean_batch: 2\n"
            "      write_multiplier: 2.0\n"
            "    checks:\n"
            "      - type: metric\n"
            "        metric: wamp\n"
            "        min: 0.0\n"
        )
        out = tmp_path / "run"
        rc = main(
            [
                "bench", "run", str(config),
                "--out", str(out), "--no-history", "--workers", "1",
            ]
        )
        assert rc == 0
        assert (out / "report.md").exists()
        assert "gate(s) passed" in capsys.readouterr().out

    def test_bench_run_failing_gate_exits_nonzero(self, tmp_path, capsys):
        from repro.cli import main

        config = tmp_path / "tiny.yml"
        config.write_text(
            "name: cli-fail\n"
            "experiments:\n"
            "  - name: grid\n"
            "    matrix:\n"
            "      policy: [age]\n"
            "    params:\n"
            "      n_segments: 64\n"
            "      segment_units: 8\n"
            "      fill: 0.5\n"
            "      clean_trigger: 2\n"
            "      clean_batch: 2\n"
            "      write_multiplier: 2.0\n"
            "    checks:\n"
            "      - type: metric\n"
            "        metric: wamp\n"
            "        max: 0.000001\n"
        )
        rc = main(
            [
                "bench", "run", str(config),
                "--out", str(tmp_path / "run"), "--no-history",
                "--workers", "1",
            ]
        )
        assert rc == 1
        assert "gate FAILED" in capsys.readouterr().err

    def test_bench_run_bad_config_is_actionable(self, tmp_path, capsys):
        from repro.cli import main

        config = tmp_path / "bad.yml"
        config.write_text("name: x\nexperiments: []\n")
        rc = main(["bench", "run", str(config), "--no-history"])
        assert rc == 1
        assert "matrix config error" in capsys.readouterr().err


class TestHistoryEntryMapping:
    def micro_cell(self):
        cfg = parse_config(
            {
                "name": "t",
                "experiments": [{"name": "m", "kind": "micro"}],
            }
        )
        from repro.matrix.cells import cells_for_experiment

        return cells_for_experiment(cfg.experiments[0])[0]

    def test_micro_cell_maps_to_store_micro_family(self):
        cell = self.micro_cell()
        report = {
            "benchmark": "store-micro",
            "policy": "greedy",
            "writes": 100,
            "trials": 1,
            "workloads": {
                "uniform": {
                    "batch": {
                        "writes_per_sec": 1.0,
                        "cycle_p95_ms": 0.1,
                    },
                    "scalar": {"writes_per_sec": 0.5},
                    "speedup": 2.0,
                }
            },
        }
        entry = _history_entry_for(CellResult(spec=cell, result=report))
        assert entry["benchmark"] == "store-micro"
        assert "sha" in entry

    def test_sim_cell_has_no_history_family(self, tmp_path):
        cfg = tiny_config()
        from repro.matrix.cells import cells_for_experiment

        cell = cells_for_experiment(cfg.experiments[0])[0]
        assert _history_entry_for(
            CellResult(spec=cell, result={})
        ) is None
