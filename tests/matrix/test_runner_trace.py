"""The matrix runner's span artifact: spans.jsonl beside report.md."""

from repro.matrix.config import parse_config
from repro.matrix.runner import run_matrix
from repro.obs.export import load_rows, validate_rows
from repro.obs.trace import load_spans

TINY = {
    "n_segments": 64,
    "segment_units": 8,
    "fill": 0.5,
    "clean_trigger": 2,
    "clean_batch": 2,
    "write_multiplier": 2.0,
}


def tiny_config(policies=("age", "greedy")):
    return parse_config(
        {
            "name": "tiny",
            "experiments": [
                {
                    "name": "grid",
                    "kind": "sim",
                    "matrix": {"policy": list(policies)},
                    "params": dict(TINY),
                }
            ],
        }
    )


class TestMatrixSpans:
    def test_run_writes_validating_span_file(self, tmp_path):
        run = run_matrix(
            tiny_config(), out_dir=str(tmp_path / "out"), workers=1,
            history=False,
        )
        assert run.ok
        path = tmp_path / "out" / "spans.jsonl"
        assert path.exists()
        rows = load_rows(str(path))
        assert validate_rows(rows) == []
        assert rows[0]["run"]["matrix"] == "tiny"
        spans = load_spans(str(path))
        jobs = [r for r in spans if r["name"] == "sweep.job"]
        assert len(jobs) == 2
        (root,) = [r for r in spans if r["name"] == "sweep.run"]
        assert all(j["parent"] == root["span"] for j in jobs)

    def test_trace_false_skips_span_file(self, tmp_path):
        run_matrix(
            tiny_config(("age",)), out_dir=str(tmp_path / "out"),
            workers=1, history=False, trace=False,
        )
        assert not (tmp_path / "out" / "spans.jsonl").exists()
