"""Matrix config parsing: strict validation and deterministic expansion."""

import json

import pytest

from repro.matrix.config import (
    MatrixConfigError,
    expand_experiment,
    load_config,
    parse_config,
)


def minimal(**overrides):
    """A minimal valid raw config; tests mutate from here."""
    doc = {
        "name": "t",
        "experiments": [
            {"name": "e", "kind": "sim", "matrix": {"policy": ["age"]}}
        ],
    }
    doc.update(overrides)
    return doc


class TestStrictParsing:
    def test_minimal_config_parses(self):
        cfg = parse_config(minimal())
        assert cfg.name == "t"
        assert cfg.experiments[0].kind == "sim"

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(MatrixConfigError, match="unknown key.*'extra'"):
            parse_config(minimal(extra=1))

    def test_missing_name_rejected(self):
        doc = minimal()
        del doc["name"]
        with pytest.raises(MatrixConfigError, match="name"):
            parse_config(doc)

    def test_no_experiments_rejected(self):
        with pytest.raises(MatrixConfigError, match="at least one"):
            parse_config(minimal(experiments=[]))

    def test_duplicate_experiment_names_rejected(self):
        doc = minimal()
        doc["experiments"] = doc["experiments"] * 2
        with pytest.raises(MatrixConfigError, match="duplicate"):
            parse_config(doc)

    def test_unknown_kind_rejected(self):
        doc = minimal()
        doc["experiments"][0]["kind"] = "quantum"
        with pytest.raises(MatrixConfigError, match="unknown kind 'quantum'"):
            parse_config(doc)

    def test_unknown_sim_parameter_names_the_path(self):
        doc = minimal()
        doc["experiments"][0]["matrix"]["warp_factor"] = [9]
        with pytest.raises(
            MatrixConfigError, match=r"experiments\[0\].matrix.warp_factor"
        ):
            parse_config(doc)

    def test_param_also_declared_as_axis_rejected(self):
        doc = minimal()
        doc["experiments"][0]["params"] = {"policy": "age"}
        with pytest.raises(MatrixConfigError, match="matrix axis"):
            parse_config(doc)

    def test_sim_without_policy_rejected(self):
        doc = minimal()
        doc["experiments"][0]["matrix"] = {"fill": [0.5]}
        with pytest.raises(MatrixConfigError, match="policy"):
            parse_config(doc)

    def test_empty_axis_rejected(self):
        doc = minimal()
        doc["experiments"][0]["matrix"]["fill"] = []
        with pytest.raises(MatrixConfigError, match="no values"):
            parse_config(doc)

    def test_obs_on_bench_kind_rejected(self):
        doc = minimal()
        doc["experiments"][0] = {"name": "m", "kind": "micro", "obs": True}
        with pytest.raises(MatrixConfigError, match="only available"):
            parse_config(doc)

    def test_bad_samples_rejected(self):
        doc = minimal()
        doc["experiments"][0]["samples"] = 0
        with pytest.raises(MatrixConfigError, match=">= 1"):
            parse_config(doc)

    def test_non_mapping_document_rejected(self):
        with pytest.raises(MatrixConfigError, match="expected a mapping"):
            parse_config(["not", "a", "config"])


class TestCheckParsing:
    def check_doc(self, check, kind="sim"):
        doc = minimal()
        doc["experiments"][0]["kind"] = kind
        if kind != "sim":
            doc["experiments"][0].pop("matrix")
        doc["experiments"][0]["checks"] = [check]
        return doc

    def test_unknown_check_type_rejected(self):
        with pytest.raises(MatrixConfigError, match="unknown check type"):
            parse_config(self.check_doc({"type": "vibes"}))

    def test_check_kind_mismatch_rejected(self):
        with pytest.raises(MatrixConfigError, match="does not apply"):
            parse_config(self.check_doc({"type": "micro-baseline",
                                         "file": "B.json"}))

    def test_metric_check_needs_bounds(self):
        with pytest.raises(MatrixConfigError, match="min: and/or max:"):
            parse_config(self.check_doc({"type": "metric", "metric": "wamp"}))

    def test_baseline_check_needs_file(self):
        with pytest.raises(MatrixConfigError, match="metric: and file:"):
            parse_config(self.check_doc({"type": "baseline",
                                         "metric": "wamp"}))

    def test_negative_tolerance_rejected(self):
        with pytest.raises(MatrixConfigError, match="positive"):
            parse_config(
                self.check_doc({"type": "meanfield", "tolerance": -0.1})
            )

    def test_bad_direction_rejected(self):
        with pytest.raises(MatrixConfigError, match="'min' or 'max'"):
            parse_config(
                self.check_doc(
                    {"type": "baseline", "metric": "m", "file": "f",
                     "direction": "sideways"}
                )
            )

    def test_valid_meanfield_check_parses(self):
        cfg = parse_config(
            self.check_doc(
                {"type": "meanfield", "tolerance": 0.1,
                 "where": {"policy": "age"}}
            )
        )
        check = cfg.experiments[0].checks[0]
        assert check.type == "meanfield"
        assert check.where == {"policy": "age"}


class TestResultParsing:
    def test_table_referencing_unknown_experiment_rejected(self):
        doc = minimal(results=[{"type": "table", "experiment": "ghost"}])
        with pytest.raises(MatrixConfigError, match="unknown experiment"):
            parse_config(doc)

    def test_unknown_result_type_rejected(self):
        doc = minimal(results=[{"type": "hologram"}])
        with pytest.raises(MatrixConfigError, match="unknown result type"):
            parse_config(doc)

    def test_trend_needs_no_experiment(self):
        cfg = parse_config(minimal(results=[{"type": "trend", "last": 5}]))
        assert cfg.results[0].last == 5


class TestLoading:
    def test_yaml_round_trip(self, tmp_path):
        path = tmp_path / "c.yml"
        path.write_text(
            "name: y\n"
            "experiments:\n"
            "  - name: e\n"
            "    matrix:\n"
            "      policy: [age, greedy]\n"
        )
        cfg = load_config(str(path))
        assert cfg.experiments[0].matrix["policy"] == ("age", "greedy")
        assert cfg.source == str(path)

    def test_json_round_trip(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text(json.dumps(minimal()))
        assert load_config(str(path)).name == "t"

    def test_invalid_yaml_is_actionable(self, tmp_path):
        path = tmp_path / "bad.yml"
        path.write_text("name: [unclosed\n")
        with pytest.raises(MatrixConfigError, match="not valid YAML"):
            load_config(str(path))

    def test_missing_file_is_actionable(self, tmp_path):
        with pytest.raises(MatrixConfigError, match="cannot read"):
            load_config(str(tmp_path / "absent.yml"))


class TestExpansion:
    def exp(self, **overrides):
        doc = {
            "name": "e",
            "kind": "sim",
            "matrix": {"policy": ["age", "greedy"], "fill": [0.5, 0.8]},
            "samples": 2,
            "seed": 7,
        }
        doc.update(overrides)
        return parse_config(
            {"name": "t", "experiments": [doc]}
        ).experiments[0]

    def test_grid_times_samples_cell_count(self):
        assert len(expand_experiment(self.exp())) == 2 * 2 * 2

    def test_declaration_order_later_axes_fastest_seeds_innermost(self):
        cells = expand_experiment(self.exp())
        key = [(c["policy"], c["fill"], c["seed"]) for c in cells]
        assert key == [
            ("age", 0.5, 7), ("age", 0.5, 8),
            ("age", 0.8, 7), ("age", 0.8, 8),
            ("greedy", 0.5, 7), ("greedy", 0.5, 8),
            ("greedy", 0.8, 7), ("greedy", 0.8, 8),
        ]

    def test_expansion_is_deterministic(self):
        assert expand_experiment(self.exp()) == expand_experiment(self.exp())

    def test_scalar_axis_is_fixed_not_swept(self):
        exp = self.exp(matrix={"policy": "age", "fill": [0.5, 0.8]})
        cells = expand_experiment(exp)
        assert len(cells) == 2 * 2
        assert all(c["policy"] == "age" for c in cells)
        assert exp.axis_names() == ["fill"]

    def test_defaults_then_params_then_matrix_precedence(self):
        exp = self.exp(
            matrix={"policy": ["age"], "clean_trigger": [2]},
            params={"clean_batch": 16},
            samples=1,
        )
        (cell,) = expand_experiment(exp)
        assert cell["clean_trigger"] == 2  # matrix wins
        assert cell["clean_batch"] == 16  # params beat defaults
        assert cell["n_segments"] == 512  # untouched default
