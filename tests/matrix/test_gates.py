"""Gate evaluation as a pure function: no simulation or benchmark runs.

Every test fabricates cell results (see conftest) and asserts on the
verdicts — pass, fail, tolerance edges, advisory semantics, and the
analytical mean-field gate in both its exact (uniform) and bound
(hot/cold) modes.
"""

import json

import pytest

from repro.matrix.cells import CellResult, cells_for_experiment
from repro.matrix.config import parse_config
from repro.matrix.gates import blocking_failures, evaluate_checks
from repro.matrix.meanfield import (
    hotcold_meanfield,
    predict_for_workload,
    uniform_meanfield,
)
from repro.sweep.spec import JobSpec

from .conftest import fabricate_results, fabricate_sim_result


def config_with_checks(checks, matrix=None, params=None, kind="sim"):
    doc = {
        "name": "t",
        "experiments": [
            {
                "name": "e",
                "kind": kind,
                "checks": checks,
            }
        ],
    }
    if kind == "sim":
        doc["experiments"][0]["matrix"] = matrix or {"policy": ["age"]}
        doc["experiments"][0]["params"] = params or {
            "write_multiplier": 4.0
        }
    return parse_config(doc)


class TestMetricCheck:
    def test_within_bounds_passes(self):
        cfg = config_with_checks(
            [{"type": "metric", "metric": "wamp", "min": 0.5, "max": 2.0}]
        )
        results = fabricate_results(cfg.experiments[0], {0: 1.0})
        (verdict,) = evaluate_checks(cfg, {"e": results})
        assert verdict.passed
        assert verdict.observed == pytest.approx(1.0)

    def test_above_max_fails_and_blocks(self):
        cfg = config_with_checks(
            [{"type": "metric", "metric": "wamp", "max": 2.0}]
        )
        results = fabricate_results(cfg.experiments[0], {0: 3.0})
        (verdict,) = evaluate_checks(cfg, {"e": results})
        assert not verdict.passed
        assert "above max" in verdict.detail
        assert blocking_failures([verdict]) == [verdict]

    def test_below_min_fails(self):
        cfg = config_with_checks(
            [{"type": "metric", "metric": "wamp", "min": 0.5}]
        )
        results = fabricate_results(cfg.experiments[0], {0: 0.1})
        (verdict,) = evaluate_checks(cfg, {"e": results})
        assert not verdict.passed and "below min" in verdict.detail

    def test_where_filter_selects_cells(self):
        cfg = config_with_checks(
            [
                {
                    "type": "metric", "metric": "wamp", "max": 2.0,
                    "where": {"policy": "age"},
                }
            ],
            matrix={"policy": ["age", "greedy"]},
        )
        # age in bounds, greedy wildly out — but filtered away.
        results = fabricate_results(cfg.experiments[0], {0: 1.0, 1: 99.0})
        (verdict,) = evaluate_checks(cfg, {"e": results})
        assert verdict.passed

    def test_empty_where_match_fails_loudly(self):
        cfg = config_with_checks(
            [
                {
                    "type": "metric", "metric": "wamp", "max": 2.0,
                    "where": {"policy": "mdc"},
                }
            ]
        )
        results = fabricate_results(cfg.experiments[0], {0: 1.0})
        (verdict,) = evaluate_checks(cfg, {"e": results})
        assert not verdict.passed
        assert "matched no cells" in verdict.detail

    def test_advisory_failure_does_not_block(self):
        cfg = config_with_checks(
            [
                {
                    "type": "metric", "metric": "wamp", "max": 0.1,
                    "advisory": True,
                }
            ]
        )
        results = fabricate_results(cfg.experiments[0], {0: 1.0})
        (verdict,) = evaluate_checks(cfg, {"e": results})
        assert not verdict.passed and verdict.advisory
        assert blocking_failures([verdict]) == []


class TestBaselineCheck:
    def make(self, tmp_path, base_value, direction, cell_value, tol=0.10):
        base = tmp_path / "base.json"
        base.write_text(json.dumps({"headline": {"wamp": base_value}}))
        cfg = config_with_checks(
            [
                {
                    "type": "baseline", "metric": "headline.wamp",
                    "file": str(base), "tolerance": tol,
                    "direction": direction,
                }
            ]
        )
        cell = cells_for_experiment(cfg.experiments[0])[0]
        result = fabricate_sim_result(cell.payload, wamp=1.0)
        result["headline"] = {"wamp": cell_value}
        return cfg, [CellResult(spec=cell, result=result)]

    def test_direction_max_within_tolerance_passes(self, tmp_path):
        cfg, results = self.make(tmp_path, 1.0, "max", 1.05)
        (verdict,) = evaluate_checks(cfg, {"e": results})
        assert verdict.passed
        assert verdict.expected == pytest.approx(1.0)

    def test_direction_max_beyond_tolerance_fails(self, tmp_path):
        cfg, results = self.make(tmp_path, 1.0, "max", 1.25)
        (verdict,) = evaluate_checks(cfg, {"e": results})
        assert not verdict.passed and "rose above" in verdict.detail

    def test_direction_min_drop_fails(self, tmp_path):
        cfg, results = self.make(tmp_path, 100.0, "min", 80.0)
        (verdict,) = evaluate_checks(cfg, {"e": results})
        assert not verdict.passed and "dropped below" in verdict.detail

    def test_missing_baseline_file_is_actionable(self, tmp_path):
        cfg = config_with_checks(
            [
                {
                    "type": "baseline", "metric": "x",
                    "file": str(tmp_path / "absent.json"),
                }
            ]
        )
        results = fabricate_results(cfg.experiments[0], {0: 1.0})
        with pytest.raises(Exception, match="cannot read baseline"):
            evaluate_checks(cfg, {"e": results})


class TestMeanFieldGate:
    def uniform_cfg(self, tolerance=0.10):
        return config_with_checks(
            [{"type": "meanfield", "tolerance": tolerance}],
            params={
                "write_multiplier": 4.0,
                "fill": 0.8,
                "reserve_compensation": True,
            },
        )

    def predicted(self, cfg):
        cell = cells_for_experiment(cfg.experiments[0])[0]
        spec = JobSpec.from_dict(cell.payload)
        return predict_for_workload(
            spec.workload, spec.config.fill_factor,
            n_pages=spec.config.user_pages,
        )

    def test_agreement_passes(self):
        cfg = self.uniform_cfg()
        pred = self.predicted(cfg)
        results = fabricate_results(
            cfg.experiments[0], {0: pred.wamp * 1.02}
        )
        (verdict,) = evaluate_checks(cfg, {"e": results})
        assert verdict.passed
        assert verdict.expected == pytest.approx(pred.wamp)

    def test_uniform_disagreement_fails_both_ways(self):
        cfg = self.uniform_cfg()
        pred = self.predicted(cfg)
        for factor in (1.5, 0.5):
            results = fabricate_results(
                cfg.experiments[0], {0: pred.wamp * factor}
            )
            (verdict,) = evaluate_checks(cfg, {"e": results})
            assert not verdict.passed
            assert "tolerance" in verdict.detail

    def test_seed_mean_is_compared(self):
        # Two seeds straddling the prediction: the mean agrees even
        # though each individual seed is outside tolerance.
        cfg = parse_config(
            {
                "name": "t",
                "experiments": [
                    {
                        "name": "e",
                        "kind": "sim",
                        "matrix": {"policy": ["age"]},
                        "params": {
                            "write_multiplier": 4.0,
                            "fill": 0.8,
                            "reserve_compensation": True,
                        },
                        "samples": 2,
                        "checks": [
                            {"type": "meanfield", "tolerance": 0.05}
                        ],
                    }
                ],
            }
        )
        pred = self.predicted(cfg)
        results = fabricate_results(
            cfg.experiments[0], {0: pred.wamp * 1.2, 1: pred.wamp * 0.8}
        )
        (verdict,) = evaluate_checks(cfg, {"e": results})
        assert verdict.passed

    def hotcold_cfg(self, tolerance=0.10):
        return config_with_checks(
            [{"type": "meanfield", "tolerance": tolerance}],
            params={
                "write_multiplier": 4.0,
                "fill": 0.8,
                "dist": "hotcold-90",
            },
        )

    def test_hotcold_above_bound_passes(self):
        cfg = self.hotcold_cfg()
        pred = self.predicted(cfg)
        assert pred.is_bound
        results = fabricate_results(
            cfg.experiments[0], {0: pred.wamp * 1.6}
        )
        (verdict,) = evaluate_checks(cfg, {"e": results})
        assert verdict.passed

    def test_hotcold_beating_bound_fails(self):
        cfg = self.hotcold_cfg()
        pred = self.predicted(cfg)
        results = fabricate_results(
            cfg.experiments[0], {0: pred.wamp * 0.5}
        )
        (verdict,) = evaluate_checks(cfg, {"e": results})
        assert not verdict.passed
        assert "beats the analytical bound" in verdict.detail


class TestBenchSuiteChecks:
    def micro_report(self, rate):
        return {
            "benchmark": "store-micro",
            "workloads": {
                "uniform": {"batch": {"writes_per_sec": rate}},
            },
        }

    def test_micro_baseline_delegates(self, tmp_path):
        base = tmp_path / "BENCH_store.json"
        base.write_text(json.dumps(self.micro_report(100_000.0)))
        cfg = config_with_checks(
            [{"type": "micro-baseline", "file": str(base),
              "tolerance": 0.30}],
            kind="micro",
        )
        cell = cells_for_experiment(cfg.experiments[0])[0]
        ok = CellResult(spec=cell, result=self.micro_report(90_000.0))
        bad = CellResult(spec=cell, result=self.micro_report(10_000.0))
        (verdict,) = evaluate_checks(cfg, {"e": [ok]})
        assert verdict.passed
        (verdict,) = evaluate_checks(cfg, {"e": [bad]})
        assert not verdict.passed

    def latency_report(self, ratio):
        return {
            "modes": {
                "batch": {
                    "flush_stall_p99_pages": 100.0,
                    "wamp_aggregate": 0.2,
                },
                "incremental": {
                    "flush_stall_p99_pages": 100.0 * ratio,
                    "wamp_aggregate": 0.2,
                },
            },
            "stall_p99_ratio": ratio,
            "gate_ratio": 0.5,
            "wamp_slack": 0.25,
        }

    def test_latency_baseline_delegates(self, tmp_path):
        base = tmp_path / "BENCH_latency.json"
        base.write_text(json.dumps(self.latency_report(0.1)))
        cfg = config_with_checks(
            [{"type": "latency-baseline", "file": str(base),
              "tolerance": 0.25}],
            kind="latency",
        )
        cell = cells_for_experiment(cfg.experiments[0])[0]
        ok = CellResult(spec=cell, result=self.latency_report(0.2))
        bad = CellResult(spec=cell, result=self.latency_report(0.45))
        (verdict,) = evaluate_checks(cfg, {"e": [ok]})
        assert verdict.passed
        (verdict,) = evaluate_checks(cfg, {"e": [bad]})
        assert not verdict.passed

    def sweep_report(self, speedup, effective=4, cpus=4, identical=True):
        return {
            "benchmark": "sweep-pool-scaling",
            "grid": "fig5-zipf-80-20",
            "jobs": 42,
            "cpu_count": cpus,
            "outputs_identical": identical,
            "serial": {"workers": 1, "wall_clock_s": 50.0},
            "pool": {
                "workers_requested": 4,
                "workers_effective": effective,
                "pool_mode": "fork",
                "wall_clock_s": 50.0 / speedup,
                "overhead_s": {"spawn": 0.0, "dispatch": 0.0, "drain": 0.0},
                "worker_recycles": 0,
            },
            "speedup_pool_vs_serial": speedup,
        }

    def test_sweep_scaling_delegates(self):
        cfg = config_with_checks(
            [{"type": "sweep-scaling"}], kind="sweep"
        )
        cell = cells_for_experiment(cfg.experiments[0])[0]
        ok = CellResult(spec=cell, result=self.sweep_report(2.5))
        (verdict,) = evaluate_checks(cfg, {"e": [ok]})
        assert verdict.passed
        assert verdict.observed == pytest.approx(2.5)
        slow = CellResult(spec=cell, result=self.sweep_report(1.4))
        (verdict,) = evaluate_checks(cfg, {"e": [slow]})
        assert not verdict.passed
        assert blocking_failures([verdict]) == [verdict]

    def test_sweep_scaling_output_mismatch_blocks(self):
        cfg = config_with_checks(
            [{"type": "sweep-scaling"}], kind="sweep"
        )
        cell = cells_for_experiment(cfg.experiments[0])[0]
        bad = CellResult(
            spec=cell, result=self.sweep_report(2.5, identical=False)
        )
        (verdict,) = evaluate_checks(cfg, {"e": [bad]})
        assert not verdict.passed
        assert "differs" in verdict.detail

    def test_sweep_scaling_floor_follows_hardware(self):
        cfg = config_with_checks(
            [{"type": "sweep-scaling"}], kind="sweep"
        )
        cell = cells_for_experiment(cfg.experiments[0])[0]
        # 1.4x would fail on a 4-core box but a clamped pool-of-1 only
        # has to stay within 5% of serial.
        clamped = CellResult(
            spec=cell, result=self.sweep_report(0.97, effective=1, cpus=1)
        )
        (verdict,) = evaluate_checks(cfg, {"e": [clamped]})
        assert verdict.passed
        regressed = CellResult(
            spec=cell, result=self.sweep_report(0.8, effective=1, cpus=1)
        )
        (verdict,) = evaluate_checks(cfg, {"e": [regressed]})
        assert not verdict.passed

    def test_service_floor_delegates(self):
        cfg = config_with_checks(
            [{"type": "service-floor"}], kind="service"
        )
        cell = cells_for_experiment(cfg.experiments[0])[0]
        report = {
            "serial": {"writes_per_sec": 100.0},
            "shards": {"2": {"writes_per_sec": 150.0}},
        }
        (verdict,) = evaluate_checks(
            cfg, {"e": [CellResult(spec=cell, result=report)]}
        )
        assert verdict.passed
        report["shards"]["2"]["writes_per_sec"] = 50.0
        (verdict,) = evaluate_checks(
            cfg, {"e": [CellResult(spec=cell, result=report)]}
        )
        assert not verdict.passed


class TestMeanFieldClosedForms:
    def test_uniform_matches_fixpoint_identity(self):
        pred = uniform_meanfield(0.8)
        # Wamp = (1 - E) / E at the fixpoint.
        assert pred.wamp == pytest.approx(
            (1 - pred.emptiness) / pred.emptiness
        )
        assert not pred.is_bound

    def test_hotcold_is_flagged_as_bound(self):
        pred = hotcold_meanfield(0.8, update_fraction=0.9, data_fraction=0.1)
        assert pred.is_bound
        # Separating hot from cold can only help: the two-class bound
        # sits at or below the single-class uniform Wamp.
        assert pred.wamp <= uniform_meanfield(0.8).wamp + 1e-9

    def test_out_of_range_fill_rejected(self):
        from repro.matrix.meanfield import MeanFieldError

        with pytest.raises(MeanFieldError):
            uniform_meanfield(1.2)

    def test_unknown_workload_kind_rejected(self):
        from repro.matrix.meanfield import MeanFieldError

        with pytest.raises(MeanFieldError, match="no mean-field"):
            predict_for_workload({"kind": "zipfian", "theta": 0.9}, 0.8)
