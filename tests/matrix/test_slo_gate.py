"""The ``slo`` burn-rate gate: config parsing and evaluation."""

import pytest

from repro.matrix.cells import CellResult, cells_for_experiment
from repro.matrix.config import MatrixConfigError, parse_config
from repro.matrix.gates import evaluate_checks


def latency_config(check):
    return parse_config(
        {
            "name": "t",
            "experiments": [
                {
                    "name": "lat",
                    "kind": "latency",
                    "params": {"quick": True},
                    "checks": [check],
                }
            ],
        }
    )


def slo_report(sustained=0.5, worst=None):
    return {
        "objective": 0.95,
        "threshold": 32.0,
        "samples": 200,
        "bad": 4,
        "bad_fraction": 0.02,
        "windows": [
            {"window": 16, "samples": 16, "bad": 0,
             "bad_fraction": 0.0, "burn_rate": 0.0},
        ],
        "worst_burn": worst if worst is not None else sustained,
        "sustained_burn": sustained,
        "burning": sustained > 1.0,
    }


def fabricate(cfg, result):
    (cell,) = cells_for_experiment(cfg.experiments[0])
    return {"lat": [CellResult(spec=cell, result=result)]}


class TestParsing:
    def test_slo_check_parses_on_latency(self):
        cfg = latency_config(
            {"type": "slo", "metric": "modes.incremental.slo", "max": 1.0}
        )
        (check,) = cfg.experiments[0].checks
        assert check.type == "slo"
        assert check.metric == "modes.incremental.slo"

    def test_slo_check_requires_metric(self):
        with pytest.raises(MatrixConfigError, match="metric"):
            latency_config({"type": "slo", "max": 1.0})

    def test_slo_check_rejected_on_sim(self):
        with pytest.raises(MatrixConfigError):
            parse_config(
                {
                    "name": "t",
                    "experiments": [
                        {
                            "name": "e",
                            "kind": "sim",
                            "matrix": {"policy": ["age"]},
                            "params": {"write_multiplier": 4.0},
                            "checks": [
                                {"type": "slo", "metric": "x.slo"}
                            ],
                        }
                    ],
                }
            )


class TestEvaluation:
    def _verdict(self, sustained, max_burn=1.0, result=None):
        cfg = latency_config(
            {"type": "slo", "name": "burn",
             "metric": "modes.incremental.slo", "max": max_burn}
        )
        if result is None:
            result = {"modes": {"incremental": {"slo": slo_report(sustained)}}}
        (verdict,) = evaluate_checks(cfg, fabricate(cfg, result))
        return verdict

    def test_under_ceiling_passes(self):
        verdict = self._verdict(sustained=0.4)
        assert verdict.passed
        assert verdict.observed == pytest.approx(0.4)
        assert verdict.expected == pytest.approx(1.0)

    def test_at_ceiling_passes(self):
        assert self._verdict(sustained=1.0).passed

    def test_over_ceiling_fails_with_context(self):
        verdict = self._verdict(sustained=2.5)
        assert not verdict.passed
        assert not verdict.advisory
        assert "2.500" in verdict.detail
        assert "objective" in verdict.detail

    def test_default_ceiling_is_one(self):
        cfg = latency_config(
            {"type": "slo", "metric": "modes.incremental.slo"}
        )
        result = {"modes": {"incremental": {"slo": slo_report(1.2)}}}
        (verdict,) = evaluate_checks(cfg, fabricate(cfg, result))
        assert not verdict.passed
        assert verdict.expected == pytest.approx(1.0)

    def test_missing_report_path_fails(self):
        verdict = self._verdict(sustained=0.0, result={"modes": {}})
        assert not verdict.passed
        assert "no SLO report" in verdict.detail

    def test_non_report_value_fails(self):
        result = {"modes": {"incremental": {"slo": {"oops": 1}}}}
        verdict = self._verdict(sustained=0.0, result=result)
        assert not verdict.passed
        assert "not an SLO report" in verdict.detail

    def test_no_matching_cells_fails(self):
        cfg = latency_config(
            {"type": "slo", "metric": "modes.incremental.slo",
             "where": {"quick": False}}
        )
        result = {"modes": {"incremental": {"slo": slo_report(0.1)}}}
        (verdict,) = evaluate_checks(cfg, fabricate(cfg, result))
        assert not verdict.passed
        assert "match" in verdict.detail
