"""Trend dashboard: family grouping, delta annotation, drift scan."""

import json

from repro.matrix.trend import (
    detect_trend_regressions,
    group_by_family,
    load_trend,
    render_family_table,
    render_trend,
)


def micro_entry(sha, rate):
    return {
        "sha": sha,
        "benchmark": "store-micro",
        "workloads": {
            "uniform": {"batch_writes_per_sec": rate},
            "hotcold": {"batch_writes_per_sec": rate * 1.2},
            "zipfian": {"batch_writes_per_sec": rate * 1.4},
        },
    }


def latency_entry(sha, ratio):
    return {
        "sha": sha,
        "benchmark": "latency",
        "stall_p99_ratio": ratio,
        "modes": {"incremental": {"wamp_aggregate": 0.2}},
    }


class TestRendering:
    def test_groups_by_family(self):
        history = [micro_entry("a", 1.0), latency_entry("b", 0.1)]
        families = group_by_family(history)
        assert set(families) == {"store-micro", "latency"}

    def test_table_is_sha_keyed_with_deltas(self):
        history = [micro_entry("aaa", 100_000), micro_entry("bbb", 110_000)]
        lines = render_family_table("store-micro", history)
        assert any("`aaa`" in line for line in lines)
        # Second row carries the +10% delta vs the first.
        assert any("`bbb`" in line and "+10.0%" in line for line in lines)

    def test_last_clips_oldest_entries(self):
        history = [micro_entry("sha%d" % i, 1000.0 + i) for i in range(20)]
        lines = render_family_table("store-micro", history, last=5)
        assert not any("`sha0`" in line for line in lines)
        assert any("`sha19`" in line for line in lines)

    def test_empty_history_renders_placeholder(self):
        assert "No benchmark history" in render_trend([])[0]

    def test_unknown_family_still_lists_shas(self):
        lines = render_trend([{"sha": "zzz", "benchmark": "mystery"}])
        assert any("mystery" in line for line in lines)
        assert any("`zzz`" in line for line in lines)


class TestDriftScan:
    def baseline(self, tmp_path, rate):
        (tmp_path / "BENCH_store.json").write_text(
            json.dumps(
                {
                    "workloads": {
                        "uniform": {"batch": {"writes_per_sec": rate}}
                    }
                }
            )
        )

    def test_latest_below_floor_warns(self, tmp_path):
        self.baseline(tmp_path, 100_000.0)
        history = [micro_entry("old", 100_000), micro_entry("new", 50_000)]
        warnings = detect_trend_regressions(history, root=str(tmp_path))
        assert len(warnings) == 1
        assert "store-micro uniform" in warnings[0]
        assert "new" in warnings[0]

    def test_within_tolerance_is_quiet(self, tmp_path):
        self.baseline(tmp_path, 100_000.0)
        history = [micro_entry("new", 90_000)]
        assert detect_trend_regressions(history, root=str(tmp_path)) == []

    def test_latency_ratio_drift_warns(self, tmp_path):
        (tmp_path / "BENCH_latency.json").write_text(
            json.dumps({"stall_p99_ratio": 0.1})
        )
        history = [latency_entry("new", 0.45)]
        warnings = detect_trend_regressions(history, root=str(tmp_path))
        assert len(warnings) == 1 and "stall p99 ratio" in warnings[0]

    def test_no_baseline_files_is_quiet(self, tmp_path):
        history = [micro_entry("new", 1.0), latency_entry("new", 0.9)]
        assert detect_trend_regressions(history, root=str(tmp_path)) == []


class TestLoadTrend:
    def test_reads_jsonl_and_scans(self, tmp_path):
        path = tmp_path / "history.jsonl"
        with open(path, "w") as fh:
            for entry in (micro_entry("aaa", 1000.0),):
                fh.write(json.dumps(entry) + "\n")
        lines, warnings = load_trend(str(path), root=str(tmp_path))
        assert any("store-micro" in line for line in lines)
        assert warnings == []


class TestCli:
    def test_bench_report_renders_dashboard(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "history.jsonl"
        path.write_text(json.dumps(micro_entry("abc", 12345.0)) + "\n")
        out_md = tmp_path / "trend.md"
        rc = main(
            [
                "bench", "report",
                "--history", str(path),
                "--out", str(out_md),
            ]
        )
        assert rc == 0
        captured = capsys.readouterr().out
        assert "`abc`" in captured
        assert out_md.exists()

    def test_bench_report_missing_history_errors(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(
            ["bench", "report", "--history", str(tmp_path / "absent.jsonl")]
        )
        assert rc == 1
        assert "no trajectory" in capsys.readouterr().err
