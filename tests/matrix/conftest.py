"""Shared fabrication helpers for the matrix suite.

Gate evaluation is a pure function of (config, cell results), so these
fixtures build :class:`~repro.matrix.cells.CellResult` values with
hand-chosen metrics — no simulation or benchmark ever runs here.
"""

import dataclasses

import pytest

from repro.matrix.cells import CellResult, cells_for_experiment
from repro.matrix.config import parse_config
from repro.sweep.spec import JobSpec


def fabricate_sim_result(payload: dict, wamp: float) -> dict:
    """A serialized SimulationResult whose window shows ``wamp``."""
    spec = JobSpec.from_dict(payload)
    user = 100_000
    emptiness = 1.0 / (1.0 + wamp) if wamp > 0 else 1.0
    return {
        "policy": spec.policy,
        "workload": spec.workload["kind"],
        "config": dataclasses.asdict(spec.config),
        "total_user_writes": user,
        "window": {
            "user_writes": user,
            "user_device_writes": user,
            "gc_writes": int(round(user * wamp)),
            "trims": 0,
            "segments_cleaned": 50,
            "cleaned_emptiness_sum": emptiness * 50,
            "clean_cycles": 10,
        },
        "extras": {},
    }


def fabricate_results(exp, wamps):
    """CellResults for one experiment def, one fabricated Wamp per
    cell (``wamps`` maps cell index -> value, default 1.0)."""
    cells = cells_for_experiment(exp)
    out = []
    for i, cell in enumerate(cells):
        wamp = wamps.get(i, 1.0) if isinstance(wamps, dict) else wamps[i]
        if cell.kind == "sim":
            result = fabricate_sim_result(cell.payload, wamp)
        else:
            raise AssertionError("fabricate_results only handles sim cells")
        out.append(CellResult(spec=cell, result=result))
    return out


@pytest.fixture
def sim_config():
    """A two-policy, two-fill sim config with no checks (tests add
    their own)."""
    return parse_config(
        {
            "name": "fab",
            "experiments": [
                {
                    "name": "grid",
                    "kind": "sim",
                    "matrix": {
                        "policy": ["age", "greedy"],
                        "fill": [0.5, 0.8],
                    },
                    "params": {"write_multiplier": 4.0},
                    "samples": 2,
                }
            ],
        }
    )
