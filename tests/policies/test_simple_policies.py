"""Age, greedy, and cost-benefit victim selection on a live store."""

import pytest

from repro.policies import make_policy
from repro.store import LogStructuredStore


def loaded_store(cfg, name):
    store = LogStructuredStore(cfg, make_policy(name))
    store.load_sequential(cfg.user_pages)
    return store


class TestAge:
    def test_selects_oldest_sealed_segment_first(self, small_config):
        store = loaded_store(small_config, "age")
        # Create some garbage so a cleaning batch can reclaim space.
        for pid in range(small_config.segment_units * 3):
            store.write(pid)
        sealed = store.sealed_segments()
        oldest = min(sealed, key=lambda s: store.segments.seal_time[s])
        victims = store.policy.select_victims(sealed, n=1)
        assert victims[0] == oldest

    def test_returns_empty_when_nothing_reclaimable(self, small_config):
        # Straight after the load every segment is fully live: there is
        # nothing to gain by cleaning, and the policy must say so.
        store = loaded_store(small_config, "age")
        assert store.policy.select_victims(store.sealed_segments()) == []

    def test_extends_batch_until_net_gain(self, small_config):
        store = loaded_store(small_config, "age")
        sealed = store.sealed_segments()
        # Fully live segments reclaim nothing; the batch must extend past
        # n=1 until a whole segment's worth of space is gained.
        for pid in range(small_config.segment_units * 2):
            store.write(pid)
        victims = store.policy.select_victims(store.sealed_segments(), n=1)
        segs = store.segments
        reclaim = sum(segs.available_units(v) for v in victims)
        assert reclaim >= small_config.segment_units


class TestGreedy:
    def test_selects_emptiest_first(self, small_config):
        store = loaded_store(small_config, "greedy")
        target = store.sealed_segments()[3]
        for pid in store.pages.live_pages_of(store.segments, target)[:10]:
            store.write(pid)
        victims = store.policy.select_victims(store.sealed_segments(), n=1)
        assert victims[0] == target


class TestCostBenefit:
    def test_prefers_old_half_empty_over_new_emptier(self, small_config):
        # Synthetic states so the comparison is exact: an aged segment at
        # E=0.5 versus a brand-new one at E=0.75.  Benefit/cost weights
        # age in, so the old one must rank first.
        store = loaded_store(small_config, "cost-benefit")
        segs = store.segments
        store.clock = 10_000
        old_seg, new_seg = store.sealed_segments()[:2]
        capacity = segs.capacity
        segs.seal_time[old_seg] = 100
        segs.live_units[old_seg] = capacity // 2
        segs.seal_time[new_seg] = 9_990
        segs.live_units[new_seg] = capacity // 4
        ranks = store.policy.rank([old_seg, new_seg])
        assert ranks[0] < ranks[1]

    def test_emptier_wins_at_equal_age(self, small_config):
        store = loaded_store(small_config, "cost-benefit")
        segs = store.segments
        store.clock = 10_000
        a, b = store.sealed_segments()[:2]
        segs.seal_time[a] = segs.seal_time[b] = 100
        segs.live_units[a] = segs.capacity // 2
        segs.live_units[b] = segs.capacity // 4
        ranks = store.policy.rank([a, b])
        assert ranks[1] < ranks[0]

    def test_paper_variant_is_pathological_under_uniform(self, small_config):
        """The literal (1-E)*age/E formula cleans nearly-full segments,
        so its write amplification explodes — this documents why the
        repo's default cost-benefit uses the Rosenblum form."""
        wamps = {}
        for name in ("cost-benefit", "cost-benefit-paper"):
            store = loaded_store(small_config, name)
            n = small_config.user_pages
            mark = store.stats.snapshot()
            rng_state = 12345
            for i in range(20_000):
                rng_state = (rng_state * 1103515245 + 12345) % (1 << 31)
                store.write(rng_state % n)
            wamps[name] = store.stats.window_since(mark).write_amplification
        assert wamps["cost-benefit-paper"] > 3 * wamps["cost-benefit"]
