"""Multi-log policy: frequency classes, routing, demotion, locality."""

import pytest

from repro.policies import MultiLogPolicy, make_policy
from repro.store import LogStructuredStore, StoreConfig


@pytest.fixture
def store_and_policy():
    cfg = StoreConfig(
        n_segments=64, segment_units=8, fill_factor=0.6,
        clean_trigger=2, clean_batch=2,
    )
    policy = MultiLogPolicy(exact=False, max_logs=8)
    return LogStructuredStore(cfg, policy), policy


class TestClasses:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            MultiLogPolicy(max_logs=0)
        with pytest.raises(ValueError):
            MultiLogPolicy(class_base=1.0)

    def test_starts_with_one_log(self, store_and_policy):
        _, policy = store_and_policy
        assert policy.n_logs == 1

    def test_classes_created_lazily(self, store_and_policy):
        store, policy = store_and_policy
        store.write(0)  # first write: no history -> cold class
        n0 = policy.n_logs
        store.write(0)  # interval 1 -> very hot class
        store.route = None
        assert policy.n_logs >= n0

    def test_class_of_is_log_scale(self, store_and_policy):
        _, policy = store_and_policy
        # base 4: frequencies within a factor of 4 share a class.
        c1 = policy._class_of(0.5)
        c2 = policy._class_of(0.3)
        c3 = policy._class_of(0.01)
        assert c1 == c2
        assert c3 < c1

    def test_class_cap_clamps_to_nearest(self):
        cfg = StoreConfig(
            n_segments=256, segment_units=8, fill_factor=0.5,
            clean_trigger=2, clean_batch=2,
        )
        policy = MultiLogPolicy(max_logs=2)
        LogStructuredStore(cfg, policy)
        a = policy._class_of(1.0)
        b = policy._class_of(1e-9)
        assert policy.n_logs == 2
        mid = policy._class_of(2.0 ** -6)
        assert mid in (a, b)

    def test_effective_cap_respects_device_slack(self):
        cfg = StoreConfig(
            n_segments=32, segment_units=8, fill_factor=0.7,
            clean_trigger=2, clean_batch=2,
        )
        policy = MultiLogPolicy(max_logs=16)
        LogStructuredStore(cfg, policy)
        # slack is ~9.6 segments; the cap must leave room for open
        # segments plus the free reserve.
        assert policy._max_logs_effective < 16


class TestEstimation:
    def test_first_write_routes_cold(self, store_and_policy):
        store, policy = store_and_policy
        store.pages.ensure(0)
        assert policy._freq(0) == 0.0

    def test_frequency_is_inverse_interval(self, store_and_policy):
        store, policy = store_and_policy
        store.write(0)
        for pid in range(1, 11):
            store.write(pid)
        assert policy._freq(0) == pytest.approx(1.0 / 10)

    def test_exact_variant_reads_oracle(self):
        cfg = StoreConfig(
            n_segments=64, segment_units=8, fill_factor=0.6,
            clean_trigger=2, clean_batch=2,
        )
        policy = MultiLogPolicy(exact=True)
        store = LogStructuredStore(cfg, policy)
        store.set_oracle_frequencies([0.25, 0.75])
        assert policy._freq(1) == 0.75


class TestPlacement:
    def test_hot_and_cold_pages_use_different_streams(self, store_and_policy):
        store, policy = store_and_policy
        n = store.config.user_pages
        store.load_sequential(n)
        # Page 0 updated every other write -> hot; page tracked once -> cold.
        for i in range(200):
            store.write(0)
            store.write(1 + (i % (n - 1)))
        hot_stream = policy.route_user(0)
        cold_stream = policy.route_user(n - 1)
        assert hot_stream != cold_stream
        assert hot_stream > cold_stream  # classes sort cold -> hot

    def test_gc_demotes_one_class_colder(self, store_and_policy):
        store, policy = store_and_policy
        policy._ensure_class(-10)
        policy._ensure_class(-5)
        policy._ensure_class(-1)
        policy._seg_class[7] = -5
        placements = policy.place_gc([42], [7])
        assert placements == [(42, -10)]

    def test_gc_demotion_floors_at_coldest(self, store_and_policy):
        _, policy = store_and_policy
        policy._ensure_class(-10)
        policy._seg_class[7] = -10
        assert policy.place_gc([42], [7]) == [(42, -10)]

    def test_exact_gc_routes_by_oracle(self):
        cfg = StoreConfig(
            n_segments=64, segment_units=8, fill_factor=0.6,
            clean_trigger=2, clean_batch=2,
        )
        policy = MultiLogPolicy(exact=True)
        store = LogStructuredStore(cfg, policy)
        store.set_oracle_frequencies([0.5])
        expected = policy._class_of(0.5)
        assert policy.place_gc([0], [3]) == [(0, expected)]


class TestVictimLocality:
    def test_selects_one_victim_from_neighbourhood(self):
        cfg = StoreConfig(
            n_segments=64, segment_units=8, fill_factor=0.6,
            clean_trigger=2, clean_batch=4,
        )
        policy = MultiLogPolicy()
        store = LogStructuredStore(cfg, policy)
        n = cfg.user_pages
        store.load_sequential(n)
        for i in range(2000):
            store.write((i * 3) % n)
        victims = policy.select_victims(store.sealed_segments())
        assert len(victims) == 1

    def test_falls_back_globally_when_neighbourhood_is_empty(self):
        cfg = StoreConfig(
            n_segments=64, segment_units=8, fill_factor=0.6,
            clean_trigger=2, clean_batch=2,
        )
        policy = MultiLogPolicy()
        store = LogStructuredStore(cfg, policy)
        store.load_sequential(cfg.user_pages)
        # Make some segments reclaimable.
        for pid in range(24):
            store.write(pid)
        # Re-tag every sealed segment as belonging to a class far below
        # the last-written one, so the ±1 neighbourhood holds no sealed
        # segments at all and the global fallback must kick in.
        for c in (-30, -20, -10, -5):
            policy._ensure_class(c)
        for seg in store.sealed_segments():
            policy._seg_class[seg] = -30
        policy._last_class = -5
        victims = policy.select_victims(store.sealed_segments())
        assert victims
        # And the fallback picks by most reclaimable space.
        segs = store.segments
        best = max(
            store.sealed_segments(),
            key=lambda s: segs.capacity - segs.live_units[s],
        )
        assert (segs.capacity - segs.live_units[victims[0]]) == (
            segs.capacity - segs.live_units[best]
        )

    def test_min_free_target_scales_with_logs(self, store_and_policy):
        store, policy = store_and_policy
        for c in range(-6, 0):
            policy._ensure_class(c)
        assert policy.min_free_target() >= policy.n_logs + 2
