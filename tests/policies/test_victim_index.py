"""The incremental victim-selection index.

Covers the three pieces the index is built from: the column-based
ranking protocol (``rank_columns`` must agree with the scalar ``rank``),
the partial-order shortcut (``_ascending_prefix`` must be an exact
prefix of the full stable argsort), and the epoch-keyed priority cache
(stale entries re-score, fresh ones don't).  Plus the selection rule
that a segment with nothing reclaimable is never picked.
"""

import numpy as np
import pytest

from repro.policies import available_policies, make_policy
from repro.policies.base import _ascending_prefix
from repro.store import LogStructuredStore, StoreConfig
from repro.store.segments import SEALED


def _driven_store(policy_name, seed=9):
    cfg = StoreConfig(
        n_segments=48,
        segment_units=16,
        fill_factor=0.7,
        clean_trigger=3,
        clean_batch=3,
        seed=seed,
    )
    store = LogStructuredStore(cfg, make_policy(policy_name))
    if policy_name.endswith("-opt"):
        store.set_oracle_frequencies(
            np.linspace(0.001, 0.2, cfg.user_pages).tolist()
        )
    store.load_sequential(cfg.user_pages)
    rng = np.random.default_rng(seed)
    store.write_batch(rng.integers(0, cfg.user_pages, size=2000).astype(np.int64))
    return store


def _sealed_ids(store):
    return np.flatnonzero(store.segments.state == SEALED).astype(np.int64)


@pytest.mark.parametrize("policy_name", available_policies())
def test_rank_columns_agrees_with_rank(policy_name):
    store = _driven_store(policy_name)
    ids = _sealed_ids(store)
    assert ids.size > 0
    via_columns = np.asarray(
        store.policy.rank_columns(store.segments, ids), dtype=float
    )
    via_scalar = np.asarray(
        store.policy.rank([int(s) for s in ids]), dtype=float
    )
    np.testing.assert_array_equal(via_columns, via_scalar)


@pytest.mark.parametrize("policy_name", ["greedy", "cost-benefit-paper"])
def test_fully_live_segments_never_selected(policy_name):
    """A == 0 means cleaning reclaims nothing; such segments must never
    land in a victim batch — even under cost-benefit-paper, whose
    ranking puts emptiness-zero segments at -inf (first in order)."""
    store = _driven_store(policy_name)
    segs = store.segments
    ids = _sealed_ids(store)
    full = ids[segs.live_units[ids] == segs.capacity]
    victims = store.policy.select_victims(ids.tolist(), n=len(ids))
    assert victims, "driven store should have something reclaimable"
    assert not set(victims) & set(full.tolist())
    for v in victims:
        assert segs.live_units[v] < segs.capacity


def test_nothing_reclaimable_returns_empty():
    cfg = StoreConfig(
        n_segments=16,
        segment_units=8,
        fill_factor=0.6,
        clean_trigger=2,
        clean_batch=2,
        seed=1,
    )
    store = LogStructuredStore(cfg, make_policy("greedy"))
    store.load_sequential(cfg.user_pages)
    ids = _sealed_ids(store)
    fully_live = ids[store.segments.live_units[ids] == store.segments.capacity]
    assert store.policy.select_victims(fully_live.tolist()) == []


@pytest.mark.parametrize("seed", range(6))
def test_ascending_prefix_is_exact_argsort_prefix(seed):
    rng = np.random.default_rng(seed)
    n = 500
    # Few distinct values -> plenty of ties, the stable-order hazard.
    priorities = rng.integers(0, 12, size=n).astype(np.float64)
    priorities[rng.integers(0, n, size=20)] = np.inf
    full = np.argsort(priorities, kind="stable")
    for need in (1, 3, 10, 40, n):
        prefix = _ascending_prefix(priorities, need)
        assert prefix.size >= min(need, n)
        np.testing.assert_array_equal(prefix, full[: prefix.size])


def test_ascending_prefix_handles_nan():
    priorities = np.array([3.0, np.nan, 1.0] * 50)
    full = np.argsort(priorities, kind="stable")
    prefix = _ascending_prefix(priorities, 2)
    np.testing.assert_array_equal(prefix, full[: prefix.size])


def test_priority_cache_rescoring():
    """The epoch cache serves unchanged segments from memory and
    re-scores exactly the segments whose epoch moved."""
    store = _driven_store("greedy")
    policy = store.policy
    assert not policy.clock_dependent_rank
    ids = _sealed_ids(store)

    first = policy._ranked_priorities(ids).copy()
    np.testing.assert_array_equal(
        first, np.asarray(policy.rank_columns(store.segments, ids), dtype=float)
    )

    # Cached call: same answer without any epoch movement.
    np.testing.assert_array_equal(policy._ranked_priorities(ids), first)

    # Invalidate pages in one sealed segment; only it may change.
    target = int(ids[np.argmax(store.segments.live_count[ids])])
    pages = store.pages.live_pages_of(store.segments, target)[:3]
    assert pages
    for pid in pages:
        store.trim(pid)
    ids_after = _sealed_ids(store)
    refreshed = policy._ranked_priorities(ids_after)
    np.testing.assert_array_equal(
        refreshed,
        np.asarray(policy.rank_columns(store.segments, ids_after), dtype=float),
    )
    moved = int(np.flatnonzero(ids_after == target)[0])
    stale_before = float(first[np.flatnonzero(ids == target)[0]])
    assert refreshed[moved] != stale_before
