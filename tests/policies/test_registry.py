"""Policy registry: construction by figure label."""

import pytest

from repro.core.mdc import MdcPolicy
from repro.policies import (
    FIGURE3_POLICIES,
    FIGURE5_POLICIES,
    MultiLogPolicy,
    available_policies,
    make_policy,
)


class TestConstruction:
    @pytest.mark.parametrize("name", sorted(set(FIGURE5_POLICIES + FIGURE3_POLICIES)))
    def test_every_figure_policy_constructs(self, name):
        policy = make_policy(name)
        assert policy.name == name

    def test_all_registered_names_construct(self):
        for name in available_policies():
            assert make_policy(name).name == name

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(ValueError) as err:
            make_policy("fifo")
        assert "greedy" in str(err.value)

    def test_kwargs_forwarded(self):
        policy = make_policy("multi-log", max_logs=3)
        assert isinstance(policy, MultiLogPolicy)
        assert policy.max_logs == 3

    def test_variant_flags(self):
        assert make_policy("mdc-opt").estimator == "exact"
        assert make_policy("multi-log-opt").exact is True
        nsu = make_policy("mdc-no-sep-user")
        assert isinstance(nsu, MdcPolicy)
        assert not nsu.separate_user and nsu.separate_gc
        nsug = make_policy("mdc-no-sep-user-gc")
        assert not nsug.separate_user and not nsug.separate_gc


class TestLineups:
    def test_figure5_lineup_matches_paper(self):
        assert FIGURE5_POLICIES == [
            "age", "greedy", "cost-benefit",
            "multi-log", "multi-log-opt", "mdc", "mdc-opt",
        ]

    def test_figure3_lineup_matches_paper(self):
        assert FIGURE3_POLICIES == [
            "greedy", "mdc-no-sep-user-gc", "mdc-no-sep-user", "mdc", "mdc-opt",
        ]
