"""Counters / gauges / histograms and their snapshot-delta windowing."""

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


class TestInstruments:
    def test_counter_increases_only(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_is_instantaneous(self):
        g = Gauge()
        g.set(7)
        g.set(3.5)
        assert g.value == 3.5

    def test_histogram_bucketing(self):
        h = Histogram(edges=(0.1, 0.5, 1.0))
        for v in (0.05, 0.1, 0.3, 0.9, 2.0):
            h.observe(v)
        # value <= edge lands in that bucket; 2.0 overflows.
        assert h.bucket_counts == [2, 1, 1, 1]
        assert h.count == 5
        assert h.mean == pytest.approx((0.05 + 0.1 + 0.3 + 0.9 + 2.0) / 5)

    def test_histogram_rejects_bad_edges(self):
        with pytest.raises(ValueError):
            Histogram(edges=())
        with pytest.raises(ValueError):
            Histogram(edges=(0.5, 0.5))
        with pytest.raises(ValueError):
            Histogram(edges=(1.0, 0.5))


class TestRegistry:
    def test_instruments_created_on_first_use(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.counter("a").inc()
        assert reg.counter("a").value == 2
        assert reg.names() == ["a"]

    def test_histogram_needs_edges_on_creation(self):
        reg = MetricsRegistry()
        with pytest.raises(KeyError):
            reg.histogram("h")
        reg.histogram("h", edges=(1.0, 2.0)).observe(1.5)
        assert reg.histogram("h").count == 1
        with pytest.raises(ValueError):
            reg.histogram("h", edges=(1.0, 3.0))

    def test_snapshot_is_immutable_copy(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        snap = reg.snapshot()
        reg.counter("c").inc(5)
        assert snap.counters["c"] == 2
        assert reg.snapshot().counters["c"] == 7


class TestWindowing:
    def test_counters_and_buckets_subtract_gauges_stay(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(10)
        reg.histogram("h", edges=(1.0,)).observe(0.5)
        earlier = reg.snapshot()

        reg.counter("c").inc(4)
        reg.gauge("g").set(99)
        reg.histogram("h").observe(0.7)
        reg.histogram("h").observe(5.0)

        window = reg.window_since(earlier)
        assert window.counters["c"] == 4
        assert window.gauges["g"] == 99
        edges, buckets, total, count = window.histograms["h"]
        assert buckets == (1, 1)
        assert count == 2
        assert total == pytest.approx(0.7 + 5.0)

    def test_instruments_absent_earlier_count_from_zero(self):
        reg = MetricsRegistry()
        earlier = reg.snapshot()
        reg.counter("new").inc(2)
        reg.histogram("h", edges=(1.0,)).observe(0.5)
        window = reg.window_since(earlier)
        assert window.counters["new"] == 2
        assert window.histograms["h"][3] == 1

    def test_changed_edges_raise(self):
        a = MetricsRegistry()
        a.histogram("h", edges=(1.0,))
        b = MetricsRegistry()
        b.histogram("h", edges=(2.0,))
        with pytest.raises(ValueError):
            b.snapshot().delta(a.snapshot())

    def test_to_dict_round_trips_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(1.5)
        reg.histogram("h", edges=(1.0,)).observe(0.2)
        d = reg.snapshot().to_dict()
        assert d["counters"] == {"c": 1}
        assert d["gauges"] == {"g": 1.5}
        assert d["histograms"]["h"]["counts"] == [1, 0]
        assert d["histograms"]["h"]["edges"] == [1.0]
