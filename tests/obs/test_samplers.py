"""Clock-keyed time-series sampling."""

import pytest

from repro.obs import TimeSeriesSampler, default_interval
from repro.policies import make_policy
from repro.store import LogStructuredStore


@pytest.fixture
def loaded_store(small_config):
    store = LogStructuredStore(small_config, make_policy("greedy"))
    store.load_sequential(small_config.user_pages)
    return store


class TestMarks:
    def test_default_interval_is_quarter_of_user_pages(self, loaded_store):
        assert default_interval(loaded_store) == max(
            1, loaded_store.config.user_pages // 4
        )

    def test_samples_land_on_clock_marks(self, loaded_store):
        n = loaded_store.config.user_pages
        sampler = TimeSeriesSampler(loaded_store, interval=100)
        assert sampler.maybe_sample() is None  # next mark not reached yet
        start = loaded_store.clock
        for i in range(250):
            loaded_store.write(i % n)
            sampler.maybe_sample()
        clocks = [row["clock"] for row in sampler.samples]
        # Sampling after every single write lands exactly on the marks.
        first_mark = (start // 100 + 1) * 100
        expected = list(range(first_mark, loaded_store.clock + 1, 100))
        assert clocks == expected

    def test_same_interval_aligns_across_seeds(self, small_config):
        """Two runs with different write orders sample at the same
        clocks — what makes curves averageable across a sweep."""
        clocks = []
        for seed in (1, 2):
            store = LogStructuredStore(small_config, make_policy("greedy"))
            store.load_sequential(small_config.user_pages)
            sampler = TimeSeriesSampler(store, interval=64)
            n = small_config.user_pages
            for i in range(300):
                store.write((i * (seed + 2)) % n)
                sampler.maybe_sample()
            clocks.append([row["clock"] for row in sampler.samples])
        assert clocks[0] == clocks[1]

    def test_interval_must_be_positive(self, loaded_store):
        with pytest.raises(ValueError):
            TimeSeriesSampler(loaded_store, interval=0)


class TestRows:
    def test_sample_now_dedupes_unchanged_clock(self, loaded_store):
        sampler = TimeSeriesSampler(loaded_store)
        assert sampler.sample_now() is not None
        assert sampler.sample_now() is None
        assert len(sampler.samples) == 1

    def test_row_contents(self, loaded_store):
        n = loaded_store.config.user_pages
        sampler = TimeSeriesSampler(loaded_store, interval=10, hist_buckets=5)
        for i in range(2000):
            loaded_store.write((i * 3) % n)
        row = sampler.sample_now()
        assert row["type"] == "sample"
        assert row["clock"] == loaded_store.clock
        assert row["user_writes"] == loaded_store.stats.user_writes
        assert len(row["emptiness_hist"]) == 5
        assert row["fill"] == pytest.approx(loaded_store.fill_factor_now())
        assert row["free_segments"] == loaded_store.free_segment_count
        assert row["wamp_win"] >= 0.0
        assert row["device_wamp_win"] >= row["wamp_win"]

    def test_windowed_wamp_is_since_previous_sample(self, loaded_store):
        n = loaded_store.config.user_pages
        sampler = TimeSeriesSampler(loaded_store, interval=10)
        first = sampler.sample_now()
        assert first["wamp_win"] == 0.0  # nothing happened since init
        gc_before = loaded_store.stats.gc_writes
        user_before = loaded_store.stats.user_writes
        for i in range(3000):
            loaded_store.write((i * 3) % n)
        row = sampler.sample_now()
        gc = loaded_store.stats.gc_writes - gc_before
        user = loaded_store.stats.user_writes - user_before
        assert row["wamp_win"] == pytest.approx(gc / user)
        # While the cumulative figure still includes the load phase.
        assert row["wamp_cum"] == pytest.approx(
            loaded_store.stats.gc_writes / loaded_store.stats.user_writes
        )
