"""The store observer: hooks, decision tracing, failpoints, export rows."""

import pytest

from repro.obs import (
    BUFFER_FLUSH,
    CLEAN_CYCLE,
    SEGMENT_SEALED,
    VICTIM_SELECTED,
    StoreObserver,
    validate_rows,
)
from repro.policies import make_policy
from repro.store import LogStructuredStore
from repro.testkit.failpoints import failpoint


def _drive(store, n_writes, stride=7):
    n = store.config.user_pages
    for i in range(n_writes):
        store.write((i * stride) % n)


@pytest.fixture
def observed_store(small_config):
    store = LogStructuredStore(small_config, make_policy("greedy"))
    store.load_sequential(small_config.user_pages)
    observer = StoreObserver(store, sample_interval=100).attach()
    yield store, observer
    observer.detach()


class TestLifecycle:
    def test_attach_detach(self, small_config):
        store = LogStructuredStore(small_config, make_policy("greedy"))
        assert store.obs is None
        observer = StoreObserver(store)
        observer.attach()
        assert store.obs is observer
        observer.detach()
        assert store.obs is None

    def test_second_observer_rejected(self, small_config):
        store = LogStructuredStore(small_config, make_policy("greedy"))
        with StoreObserver(store):
            with pytest.raises(RuntimeError):
                StoreObserver(store).attach()
        # After detach the slot is free again.
        with StoreObserver(store):
            pass

    def test_unobserved_store_still_works(self, small_config):
        store = LogStructuredStore(small_config, make_policy("greedy"))
        store.load_sequential(small_config.user_pages)
        _drive(store, 3000)
        assert store.obs is None
        assert store.stats.clean_cycles > 0


class TestHooks:
    def test_cleaning_populates_metrics_and_events(self, observed_store):
        store, observer = observed_store
        _drive(store, 5000)
        stats = store.stats
        assert stats.clean_cycles > 0
        counters = observer.metrics.snapshot().counters
        assert counters["clean_cycles"] == stats.clean_cycles
        assert counters["victim_selections"] == stats.clean_cycles
        assert counters["segments_sealed"] > 0
        assert counters["pages_relocated"] == stats.gc_writes
        hist = observer.metrics.histogram("cleaned_emptiness")
        assert hist.count == stats.segments_cleaned
        kinds = {e.kind for e in observer.bus.events()}
        assert {SEGMENT_SEALED, CLEAN_CYCLE, VICTIM_SELECTED} <= kinds

    def test_flush_hook_counts_buffered_pages(self, buffered_config):
        # mdc uses the sort buffer (greedy would leave it unbuilt).
        store = LogStructuredStore(buffered_config, make_policy("mdc"))
        store.load_sequential(buffered_config.user_pages)
        with StoreObserver(store) as observer:
            _drive(store, 4000)
            counters = observer.metrics.snapshot().counters
            assert counters.get("buffer_flushes", 0) > 0
            assert counters["buffer_flush_pages"] >= counters["buffer_flushes"]
            assert any(
                e.kind == BUFFER_FLUSH for e in observer.bus.events()
            )

    def test_detached_observer_stops_capturing(self, observed_store):
        store, observer = observed_store
        _drive(store, 2000)
        observer.detach()
        before = observer.metrics.snapshot().counters
        _drive(store, 2000)
        assert observer.metrics.snapshot().counters == before


class TestDecisions:
    def test_decisions_capture_ranking_context(self, observed_store):
        store, observer = observed_store
        _drive(store, 5000)
        assert observer.decisions
        decision = observer.decisions[-1]
        assert decision["type"] == "decision"
        assert decision["policy"] == "greedy"
        assert decision["candidates"] > 0
        assert decision["victims"]
        victim = decision["victims"][0]
        for key in ("seg", "A", "C", "up2", "score"):
            assert key in victim
        # Greedy's extra column: the emptiness it actually ranks by.
        assert victim["emptiness"] == pytest.approx(
            victim["A"] / store.segments.capacity
        )
        # Everything must already be JSON-ready plain Python.
        assert all(
            not hasattr(v, "dtype") for v in victim.values()
        )

    @pytest.mark.parametrize(
        "policy,extra_keys",
        [
            ("greedy", ("emptiness",)),
            ("age", ("seal_time",)),
            ("cost-benefit", ("age", "benefit")),
            ("multi-log", ("log_class", "seal_time")),
            ("mdc", ("decline", "age_since_update")),
            ("mdc-opt", ("decline", "freq_sum")),
        ],
    )
    def test_every_policy_family_traces(self, small_config, policy, extra_keys):
        store = LogStructuredStore(small_config, make_policy(policy))
        store.load_sequential(small_config.user_pages)
        with StoreObserver(store) as observer:
            _drive(store, 6000, stride=11)
            assert observer.decisions, "no decision traced for %s" % policy
            victim = observer.decisions[-1]["victims"][0]
            for key in ("seg", "A", "C", "up2", "score") + extra_keys:
                assert key in victim, "%s missing %s" % (policy, key)

    def test_decision_ring_bounds_memory(self, small_config):
        store = LogStructuredStore(small_config, make_policy("greedy"))
        store.load_sequential(small_config.user_pages)
        with StoreObserver(store, max_decisions=3) as observer:
            _drive(store, 6000)
            assert len(observer.decisions) == 3
            assert observer.decisions_dropped > 0


class TestFailpoints:
    def test_failpoint_hits_become_events(self, observed_store):
        store, observer = observed_store
        failpoint("obs.test.site", detail="x")
        counters = observer.metrics.snapshot().counters
        assert counters["failpoints_hit"] == 1
        events = [e for e in observer.bus.events() if e.kind == "failpoint"]
        assert events and events[0].payload["name"] == "obs.test.site"

    def test_detach_unsubscribes(self, small_config):
        store = LogStructuredStore(small_config, make_policy("greedy"))
        observer = StoreObserver(store).attach()
        observer.detach()
        failpoint("obs.test.after")
        assert "failpoints_hit" not in observer.metrics.snapshot().counters


class TestExportRows:
    def test_rows_validate_and_carry_meta(self, observed_store):
        store, observer = observed_store
        _drive(store, 5000)
        observer.sample_now()
        rows = list(observer.rows({"workload": "stride"}))
        assert rows[0]["type"] == "meta"
        assert rows[0]["run"]["workload"] == "stride"
        assert rows[0]["run"]["policy"] == "greedy"
        assert validate_rows(rows, require_decisions=True) == []
        types = {row["type"] for row in rows}
        assert types == {"meta", "sample", "decision", "metrics", "event"}

    def test_window_covers_observed_interval(self, observed_store):
        store, observer = observed_store
        _drive(store, 3000)
        window = observer.window()
        assert window.user_writes == 3000
        assert window.write_amplification == pytest.approx(
            store.stats.gc_writes / 3000
        )
