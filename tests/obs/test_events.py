"""The typed ring-buffered event bus."""

import pytest

from repro.obs import (
    CLEAN_CYCLE,
    EVENT_KINDS,
    SEGMENT_SEALED,
    Event,
    EventBus,
)


class TestEvent:
    def test_to_dict_is_a_flat_jsonl_row(self):
        event = Event(seq=3, clock=17, kind=CLEAN_CYCLE, payload={"moved": 5})
        row = event.to_dict()
        assert row == {
            "type": "event",
            "seq": 3,
            "clock": 17,
            "kind": "clean_cycle",
            "moved": 5,
        }

    def test_kinds_are_distinct(self):
        assert len(set(EVENT_KINDS)) == len(EVENT_KINDS)


class TestEventBus:
    def test_emit_and_order(self):
        bus = EventBus()
        bus.emit(SEGMENT_SEALED, clock=1, seg=0)
        bus.emit(CLEAN_CYCLE, clock=2, victims=[0])
        kinds = [e.kind for e in bus.events()]
        assert kinds == [SEGMENT_SEALED, CLEAN_CYCLE]
        assert [e.seq for e in bus.events()] == [1, 2]

    def test_ring_drops_oldest_but_counts_stay_cumulative(self):
        bus = EventBus(capacity=2)
        for clock in range(5):
            bus.emit(SEGMENT_SEALED, clock=clock, seg=clock)
        assert len(bus) == 2
        assert bus.dropped == 3
        assert bus.total_emitted() == 5
        assert bus.counts[SEGMENT_SEALED] == 5
        # The ring keeps the most recent events.
        assert [e.payload["seg"] for e in bus.events()] == [3, 4]

    def test_tail(self):
        bus = EventBus()
        for clock in range(4):
            bus.emit(SEGMENT_SEALED, clock=clock, seg=clock)
        assert [e.clock for e in bus.tail(2)] == [2, 3]
        assert bus.tail(0) == []
        assert len(bus.tail(100)) == 4

    def test_subscribers_see_every_event(self):
        bus = EventBus(capacity=1)
        seen = []
        bus.subscribers.append(seen.append)
        bus.emit(SEGMENT_SEALED, clock=1, seg=0)
        bus.emit(SEGMENT_SEALED, clock=2, seg=1)
        assert [e.clock for e in seen] == [1, 2]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventBus(capacity=0)
