"""Histogram percentile estimation and the stall-observability hooks.

The interpolation bug this tier pins down: with a handful of samples, a
naive bucket interpolation reads far above every real observation (one
sample of 3 in a ``(2, 64]`` bucket "estimates" ~64 at any quantile).
``max_observed`` clamps every bucket's upper bound, so small-sample
percentiles can never exceed what was actually seen.
"""

import pytest

from repro.obs import (
    PAGES_EDGES,
    MetricsRegistry,
    StoreObserver,
    percentile_from_buckets,
)
from repro.obs import events as ev
from repro.policies import make_policy
from repro.store import LogStructuredStore, StoreConfig
from repro.workloads import UniformWorkload


def drive(store, n_writes, seed=3):
    wl = UniformWorkload(store.config.user_pages, seed=seed)
    for batch in wl.batches(n_writes):
        for pid in batch:
            store.write(int(pid))


class TestPercentileFromBuckets:
    def test_empty_histogram_is_zero(self):
        assert percentile_from_buckets((1, 2, 4), (0, 0, 0, 0), 0.99) == 0.0

    def test_quantile_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile_from_buckets((1, 2), (1, 1, 0), 1.5)
        with pytest.raises(ValueError):
            percentile_from_buckets((1, 2), (1, 1, 0), -0.1)

    def test_interpolates_within_covering_bucket(self):
        # 100 observations in (10, 20]: the median interpolates to the
        # bucket midpoint, p99 to just under the upper edge.
        edges = (10.0, 20.0)
        counts = (0, 100, 0)
        assert percentile_from_buckets(edges, counts, 0.5) == pytest.approx(15.0)
        assert percentile_from_buckets(edges, counts, 0.99) == pytest.approx(19.9)

    def test_crosses_buckets_in_order(self):
        edges = (1.0, 2.0, 4.0)
        counts = (50, 25, 25, 0)
        # First 50% fills [0, 1]; q=0.25 lands mid-first-bucket.
        assert percentile_from_buckets(edges, counts, 0.25) == pytest.approx(0.5)
        # q=0.75 exactly exhausts the (1, 2] bucket.
        assert percentile_from_buckets(edges, counts, 0.75) == pytest.approx(2.0)
        assert percentile_from_buckets(edges, counts, 1.0) == pytest.approx(4.0)

    def test_small_sample_clamped_by_hi(self):
        # THE small-count fix: one sample of 3 in a (2, 64] bucket must
        # estimate 3 at every quantile once hi is tracked — not ~64.
        edges = (2.0, 64.0)
        counts = (0, 1, 0)
        naive = percentile_from_buckets(edges, counts, 0.99)
        clamped = percentile_from_buckets(edges, counts, 0.99, hi=3.0)
        assert naive > 60.0
        assert 2.0 <= clamped <= 3.0

    def test_overflow_bucket_bounded_by_hi(self):
        edges = (1.0, 2.0)
        counts = (0, 0, 5)  # everything beyond the last edge
        assert percentile_from_buckets(edges, counts, 0.99, hi=7.0) <= 7.0
        # Without hi the last edge is the only finite bound.
        assert percentile_from_buckets(edges, counts, 0.99) == pytest.approx(2.0)

    def test_q1_returns_hi(self):
        edges = (1.0, 2.0, 4.0)
        counts = (1, 1, 1, 1)
        assert percentile_from_buckets(edges, counts, 1.0, hi=3.5) == 3.5


class TestHistogramPercentiles:
    def test_max_observed_tracked(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", (1, 2, 4))
        for v in (0.5, 3.0, 1.5):
            h.observe(v)
        assert h.max_observed == 3.0

    def test_percentile_never_exceeds_max_observed(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", (2, 64, 4096))
        h.observe(3.0)
        for q in (0.5, 0.9, 0.99, 0.999, 1.0):
            assert h.percentile(q) <= 3.0

    def test_percentile_matches_dense_population(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", tuple(range(1, 101)))
        for v in range(1, 101):
            h.observe(float(v))
        # Unit-wide buckets: the estimate tracks the exact quantile
        # within one bucket width.
        assert h.percentile(0.99) == pytest.approx(99.0, abs=1.0)
        assert h.percentile(0.5) == pytest.approx(50.0, abs=1.0)

    def test_empty_percentile_is_zero(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", (1, 2))
        assert h.percentile(0.99) == 0.0

    def test_snapshot_to_dict_carries_p99_p999(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", (1, 2, 4))
        h.observe(1.0)
        h.observe(3.0)
        row = reg.snapshot().to_dict()
        hist = row["histograms"]["h"]
        assert "p99" in hist and "p999" in hist
        assert hist["p99"] <= 4.0
        assert hist["count"] == 2

    def test_snapshot_format_unchanged(self):
        """The 4-tuple snapshot wire format must not grow: downstream
        delta() and exports index it positionally."""
        reg = MetricsRegistry()
        h = reg.histogram("h", (1, 2))
        h.observe(1.0)
        snap = reg.snapshot().histograms["h"]
        assert len(snap) == 4
        edges, counts, total, count = snap
        assert edges == (1.0, 2.0)
        assert sum(counts) == count == 1


class TestStallHooks:
    def _observed_store(self):
        cfg = StoreConfig(
            n_segments=16, segment_units=8, fill_factor=0.6,
            clean_trigger=2, clean_batch=2,
        )
        store = LogStructuredStore(cfg, make_policy("greedy"))
        observer = StoreObserver(store).attach()
        return store, observer

    def test_write_stall_is_a_valid_event_kind(self):
        assert ev.WRITE_STALL in ev.EVENT_KINDS

    def test_reactive_stall_recorded(self):
        store, observer = self._observed_store()
        drive(store, 1500)
        counters = observer.metrics.snapshot().counters
        assert counters.get("write_stalls", 0) > 0
        hist = observer.metrics.histogram("write_stall_pages")
        assert hist.count == counters["write_stalls"]
        kinds = {e.kind for e in observer.bus.events()}
        assert ev.WRITE_STALL in kinds

    def test_clean_step_metrics_recorded(self):
        store, observer = self._observed_store()
        drive(store, 600)
        if store.sealed_segments().size == 0 or store.free_segment_count == 0:
            pytest.skip("nothing cleanable at this geometry")
        store.clean_begin()
        while store.clean_cursor is not None:
            store.clean_step(2)
        counters = observer.metrics.snapshot().counters
        assert counters.get("cleaner_steps", 0) > 0
        hist = observer.metrics.histogram("cleaner_step_pages")
        assert hist.edges == tuple(float(e) for e in PAGES_EDGES)
        # The cycle drained: the pending gauge must read 0 again.
        gauges = observer.metrics.snapshot().gauges
        assert gauges.get("cleaner_pending") == 0

    def test_no_step_events_flood_the_ring(self):
        """Steps are metrics-only: thousands of steps must not evict
        the decision-grade events from the bounded ring."""
        store, observer = self._observed_store()
        drive(store, 600)
        if store.sealed_segments().size == 0 or store.free_segment_count == 0:
            pytest.skip("nothing cleanable at this geometry")
        def substantive():
            # Failpoint-trace events scale with steps by design (one
            # "store.clean.step" trace per step); everything else must
            # stay bounded per cycle.
            return sum(
                1
                for e in observer.bus.events()
                if e.kind != ev.FAILPOINT_FIRED
            )

        before = substantive()
        store.clean_begin()
        steps = 0
        while store.clean_cursor is not None:
            store.clean_step(1)
            steps += 1
        # One cycle emits a bounded number of events (victims + clean +
        # GC seals) regardless of how many steps drove it.
        assert substantive() - before <= 6
        assert steps >= 1
