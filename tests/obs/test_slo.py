"""SLO burn-rate math: windows, sustained vs worst, report shape."""

import pytest

from repro.obs.slo import SLOTracker


class TestValidation:
    def test_objective_must_be_below_one(self):
        with pytest.raises(ValueError):
            SLOTracker(objective=1.0)

    def test_objective_must_be_nonnegative(self):
        with pytest.raises(ValueError):
            SLOTracker(objective=-0.1)

    def test_windows_must_be_positive(self):
        with pytest.raises(ValueError):
            SLOTracker(windows=(16, 0))

    def test_windows_required(self):
        with pytest.raises(ValueError):
            SLOTracker(windows=())


class TestBurnRates:
    def test_no_samples_no_burn(self):
        slo = SLOTracker()
        assert slo.worst_burn == 0.0
        assert slo.sustained_burn == 0.0
        assert not slo.report()["burning"]

    def test_all_good_zero_burn(self):
        slo = SLOTracker(objective=0.95, threshold=32.0)
        for _ in range(100):
            slo.record(0.0)
        assert slo.worst_burn == 0.0
        assert slo.report()["bad"] == 0

    def test_burn_rate_is_bad_fraction_over_budget(self):
        slo = SLOTracker(objective=0.9, threshold=10.0, windows=(10,))
        for value in [0.0] * 8 + [20.0] * 2:
            slo.record(value)
        (window,) = slo.burn_rates()
        assert window["bad"] == 2
        assert window["bad_fraction"] == pytest.approx(0.2)
        # budget = 1 - 0.9 = 0.1 -> burn = 0.2 / 0.1 = 2.0
        assert window["burn_rate"] == pytest.approx(2.0)

    def test_threshold_is_exclusive(self):
        slo = SLOTracker(objective=0.5, threshold=32.0, windows=(4,))
        slo.record(32.0)  # exactly at threshold: good
        slo.record(32.1)  # above: bad
        assert slo.report()["bad"] == 1

    def test_sustained_is_min_worst_is_max(self):
        # A recent spike: short window burns, long window does not.
        slo = SLOTracker(objective=0.9, threshold=1.0, windows=(4, 100))
        for _ in range(96):
            slo.record(0.0)
        for _ in range(4):
            slo.record(5.0)
        short, long_ = slo.burn_rates()
        assert short["burn_rate"] > long_["burn_rate"]
        assert slo.worst_burn == pytest.approx(short["burn_rate"])
        assert slo.sustained_burn == pytest.approx(long_["burn_rate"])

    def test_burning_requires_all_windows(self):
        slo = SLOTracker(objective=0.9, threshold=1.0, windows=(4, 100))
        for _ in range(100):
            slo.record(5.0)
        report = slo.report()
        assert report["sustained_burn"] > 1.0
        assert report["burning"]

    def test_ring_bounded_by_longest_window(self):
        slo = SLOTracker(windows=(4, 8))
        for i in range(100):
            slo.record(float(i))
        # Lifetime counters keep growing, but the ring only retains the
        # longest window's worth of samples.
        report = slo.report()
        assert report["samples"] == 100
        assert report["windows"][-1]["samples"] == 8
        assert len(slo._ring) == 8


class TestReport:
    def test_report_shape(self):
        slo = SLOTracker(objective=0.95, threshold=32.0)
        slo.record(40.0)
        report = slo.report()
        assert report["objective"] == 0.95
        assert report["threshold"] == 32.0
        assert report["samples"] == 1
        assert report["bad"] == 1
        assert len(report["windows"]) == 3
        for window in report["windows"]:
            assert set(window) == {
                "window", "samples", "bad", "bad_fraction", "burn_rate",
            }

    def test_report_is_json_round_trippable(self):
        import json

        slo = SLOTracker()
        for i in range(10):
            slo.record(float(i * 7 % 40))
        assert json.loads(json.dumps(slo.report())) == slo.report()
