"""Causal spans: deterministic IDs, nesting, sampling, exporters, and
the critical-path analyzer — all without running a service."""

import json

import pytest

from repro.obs.export import load_rows, validate_rows
from repro.obs.trace import (
    Span,
    SpanCollector,
    Tracer,
    chrome_trace,
    critical_path_report,
    load_spans,
    write_chrome_trace,
    write_spans,
)


class TestIds:
    def test_ids_deterministic_for_same_seed(self):
        ids = []
        for _ in range(2):
            tracer = Tracer(seed=7)
            with tracer.span("a"):
                with tracer.span("b"):
                    pass
            ids.append([(r["trace"], r["span"]) for r in tracer.rows()])
        assert ids[0] == ids[1]

    def test_ids_differ_across_seeds(self):
        def one(seed):
            tracer = Tracer(seed=seed)
            tracer.finish(tracer.start("a"))
            return tracer.rows()[0]["span"]

        assert one(1) != one(2)

    def test_id_shape(self):
        tracer = Tracer(seed=0)
        tracer.finish(tracer.start("a"))
        row = tracer.rows()[0]
        assert len(row["span"]) == 16
        int(row["span"], 16)  # valid hex


class TestNesting:
    def test_stack_nesting_links_parent(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id
        assert outer.parent_id is None

    def test_sibling_spans_share_parent(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == outer.span_id
        assert b.parent_id == outer.span_id

    def test_detached_parent_bypasses_stack(self):
        tracer = Tracer()
        root = tracer.start("root", parent=None)
        with tracer.span("stacked"):
            # Explicit parent: the stacked span is NOT the parent.
            job = tracer.start("job", parent=root)
            assert job.parent_id == root.span_id
            tracer.finish(job)
        tracer.finish(root)
        # Stack is clean afterwards.
        assert tracer._stack == []

    def test_parent_interval_contains_child(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.start_s <= inner.start_s
        assert inner.end_s <= outer.end_s

    def test_clock_and_attrs_exported(self):
        tracer = Tracer()
        span = tracer.start("flush", clock=42, shard=3)
        tracer.finish(span, stall_pages=8.0)
        row = tracer.rows()[0]
        assert row["clock"] == 42
        assert row["attrs"] == {"shard": 3, "stall_pages": 8.0}
        assert row["dur_us"] >= 0


class TestSampling:
    def test_sample_zero_keeps_nothing(self):
        tracer = Tracer(sample=0.0)
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert tracer.rows() == []

    def test_sample_one_keeps_everything(self):
        tracer = Tracer(sample=1.0)
        for _ in range(5):
            with tracer.span("a"):
                pass
        assert len(tracer.rows()) == 5

    def test_children_inherit_root_decision(self):
        tracer = Tracer(seed=3, sample=0.5)
        for _ in range(40):
            with tracer.span("root"):
                with tracer.span("child"):
                    pass
        rows = tracer.rows()
        kept = {r["span"] for r in rows}
        # Every kept child has its parent kept too — no orphans.
        for row in rows:
            if row["parent"] is not None:
                assert row["parent"] in kept
        # Partial sampling actually dropped and kept some traces.
        roots = [r for r in rows if r["parent"] is None]
        assert 0 < len(roots) < 40

    def test_sampling_deterministic(self):
        def kept(seed):
            tracer = Tracer(seed=seed, sample=0.5)
            out = []
            for i in range(20):
                with tracer.span("r"):
                    pass
                out.append(len(tracer.rows()))
            return out

        assert kept(9) == kept(9)

    def test_bad_sample_rejected(self):
        with pytest.raises(ValueError):
            Tracer(sample=1.5)


class TestCollector:
    def test_ring_drops_oldest_and_counts(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            tracer.finish(tracer.start("s%d" % i))
        assert len(tracer.rows()) == 4
        assert tracer.dropped == 6
        assert tracer.rows()[0]["name"] == "s6"

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            SpanCollector(capacity=0)

    def test_unfinished_span_not_collected(self):
        tracer = Tracer()
        tracer.start("open")
        assert tracer.rows() == []


class TestSpanFile:
    def _tracer(self):
        tracer = Tracer(seed=1)
        with tracer.span("queue.flush", clock=10, shard=0):
            with tracer.span("shard.put_many", shard=0):
                pass
        return tracer

    def test_write_then_load_roundtrip(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        n = write_spans(str(path), self._tracer())
        assert n == 2
        rows = load_spans(str(path))
        assert [r["name"] for r in rows] == ["shard.put_many", "queue.flush"]

    def test_span_file_schema_validates(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        write_spans(str(path), self._tracer(), {"policy": "mdc"})
        rows = load_rows(str(path))
        assert validate_rows(rows) == []
        meta = rows[0]
        assert meta["schema"] == 2
        assert meta["run"]["component"] == "trace"
        assert meta["run"]["spans_dropped"] == 0
        assert meta["run"]["ring_capacity"] == 65536

    def test_write_from_plain_rows(self, tmp_path):
        rows = self._tracer().rows()
        path = tmp_path / "spans.jsonl"
        write_spans(str(path), rows)
        assert load_spans(str(path)) == rows

    def test_roundtrip_byte_identical(self, tmp_path):
        rows = self._tracer().rows()
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_spans(str(a), rows, {"x": 1})
        write_spans(str(b), load_spans(str(a)), {"x": 1})
        assert a.read_bytes() == b.read_bytes()


class TestChromeExport:
    def test_structure_and_lanes(self, tmp_path):
        tracer = Tracer()
        with tracer.span("queue.flush", shard=2):
            with tracer.span("store.clean_step", shard=2):
                pass
        trace = chrome_trace(tracer.rows())
        assert set(trace) == {"traceEvents", "displayTimeUnit"}
        events = trace["traceEvents"]
        assert len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            assert event["tid"] == 2
            assert event["dur"] >= 1
            assert isinstance(event["ts"], int)
        cats = {e["cat"] for e in events}
        assert cats == {"queue", "store"}

    def test_events_sorted_by_start(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        events = chrome_trace(tracer.rows())["traceEvents"]
        assert events[0]["name"] == "a"
        assert [e["ts"] for e in events] == sorted(e["ts"] for e in events)

    def test_write_chrome_trace_is_loadable_json(self, tmp_path):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        out = tmp_path / "trace.json"
        n = write_chrome_trace(str(out), tracer.rows())
        assert n == 1
        loaded = json.loads(out.read_text())
        assert loaded["traceEvents"][0]["name"] == "a"

    def test_non_span_rows_skipped(self):
        rows = [{"type": "meta", "schema": 2, "run": {}}]
        assert chrome_trace(rows)["traceEvents"] == []


def _span_row(span_id, parent, name, start, dur, **attrs):
    row = {
        "type": "span",
        "trace": "t0",
        "span": span_id,
        "parent": parent,
        "name": name,
        "start_us": start,
        "dur_us": dur,
    }
    if attrs:
        row["attrs"] = attrs
    return row


class TestCriticalPath:
    def _flush(self, i, stall, child_name="store.clean_step", child_dur=900):
        """One flush span with a maintain child and (optionally) a
        deeper dominant chain under it."""
        fid = "f%d" % i
        rows = [
            _span_row(fid, None, "queue.flush", i * 10_000, 1_000,
                      shard=0, stall_pages=stall),
            _span_row(fid + "m", fid, "pool.maintain", i * 10_000, 950),
        ]
        if child_name:
            rows.append(
                _span_row(fid + "c", fid + "m", child_name,
                          i * 10_000, child_dur)
            )
        return rows

    def test_attributes_tail_to_dominant_chain(self):
        rows = []
        for i in range(99):
            rows.extend(self._flush(i, stall=0.0))
        rows.extend(self._flush(99, stall=64.0))
        report = critical_path_report(rows)
        assert report["flushes"] == 100
        assert report["stalled_flushes"] == 1
        assert report["tail_samples"] == 1
        assert report["attributed"] == 1
        assert report["attribution_fraction"] == 1.0
        assert report["by_cause"] == {"store.clean_step": 1}
        (sample,) = report["samples"]
        assert sample["chain"] == ["pool.maintain", "store.clean_step"]

    def test_dominant_child_wins_over_shorter(self):
        rows = self._flush(0, stall=32.0, child_name=None)
        # Two children under maintain: the longer one is the cause.
        rows.append(_span_row("f0a", "f0m", "store.clean_begin", 0, 100))
        rows.append(_span_row("f0b", "f0m", "store.clean_step", 0, 800))
        report = critical_path_report(rows)
        assert report["by_cause"] == {"store.clean_step": 1}

    def test_childless_tail_flush_counts_as_self(self):
        rows = [
            _span_row("f0", None, "queue.flush", 0, 500,
                      stall_pages=16.0),
        ]
        report = critical_path_report(rows)
        assert report["tail_samples"] == 1
        assert report["attributed"] == 0
        assert report["attribution_fraction"] == 0.0
        assert report["by_cause"] == {"(self)": 1}

    def test_no_stalls_reports_full_attribution(self):
        rows = []
        for i in range(5):
            rows.extend(self._flush(i, stall=0.0))
        report = critical_path_report(rows)
        assert report["tail_samples"] == 0
        assert report["attribution_fraction"] == 1.0

    def test_threshold_is_tail_quantile_of_nonzero(self):
        rows = []
        for i in range(10):
            rows.extend(self._flush(i, stall=float(i)))
        report = critical_path_report(rows, tail_quantile=0.5)
        # Nonzero stalls are 1..9; nearest-rank p50 is 4 -> stalls >= 4.
        assert report["tail_threshold_pages"] == 4.0
        assert report["tail_samples"] == 6
