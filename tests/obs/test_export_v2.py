"""Schema v2: span/telemetry rows, v1 back-compat, ring capacity."""

from repro.obs.export import (
    SCHEMA_VERSION,
    SUPPORTED_SCHEMAS,
    summarize_rows,
    validate_rows,
)


def _meta(schema=SCHEMA_VERSION, **run):
    return {"type": "meta", "schema": schema, "run": run}


def _span(**over):
    row = {
        "type": "span",
        "trace": "aaaa",
        "span": "bbbb",
        "parent": None,
        "name": "queue.flush",
        "start_us": 100,
        "dur_us": 50,
    }
    row.update(over)
    return row


def _telemetry(**over):
    row = {
        "type": "telemetry",
        "t_s": 1.5,
        "clock": 100,
        "shards": [],
        "slo": {},
    }
    row.update(over)
    return row


class TestVersioning:
    def test_current_version_is_two(self):
        assert SCHEMA_VERSION == 2
        assert SUPPORTED_SCHEMAS == (1, 2)

    def test_v1_meta_still_validates(self):
        rows = [
            _meta(schema=1, policy="mdc"),
            {"type": "metrics", "counters": {}, "gauges": {}, "histograms": {}},
        ]
        assert validate_rows(rows) == []

    def test_unsupported_schema_rejected(self):
        (problem,) = validate_rows([_meta(schema=3)])
        assert "expected one of 1, 2" in problem


class TestSpanRows:
    def test_valid_span_row(self):
        assert validate_rows([_meta(), _span()]) == []

    def test_span_missing_keys(self):
        row = _span()
        del row["dur_us"]
        (problem,) = validate_rows([_meta(), row])
        assert "missing keys dur_us" in problem

    def test_span_timestamps_must_be_integers(self):
        (problem,) = validate_rows([_meta(), _span(start_us=1.5)])
        assert "integer microseconds" in problem

    def test_span_duration_must_be_nonnegative(self):
        (problem,) = validate_rows([_meta(), _span(dur_us=-1)])
        assert "non-negative" in problem

    def test_span_before_meta_rejected(self):
        (problem,) = validate_rows([_span(), _meta()])
        assert "before any meta header" in problem


class TestTelemetryRows:
    def test_valid_telemetry_row(self):
        assert validate_rows([_meta(), _telemetry()]) == []

    def test_telemetry_shards_must_be_list(self):
        (problem,) = validate_rows([_meta(), _telemetry(shards={})])
        assert "shards must be a list" in problem

    def test_telemetry_missing_keys(self):
        row = _telemetry()
        del row["slo"]
        (problem,) = validate_rows([_meta(), row])
        assert "missing keys slo" in problem


class TestSummarizeV2:
    def test_span_counts_surface(self):
        rows = [_meta(), _span(), _span(span="cccc")]
        summary = summarize_rows(rows)
        assert summary["spans"] == 2
        assert summary["per_run"][0]["spans"] == 2

    def test_ring_capacity_from_metrics_row(self):
        rows = [
            _meta(),
            {
                "type": "metrics",
                "counters": {},
                "gauges": {},
                "histograms": {},
                "events_dropped": 7,
                "ring_capacity": 512,
            },
        ]
        run = summarize_rows(rows)["per_run"][0]
        assert run["ring_capacity"] == 512
        assert run["events_dropped"] == 7

    def test_ring_capacity_falls_back_to_run_meta(self):
        rows = [_meta(ring_capacity=64), _span()]
        assert summarize_rows(rows)["per_run"][0]["ring_capacity"] == 64
