"""JSONL export, schema validation, and aggregation."""

import json

import pytest

from repro.obs import (
    SCHEMA_VERSION,
    MetricsWriter,
    aggregate_convergence,
    load_rows,
    samples_to_csv,
    summarize_rows,
    validate_file,
    validate_rows,
    write_jsonl,
)


def _meta(**run):
    return {"type": "meta", "schema": SCHEMA_VERSION, "run": run}


def _sample(clock, wamp=0.5):
    return {
        "type": "sample",
        "clock": clock,
        "user_writes": clock,
        "device_writes_multiple": 1.0,
        "wamp_cum": wamp,
        "wamp_win": wamp,
        "device_wamp_win": wamp,
        "mean_cleaned_emptiness_win": 0.4,
        "fill": 0.8,
        "free_segments": 4,
        "live_pages": 100,
        "emptiness_hist": [1, 2, 3],
        "temperature_cv": 0.1,
        "wear_cv": 0.05,
    }


def _decision(clock):
    return {
        "type": "decision",
        "clock": clock,
        "policy": "greedy",
        "candidates": 10,
        "victims": [{"seg": 1, "A": 5.0, "C": 3.0, "up2": 7.0, "score": 5.0}],
    }


def _metrics():
    return {"type": "metrics", "counters": {}, "gauges": {}, "histograms": {}}


def _event(seq, kind="clean_cycle"):
    return {"type": "event", "seq": seq, "clock": seq, "kind": kind}


def _valid_rows():
    return [
        _meta(policy="greedy"),
        _sample(100),
        _sample(200, wamp=0.25),
        _decision(150),
        _metrics(),
        _event(1),
    ]


class TestWriterAndLoad:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "m.jsonl"
        rows = _valid_rows()
        assert write_jsonl(str(path), rows) == len(rows)
        assert load_rows(str(path)) == rows

    def test_writer_truncates_once_then_appends(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_text('{"stale": true}\n')
        writer = MetricsWriter(str(path))
        writer.write_rows([_meta(run=1)])
        writer.write_rows([_meta(run=2)])
        rows = load_rows(str(path))
        assert [r["run"] for r in rows] == [{"run": 1}, {"run": 2}]
        assert writer.rows_written == 2


class TestValidation:
    def test_valid_stream_passes(self):
        assert validate_rows(_valid_rows(), require_decisions=True) == []

    def test_rows_before_meta_rejected(self):
        errors = validate_rows([_sample(1)])
        assert any("before any meta" in e for e in errors)

    def test_wrong_schema_version_rejected(self):
        rows = _valid_rows()
        rows[0]["schema"] = SCHEMA_VERSION + 1
        assert any("schema" in e for e in validate_rows(rows))

    def test_missing_sample_key_rejected(self):
        rows = _valid_rows()
        del rows[1]["wamp_win"]
        assert any("wamp_win" in e for e in validate_rows(rows))

    def test_unknown_event_kind_rejected(self):
        rows = _valid_rows() + [_event(2, kind="made_up")]
        assert any("made_up" in e for e in validate_rows(rows))

    def test_empty_victims_rejected(self):
        rows = _valid_rows()
        rows[3]["victims"] = []
        assert any("victims" in e for e in validate_rows(rows))

    def test_require_decisions_per_run(self):
        rows = [
            _meta(policy="greedy"),
            _sample(100),
            _meta(policy="mdc"),
            _sample(100),
            _decision(150),
        ]
        assert validate_rows(rows) == []
        errors = validate_rows(rows, require_decisions=True)
        assert any("no decision records" in e for e in errors)

    def test_validate_file(self, tmp_path):
        path = tmp_path / "m.jsonl"
        write_jsonl(str(path), _valid_rows())
        assert validate_file(str(path), require_decisions=True) == []


class TestAggregation:
    def test_convergence_splits_runs(self):
        rows = (
            [_meta(policy="greedy")]
            + [_sample(c, wamp=0.5) for c in (100, 200)]
            + [_meta(policy="mdc")]
            + [_sample(c, wamp=0.2) for c in (100, 200, 300)]
        )
        series = aggregate_convergence(rows)
        assert len(series) == 2
        assert series[0]["run"] == {"policy": "greedy"}
        assert series[0]["clock"] == [100, 200]
        assert series[1]["wamp_win"] == [0.2, 0.2, 0.2]
        # JSON-serializable as produced (what convergence.json needs).
        json.dumps(series)

    def test_summarize(self):
        summary = summarize_rows(_valid_rows())
        assert summary["schema"] == SCHEMA_VERSION
        assert summary["runs"] == 1
        run = summary["per_run"][0]
        assert run["samples"] == 2
        assert run["decisions"] == 1
        assert run["decision_policies"] == ["greedy"]
        assert run["final_clock"] == 200
        assert run["final_wamp_win"] == 0.25

    def test_summarize_surfaces_ring_drops(self):
        dropped = _metrics()
        dropped["events_dropped"] = 7
        dropped["decisions_dropped"] = 2
        rows = (
            [_meta(policy="greedy"), _sample(100), dropped]
            + [_meta(policy="mdc"), _sample(100), _metrics()]
        )
        summary = summarize_rows(rows)
        assert summary["per_run"][0]["events_dropped"] == 7
        assert summary["per_run"][0]["decisions_dropped"] == 2
        assert summary["per_run"][1]["events_dropped"] == 0
        assert summary["per_run"][1]["decisions_dropped"] == 0
        assert summary["events_dropped"] == 7
        assert summary["decisions_dropped"] == 2

    def test_summarize_without_drop_keys_defaults_to_zero(self):
        summary = summarize_rows(_valid_rows())
        assert summary["events_dropped"] == 0
        assert summary["per_run"][0]["decisions_dropped"] == 0

    def test_samples_to_csv(self, tmp_path):
        path = tmp_path / "s.csv"
        assert samples_to_csv(str(path), _valid_rows()) == 2
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 3  # header + 2 samples
        assert lines[0].startswith("clock,")
        assert "1|2|3" in lines[1]


class TestSimulationExport:
    def test_run_simulation_observe_writes_valid_file(self, tmp_path):
        from repro.bench import make_workload, run_simulation
        from repro.store import StoreConfig

        config = StoreConfig(
            n_segments=64, segment_units=16, fill_factor=0.75,
            clean_trigger=3, clean_batch=4,
        )
        workload = make_workload("zipf-80-20", config.user_pages, seed=1)
        path = tmp_path / "run.jsonl"
        result = run_simulation(
            config, "mdc", workload, write_multiplier=6.0, observe=str(path)
        )
        assert result.window.user_writes > 0
        assert validate_file(str(path), require_decisions=True) == []
        rows = load_rows(str(path))
        meta = rows[0]["run"]
        assert meta["policy"] == "mdc"
        assert meta["wamp"] == pytest.approx(
            result.window.write_amplification
        )

    def test_observed_runner_merges_runs_into_one_file(self, tmp_path):
        from repro.bench import make_workload, observed_runner
        from repro.store import StoreConfig

        config = StoreConfig(
            n_segments=32, segment_units=8, fill_factor=0.75,
            clean_trigger=2, clean_batch=2,
        )
        path = tmp_path / "merged.jsonl"
        run = observed_runner(str(path))
        for policy in ("greedy", "mdc"):
            workload = make_workload("uniform", config.user_pages, seed=0)
            run(config, policy, workload, write_multiplier=4.0)
        rows = load_rows(str(path))
        metas = [r for r in rows if r["type"] == "meta"]
        assert [m["run"]["policy"] for m in metas] == ["greedy", "mdc"]
        assert validate_rows(rows) == []
