"""File following (poll + bounded backoff) and the `repro top` frames."""

import io
import json

from repro.obs.top import follow_lines, render_top, run_top


def _telemetry_row(t=1.0, burning=False):
    return {
        "type": "telemetry",
        "t_s": t,
        "clock": 1000,
        "tick": 7,
        "queue_depth": 12,
        "flush_stall_p99_pages": 4.0,
        "slo": {
            "objective": 0.95,
            "threshold": 32.0,
            "samples": 50,
            "bad": 3 if burning else 0,
            "worst_burn": 2.0 if burning else 0.0,
            "sustained_burn": 1.5 if burning else 0.0,
            "burning": burning,
            "windows": [
                {"window": 16, "samples": 16, "bad": 0,
                 "bad_fraction": 0.0, "burn_rate": 0.0},
            ],
        },
        "shards": [
            {"shard": 0, "wamp": 0.21, "fill": 0.55, "free_segments": 40,
             "queue_depth": 3, "write_stalls": 1, "stall_p99_pages": 2.5},
            {"shard": 1, "wamp": 0.19, "fill": 0.50, "free_segments": 44,
             "queue_depth": 2, "write_stalls": 0, "stall_p99_pages": 0.0},
        ],
    }


class TestFollowLines:
    def test_reads_existing_then_appended_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("one\ntwo\n")
        sleeps = []

        def sleep(delay):
            sleeps.append(delay)
            if len(sleeps) == 1:
                with open(path, "a") as fh:
                    fh.write("three\n")

        lines = list(
            follow_lines(str(path), poll_s=0.01, idle_timeout_s=0.05,
                         sleep=sleep)
        )
        assert lines == ["one", "two", "three"]

    def test_partial_line_buffered_until_newline(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("complete\npart")
        state = {"wrote": False}

        def sleep(_):
            if not state["wrote"]:
                state["wrote"] = True
                with open(path, "a") as fh:
                    fh.write("ial\n")

        lines = list(
            follow_lines(str(path), poll_s=0.01, idle_timeout_s=0.02,
                         sleep=sleep)
        )
        assert lines == ["complete", "partial"]

    def test_backoff_doubles_and_caps(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("")
        sleeps = []
        gen = follow_lines(
            str(path), poll_s=0.1, max_poll_s=0.4, idle_timeout_s=2.0,
            sleep=sleeps.append,
        )
        assert list(gen) == []
        assert sleeps[:4] == [0.1, 0.2, 0.4, 0.4]

    def test_backoff_resets_on_data(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("")
        sleeps = []

        def sleep(delay):
            sleeps.append(delay)
            if len(sleeps) == 3:
                with open(path, "a") as fh:
                    fh.write("x\n")

        assert list(
            follow_lines(str(path), poll_s=0.1, max_poll_s=5.0,
                         idle_timeout_s=1.0, sleep=sleep)
        ) == ["x"]
        # After the line arrived the delay dropped back to poll_s.
        assert sleeps[3] == 0.1
        assert sleeps[2] > sleeps[3]

    def test_truncated_file_restarts_from_top(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("old-one\nold-two\n")
        state = {"truncated": False}

        def sleep(_):
            if not state["truncated"]:
                state["truncated"] = True
                path.write_text("new\n")

        lines = list(
            follow_lines(str(path), poll_s=0.01, idle_timeout_s=0.02,
                         sleep=sleep)
        )
        assert lines == ["old-one", "old-two", "new"]

    def test_from_start_false_skips_existing(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("old\n")
        state = {"wrote": False}

        def sleep(_):
            if not state["wrote"]:
                state["wrote"] = True
                with open(path, "a") as fh:
                    fh.write("new\n")

        lines = list(
            follow_lines(str(path), from_start=False, poll_s=0.01,
                         idle_timeout_s=0.02, sleep=sleep)
        )
        assert lines == ["new"]

    def test_missing_file_waits_without_error(self, tmp_path):
        path = tmp_path / "never.jsonl"
        assert list(
            follow_lines(str(path), poll_s=0.01, idle_timeout_s=0.03,
                         sleep=lambda _: None)
        ) == []


class TestRenderTop:
    def test_frame_contains_shard_table_and_slo(self):
        frame = render_top(_telemetry_row())
        assert "repro top" in frame
        assert "SLO" in frame
        assert "ok" in frame
        assert "0.2100" in frame  # shard 0 wamp
        assert frame.count("#") > 0  # fill bar

    def test_burning_state_called_out(self):
        frame = render_top(_telemetry_row(burning=True))
        assert "BURNING" in frame

    def test_tolerates_minimal_row(self):
        frame = render_top({"type": "telemetry"})
        assert "repro top" in frame


class TestRunTop:
    def test_renders_existing_rows_and_stops_at_iterations(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        with open(path, "w") as fh:
            fh.write(json.dumps({"type": "meta", "schema": 2, "run": {}}) + "\n")
            fh.write(json.dumps(_telemetry_row(t=1.0)) + "\n")
            fh.write(json.dumps(_telemetry_row(t=2.0)) + "\n")
        out = io.StringIO()
        frames = run_top(
            str(path), iterations=2, out=out, clear=False,
            idle_timeout_s=0.05, sleep=lambda _: None,
        )
        assert frames == 2
        assert "t=2.0s" in out.getvalue()
        assert "\x1b[2J" not in out.getvalue()

    def test_clear_writes_ansi_reset(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        path.write_text(json.dumps(_telemetry_row()) + "\n")
        out = io.StringIO()
        assert run_top(
            str(path), iterations=1, out=out, clear=True,
            idle_timeout_s=0.05, sleep=lambda _: None,
        ) == 1
        assert out.getvalue().startswith("\x1b[2J\x1b[H")

    def test_non_telemetry_and_garbage_lines_skipped(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        with open(path, "w") as fh:
            fh.write("not json\n")
            fh.write(json.dumps({"type": "span", "span": "x"}) + "\n")
        out = io.StringIO()
        assert run_top(
            str(path), out=out, idle_timeout_s=0.02, sleep=lambda _: None,
        ) == 0
