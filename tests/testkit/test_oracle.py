"""The reference oracle: its own semantics, and its power to detect
planted corruption in a real store."""

import pytest

from repro.policies import make_policy
from repro.store import LogStructuredStore, StoreConfig
from repro.store.errors import PageSizeError
from repro.store.pagetable import NEVER_WRITTEN
from repro.testkit.oracle import OracleStore, recount_segments, verify_equivalence
from repro.workloads import UniformWorkload


def drive_pair(config, policy="greedy", n_ops=1500, seed=3):
    """A store and oracle fed the same uniform update stream."""
    store = LogStructuredStore(config, make_policy(policy))
    oracle = OracleStore(config)
    workload = UniformWorkload(config.user_pages, seed=seed)
    for pid in range(config.user_pages):
        store.write(pid)
        oracle.write(pid)
    for batch in workload.batches(n_ops):
        for pid in batch:
            store.write(int(pid))
            oracle.write(int(pid))
    return store, oracle


class TestOracleSemantics:
    def _config(self):
        return StoreConfig(
            n_segments=16, segment_units=4, fill_factor=0.5,
            clean_trigger=2, clean_batch=1,
        )

    def test_write_tracks_latest_version(self):
        oracle = OracleStore(self._config())
        oracle.write(1)
        oracle.write(1, 2)
        assert oracle.live == {1: 2}
        assert oracle.live_units() == 2
        assert oracle.user_writes == 2
        assert oracle.clock == 2
        assert oracle.write_counts[1] == 2

    def test_trim_removes_and_reports(self):
        oracle = OracleStore(self._config())
        oracle.write(1)
        assert oracle.trim(1) is True
        assert oracle.trim(1) is False  # already gone
        assert oracle.trim(99) is False  # never written
        assert oracle.live_pages() == set()
        assert oracle.trims == 1

    def test_rejects_invalid_sizes_like_the_real_store(self):
        oracle = OracleStore(self._config())
        with pytest.raises(PageSizeError):
            oracle.write(1, 0)
        with pytest.raises(PageSizeError):
            oracle.write(1, self._config().segment_units + 1)

    def test_unit_sized_is_sticky(self):
        oracle = OracleStore(self._config())
        oracle.write(1)
        assert oracle.unit_sized()
        oracle.write(2, 2)
        assert not oracle.unit_sized()
        oracle.write(2, 1)  # rewriting at size 1 does not un-see it
        assert not oracle.unit_sized()


class TestVerifyEquivalence:
    def test_real_store_is_equivalent(self, tiny_config):
        store, oracle = drive_pair(tiny_config)
        assert verify_equivalence(store, oracle) == []

    def test_recount_matches_incremental_counters(self, tiny_config):
        store, _ = drive_pair(tiny_config)
        segs = store.segments
        for seg, (count, units) in enumerate(recount_segments(store)):
            assert segs.live_count[seg] == count
            assert segs.live_units[seg] == units

    def test_detects_clock_skew(self, tiny_config):
        store, oracle = drive_pair(tiny_config)
        store.clock += 1
        problems = verify_equivalence(store, oracle)
        assert any("clock" in p for p in problems)

    def test_detects_lost_page(self, tiny_config):
        store, oracle = drive_pair(tiny_config)
        victim = min(oracle.live_pages())
        store.pages.seg[victim] = NEVER_WRITTEN
        problems = verify_equivalence(store, oracle)
        assert any("live page set differs" in p for p in problems)

    def test_detects_occupancy_miscount(self, tiny_config):
        store, oracle = drive_pair(tiny_config)
        seg = max(range(len(store.segments.live_count)),
                  key=lambda s: store.segments.live_count[s])
        store.segments.live_count[seg] += 1
        problems = verify_equivalence(store, oracle)
        assert any("segment %d occupancy" % seg in p for p in problems)

    def test_detects_gc_counter_corruption(self, tiny_config):
        store, oracle = drive_pair(tiny_config)
        store.stats.gc_writes += 7
        problems = verify_equivalence(store, oracle)
        assert any("emptiness identity" in p for p in problems)
        assert any("append-flow conservation" in p for p in problems)

    def test_counter_identities_skipped_for_multiunit_pages(self, tiny_config):
        """With variable-size pages sealed segments need not be full, so
        only the unit-size identities are suppressed — structural checks
        still run."""
        store = LogStructuredStore(tiny_config, make_policy("greedy"))
        oracle = OracleStore(tiny_config)
        for pid in range(tiny_config.user_pages // 2):
            store.write(pid, 2)
            oracle.write(pid, 2)
        assert not oracle.unit_sized()
        assert verify_equivalence(store, oracle) == []
