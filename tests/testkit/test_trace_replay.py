"""Trace record / replay: roundtrip fidelity, byte-identical digests,
format robustness, and the ``repro replay`` CLI."""

import json

import pytest

from repro.cli import main
from repro.testkit.differential import default_diff_config
from repro.testkit.trace import OpTrace, TraceError, state_digest
from repro.workloads import ZipfianWorkload


def recorded_run(n_ops=800, policy="greedy", seed=5):
    """Record a small mixed write/trim run; returns (trace, digest)."""
    config = default_diff_config()
    trace = OpTrace(config, policy)
    store = trace.build_store()
    workload = ZipfianWorkload(config.user_pages, seed=seed)
    for pid in range(config.user_pages):
        trace.record_write(pid)
    done = 0
    for batch in workload.batches(n_ops):
        for pid in batch:
            if done % 97 == 13:
                trace.record_trim(int(pid))
            else:
                trace.record_write(int(pid))
            done += 1
    store = trace.replay(store, upto=None)
    return trace, state_digest(store)


class TestRoundtrip:
    def test_replay_is_byte_identical(self):
        trace, digest = recorded_run()
        assert state_digest(trace.replay()) == digest
        assert state_digest(trace.replay()) == digest  # and again

    def test_save_load_preserves_everything(self, tmp_path):
        trace, digest = recorded_run()
        path = trace.save(tmp_path / "t.jsonl", end={"digest": digest})
        loaded, end = OpTrace.load(path)
        assert loaded.ops == trace.ops
        assert loaded.policy == trace.policy
        assert loaded.config == trace.config
        assert end["digest"] == digest
        assert end["ops"] == len(trace)
        assert state_digest(loaded.replay()) == digest

    def test_frequencies_roundtrip(self, tmp_path):
        config = default_diff_config()
        freqs = [float(i + 1) for i in range(config.user_pages)]
        trace = OpTrace(config, "greedy", freqs)
        trace.record_write(0)
        path = trace.save(tmp_path / "t.jsonl")
        loaded, _ = OpTrace.load(path)
        assert loaded.frequencies == freqs

    def test_partial_replay_with_upto(self):
        trace, _ = recorded_run(n_ops=200)
        store = trace.replay(upto=50)
        assert store.stats.user_writes + store.stats.trims == 50

    def test_subset_keeps_header(self):
        trace, _ = recorded_run(n_ops=100)
        sub = trace.subset(trace.ops[:10])
        assert len(sub) == 10
        assert sub.config == trace.config
        assert sub.policy == trace.policy
        assert trace.ops[:10] == sub.ops  # original untouched
        sub.replay()  # and it runs


class TestFormatRobustness:
    def test_truncated_trace_loads_without_end(self, tmp_path):
        trace, _ = recorded_run(n_ops=100)
        path = trace.save(tmp_path / "t.jsonl")
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")  # drop the footer
        loaded, end = OpTrace.load(path)
        assert end == {}
        assert len(loaded.ops) == len(trace.ops)

    def test_corrupt_line_raises(self, tmp_path):
        trace, _ = recorded_run(n_ops=50)
        path = trace.save(tmp_path / "t.jsonl")
        raw = path.read_text().splitlines()
        raw[3] = raw[3][: len(raw[3]) // 2]
        path.write_text("\n".join(raw) + "\n")
        with pytest.raises(TraceError, match="corrupt trace line"):
            OpTrace.load(path)

    def test_op_before_header_raises(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('["w", 1]\n')
        with pytest.raises(TraceError, match="op before trace header"):
            OpTrace.load(path)

    def test_missing_header_raises(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"kind": "end", "ops": 0}\n')
        with pytest.raises(TraceError, match="no trace header"):
            OpTrace.load(path)

    def test_op_count_mismatch_raises(self, tmp_path):
        trace, _ = recorded_run(n_ops=50)
        path = trace.save(tmp_path / "t.jsonl")
        lines = path.read_text().splitlines()
        footer = json.loads(lines[-1])
        footer["ops"] += 1
        lines[-1] = json.dumps(footer)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceError, match="end record says"):
            OpTrace.load(path)

    def test_unknown_op_kind_raises(self):
        trace, _ = recorded_run(n_ops=10)
        store = trace.build_store()
        with pytest.raises(TraceError, match="unknown op kind"):
            OpTrace.apply(store, ("x", 1))

    def test_unsupported_version_raises(self, tmp_path):
        trace, _ = recorded_run(n_ops=10)
        path = trace.save(tmp_path / "t.jsonl")
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["version"] = 99
        lines[0] = json.dumps(header)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceError, match="unsupported trace version"):
            OpTrace.load(path)


class TestReplayCLI:
    def test_replay_verifies_matching_digest(self, tmp_path, capsys):
        trace, digest = recorded_run(n_ops=300)
        path = trace.save(tmp_path / "t.jsonl", end={"digest": digest})
        assert main(["replay", str(path)]) == 0
        out = capsys.readouterr().out
        assert "byte-identical" in out

    def test_replay_fails_on_digest_mismatch(self, tmp_path, capsys):
        trace, _ = recorded_run(n_ops=300)
        path = trace.save(tmp_path / "t.jsonl", end={"digest": "0" * 64})
        assert main(["replay", str(path)]) == 1
        assert "mismatch" in capsys.readouterr().err.lower()

    def test_replay_without_recorded_digest_still_reports(
        self, tmp_path, capsys
    ):
        trace, _ = recorded_run(n_ops=100)
        path = trace.save(tmp_path / "t.jsonl")
        assert main(["replay", str(path)]) == 0
        assert "digest" in capsys.readouterr().out
