"""Deterministic fault injection: the failpoint registry itself, plus
its wiring into persistence and the sweep manifest."""

import json

import pytest

from repro.sweep.manifest import Manifest
from repro.testkit.failpoints import FAILPOINTS, InjectedFault, failpoint


class TestRegistry:
    def test_unarmed_failpoint_is_a_no_op(self):
        failpoint("nothing.armed.here", detail=1)  # must not raise

    def test_armed_failpoint_raises(self):
        with FAILPOINTS.armed("a.b"):
            with pytest.raises(InjectedFault) as exc_info:
                failpoint("a.b")
        assert exc_info.value.name == "a.b"

    def test_disarmed_after_context_exit(self):
        with FAILPOINTS.armed("a.b"):
            pass
        failpoint("a.b")  # no longer armed
        assert not FAILPOINTS.active

    def test_other_names_unaffected(self):
        with FAILPOINTS.armed("a.b"):
            failpoint("a.c")  # different name, passes

    def test_times_limits_firing(self):
        with FAILPOINTS.armed("a.b", times=2) as arm:
            for _ in range(2):
                with pytest.raises(InjectedFault):
                    failpoint("a.b")
            failpoint("a.b")  # third hit passes
        assert arm.fired == 2

    def test_skip_delays_firing(self):
        with FAILPOINTS.armed("a.b", skip=2) as arm:
            failpoint("a.b")
            failpoint("a.b")
            with pytest.raises(InjectedFault):
                failpoint("a.b")
        assert arm.fired == 1

    def test_custom_exception(self):
        class Boom(RuntimeError):
            pass

        with FAILPOINTS.armed("a.b", exc=Boom("bang")):
            with pytest.raises(Boom):
                failpoint("a.b")

    def test_hook_receives_context(self):
        seen = []
        with FAILPOINTS.armed("a.b", hook=lambda ctx: seen.append(ctx)):
            failpoint("a.b", value=42)
        assert seen == [{"value": 42}]

    def test_probabilistic_arm_is_seed_deterministic(self):
        def fired_pattern(seed):
            fired = []
            with FAILPOINTS.armed("a.b", prob=0.5, seed=seed, times=None):
                for _ in range(20):
                    try:
                        failpoint("a.b")
                        fired.append(False)
                    except InjectedFault:
                        fired.append(True)
            return fired

        assert fired_pattern(7) == fired_pattern(7)
        assert any(fired_pattern(7))
        assert not all(fired_pattern(7))

    def test_tracing_counts_without_injecting(self):
        with FAILPOINTS.tracing():
            failpoint("x.y")
            failpoint("x.y")
            failpoint("x.z")
        assert FAILPOINTS.count("x.y") == 2
        assert "x.z" in FAILPOINTS.names_hit()

    def test_clear_resets_everything(self):
        FAILPOINTS.arm("a.b")
        with FAILPOINTS.tracing():
            failpoint("a.c")
        FAILPOINTS.clear()
        assert not FAILPOINTS.active
        assert FAILPOINTS.count("a.c") == 0
        failpoint("a.b")  # disarmed

    def test_bad_arguments_rejected(self):
        with pytest.raises(ValueError):
            FAILPOINTS.arm("a", times=0)
        with pytest.raises(ValueError):
            FAILPOINTS.arm("a", skip=-1)
        with pytest.raises(ValueError):
            FAILPOINTS.arm("a", prob=1.5)
        FAILPOINTS.clear()


class TestManifestFailpoints:
    """Crash-at-any-point coverage of the sweep journal."""

    def _record(self, manifest, digest="d1"):
        manifest.record(
            digest=digest, label="job", result={"x": 1}, elapsed=0.5, attempts=1
        )

    def test_crash_before_append_loses_the_record_only(self, tmp_path):
        with Manifest(tmp_path / "m.jsonl") as m:
            self._record(m, "d1")
            with FAILPOINTS.armed("sweep.manifest.pre_append"):
                with pytest.raises(InjectedFault):
                    self._record(m, "d2")
        reread = Manifest(tmp_path / "m.jsonl")
        assert set(reread.load()) == {"d1"}

    def test_crash_between_write_and_fsync_still_parses(self, tmp_path):
        """The line is in the OS buffer; a parse after the crash sees a
        complete record (fsync affects durability, not file content)."""
        with Manifest(tmp_path / "m.jsonl") as m:
            with FAILPOINTS.armed("sweep.manifest.pre_fsync"):
                with pytest.raises(InjectedFault):
                    self._record(m, "d1")
        reread = Manifest(tmp_path / "m.jsonl")
        assert set(reread.load()) == {"d1"}

    def test_torn_final_line_is_dropped_on_load(self, tmp_path):
        """Simulate a kill mid-write: the torn_write hook emits a prefix
        of the record and then injects the crash."""

        def tear(ctx):
            ctx["fh"].write(ctx["line"][: len(ctx["line"]) // 2])
            ctx["fh"].flush()
            raise InjectedFault("sweep.manifest.torn_write")

        with Manifest(tmp_path / "m.jsonl") as m:
            self._record(m, "d1")
            with FAILPOINTS.armed("sweep.manifest.torn_write", hook=tear):
                with pytest.raises(InjectedFault):
                    self._record(m, "d2")
        reread = Manifest(tmp_path / "m.jsonl")
        assert set(reread.load()) == {"d1"}

    def test_resumed_manifest_can_append_after_torn_tail(self, tmp_path):
        """Appending after a torn tail must truncate the partial line
        first; otherwise the new record is glued onto it and every later
        load rejects the file as corrupt mid-file content."""
        path = tmp_path / "m.jsonl"
        with Manifest(path) as m:
            self._record(m, "d1")
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "job", "digest": "d2", "resu')  # torn
        with Manifest(path) as m:
            assert set(m.load()) == {"d1"}
            self._record(m, "d3")
        # Every line parses again: the torn tail is gone, not buried.
        for line in path.read_text().splitlines():
            json.loads(line)
        reread = Manifest(path)
        assert set(reread.load()) == {"d1", "d3"}
