"""The differential harness: the acceptance grid (every registered
policy family x every workload family), determinism, and the full
divergence pipeline exercised with a deliberately broken store."""

import pytest

from repro.policies import DIFFERENTIAL_POLICIES
from repro.store.log_store import LogStructuredStore
from repro.testkit import differential, trace as trace_mod
from repro.testkit.differential import (
    DEFAULT_WORKLOADS,
    DivergenceError,
    make_diff_workload,
    run_differential,
    run_differential_grid,
)
from repro.testkit.trace import OpTrace

GRID = [
    (policy, workload)
    for policy in DIFFERENTIAL_POLICIES
    for workload in DEFAULT_WORKLOADS
]


class TestAcceptanceGrid:
    """ISSUE acceptance: all five policies x three workloads, >= 10k ops
    each, with a trim mix."""

    @pytest.mark.parametrize("policy,workload", GRID)
    def test_policy_workload_pair(self, policy, workload):
        outcome = run_differential(
            policy,
            workload,
            n_ops=10_000,
            checkpoint_every=1_000,
            trim_prob=0.02,
            seed=11,
        )
        assert outcome.n_ops >= 10_000
        assert outcome.checkpoints >= 10
        assert outcome.wamp > 0.0

    def test_grid_runner_covers_all_pairs(self):
        outcomes = run_differential_grid(n_ops=600, checkpoint_every=300)
        assert len(outcomes) == len(GRID)
        assert {o.policy for o in outcomes} == set(DIFFERENTIAL_POLICIES)
        assert len({o.workload for o in outcomes}) == len(DEFAULT_WORKLOADS)

    def test_runs_are_digest_deterministic(self):
        first = run_differential("mdc", "zipfian", n_ops=2_000, trim_prob=0.05, seed=9)
        second = run_differential("mdc", "zipfian", n_ops=2_000, trim_prob=0.05, seed=9)
        assert first.digest == second.digest
        assert first.wamp == second.wamp

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown differential workload"):
            make_diff_workload("bogus", 100, 0)


class _GcDoubleCountStore(LogStructuredStore):
    """A store with a planted accounting bug: every cleaning cycle
    counts one extra gc write (the classic off-by-one an incremental
    counter refactor can introduce)."""

    def clean(self, n_victims=None):
        reclaimed = super().clean(n_victims)
        self.stats.gc_writes += 1
        return reclaimed


class TestDivergencePipeline:
    @pytest.fixture
    def broken_store(self, monkeypatch):
        """Route both the harness and trace replay through the buggy
        store, so minimization reproduces the bug too."""
        monkeypatch.setattr(differential, "LogStructuredStore", _GcDoubleCountStore)
        monkeypatch.setattr(
            trace_mod.OpTrace,
            "build_store",
            lambda self: _build_buggy(self),
        )

    def test_bug_is_caught_minimized_and_saved(self, broken_store, tmp_path):
        with pytest.raises(DivergenceError) as exc_info:
            run_differential(
                "greedy",
                "uniform",
                n_ops=4_000,
                checkpoint_every=500,
                seed=2,
                divergence_dir=tmp_path,
            )
        err = exc_info.value
        assert err.policy == "greedy"
        assert any("emptiness identity" in p for p in err.problems)
        assert err.trace_path is not None and err.trace_path.exists()
        assert "repro replay" in str(err)

        loaded, end = OpTrace.load(err.trace_path)
        assert end["divergence"] == err.problems
        # Minimization shrank the stream: the recorded prefix at the
        # first failing checkpoint is much longer than the repro.
        assert 0 < len(loaded.ops) < err.at_op
        # And the saved trace still reproduces under the buggy store.
        store = loaded.replay()
        from repro.testkit.oracle import OracleStore, verify_equivalence

        oracle = OracleStore(loaded.config)
        for op in loaded.ops:
            if op[0] == "w":
                oracle.write(op[1], op[2] if len(op) > 2 else 1)
            else:
                oracle.trim(op[1])
        assert verify_equivalence(store, oracle)

    def test_divergence_without_dir_saves_nothing(self, broken_store):
        with pytest.raises(DivergenceError) as exc_info:
            run_differential(
                "greedy", "uniform", n_ops=4_000, checkpoint_every=500,
                seed=2, minimize=False,
            )
        assert exc_info.value.trace_path is None


def _build_buggy(trace):
    from repro.policies import make_policy

    store = _GcDoubleCountStore(trace.config, make_policy(trace.policy))
    if trace.frequencies is not None:
        store.set_oracle_frequencies(trace.frequencies)
    return store
