"""Property-based tests of the statistics layer.

Two families of properties:

* **algebraic** — snapshot deltas form a group: windows compose
  associatively (``window(a→b) + window(b→c) == window(a→c)``
  componentwise), so the paper's warm-up-exclusion procedure is
  well-defined no matter where the warm-up boundary lands;
* **physical** — counters produced by a real store satisfy the exact
  unit-size form of Equation 2, ``gc_writes = B * (segments_cleaned -
  cleaned_emptiness_sum)``, cumulatively and over every window.
"""

import dataclasses

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.policies import make_policy
from repro.store import LogStructuredStore, StoreConfig
from repro.store.stats import StatsSnapshot

FIELDS = [f.name for f in dataclasses.fields(StatsSnapshot)]

counters = st.integers(min_value=0, max_value=10**9)
snapshots = st.builds(
    StatsSnapshot,
    user_writes=counters,
    user_device_writes=counters,
    gc_writes=counters,
    trims=counters,
    segments_cleaned=counters,
    cleaned_emptiness_sum=st.floats(
        min_value=0.0, max_value=1e6, allow_nan=False
    ),
    clean_cycles=counters,
)


class TestDeltaAlgebra:
    @given(a=snapshots, b=snapshots, c=snapshots)
    @settings(max_examples=200)
    def test_windows_compose_componentwise(self, a, b, c):
        ab, bc, ac = b.delta(a), c.delta(b), c.delta(a)
        for field in FIELDS:
            combined = getattr(ab, field) + getattr(bc, field)
            whole = getattr(ac, field)
            if isinstance(whole, float):
                assert abs(combined - whole) < 1e-6 * max(1.0, abs(whole))
            else:
                assert combined == whole

    @given(a=snapshots)
    @settings(max_examples=50)
    def test_empty_window_is_zero(self, a):
        window = a.delta(a)
        assert all(getattr(window, field) == 0 for field in FIELDS)
        assert window.write_amplification == 0.0
        assert window.device_write_amplification == 0.0
        assert window.mean_cleaned_emptiness == 0.0
        assert window.cost_per_segment == float("inf")


def driven_store(writes):
    cfg = StoreConfig(
        n_segments=24, segment_units=6, fill_factor=0.55,
        clean_trigger=2, clean_batch=2,
    )
    store = LogStructuredStore(cfg, make_policy("greedy"))
    store.load_sequential(cfg.user_pages)
    snaps = [store.stats.snapshot()]
    for i, pid in enumerate(writes):
        store.write(pid % cfg.user_pages)
        if i % 50 == 49:
            snaps.append(store.stats.snapshot())
    snaps.append(store.stats.snapshot())
    return store, snaps


write_sequences = st.lists(
    st.integers(min_value=0, max_value=10**6), min_size=1, max_size=400
)


class TestEquationTwoIdentity:
    @given(writes=write_sequences)
    @settings(max_examples=40, deadline=None)
    def test_emptiness_identity_cumulative(self, writes):
        store, _ = driven_store(writes)
        stats = store.stats
        capacity = store.segments.capacity
        expected = capacity * (
            stats.segments_cleaned - stats.cleaned_emptiness_sum
        )
        assert abs(stats.gc_writes - expected) < 1e-6 * max(1.0, expected)

    @given(writes=write_sequences)
    @settings(max_examples=40, deadline=None)
    def test_emptiness_identity_holds_in_every_window(self, writes):
        """The identity is linear in the counters, so it must also hold
        over any snapshot-to-snapshot window — this is what lets the
        bench runner exclude warm-up and still use Equation 2."""
        store, snaps = driven_store(writes)
        capacity = store.segments.capacity
        for earlier, later in zip(snaps, snaps[1:]):
            window = later.delta(earlier)
            expected = capacity * (
                window.segments_cleaned - window.cleaned_emptiness_sum
            )
            assert abs(window.gc_writes - expected) < 1e-6 * max(1.0, abs(expected))

    @given(writes=write_sequences)
    @settings(max_examples=40, deadline=None)
    def test_windowed_wamp_matches_equation_two_form(self, writes):
        """device Wamp over a window equals (1-E)/E computed from that
        window's *flow-weighted* emptiness: with the identity above,
        gc/user_device = (1-E)/E exactly when user_device appends equal
        B*cleaned*E over the window (steady state).  Here we assert the
        weaker exact consequence: gc = B*cleaned*(1-E) with E the
        window's mean cleaned emptiness."""
        store, snaps = driven_store(writes)
        capacity = store.segments.capacity
        window = snaps[-1].delta(snaps[0])
        if window.segments_cleaned == 0:
            return
        e = window.mean_cleaned_emptiness
        assert 0.0 <= e <= 1.0
        expected_gc = capacity * window.segments_cleaned * (1.0 - e)
        assert abs(window.gc_writes - expected_gc) < 1e-6 * max(1.0, expected_gc)
