"""Model-based file-system tests: arbitrary operation sequences against
an in-memory byte-array model."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.lfs import LogStructuredFileSystem
from repro.store import StoreConfig

FILES = ["/f0", "/f1", "/f2"]

ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("write"),
            st.sampled_from(FILES),
            st.integers(min_value=0, max_value=200),
            st.binary(min_size=1, max_size=120),
        ),
        st.tuples(
            st.just("truncate"),
            st.sampled_from(FILES),
            st.integers(min_value=0, max_value=250),
            st.just(b""),
        ),
        st.tuples(st.just("unlink"), st.sampled_from(FILES), st.just(0), st.just(b"")),
    ),
    min_size=1,
    max_size=60,
)


def fresh_fs():
    return LogStructuredFileSystem(
        StoreConfig(
            n_segments=48, segment_units=16, fill_factor=0.6,
            clean_trigger=2, clean_batch=2,
        ),
        policy="greedy",
        block_bytes=32,
    )


def apply(fs, model, op, path, offset, data):
    if op == "write":
        if path not in model:
            fs.create(path)
            model[path] = bytearray()
        fs.write(path, offset, data)
        buf = model[path]
        if len(buf) < offset:
            buf.extend(b"\0" * (offset - len(buf)))
        buf[offset:offset + len(data)] = data
    elif op == "truncate":
        if path in model:
            fs.truncate(path, offset)
            buf = model[path]
            if offset <= len(buf):
                del buf[offset:]
            else:
                buf.extend(b"\0" * (offset - len(buf)))
    else:  # unlink
        if path in model:
            fs.unlink(path)
            del model[path]


@given(sequence=ops)
@settings(max_examples=60, deadline=None)
def test_fs_agrees_with_byte_model(sequence):
    fs = fresh_fs()
    model = {}
    for op, path, offset, data in sequence:
        apply(fs, model, op, path, offset, data)
    for path, expected in model.items():
        assert fs.read(path) == bytes(expected), path
        assert fs.stat(path)["size"] == len(expected)
    for path in FILES:
        assert fs.exists(path) == (path in model)
    fs.check_consistency()


@given(sequence=ops)
@settings(max_examples=30, deadline=None)
def test_fs_space_never_leaks(sequence):
    fs = fresh_fs()
    model = {}
    for op, path, offset, data in sequence:
        apply(fs, model, op, path, offset, data)
    # Unlink everything: all blocks must come back.
    for path in list(model):
        fs.unlink(path)
    assert fs.df()["used_blocks"] == 0
