"""Property-based tests of the closed-form analysis."""

import math

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.analysis import (
    cost_per_segment,
    emptiness_fixpoint,
    emptiness_from_wamp,
    hotcold,
    lemma,
    write_amplification,
)

fills = st.floats(min_value=0.05, max_value=0.985)


@given(f=fills)
@settings(max_examples=100)
def test_fixpoint_is_a_root_of_equation_4(f):
    e = emptiness_fixpoint(f)
    assert abs(e - (1.0 - math.exp(-e / f))) < 1e-8


@given(f=fills)
def test_emptiness_beats_average_slack(f):
    """Table 1's R >= 1: age-based cleaning always finds at least the
    device-average empty space, 1 - F."""
    e = emptiness_fixpoint(f)
    assert e >= (1.0 - f) - 1e-9


@given(e=st.floats(min_value=1e-6, max_value=1.0))
def test_cost_wamp_consistency(e):
    # Cost = reads + gc writes + 1 and Wamp is the gc-write term.
    total = cost_per_segment(e)
    parts = (1.0 / e) + write_amplification(e) + 1.0
    assert abs(total - parts) <= 1e-9 * total


@given(w=st.floats(min_value=0.0, max_value=1e6))
def test_wamp_inversion_roundtrip(w):
    assert abs(write_amplification(emptiness_from_wamp(w)) - w) < 1e-6 * max(1.0, w)


@given(
    f=st.floats(min_value=0.3, max_value=0.95),
    m=st.integers(min_value=51, max_value=99),
)
@settings(max_examples=50, deadline=None)
def test_separation_never_hurts(f, m):
    """Section 3's headline: managing hot and cold separately (with the
    optimal slack split) costs no more than unseparated uniform."""
    updates, dists = hotcold.hotcold_parameters(m)
    g = hotcold.optimal_slack_split(f, updates, dists)
    separated = hotcold.total_cost(f, updates, dists, (g, 1.0 - g))
    uniform = 2.0 / emptiness_fixpoint(f)
    assert separated <= uniform * (1.0 + 1e-6)


@given(
    f=st.floats(min_value=0.3, max_value=0.95),
    m=st.integers(min_value=51, max_value=99),
    g=st.floats(min_value=0.05, max_value=0.95),
)
@settings(max_examples=50, deadline=None)
def test_optimal_split_is_optimal(f, m, g):
    updates, dists = hotcold.hotcold_parameters(m)
    g_opt = hotcold.optimal_slack_split(f, updates, dists)
    best = hotcold.total_cost(f, updates, dists, (g_opt, 1.0 - g_opt))
    other = hotcold.total_cost(f, updates, dists, (g, 1.0 - g))
    assert best <= other * (1.0 + 1e-4)


positive_arrays = st.lists(
    st.floats(min_value=0.01, max_value=100.0), min_size=2, max_size=8
)


@given(x=positive_arrays, y=positive_arrays)
@settings(max_examples=100)
def test_maximality_lemma(x, y):
    """Appendix A: the same-order pairing dominates any permutation
    (tested against random permutations drawn from the inputs)."""
    n = min(len(x), len(y))
    x, y = np.array(x[:n]), np.array(y[:n])
    best = lemma.max_paired_sum(x, y)
    rng = np.random.default_rng(int(abs(x[0] * 1000)) % 2**31)
    for _ in range(10):
        perm = rng.permutation(n)
        assert lemma.paired_sum(x, y[perm]) <= best + 1e-9 * abs(best)
