"""Property-based tests of preemptible cleaning.

Hypothesis drives arbitrary interleavings of foreground writes, trims,
and bounded cleaner steps — any preemption schedule the governance
layer could ever produce, plus plenty it never would.  Whatever the
schedule:

* the store must agree with a trivial dict model about which pages are
  live (no page lost, none resurrected, none duplicated as live);
* every sealed segment a cycle claimed must end fully accounted — the
  staged set either relocated or skip-credited, never half-relocated
  and forgotten;
* resuming a cursor is idempotent: zero-budget steps and repeated
  drains change nothing.
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.policies import make_policy
from repro.store import (
    IN_RELOCATION,
    IncrementalCleaner,
    LogStructuredStore,
    StoreConfig,
)
from repro.store.errors import OutOfSpaceError

N_PAGES_MAX = 78  # user_pages - 1 at this geometry


def build_store():
    cfg = StoreConfig(
        n_segments=24,
        segment_units=6,
        fill_factor=0.55,
        clean_trigger=2,
        clean_batch=2,
    )
    return LogStructuredStore(cfg, make_policy("greedy"))


# One schedule element: a foreground op or a bounded cleaner action.
ops = st.one_of(
    st.tuples(st.just("write"), st.integers(0, N_PAGES_MAX)),
    st.tuples(st.just("trim"), st.integers(0, N_PAGES_MAX)),
    st.tuples(st.just("step"), st.integers(1, 5)),
    st.tuples(st.just("begin"), st.just(0)),
    st.tuples(st.just("drain"), st.just(0)),
)

schedules = st.lists(ops, min_size=1, max_size=300)


def apply_schedule(store, schedule):
    """Drive ``store`` through ``schedule``; returns the dict model."""
    model = {}
    for kind, arg in schedule:
        if kind == "write":
            store.write(arg)
            model[arg] = True
        elif kind == "trim":
            store.trim(arg)
            model.pop(arg, None)
        elif kind == "step":
            store.clean_step(arg)
        elif kind == "begin":
            if (
                store.clean_cursor is None
                and store.sealed_segments().size > 0
                and store.free_segment_count > 0
            ):
                try:
                    store.clean_begin()
                except OutOfSpaceError:
                    # Every sealed segment may be fully live (nothing
                    # reclaimable); the engine treats that begin as a
                    # no-op, and so does any schedule it could produce.
                    pass
        else:  # drain
            store.clean_step(None)
    return model


@given(schedule=schedules)
@settings(
    max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
def test_no_schedule_loses_or_duplicates_pages(schedule):
    store = build_store()
    model = apply_schedule(store, schedule)
    # Close the books before comparing: drain any mid-flight cycle.
    store.clean_step(None)
    store.check_invariants()
    pages = store.pages
    live = {
        pid
        for pid in range(len(pages.seg))
        if pages.seg[pid] != -1  # NEVER_WRITTEN
    }
    assert live == set(model)
    # check_invariants already asserts each live page occupies exactly
    # one live slot — together with the set equality that rules out
    # both loss and duplication.


@given(schedule=schedules)
@settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
def test_invariants_hold_at_every_preemption_point(schedule):
    store = build_store()
    for kind, arg in schedule:
        apply_schedule(store, [(kind, arg)])
        if kind in ("step", "begin", "drain"):
            store.check_invariants()
    store.clean_step(None)
    store.check_invariants()


@given(schedule=schedules, budgets=st.lists(st.integers(0, 4), max_size=8))
@settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
def test_cursor_resume_is_idempotent(schedule, budgets):
    """Zero-budget steps never mutate; equal budgets resume where the
    last step stopped (no staged page processed twice)."""
    store = build_store()
    apply_schedule(store, schedule)
    if store.clean_cursor is None:
        if store.sealed_segments().size == 0 or store.free_segment_count == 0:
            return
        try:
            store.clean_begin()
        except OutOfSpaceError:
            return  # nothing reclaimable in any sealed segment
    for budget in budgets:
        cur = store.clean_cursor
        if cur is None:
            break
        pos_before = cur.pos
        pending_before = store.clean_pending
        moved = store.clean_step(budget)
        if budget == 0:
            assert moved == 0
            assert store.clean_pending == pending_before
            assert cur.pos == pos_before
        else:
            assert moved <= budget
            if store.clean_cursor is not None:
                assert cur.pos >= pos_before
    store.clean_step(None)
    store.check_invariants()


@given(schedule=schedules)
@settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
def test_sealed_segments_never_half_relocated(schedule):
    """After a drain, no page anywhere still carries the staging
    sentinel, and the cycle's counters account for every staged page as
    either relocated or skip-credited."""
    store = build_store()
    apply_schedule(store, schedule)
    cur = store.clean_cursor
    if cur is not None:
        staged_total = int(cur.pending.size)
        store.clean_step(None)
        assert cur.relocated + cur.skipped == staged_total
    assert not (store.pages.seg == IN_RELOCATION).any()
    store.check_invariants()


@given(
    writes=st.lists(st.integers(0, N_PAGES_MAX), min_size=50, max_size=400),
    pages_per_step=st.integers(1, 7),
    period=st.integers(1, 9),
)
@settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
def test_engine_driven_interleave_matches_model(writes, pages_per_step, period):
    """The IncrementalCleaner engine (the layer governance drives) under
    arbitrary step cadence preserves the live set too."""
    store = build_store()
    cleaner = IncrementalCleaner(store, pages_per_step=pages_per_step)
    model = {}
    for i, pid in enumerate(writes):
        store.write(pid)
        model[pid] = True
        if i % period == 0:
            cleaner.step()
    while store.clean_cursor is not None:
        cleaner.drain()
    store.check_invariants()
    pages = store.pages
    live = {pid for pid in range(len(pages.seg)) if pages.seg[pid] != -1}
    assert live == set(model)
