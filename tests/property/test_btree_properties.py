"""Property-based B+-tree tests: arbitrary operation sequences against a
plain dict model."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.btree import BPlusTree, BufferPool

keys = st.integers(min_value=0, max_value=300)

operations = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), keys, st.integers()),
        st.tuples(st.just("upsert"), keys, st.integers()),
        st.tuples(st.just("update"), keys, st.integers()),
        st.tuples(st.just("delete"), keys, st.just(0)),
    ),
    min_size=1,
    max_size=250,
)


def apply_ops(ops, pool_pages=6):
    """Tiny pool so evictions churn constantly."""
    pool = BufferPool(pool_pages)
    tree = BPlusTree(pool, key_bytes=16, value_bytes=256)
    model = {}
    for op, key, value in ops:
        if op == "insert":
            did = tree.insert(key, value)
            assert did == (key not in model)
            if did:
                model[key] = value
        elif op == "upsert":
            tree.upsert(key, value)
            model[key] = value
        elif op == "update":
            did = tree.update(key, value)
            assert did == (key in model)
            if did:
                model[key] = value
        else:
            did = tree.delete(key)
            assert did == (key in model)
            model.pop(key, None)
    return tree, model


@given(ops=operations)
@settings(max_examples=60, deadline=None)
def test_tree_agrees_with_dict_model(ops):
    tree, model = apply_ops(ops)
    assert len(tree) == len(model)
    for key, value in model.items():
        assert tree.search(key) == value
    # And nothing extra exists.
    found = dict(tree.scan(0, 10_000))
    assert found == model


@given(ops=operations)
@settings(max_examples=40, deadline=None)
def test_structure_invariants_hold(ops):
    tree, _ = apply_ops(ops)
    tree.check_structure()


@given(ops=operations, low=keys, high=keys)
@settings(max_examples=40, deadline=None)
def test_range_scans_match_model(ops, low, high):
    if low > high:
        low, high = high, low
    tree, model = apply_ops(ops)
    expected = sorted(
        (k, v) for k, v in model.items() if low <= k < high
    )
    assert list(tree.scan(low, high)) == expected
