"""Property-based tests of the span-tree invariants.

A random *program* — a sequence of push/pop/leaf operations — is
interpreted against a Tracer, and the resulting span set must satisfy:

* parent wall intervals contain their children's;
* span and trace IDs are deterministic across two identical seeded
  interpretations (timestamps differ, identity does not);
* head sampling never orphans a span: a retained child's parent is
  always retained (the keep/drop decision is made at the trace root
  and inherited);
* the JSONL exporter round-trips byte-identically.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.obs.trace import Tracer, load_spans, write_spans

# A program is a list of ops: "push" opens a nested span, "pop" closes
# the innermost open one, "leaf" opens and immediately closes one.
programs = st.lists(
    st.sampled_from(["push", "pop", "leaf"]), min_size=1, max_size=40
)


def run_program(program, seed=0, sample=1.0):
    """Interpret ops against a fresh tracer; all spans get closed."""
    tracer = Tracer(seed=seed, sample=sample)
    open_spans = []
    for i, op in enumerate(program):
        if op == "push":
            open_spans.append(tracer.start("s%d" % i))
        elif op == "pop" and open_spans:
            tracer.finish(open_spans.pop())
        elif op == "leaf":
            tracer.finish(tracer.start("leaf%d" % i))
    while open_spans:
        tracer.finish(open_spans.pop())
    return tracer


class TestSpanTreeInvariants:
    @given(program=programs)
    @settings(max_examples=60, deadline=None)
    def test_parent_interval_contains_child(self, program):
        tracer = run_program(program)
        spans = {s.span_id: s for s in tracer.collector.spans()}
        for span in spans.values():
            if span.parent_id is None:
                continue
            parent = spans[span.parent_id]
            assert parent.start_s <= span.start_s
            assert span.end_s <= parent.end_s

    @given(program=programs, seed=st.integers(min_value=0, max_value=999))
    @settings(max_examples=60, deadline=None)
    def test_ids_deterministic_across_identical_runs(self, program, seed):
        def identity(tracer):
            return [
                (r["trace"], r["span"], r["parent"], r["name"])
                for r in tracer.rows()
            ]

        assert identity(run_program(program, seed=seed)) == identity(
            run_program(program, seed=seed)
        )

    @given(
        program=programs,
        seed=st.integers(min_value=0, max_value=999),
        sample=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_sampling_never_orphans_a_child(self, program, seed, sample):
        tracer = run_program(program, seed=seed, sample=sample)
        rows = tracer.rows()
        kept = {r["span"] for r in rows}
        for row in rows:
            if row["parent"] is not None:
                assert row["parent"] in kept

    @given(program=programs)
    @settings(max_examples=30, deadline=None)
    def test_exporter_round_trips_byte_identically(self, program, tmp_path_factory):
        tracer = run_program(program)
        base = tmp_path_factory.mktemp("spans")
        first, second = base / "a.jsonl", base / "b.jsonl"
        write_spans(str(first), tracer.rows(), {"seed": 0})
        write_spans(str(second), load_spans(str(first)), {"seed": 0})
        assert first.read_bytes() == second.read_bytes()
