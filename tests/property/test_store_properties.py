"""Property-based tests of the store's core invariants.

The store is compared against the simplest possible model of a
page-mapped device: a dict from page id to "latest version token".  No
matter what sequence of writes (and hence cleanings, relocations, buffer
flushes) happens, the store must agree with the model about which pages
exist, and its internal accounting must stay consistent.
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.policies import make_policy
from repro.store import LogStructuredStore, StoreConfig

POLICIES = ["greedy", "age", "cost-benefit", "mdc", "mdc-opt", "multi-log"]


def build_store(policy_name, sort_buffer):
    cfg = StoreConfig(
        n_segments=24,
        segment_units=6,
        fill_factor=0.55,
        clean_trigger=2,
        clean_batch=2,
        sort_buffer_segments=sort_buffer,
    )
    store = LogStructuredStore(cfg, make_policy(policy_name))
    if policy_name.endswith("-opt"):
        n = cfg.user_pages
        store.set_oracle_frequencies([1.0 / n] * n)
    return store


write_sequences = st.lists(
    st.integers(min_value=0, max_value=78),  # 79 = user_pages at this cfg
    min_size=1,
    max_size=400,
)


@given(policy=st.sampled_from(POLICIES), writes=write_sequences)
@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_invariants_hold_for_any_write_sequence(policy, writes):
    store = build_store(policy, sort_buffer=0)
    for pid in writes:
        store.write(pid)
    store.check_invariants()


@given(writes=write_sequences)
@settings(max_examples=40, deadline=None)
def test_invariants_hold_with_sort_buffer(writes):
    store = build_store("mdc", sort_buffer=1)
    for pid in writes:
        store.write(pid)
    store.check_invariants()
    store.flush()
    store.check_invariants()


@given(policy=st.sampled_from(POLICIES), writes=write_sequences)
@settings(max_examples=40, deadline=None)
def test_every_written_page_stays_reachable(policy, writes):
    store = build_store(policy, sort_buffer=0)
    for pid in writes:
        store.write(pid)
    written = set(writes)
    for pid in written:
        seg, slot = store.pages.location(pid)
        assert seg >= 0, "page %d lost" % pid
        assert store.segments.slot_page[seg, slot] == pid


@given(writes=write_sequences)
@settings(max_examples=40, deadline=None)
def test_user_write_count_is_exact(writes):
    store = build_store("greedy", sort_buffer=0)
    for pid in writes:
        store.write(pid)
    assert store.stats.user_writes == len(writes)
    assert store.clock == len(writes)


@given(writes=write_sequences)
@settings(max_examples=40, deadline=None)
def test_live_data_never_exceeds_distinct_pages(writes):
    store = build_store("greedy", sort_buffer=0)
    for pid in writes:
        store.write(pid)
    assert store.live_page_count() == len(set(writes))
    total_live_units = sum(store.segments.live_units)
    assert total_live_units == len(set(writes))


@given(
    writes=write_sequences,
    sizes=st.lists(st.integers(min_value=1, max_value=6), min_size=400, max_size=400),
)
@settings(max_examples=30, deadline=None)
def test_variable_size_accounting(writes, sizes):
    """Variable-size pages (Section 4.4): unit accounting must track the
    latest size of each page exactly."""
    store = build_store("greedy", sort_buffer=0)
    latest = {}
    for pid, size in zip(writes, sizes):
        store.write(pid, size=size)
        latest[pid] = size
    store.check_invariants()
    assert sum(store.segments.live_units) == sum(latest.values())
