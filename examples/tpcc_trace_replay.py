#!/usr/bin/env python
"""TPC-C end-to-end: run the benchmark on the B+-tree engine, then
replay its page-write trace through the cleaning simulator.

This is the paper's Section 6.3 pipeline in miniature:

1. load the TPC-C tables into the B+-tree storage engine;
2. run the standard transaction mix with a buffer cache until the
   device fill factor has grown by 0.1, recording every dirty-page
   write-back;
3. replay the recorded trace against each cleaning policy and compare
   write amplification.

Run:
    python examples/tpcc_trace_replay.py
"""

from repro.bench import format_table, run_simulation
from repro.policies import FIGURE5_POLICIES
from repro.tpcc import TpccScale, generate_tpcc_trace


def main() -> None:
    print("generating TPC-C trace (B+-tree engine, scaled tables)...")
    trace = generate_tpcc_trace(
        fill_factor=0.7,
        scale=TpccScale(),  # 10k items, 10 districts, 300 customers each
        seed=42,
    )
    print(
        "  %d transactions -> %d page writes over %d distinct pages"
        % (trace.transactions, len(trace.workload),
           trace.workload.distinct_pages())
    )
    print(
        "  device %d pages; fill grew %.2f -> %.2f\n"
        % (trace.device_pages, trace.initial_fill, trace.final_fill)
    )

    rows = []
    for policy in FIGURE5_POLICIES:
        sort_buffer = 16 if policy.startswith("mdc") else 0
        config = trace.store_config(
            segment_units=32, sort_buffer_segments=sort_buffer
        )
        trace.workload.reset()
        result = run_simulation(
            config,
            policy,
            trace.workload,
            total_writes=len(trace.workload),
            measure_fraction=0.75,
        )
        rows.append((policy, result.wamp, result.mean_cleaned_emptiness))

    print(
        format_table(
            ["policy", "Wamp", "E when cleaned"],
            rows,
            title="Replaying the TPC-C trace under each cleaning policy",
        )
    )


if __name__ == "__main__":
    main()
