#!/usr/bin/env python
"""Key-value separation: cleaning the value log with MDC.

The paper cites the key-value separation design (WiscKey, HashKV) as a
place where "cleaning is often the new bottleneck".  This example runs a
skewed KV workload — a small set of hot session keys churning against a
large cold catalog, with variable-size values — on the repository's
value-log KV store and compares the GC cost under each cleaning policy.

Run:
    python examples/value_log_kv.py
"""

import random

from repro.bench import format_table
from repro.kvstore import LogStructuredKVStore
from repro.store import StoreConfig

POLICIES = ("age", "greedy", "cost-benefit", "multi-log", "mdc")


def run(policy: str) -> dict:
    kv = LogStructuredKVStore(
        StoreConfig(
            n_segments=256, segment_units=64, fill_factor=0.8,
            clean_trigger=4, clean_batch=8, sort_buffer_segments=8,
        ),
        policy=policy,
        unit_bytes=64,
    )
    rng = random.Random(13)
    # Cold catalog: large-ish records, written once, occasionally
    # refreshed — fills ~80% of the device.
    catalog = ["item:%04d" % i for i in range(3300)]
    for key in catalog:
        kv.put(key, rng.randbytes(rng.randint(100, 400)))
    # Hot sessions: small records, churning constantly.
    sessions = ["session:%03d" % i for i in range(400)]
    for step in range(60_000):
        if rng.random() < 0.05:
            key = rng.choice(catalog)
            kv.put(key, rng.randbytes(rng.randint(100, 400)))
        else:
            key = rng.choice(sessions)
            kv.put(key, rng.randbytes(rng.randint(40, 120)))
        if step % 500 == 0 and rng.random() < 0.5:
            kv.delete(rng.choice(sessions))
    report = kv.space_report()
    return {
        "policy": policy,
        "wamp": kv.write_amplification,
        "utilization": report["utilization"],
        "keys": report["keys"],
    }


def main() -> None:
    rows = [
        (r["policy"], r["wamp"], r["utilization"], r["keys"])
        for r in (run(p) for p in POLICIES)
    ]
    rows.sort(key=lambda r: r[1])
    print(
        format_table(
            ["policy", "value-log Wamp", "utilization", "live keys"],
            rows,
            title="Value-log garbage collection cost by cleaning policy "
            "(hot sessions vs cold catalog, variable-size values)",
        )
    )


if __name__ == "__main__":
    main()
