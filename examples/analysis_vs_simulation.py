#!/usr/bin/env python
"""Analysis vs simulation: the paper's Section 8.1 cross-checks.

Two closed-form results are compared against live simulations:

1. the Equation 4 fixpoint for segment emptiness under uniform updates
   (Table 1's analysis column) vs simulated cleaning;
2. the Section 3 minimum cost for separated hot/cold data (Table 2) vs
   simulated MDC-opt.

Run:
    python examples/analysis_vs_simulation.py
"""

from repro import StoreConfig, run_simulation
from repro.analysis import emptiness_fixpoint, table2_row
from repro.bench import format_table
from repro.workloads import HotColdWorkload, UniformWorkload


def uniform_check() -> None:
    rows = []
    for fill in (0.5, 0.7, 0.8, 0.9):
        predicted = emptiness_fixpoint(fill)
        config = StoreConfig(
            n_segments=1024, segment_units=32, fill_factor=fill,
            clean_trigger=2, clean_batch=4,
        ).with_reserve_compensation()
        workload = UniformWorkload(config.user_pages, seed=1)
        result = run_simulation(config, "mdc-opt", workload, write_multiplier=10)
        rows.append((fill, predicted, result.mean_cleaned_emptiness))
    print(
        format_table(
            ["fill factor", "E (Equation 4)", "E (simulated)"],
            rows,
            title="Uniform updates: fixpoint analysis vs simulation",
        )
    )


def hotcold_check() -> None:
    rows = []
    for skew in (90, 80, 70):
        analytic = table2_row(skew).min_cost
        config = StoreConfig(fill_factor=0.8, sort_buffer_segments=16)
        workload = HotColdWorkload.from_skew(config.user_pages, skew, seed=1)
        result = run_simulation(config, "mdc-opt", workload, write_multiplier=30)
        simulated = 2.0 * (1.0 + result.wamp)  # Cost = 2/E = 2(1 + Wamp)
        rows.append(("%d:%d" % (skew, 100 - skew), analytic, simulated))
    print(
        format_table(
            ["skew", "MinCost (analysis)", "MDC-opt (simulated)"],
            rows,
            title="Hot/cold separation: Section 3 minimum vs simulated MDC-opt",
        )
    )


def main() -> None:
    uniform_check()
    print()
    hotcold_check()


if __name__ == "__main__":
    main()
