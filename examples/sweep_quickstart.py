#!/usr/bin/env python
"""Sweep quickstart: run an experiment grid in parallel, then resume it.

The paper's tables and figures are grids of independent simulations
(policy x distribution x fill factor), which makes them embarrassingly
parallel.  ``repro.sweep`` expands an experiment function into a job
list, fans the jobs out over worker processes, and journals every
finished job to ``manifest.jsonl`` — so a sweep killed halfway resumes
where it stopped and still produces byte-identical aggregated output.

This example runs the tiny ``demo`` grid twice into the same directory:
the first call executes every job, the second resumes from the manifest
and executes none.

Run:
    python examples/sweep_quickstart.py

The CLI equivalent of everything below:
    repro sweep demo --workers 2 --out /tmp/demo-sweep
    repro sweep demo --workers 2 --out /tmp/demo-sweep --resume
"""

import tempfile

from repro.bench import demo_experiment
from repro.sweep import expand_grid, parallel_experiment


def main() -> None:
    specs = expand_grid(demo_experiment)
    print("the demo grid expands to %d jobs:" % len(specs))
    for spec in specs:
        print("  %s  (digest %s)" % (spec.label, spec.digest()))
    print()

    with tempfile.TemporaryDirectory() as out_dir:
        report = parallel_experiment(
            demo_experiment, workers=2, out_dir=out_dir
        )
        print(report.output.rendered)
        print()
        print(
            "first run:  %d executed, %d resumed  (%.2fs wall, "
            "%.2fs serial estimate)"
            % (
                report.stats.executed,
                report.stats.skipped,
                report.stats.wall_seconds,
                report.stats.job_seconds,
            )
        )

        # Same grid, same directory: every job is already journaled.
        resumed = parallel_experiment(
            demo_experiment, workers=2, out_dir=out_dir, resume=True
        )
        print(
            "second run: %d executed, %d resumed"
            % (resumed.stats.executed, resumed.stats.skipped)
        )
        assert resumed.output.rendered == report.output.rendered
        print("aggregated output is byte-identical across the resume.")


if __name__ == "__main__":
    main()
