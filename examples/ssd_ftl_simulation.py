#!/usr/bin/env python
"""SSD flash-translation-layer scenario: cleaning policy vs flash wear.

An SSD controller reclaims space in erase-block units; every relocated
page is flash wear.  This example sizes a simulated SSD with 20 %
over-provisioning, runs a hot/cold workload over every cleaning policy,
and translates write amplification into drive lifetime: a flash cell
endures a fixed number of program/erase cycles, so lifetime scales with
``1 / (1 + Wamp)``.

Run:
    python examples/ssd_ftl_simulation.py
"""

from repro import StoreConfig, run_simulation
from repro.bench import format_table
from repro.policies import FIGURE5_POLICIES
from repro.workloads import HotColdWorkload

#: Rated program/erase cycles for consumer TLC flash.
PE_CYCLES = 3000


def main() -> None:
    config = StoreConfig(
        n_segments=512,
        segment_units=64,       # pages per erase block
        fill_factor=0.8,        # i.e. 20 % over-provisioning
        clean_trigger=4,
        clean_batch=8,
        sort_buffer_segments=16,
    )
    print(
        "simulated SSD: %d erase blocks x %d pages, %d%% over-provisioned"
        % (config.n_segments, config.segment_units,
           round(100 * (1 - config.fill_factor)))
    )
    print("workload: 90-10 hot/cold (90% of writes hit 10% of pages)\n")

    rows = []
    for policy in FIGURE5_POLICIES:
        workload = HotColdWorkload.from_skew(config.user_pages, 90, seed=3)
        result = run_simulation(config, policy, workload, write_multiplier=25)
        wamp = result.wamp
        # Total physical writes per logical write is 1 + Wamp; lifetime
        # (full-drive overwrites before wear-out) shrinks accordingly.
        lifetime = PE_CYCLES / (1.0 + wamp)
        rows.append((policy, wamp, 1.0 + wamp, lifetime))

    print(
        format_table(
            ["policy", "Wamp", "flash writes/user write", "drive overwrites"],
            rows,
            title="Cleaning policy vs flash wear (rated %d P/E cycles)"
            % PE_CYCLES,
            precision=2,
        )
    )
    best = min(rows, key=lambda r: r[1])
    worst = max(rows, key=lambda r: r[1])
    print()
    print(
        "%s extends drive life %.1fx over %s on this workload."
        % (best[0], worst[3] and best[3] / worst[3], worst[0])
    )


if __name__ == "__main__":
    main()
