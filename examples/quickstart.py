#!/usr/bin/env python
"""Quickstart: simulate a log-structured store and compare two cleaners.

Builds a small simulated device, drives it with a skewed (80-20 Zipfian)
update stream, and prints the write amplification of the classic greedy
cleaner next to the paper's MDC cleaner.

Run:
    python examples/quickstart.py
"""

from repro import StoreConfig, run_simulation
from repro.workloads import ZipfianWorkload


def main() -> None:
    config = StoreConfig(
        n_segments=512,        # device size in segments
        segment_units=64,      # pages per segment
        fill_factor=0.8,       # 80 % of the device holds live user data
        clean_trigger=4,       # clean when fewer than 4 segments are free
        clean_batch=8,         # victims per cleaning cycle
        sort_buffer_segments=16,  # MDC's user-write sorting buffer
    )
    print("device: %d segments x %d pages, fill factor %.0f%%" % (
        config.n_segments, config.segment_units, 100 * config.fill_factor,
    ))

    for policy in ("greedy", "mdc"):
        # A fresh workload per run so both policies see the same stream.
        workload = ZipfianWorkload.eighty_twenty(config.user_pages, seed=7)
        result = run_simulation(config, policy, workload, write_multiplier=25)
        print(
            "%-8s write amplification = %.3f   "
            "(segments are %.0f%% empty when cleaned)"
            % (policy, result.wamp, 100 * result.mean_cleaned_emptiness)
        )

    print()
    print("Lower is better: every unit of write amplification is one")
    print("extra page move the cleaner performs per user write.")


if __name__ == "__main__":
    main()
