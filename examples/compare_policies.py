#!/usr/bin/env python
"""Compare every cleaning policy on a workload of your choice.

Run:
    python examples/compare_policies.py --dist zipf-80-20 --fill 0.8
    python examples/compare_policies.py --dist hotcold-90 --fill 0.9
    python examples/compare_policies.py --dist uniform --fill 0.5 --shifting

Distributions: uniform, zipf-80-20, zipf-90-10, hotcold-<m> (m:1-m),
or --shifting for a hot set that drifts over time (the estimation
stress-test the paper attributes TPC-C's difficulty to).
"""

import argparse

from repro import StoreConfig, run_simulation
from repro.bench import format_table
from repro.policies import available_policies
from repro.workloads import (
    HotColdWorkload,
    ShiftingHotSetWorkload,
    UniformWorkload,
    ZipfianWorkload,
)


def build_workload(args, n_pages: int):
    if args.shifting:
        return ShiftingHotSetWorkload(n_pages, seed=args.seed)
    if args.dist == "uniform":
        return UniformWorkload(n_pages, seed=args.seed)
    if args.dist == "zipf-80-20":
        return ZipfianWorkload.eighty_twenty(n_pages, seed=args.seed)
    if args.dist == "zipf-90-10":
        return ZipfianWorkload.ninety_ten(n_pages, seed=args.seed)
    if args.dist.startswith("hotcold-"):
        return HotColdWorkload.from_skew(
            n_pages, int(args.dist.split("-")[1]), seed=args.seed
        )
    raise SystemExit("unknown distribution %r" % args.dist)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dist", default="zipf-80-20")
    parser.add_argument("--fill", type=float, default=0.8)
    parser.add_argument("--shifting", action="store_true")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--multiplier", type=float, default=25.0,
                        help="user writes as a multiple of the page count")
    parser.add_argument("--policies", nargs="*", default=None,
                        help="subset of policies (default: all registered)")
    args = parser.parse_args()

    config = StoreConfig(fill_factor=args.fill, sort_buffer_segments=16)
    names = args.policies or available_policies()
    rows = []
    for name in names:
        workload = build_workload(args, config.user_pages)
        result = run_simulation(
            config, name, workload, write_multiplier=args.multiplier
        )
        extra = (
            "%d logs" % result.extras["n_logs"]
            if "n_logs" in result.extras
            else ""
        )
        rows.append((name, result.wamp, result.mean_cleaned_emptiness, extra))
    rows.sort(key=lambda r: r[1])
    print(
        format_table(
            ["policy", "Wamp", "E when cleaned", "notes"],
            rows,
            title="%s at fill factor %.2f (best first)" % (args.dist, args.fill),
        )
    )


if __name__ == "__main__":
    main()
