#!/usr/bin/env python
"""Future work from the paper's Section 8.2: a workload-aware oracle.

The paper closes with: "knowledge of workload may make it possible to
better predict update frequency changes, and knowing update frequency
... can often improve results further."  This example demonstrates
exactly that on a *shifting* hot set (the pattern the paper blames for
TPC-C's estimation gap):

* ``mdc``            — the two-interval up2 estimator (always lags);
* ``mdc-opt static`` — an oracle fed the long-run average frequencies,
  which for a shifting hot set are uniform and therefore useless;
* ``mdc-opt dynamic``— an oracle updated whenever the hot set moves
  (via ``LogStructuredStore.set_page_frequency``).

Run:
    python examples/predictive_oracle.py
"""

from repro.bench import format_table, prepare_store
from repro.policies import make_policy
from repro.store import LogStructuredStore, StoreConfig
from repro.workloads import ShiftingHotSetWorkload

CONFIG = StoreConfig(fill_factor=0.8, sort_buffer_segments=16)
TOTAL_MULTIPLIER = 25
SHIFT_EVERY = 20_000


def make_workload() -> ShiftingHotSetWorkload:
    return ShiftingHotSetWorkload(
        CONFIG.user_pages,
        update_fraction=0.9,
        data_fraction=0.1,
        shift_every=SHIFT_EVERY,
        seed=11,
    )


def run(policy_name: str, dynamic_oracle: bool) -> float:
    workload = make_workload()
    store = prepare_store(CONFIG, make_policy(policy_name), workload)
    if dynamic_oracle:
        for pid, f in enumerate(workload.current_frequencies()):
            store.set_page_frequency(pid, float(f))
    total = TOTAL_MULTIPLIER * workload.n_pages
    warmup = total // 2
    written = 0
    mark = None
    # Drive in hot-set periods so the dynamic oracle can refresh at
    # every shift boundary.
    while written < total:
        chunk = min(SHIFT_EVERY, total - written)
        for batch in workload.batches(chunk):
            for pid in batch:
                store.write(pid)
        written += chunk
        if dynamic_oracle:
            for pid, f in enumerate(workload.current_frequencies()):
                store.set_page_frequency(pid, float(f))
        if mark is None and written >= warmup:
            mark = store.stats.snapshot()
    return store.stats.window_since(mark).write_amplification


def main() -> None:
    rows = [
        ("mdc (up2 estimator)", run("mdc", dynamic_oracle=False)),
        ("mdc-opt, static long-run oracle", run("mdc-opt", dynamic_oracle=False)),
        ("mdc-opt, dynamic workload-aware oracle", run("mdc-opt", dynamic_oracle=True)),
    ]
    print(
        format_table(
            ["variant", "Wamp"],
            rows,
            title="Shifting hot set (90%% of writes, hot set drifts every "
            "%d updates)" % SHIFT_EVERY,
        )
    )
    print()
    print("The static oracle sees a uniform long-run average and cannot")
    print("separate anything; the up2 estimator lags each shift; the")
    print("workload-aware oracle tracks the shift as Section 8.2 suggests.")


if __name__ == "__main__":
    main()
