"""Convergence ablation — how many writes each policy needs to reach
its steady-state write amplification.

Backs two claims the paper makes in prose: multi-log "requires a lot of
page writes to converge" (it starts as one log and adapts), while MDC's
priority and sorting work from the first cleaning cycle.  The 80-20
Zipfian at F=0.8 from cold start, Wamp per 2x-population window.
"""

from repro.bench.timeseries import wamp_timeseries
from repro.store import StoreConfig
from repro.workloads import ZipfianWorkload


def test_convergence(benchmark, emit):
    config = StoreConfig(fill_factor=0.8, sort_buffer_segments=16)

    def run():
        return wamp_timeseries(
            config,
            ["greedy", "multi-log", "mdc"],
            lambda: ZipfianWorkload.eighty_twenty(config.user_pages, seed=4),
            n_windows=15,
            window_multiplier=2.0,
        )

    ts = benchmark.pedantic(run, rounds=1, iterations=1)

    class _Output:
        name = "convergence"
        rendered = ts.rendered(
            "Convergence: Wamp per window of 2x the page population "
            "(80-20 Zipfian, F=0.8, cold start)"
        )
        data = ts.series

    emit(_Output)

    # MDC settles at least as fast as multi-log, and to a lower level.
    assert ts.windows_to_converge("mdc", rel_tol=0.15) <= (
        ts.windows_to_converge("multi-log", rel_tol=0.15) + 1
    )
    assert ts.series["mdc"][-1] < ts.series["multi-log"][-1]
    # Steady state is reached within the run (last two windows agree).
    for name, curve in ts.series.items():
        assert abs(curve[-1] - curve[-2]) <= 0.25 * max(curve[-1], 0.1), name
