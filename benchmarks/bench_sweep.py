#!/usr/bin/env python
"""Sweep orchestrator benchmark: serial vs parallel wall-clock on fig5.

Runs the quick Figure 5 grid (one distribution, 6 fill factors x 7
policies + the analytic bound) twice through the sweep engine — once
with 1 worker, once with 4 — verifies the aggregated outputs are
byte-identical, and writes ``BENCH_sweep.json`` at the repo root so
later PRs can track the orchestration overhead and scaling trajectory.

Speedup is hardware-bound: on a single-core container the 4-worker run
cannot beat serial (the JSON records ``cpu_count`` next to the timings
so the numbers are interpretable); on a 4-core machine the same grid
shows the expected ~3x.

Run:
    PYTHONPATH=src python benchmarks/bench_sweep.py [--grid demo]
"""

import argparse
import json
import pathlib
import sys

from repro.sweep import run_named_sweep

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
OUTPUT = REPO_ROOT / "BENCH_sweep.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--grid", default="fig5",
        help="named sweep grid to time (default fig5; demo for a smoke run)",
    )
    parser.add_argument("--dist", default="zipf-80-20")
    args = parser.parse_args(argv)
    dist = args.dist if args.grid == "fig5" else None

    timings = {}
    outputs = {}
    for workers in (1, 4):
        report = run_named_sweep(
            args.grid, workers=workers, quick=True, dist=dist
        )
        timings[workers] = report.summary
        outputs[workers] = report.output.rendered
        print(
            "workers=%d: %d jobs in %.1fs (serial estimate %.1fs)"
            % (
                workers,
                report.summary["jobs"],
                report.summary["wall_clock_s"],
                report.summary["serial_estimate_s"],
            )
        )

    identical = outputs[1] == outputs[4]
    print("outputs byte-identical across worker counts:", identical)
    if not identical:
        return 1

    record = {
        "benchmark": "sweep-serial-vs-parallel",
        "grid": timings[1]["experiment"],
        "quick": True,
        "jobs": timings[1]["jobs"],
        "cpu_count": timings[1]["cpu_count"],
        "outputs_identical": identical,
        "serial": {
            "workers": 1,
            "wall_clock_s": timings[1]["wall_clock_s"],
            "job_wall_s": timings[1]["job_wall_s"],
        },
        "parallel": {
            "workers": 4,
            "wall_clock_s": timings[4]["wall_clock_s"],
            "job_wall_s": timings[4]["job_wall_s"],
        },
        "speedup_parallel_vs_serial": round(
            timings[1]["wall_clock_s"] / timings[4]["wall_clock_s"], 3
        )
        if timings[4]["wall_clock_s"]
        else None,
    }
    OUTPUT.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print("wrote", OUTPUT)
    return 0


if __name__ == "__main__":
    sys.exit(main())
