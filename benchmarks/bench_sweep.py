#!/usr/bin/env python
"""Sweep orchestrator benchmark: serial vs pooled wall-clock on fig5.

Thin CLI over :mod:`repro.sweep.bench` — runs the quick Figure 5 grid
through the sweep engine serial (inline) and pooled, verifies the
aggregated outputs are byte-identical, records the pool's phase
overheads (worker spawn, dispatch, drain), and writes
``BENCH_sweep.json`` at the repo root so later PRs can track the
orchestration scaling trajectory.  The same measurement runs in CI as
the ``kind: sweep`` cell of ``benchmarks/configs/ci-smoke.yml``, gated
by the hardware-conditional ``sweep-scaling`` check.

Run:
    PYTHONPATH=src python benchmarks/bench_sweep.py [--grid demo]
"""

import argparse
import pathlib
import sys

from repro.sweep.bench import (
    check_sweep_report,
    render_sweep_bench,
    run_sweep_bench,
    write_sweep_report,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
OUTPUT = REPO_ROOT / "BENCH_sweep.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--grid", default="fig5",
        help="named sweep grid to time (default fig5; demo for a smoke run)",
    )
    parser.add_argument("--dist", default="zipf-80-20")
    parser.add_argument(
        "--workers", type=int, default=4,
        help="pool size to request for the parallel run (default 4)",
    )
    parser.add_argument(
        "--start-method", default=None,
        choices=("fork", "spawn", "forkserver"),
        help="pool start method (default: platform default)",
    )
    args = parser.parse_args(argv)

    report = run_sweep_bench(
        grid=args.grid,
        dist=args.dist,
        workers=args.workers,
        start_method=args.start_method,
    )
    print(render_sweep_bench(report))
    problems = check_sweep_report(report)
    for problem in problems:
        print("sweep-scaling gate: %s" % problem, file=sys.stderr)
    write_sweep_report(report, str(OUTPUT))
    print("wrote", OUTPUT)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
