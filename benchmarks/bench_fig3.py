"""Figure 3 — MDC ablation breakdown on hot-cold distributions.

Series: greedy, MDC-no-sep-user-GC, MDC-no-sep-user, MDC, MDC-opt, and
the analytic opt, at F=0.8 over skews 50-50 .. 90-10.

Paper shape to reproduce: at 50-50 greedy is (near) optimal and MDC pays
a small estimation overhead; as skew grows greedy degrades while MDC
tracks MDC-opt ~= opt; removing user-write separation hurts more than
removing GC-write separation.
"""

import pytest

from repro.bench import fig3_experiment


def test_fig3(benchmark, emit):
    output = benchmark.pedantic(fig3_experiment, rounds=1, iterations=1)
    emit(output)
    series = output.data["series"]
    skews = output.data["skews"]  # (50, 60, 70, 80, 90)
    at = {m: i for i, m in enumerate(skews)}

    # At high skew the full MDC beats greedy and both no-sep ablations.
    for m in (80, 90):
        i = at[m]
        assert series["mdc"][i] < series["greedy"][i]
        assert series["mdc"][i] < series["mdc-no-sep-user"][i]
        assert series["mdc-no-sep-user"][i] <= series["mdc-no-sep-user-gc"][i] * 1.1
    # MDC-opt aligns with the analytic optimum at every skew.
    for i in range(len(skews)):
        assert series["mdc-opt"][i] == pytest.approx(series["opt"][i], rel=0.2)
    # Greedy's write amplification grows with skew; MDC's shrinks.
    assert series["greedy"][at[90]] > series["greedy"][at[50]]
    assert series["mdc"][at[90]] < series["mdc"][at[50]]
