"""Shared benchmark plumbing.

Each benchmark regenerates one table or figure from the paper, prints it
live (bypassing pytest's capture), and archives the rendered text under
``benchmarks/results/`` so EXPERIMENTS.md can reference exact runs.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def emit(capsys):
    """Print an experiment's rendering immediately and archive it."""

    def _emit(output):
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / ("%s.txt" % output.name)).write_text(
            output.rendered + "\n"
        )
        with capsys.disabled():
            print()
            print(output.rendered)

    return _emit
