"""Figure 5 — write amplification vs fill factor, all seven algorithms.

(a) uniform, (b) 80-20 Zipfian (theta 0.99), (c) 90-10 Zipfian (theta
1.35); fill factors 0.5 .. 0.95.

Paper shapes to reproduce:
* (a) age and greedy are (near) optimal; MDC-opt matches them; the
  estimating policies pay a modest overhead; cost-benefit is the worst
  of the classic trio at high fill.
* (b)/(c) age is worst, greedy poor, cost-benefit mid, multi-log-opt and
  the MDC family best, with MDC tracking MDC-opt; gaps grow with fill.

Set ``REPRO_SWEEP_WORKERS=N`` (N > 1) to fan each grid out over the
sweep orchestrator's worker processes; the aggregated output is
byte-identical to the serial run (same seeds, same code path), only the
wall-clock changes.
"""

import os

import pytest

from repro.bench import fig5_experiment


def _run_fig5(dist):
    workers = int(os.environ.get("REPRO_SWEEP_WORKERS", "1"))
    if workers > 1:
        from repro.sweep import parallel_experiment

        return parallel_experiment(fig5_experiment, workers=workers, dist=dist).output
    return fig5_experiment(dist)


def _at(output, fill):
    return output.data["fills"].index(fill)


def test_fig5a_uniform(benchmark, emit):
    output = benchmark.pedantic(
        lambda: _run_fig5("uniform"), rounds=1, iterations=1
    )
    emit(output)
    s = output.data["series"]
    i = _at(output, 0.8)
    # Age/greedy near-optimal; MDC-opt in the same band.
    assert s["mdc-opt"][i] == pytest.approx(s["greedy"][i], rel=0.2)
    # Estimating MDC pays at most a modest overhead over greedy.
    assert s["mdc"][i] < s["greedy"][i] * 1.4
    # Everything degrades with fill factor.
    for name, ws in s.items():
        assert ws[-1] > ws[0], name


def test_fig5b_zipf_80_20(benchmark, emit):
    output = benchmark.pedantic(
        lambda: _run_fig5("zipf-80-20"), rounds=1, iterations=1
    )
    emit(output)
    s = output.data["series"]
    i = _at(output, 0.8)
    assert s["mdc"][i] < s["cost-benefit"][i] < s["age"][i]
    assert s["mdc"][i] < s["greedy"][i]
    assert s["mdc-opt"][i] <= s["mdc"][i] * 1.05
    assert s["mdc-opt"][i] < s["multi-log-opt"][i]


def test_fig5c_zipf_90_10(benchmark, emit):
    output = benchmark.pedantic(
        lambda: _run_fig5("zipf-90-10"), rounds=1, iterations=1
    )
    emit(output)
    s = output.data["series"]
    i = _at(output, 0.8)
    assert s["mdc"][i] < s["greedy"][i]
    assert s["mdc"][i] < s["age"][i]
    assert s["mdc-opt"][i] <= s["mdc"][i] * 1.05
    # Higher skew -> lower absolute Wamp for MDC than in 5b at same F.
    assert s["mdc"][i] < 1.0
