"""Table 1 — fill factor vs segment emptiness when cleaned.

Regenerates the analysis columns (Equation 4 fixpoint: E, Cost,
R = E/(1-F), Wamp) and the simulated MDC-opt column, which the paper
reports as agreeing with the analysis to two significant digits under a
uniform update distribution.

Scaled setup: reserve-compensated 1024x32-page device (paper: 51,200
segments of 512 pages); per-row agreement is within a few percent except
at the extreme F=0.975 row, where the small device's emptiness
granularity shows (see EXPERIMENTS.md).

Set ``REPRO_SWEEP_WORKERS=N`` (N > 1) to run the per-row simulations
through the sweep orchestrator's worker pool; the table is byte-identical
to the serial run.
"""

import os

import pytest

from repro.analysis.fixpoint import TABLE1_FILL_FACTORS
from repro.bench import table1_experiment


def _run_table1():
    workers = int(os.environ.get("REPRO_SWEEP_WORKERS", "1"))
    if workers > 1:
        from repro.sweep import parallel_experiment

        return parallel_experiment(
            table1_experiment, workers=workers, fill_factors=TABLE1_FILL_FACTORS
        ).output
    return table1_experiment(TABLE1_FILL_FACTORS)


def test_table1(benchmark, emit):
    output = benchmark.pedantic(
        _run_table1,
        rounds=1,
        iterations=1,
    )
    emit(output)
    rows = output.data["rows"]
    assert len(rows) == len(TABLE1_FILL_FACTORS)
    for f, slack, e_analysis, e_age, e_mdc_opt, cost, ratio, wamp, wamp_sim in rows:
        # Age-based simulation is what Equation 4 models: close match.
        assert e_age == pytest.approx(e_analysis, rel=0.12)
        # MDC-opt's greedy-equivalent order never does worse than age,
        # and at small scale may skim a little extra emptiness.
        assert e_mdc_opt >= e_age * 0.9
    # Monotone: higher fill factor -> lower emptiness at cleaning.
    for col in (3, 4):
        sims = [row[col] for row in rows]
        assert sims == sorted(sims)
