"""Figure 6 — write amplification on TPC-C traces.

The full paper pipeline: run TPC-C on the B+-tree engine with a buffer
cache until the device fill grows by 0.1, collect the dirty-page
write-back trace, replay it through the cleaning simulator under each of
the seven algorithms, for starting fills 0.5 .. 0.8.

Paper shapes to reproduce: age and greedy do poorly (the trace is
skewed, roughly 80-20); the frequency-aware policies do better; MDC has
the lowest write amplification at every fill factor, and the estimating
variants trail their -opt twins (TPC-C's shifting hot set degrades
timestamp estimation).
"""

from repro.bench import fig6_experiment


def test_fig6_tpcc(benchmark, emit):
    output = benchmark.pedantic(fig6_experiment, rounds=1, iterations=1)
    emit(output)
    s = output.data["series"]
    fills = output.data["fills"]
    i = fills.index(0.8)
    # MDC is the best policy at the highest fill factor.
    competitors = ("age", "greedy", "cost-benefit", "multi-log")
    assert all(s["mdc"][i] < s[name][i] for name in competitors)
    # The oracle variants beat their estimating twins (shifting hot set).
    assert s["mdc-opt"][i] <= s["mdc"][i] * 1.1
    # Wamp grows with fill factor for every policy.
    for name in s:
        assert s[name][-1] > s[name][0] * 0.8, name
