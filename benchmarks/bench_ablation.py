"""Ablations of the design choices DESIGN.md calls out.

1. Update-frequency estimator: the paper's two-interval up2 estimator
   vs the single-interval up1 estimator it rejects as "very inaccurate"
   (Section 4.3) vs the exact oracle.
2. Cleaning batch size (Section 6.1.1): batching enables frequency
   separation of GC writes.
"""

from repro.bench import ablation_batch_experiment, ablation_estimator_experiment


def test_ablation_estimator(benchmark, emit):
    output = benchmark.pedantic(
        ablation_estimator_experiment, rounds=1, iterations=1
    )
    emit(output)
    wamps = output.data["wamp"]
    # The oracle lower-bounds both estimators...
    assert wamps["mdc-opt"] <= wamps["mdc"] * 1.05
    # ...and the two-interval estimator does not lose to the
    # single-interval one (the paper found up1-only "very inaccurate").
    assert wamps["mdc"] <= wamps["mdc-up1"] * 1.1


def test_ablation_batch_size(benchmark, emit):
    output = benchmark.pedantic(
        ablation_batch_experiment, rounds=1, iterations=1
    )
    emit(output)
    batches = output.data["batches"]
    wamp = dict(zip(batches, output.data["wamp"]))
    # Batched cleaning (the paper's 64-at-a-time, here scaled) is no
    # worse than one-at-a-time within noise.
    assert wamp[16] <= wamp[1] * 1.15
