"""Table 2 — minimum cost when managing hot and cold data separately.

Regenerates the analytic MinCost / Hot:60% / Hot:40% columns (Section 3
slack-division analysis at F=0.8) and the simulated MDC-opt cost, which
the paper reports as matching MinCost to two significant digits.
"""

import pytest

from repro.bench import table2_experiment


def test_table2(benchmark, emit):
    output = benchmark.pedantic(table2_experiment, rounds=1, iterations=1)
    emit(output)
    rows = output.data["rows"]
    assert [r[1] for r in rows] == ["90:10", "80:20", "70:30", "60:40", "50:50"]
    for _f, _skew, min_cost, hot60, hot40, sim_cost in rows:
        # Off-optimum splits cost slightly more (Table 2's observation).
        assert hot60 >= min_cost - 1e-9
        assert hot40 >= min_cost - 1e-9
        # Simulated MDC-opt approaches the analytic minimum.
        assert sim_cost == pytest.approx(min_cost, rel=0.15)
    # More skew -> lower cost.
    costs = [r[2] for r in rows]
    assert costs == sorted(costs)
