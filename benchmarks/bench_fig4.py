"""Figure 4 — impact of the user-write sort buffer size.

MDC on the 80-20 Zipfian (theta = 0.99) at F=0.8, sweeping the buffer
from 0 (no separation of user writes) upward.

Paper shape to reproduce: write amplification drops steeply once
sorting kicks in, then flattens.  (The paper saturates by ~16 segments
on a 51,200-segment device; on our 512-segment device the knee sits a
bit later relative to the buffer size because the buffer-to-hot-set
ratio differs — see EXPERIMENTS.md.)
"""

from repro.bench import fig4_experiment


def test_fig4(benchmark, emit):
    output = benchmark.pedantic(fig4_experiment, rounds=1, iterations=1)
    emit(output)
    buffers = output.data["buffers"]
    wamp = output.data["wamp"]
    by_size = dict(zip(buffers, wamp))
    # Sorting helps substantially: buffer=16 clearly beats buffer=0.
    assert by_size[16] < by_size[0] * 0.7
    # The curve keeps descending (never regresses) toward saturation.
    assert by_size[64] <= by_size[16] * 1.05
    assert by_size[4] <= by_size[0] * 1.05
