"""Mean-field closed-form write amplification (the analytical gate).

*Stochastic Modeling of Large-Scale Solid-State Storage Systems*
(arXiv:1303.4816) shows that as the number of segments grows, the
segment-occupancy distribution of a log-structured device concentrates
around a deterministic mean-field limit, so steady-state write
amplification has a closed form that needs no simulation.  That is what
makes an *analytical* gate possible: a matrix cell too large to simulate
in CI can still be sanity-checked, and a cell small enough to simulate
must agree with the closed form within a documented tolerance or the
simulator (not the workload) has regressed.

Two workload families have usable closed forms here:

* **uniform** — under uniform random updates with age-based (circular)
  cleaning, the mean-field steady state is the transcendental fixpoint
  the source paper derives as Equations 3-4 (``E = 1 - exp(-E/F)``,
  with a finite-population correction), already implemented in
  :mod:`repro.analysis.fixpoint`; Wamp follows from Equation 2.  The
  same fixpoint is the large-system limit of the mean-field ODEs of
  arXiv:1303.4816 for its uniform-workload model.
* **hot/cold** — a two-class mean-field: each temperature class runs
  its own uniform fixpoint at its own effective fill factor, with the
  device slack split between the classes.  With the *optimal* split
  (:func:`repro.analysis.hotcold.optimal_slack_split`) this is the
  paper's Table 2 "opt" bound — a **floor** for any real policy, which
  is how the hot/cold gate uses it (simulated Wamp must not beat the
  bound, and should land within a band above it for a separating
  policy).

The gate layer (:mod:`repro.matrix.gates`) compares these numbers to
simulated cells selected by a ``where:`` filter in the experiment
config's ``checks:`` block.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.analysis.cost_model import write_amplification
from repro.analysis.fixpoint import emptiness_fixpoint
from repro.analysis.hotcold import optimal_slack_split, total_wamp


class MeanFieldError(Exception):
    """Raised when a cell's workload/fill has no closed form here."""


@dataclasses.dataclass(frozen=True)
class MeanFieldPrediction:
    """One closed-form operating point."""

    model: str  #: ``"uniform"`` or ``"hotcold"``
    fill_factor: float
    emptiness: float  #: steady-state cleaned emptiness E (aggregate)
    wamp: float  #: Equation 2: (1 - E) / E
    #: Whether the number is an exact steady state for the simulated
    #: policy (uniform/age) or a lower bound (hotcold/optimal split).
    is_bound: bool = False


def uniform_meanfield(
    fill_factor: float, n_pages: Optional[int] = None
) -> MeanFieldPrediction:
    """The uniform-workload mean-field operating point.

    Args:
        fill_factor: Device fill ``F`` in (0, 1).
        n_pages: Finite user-page population for the Equation 3
            correction; ``None`` uses the infinite-population fixpoint
            (Equation 4).  The two agree beyond ~30 pages, but small
            simulated devices gate more tightly with the correction.
    """
    if not 0.0 < fill_factor < 1.0:
        raise MeanFieldError(
            "uniform mean-field needs fill_factor in (0, 1), got %r"
            % (fill_factor,)
        )
    emptiness = emptiness_fixpoint(fill_factor, n_pages=n_pages)
    return MeanFieldPrediction(
        model="uniform",
        fill_factor=fill_factor,
        emptiness=emptiness,
        wamp=write_amplification(emptiness),
    )


def hotcold_meanfield(
    fill_factor: float,
    update_fraction: float,
    data_fraction: float,
) -> MeanFieldPrediction:
    """The two-class hot/cold mean-field **bound** (optimal slack split).

    Args:
        fill_factor: Device fill ``F`` in (0, 1).
        update_fraction: Fraction of updates hitting the hot class
            (``m`` of an m:1-m skew, as a fraction).
        data_fraction: Fraction of user data that is hot (``1-m`` for
            the paper's m:(1-m) skews).
    """
    if not 0.0 < fill_factor < 1.0:
        raise MeanFieldError(
            "hotcold mean-field needs fill_factor in (0, 1), got %r"
            % (fill_factor,)
        )
    for name, value in (
        ("update_fraction", update_fraction),
        ("data_fraction", data_fraction),
    ):
        if not 0.0 < value < 1.0:
            raise MeanFieldError(
                "hotcold mean-field needs %s in (0, 1), got %r" % (name, value)
            )
    updates = (update_fraction, 1.0 - update_fraction)
    dists = (data_fraction, 1.0 - data_fraction)
    g_hot = optimal_slack_split(fill_factor, updates, dists)
    wamp = total_wamp(fill_factor, updates, dists, (g_hot, 1.0 - g_hot))
    return MeanFieldPrediction(
        model="hotcold",
        fill_factor=fill_factor,
        emptiness=1.0 / (1.0 + wamp),
        wamp=wamp,
        is_bound=True,
    )


def predict_for_workload(
    workload: dict,
    fill_factor: float,
    n_pages: Optional[int] = None,
) -> MeanFieldPrediction:
    """Closed form for a sweep workload spec (the dict inside a sim
    cell's job spec), or :class:`MeanFieldError` when none applies."""
    kind = workload.get("kind")
    if kind == "uniform":
        return uniform_meanfield(fill_factor, n_pages=n_pages)
    if kind == "hotcold":
        return hotcold_meanfield(
            fill_factor,
            update_fraction=workload["update_fraction"],
            data_fraction=workload["data_fraction"],
        )
    raise MeanFieldError(
        "no mean-field closed form for workload kind %r (have: uniform, "
        "hotcold)" % (kind,)
    )
