"""Matrix execution: config → cells → sweep executor → gates → report.

:func:`run_matrix` is the engine behind ``repro bench run``.  It reuses
the sweep layer wholesale — :func:`repro.sweep.executor.run_sweep` for
process isolation/timeouts/retries, :class:`repro.sweep.manifest.Manifest`
for the fsynced resume journal — so a matrix run interrupted mid-CI
continues with ``--resume`` exactly where it died, and a re-run of an
unchanged config replays entirely from the manifest.

After execution it:

* merges per-cell schema-v1 metrics files (obs experiments) into one
  ``metrics-<experiment>.jsonl`` per experiment, in cell order, and
  schema-validates the merge — an implicit gate, because a matrix that
  claims observability but emits malformed rows should fail CI;
* appends SHA-keyed ``benchmarks/history.jsonl`` entries for every
  *executed* bench cell (resumed cells were not re-run and would
  duplicate their original entry) — suppressed entirely by
  ``history=False`` (``--no-history``), the same switch every dedicated
  bench command honors;
* evaluates the declarative ``checks:`` into gate verdicts;
* renders ``report.md`` and writes machine-readable ``gates.json``.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
from typing import Callable, Dict, List, Optional

from repro.bench.history import HISTORY_PATH, append_entry, git_sha
from repro.matrix.cells import (
    CellResult,
    CellSpec,
    MatrixJobRunner,
    cells_for_experiment,
    matrix_digest,
)
from repro.matrix.config import MatrixConfig, default_out_dir
from repro.matrix.gates import GateResult, blocking_failures, evaluate_checks
from repro.matrix.report import render_report
from repro.sweep.executor import (
    ProgressEvent,
    SweepStats,
    default_workers,
    run_sweep,
)
from repro.sweep.manifest import Manifest
from repro.sweep.spec import JobSpec, SweepError

#: File names inside a matrix output directory.
REPORT_NAME = "report.md"
GATES_NAME = "gates.json"


@dataclasses.dataclass
class MatrixRunReport:
    """Everything one matrix run produced."""

    config: MatrixConfig
    out_dir: str
    digest: str
    sha: str
    results: Dict[str, List[CellResult]]
    verdicts: List[GateResult]
    stats: SweepStats
    obs_problems: List[str]
    history_entries: List[Dict]
    report_path: str
    gates_path: str
    markdown: str

    @property
    def resumed(self) -> int:
        return sum(
            1 for cells in self.results.values() for c in cells if c.resumed
        )

    @property
    def ok(self) -> bool:
        """True when nothing blocks: no failed cells, no malformed
        observability, no blocking gate failures."""
        return (
            not self.stats.failed
            and not self.obs_problems
            and not blocking_failures(self.verdicts)
        )


def _merge_experiment_metrics(
    out_path: pathlib.Path,
    experiment: str,
    cells: List[CellResult],
    runner: MatrixJobRunner,
) -> Optional[str]:
    """Concatenate executed sim cells' per-cell metrics files, in cell
    order, into ``metrics-<experiment>.jsonl``.  Returns the merged
    path, or None when no cell produced rows."""
    merged_path = out_path / ("metrics-%s.jsonl" % experiment)
    wrote = False
    with open(merged_path, "w", encoding="utf-8") as out:
        for cell in cells:
            if cell.resumed or not cell.spec.obs:
                continue
            inner_digest = JobSpec.from_dict(cell.spec.payload).digest()
            part = runner.job_metrics_path(inner_digest)
            if part is None or not os.path.exists(part):
                continue
            with open(part, encoding="utf-8") as fh:
                out.write(fh.read())
            wrote = True
    if not wrote:
        merged_path.unlink()
        return None
    return str(merged_path)


def _validate_metrics(path: str, experiment: str) -> List[str]:
    from repro.obs.export import load_rows, validate_rows

    return [
        "%s: %s" % (experiment, problem)
        for problem in validate_rows(load_rows(path))
    ]


def _history_entry_for(cell: CellResult) -> Optional[Dict]:
    """The trajectory line a bench cell contributes (sim cells have no
    history family; their regression story is the gates + report)."""
    kind = cell.spec.kind
    if kind == "micro":
        from repro.bench.micro import history_entry

        return history_entry(cell.result)
    if kind == "service":
        from repro.service.bench import service_history_entry

        return service_history_entry(cell.result)
    if kind == "latency":
        from repro.service.latency import latency_history_entry

        return latency_history_entry(cell.result)
    return None


def run_matrix(
    config: MatrixConfig,
    out_dir: Optional[str] = None,
    resume: bool = False,
    workers: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: int = 1,
    progress: Optional[Callable[[ProgressEvent], None]] = None,
    history: bool = True,
    history_path: str = HISTORY_PATH,
    sample_interval: Optional[int] = None,
    root: str = ".",
    trace: bool = True,
) -> MatrixRunReport:
    """Execute a parsed config end to end; returns the run report.

    With ``trace`` on (the default) the run also writes
    ``spans.jsonl`` to the output directory: a ``sweep.run`` root span
    plus one ``sweep.job`` span per executed cell, from the parent's
    dispatch clock.  Span files carry wall times and live beside — never
    inside — the deterministic metrics merges.

    Raises :class:`~repro.sweep.spec.SweepError` when the output
    directory already holds a manifest and ``resume`` is off, or when
    the manifest belongs to a different matrix — identical semantics to
    ``repro sweep``.
    """
    exp_cells: Dict[str, List[CellSpec]] = {
        exp.name: cells_for_experiment(exp) for exp in config.experiments
    }
    all_cells: List[CellSpec] = [
        c for cells in exp_cells.values() for c in cells
    ]
    digest = matrix_digest(all_cells)

    out_path = pathlib.Path(out_dir or default_out_dir(config))
    out_path.mkdir(parents=True, exist_ok=True)
    manifest = Manifest.in_dir(out_path)
    if manifest.exists() and not resume:
        raise SweepError(
            "%s already has a manifest; pass --resume to continue it or "
            "use a fresh output directory (--out)" % (out_path,)
        )
    manifest.ensure_header(config.name, digest)
    pre_done = set(manifest.completed())

    any_obs = any(exp.obs for exp in config.experiments)
    metrics_dir = None
    if any_obs:
        metrics_dir = out_path / "job_metrics"
        metrics_dir.mkdir(parents=True, exist_ok=True)
    runner = MatrixJobRunner(
        metrics_dir=None if metrics_dir is None else str(metrics_dir),
        sample_interval=sample_interval,
    )

    if workers is None:
        workers = default_workers()
    # Same oversubscription clamp as parallel_experiment: more workers
    # than CPUs only adds scheduling churn.
    workers = min(max(1, workers), default_workers())

    tracer = None
    if trace:
        from repro.obs.trace import Tracer

        tracer = Tracer(seed=0)
    try:
        results_by_digest, stats = run_sweep(
            all_cells,
            workers=workers,
            manifest=manifest,
            timeout=timeout,
            retries=retries,
            job_runner=runner,
            progress=progress,
            tracer=tracer,
        )
    finally:
        manifest.close()

    if tracer is not None:
        from repro.obs.trace import write_spans

        write_spans(
            str(out_path / "spans.jsonl"),
            tracer,
            {"component": "trace", "matrix": config.name, "digest": digest},
        )

    results: Dict[str, List[CellResult]] = {}
    for exp in config.experiments:
        collected = []
        for cell in exp_cells[exp.name]:
            payload = results_by_digest.get(cell.digest())
            if payload is None:
                continue  # failed cell; accounted in stats.failed
            collected.append(
                CellResult(
                    spec=cell,
                    result=payload["result"],
                    resumed=cell.digest() in pre_done,
                )
            )
        results[exp.name] = collected

    obs_problems: List[str] = []
    metrics_paths: Dict[str, str] = {}
    for exp in config.experiments:
        if not exp.obs:
            continue
        merged = _merge_experiment_metrics(
            out_path, exp.name, results[exp.name], runner
        )
        if merged is not None:
            metrics_paths[exp.name] = merged
            obs_problems.extend(_validate_metrics(merged, exp.name))

    history_entries: List[Dict] = []
    if history:
        for cells in results.values():
            for cell in cells:
                if cell.resumed:
                    continue
                entry = _history_entry_for(cell)
                if entry is not None:
                    history_entries.append(append_entry(entry, history_path))

    verdicts = evaluate_checks(config, results)
    sha = git_sha()

    markdown = render_report(
        config,
        results,
        verdicts,
        sha=sha,
        matrix_digest=digest,
        resumed=sum(
            1 for cells in results.values() for c in cells if c.resumed
        ),
        metrics_paths=metrics_paths,
        history_path=history_path,
        root=root,
    )
    if stats.failed:
        markdown += "\n## Failed cells\n\n" + "\n".join(
            "- `%s` after %d attempt(s): %s"
            % (f.label, f.attempts, f.error)
            for f in stats.failed
        ) + "\n"
    if obs_problems:
        markdown += "\n## Observability schema problems\n\n" + "\n".join(
            "- %s" % p for p in obs_problems
        ) + "\n"
    report_path = str(out_path / REPORT_NAME)
    with open(report_path, "w", encoding="utf-8") as fh:
        fh.write(markdown)

    gates_path = str(out_path / GATES_NAME)
    with open(gates_path, "w", encoding="utf-8") as fh:
        json.dump(
            {
                "name": config.name,
                "sha": sha,
                "matrix_digest": digest,
                "cells": stats.total,
                "executed": stats.executed,
                "resumed": stats.skipped,
                "failed": [dataclasses.asdict(f) for f in stats.failed],
                "obs_problems": obs_problems,
                "gates": [v.to_dict() for v in verdicts],
            },
            fh,
            indent=2,
            sort_keys=True,
        )
        fh.write("\n")

    return MatrixRunReport(
        config=config,
        out_dir=str(out_path),
        digest=digest,
        sha=sha,
        results=results,
        verdicts=verdicts,
        stats=stats,
        obs_problems=obs_problems,
        history_entries=history_entries,
        report_path=report_path,
        gates_path=gates_path,
        markdown=markdown,
    )
