"""The perf-trend section of a matrix report (``results: - type: trend``).

``benchmarks/history.jsonl`` accumulates one SHA-keyed line per
benchmark run (see :mod:`repro.bench.history`).  This module turns that
trajectory into a markdown dashboard: one table per benchmark family
with the family's headline numbers over the last N commits, each cell
annotated with its change versus the previous entry, plus a regression
scan of the *latest* entry per family against the committed
``BENCH_*.json`` baselines.

Trend regressions are **report-only**: the binding verdicts come from
the config's ``checks:`` (which re-run the benchmarks and gate on the
same baselines).  The trend answers the adjacent question — "has this
number been drifting across commits?" — which a single-run gate cannot.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench.history import HISTORY_PATH, load_history

#: Headline columns per benchmark family: (label, extractor,
#: higher-is-better).  Extractors return None when the entry predates
#: the field, keeping old trajectory lines renderable.
_Extractor = Callable[[Dict[str, Any]], Optional[float]]


def _micro_rate(workload: str) -> _Extractor:
    def extract(entry: Dict[str, Any]) -> Optional[float]:
        cell = entry.get("workloads", {}).get(workload)
        return None if cell is None else cell.get("batch_writes_per_sec")

    return extract


def _service_shard_rate(entry: Dict[str, Any]) -> Optional[float]:
    shards = entry.get("shards")
    if not isinstance(shards, dict) or not shards:
        return None
    best = max(shards.values(), key=lambda r: r.get("writes_per_sec", 0.0))
    return best.get("writes_per_sec")


FAMILY_COLUMNS: Dict[str, List[Tuple[str, _Extractor, bool]]] = {
    "store-micro": [
        ("uniform w/s", _micro_rate("uniform"), True),
        ("hotcold w/s", _micro_rate("hotcold"), True),
        ("zipfian w/s", _micro_rate("zipfian"), True),
    ],
    "service": [
        ("serial w/s", lambda e: e.get("serial_writes_per_sec"), True),
        ("best shard w/s", _service_shard_rate, True),
    ],
    "service-serve": [
        ("w/s", lambda e: e.get("writes_per_sec"), True),
        ("Wamp spread", lambda e: e.get("wamp_spread"), False),
        ("queue p95", lambda e: e.get("queue_depth_p95"), False),
    ],
    "latency": [
        ("stall p99 ratio", lambda e: e.get("stall_p99_ratio"), False),
        (
            "incr Wamp",
            lambda e: e.get("modes", {})
            .get("incremental", {})
            .get("wamp_aggregate"),
            False,
        ),
    ],
}

#: Family display order in the report.
FAMILY_ORDER = ("store-micro", "service", "service-serve", "latency")


def group_by_family(
    history: Sequence[Dict[str, Any]]
) -> Dict[str, List[Dict[str, Any]]]:
    """History lines grouped by their ``benchmark`` field, file order
    (oldest first) preserved within each family."""
    families: Dict[str, List[Dict[str, Any]]] = {}
    for entry in history:
        families.setdefault(str(entry.get("benchmark")), []).append(entry)
    return families


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if abs(value) >= 1000:
        return "%.0f" % value
    return "%.4g" % value


def _delta(cur: Optional[float], prev: Optional[float]) -> str:
    if cur is None or prev is None or prev == 0:
        return ""
    change = (cur - prev) / abs(prev)
    if abs(change) < 0.0005:
        return " (=)"
    return " (%+.1f%%)" % (100 * change)


def render_family_table(
    family: str, entries: Sequence[Dict[str, Any]], last: int = 10
) -> List[str]:
    """Markdown trend table for one family's last N entries (newest
    last, so the table reads chronologically)."""
    columns = FAMILY_COLUMNS.get(family)
    if columns is None:
        # Unknown family: still show the shas so nothing silently
        # disappears from the dashboard.
        columns = []
    window = list(entries)[-last:]
    lines = [
        "| sha | " + " | ".join(label for label, _, _ in columns) + " |",
        "|---" * (1 + len(columns)) + "|",
    ]
    prev: Optional[Dict[str, Any]] = None
    for entry in window:
        row = ["`%s`" % entry.get("sha", "?")]
        for _, extract, _ in columns:
            value = extract(entry)
            row.append(
                _fmt(value) + _delta(value, extract(prev) if prev else None)
            )
        lines.append("| " + " | ".join(row) + " |")
        prev = entry
    return lines


def render_trend(
    history: Sequence[Dict[str, Any]], last: int = 10
) -> List[str]:
    """The full trend section (markdown lines)."""
    if not history:
        return ["_No benchmark history recorded yet._"]
    families = group_by_family(history)
    ordered = [f for f in FAMILY_ORDER if f in families]
    ordered += [f for f in sorted(families) if f not in FAMILY_ORDER]
    lines: List[str] = []
    for family in ordered:
        entries = families[family]
        lines.append("")
        lines.append(
            "### %s (%d entr%s)"
            % (family, len(entries), "y" if len(entries) == 1 else "ies")
        )
        lines.append("")
        lines.extend(render_family_table(family, entries, last=last))
    return lines


# ----------------------------------------------------------------------
# Regression scan vs committed baselines
# ----------------------------------------------------------------------

def detect_trend_regressions(
    history: Sequence[Dict[str, Any]],
    root: str = ".",
    rate_tolerance: float = 0.30,
    ratio_margin: float = 0.25,
) -> List[str]:
    """Compare each family's *latest* trajectory entry against the
    committed ``BENCH_*.json`` baselines (same tolerances the CI gates
    use).  Returns human-readable drift warnings; empty means the
    trajectory's newest points are consistent with the baselines."""
    import json

    families = group_by_family(history)
    warnings: List[str] = []

    latest = families.get("store-micro", [])
    store_path = os.path.join(root, "BENCH_store.json")
    if latest and os.path.exists(store_path):
        with open(store_path) as fh:
            base = json.load(fh)
        entry = latest[-1]
        for name, cell in base.get("workloads", {}).items():
            base_rate = cell["batch"]["writes_per_sec"]
            cur = entry.get("workloads", {}).get(name, {}).get(
                "batch_writes_per_sec"
            )
            if cur is not None and cur < base_rate * (1.0 - rate_tolerance):
                warnings.append(
                    "store-micro %s: latest %.0f w/s is >%.0f%% below the "
                    "committed baseline %.0f (sha %s)"
                    % (name, cur, 100 * rate_tolerance, base_rate,
                       entry.get("sha", "?"))
                )

    latest = families.get("latency", [])
    lat_path = os.path.join(root, "BENCH_latency.json")
    if latest and os.path.exists(lat_path):
        with open(lat_path) as fh:
            base = json.load(fh)
        entry = latest[-1]
        base_ratio = base.get("stall_p99_ratio")
        ratio = entry.get("stall_p99_ratio")
        if (
            base_ratio is not None
            and ratio is not None
            and ratio > base_ratio + ratio_margin
        ):
            warnings.append(
                "latency: latest stall p99 ratio %.3f exceeds the committed "
                "baseline %.3f by more than %.2f (sha %s)"
                % (ratio, base_ratio, ratio_margin, entry.get("sha", "?"))
            )

    latest = families.get("service", [])
    svc_path = os.path.join(root, "BENCH_service.json")
    if latest and os.path.exists(svc_path):
        with open(svc_path) as fh:
            base = json.load(fh)
        entry = latest[-1]
        base_serial = base.get("serial", {}).get("writes_per_sec")
        cur_serial = entry.get("serial_writes_per_sec")
        if (
            base_serial is not None
            and cur_serial is not None
            and cur_serial < base_serial * (1.0 - rate_tolerance)
        ):
            warnings.append(
                "service: latest serial %.0f w/s is >%.0f%% below the "
                "committed baseline %.0f (sha %s)"
                % (cur_serial, 100 * rate_tolerance, base_serial,
                   entry.get("sha", "?"))
            )

    return warnings


def load_trend(
    path: str = HISTORY_PATH, last: int = 10, root: str = "."
) -> Tuple[List[str], List[str]]:
    """Convenience: (markdown lines, drift warnings) for a history file."""
    history = load_history(path)
    return render_trend(history, last=last), detect_trend_regressions(
        history, root=root
    )
