"""Markdown report rendering for matrix runs (``report.md``).

One matrix run produces one self-contained markdown document:

1. **Header** — config name/description, git SHA, matrix digest, cell
   counts (run vs resumed).
2. **Gates** — one table row per ``checks:`` verdict, advisory
   failures marked distinctly from blocking ones.
3. **Results** — the declared ``results:`` sections: pivoted
   comparison tables (``rows:`` × ``columns:`` of a metric,
   seed-averaged), ASCII convergence plots from the run's merged
   schema-v1 metrics, and the SHA-keyed perf trend over
   ``benchmarks/history.jsonl``.  Every experiment also gets a default
   flat table, so a config with no ``results:`` block still renders
   something useful.

Plots are the repo's ASCII charts inside code fences — the report stays
reviewable in a terminal, a PR diff, and a CI artifact without any
imaging dependency.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.bench.charts import line_plot
from repro.matrix.cells import CellResult, cell_metric
from repro.matrix.config import MatrixConfig, ResultDef
from repro.matrix.gates import GateResult
from repro.matrix.trend import detect_trend_regressions, render_trend


def _fmt_value(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if abs(value) >= 1000:
        return "%.0f" % value
    return "%.4g" % value


def _seed_mean(
    cells: Sequence[CellResult], metric: str
) -> Dict[tuple, float]:
    """Seed-averaged metric keyed by the cells' non-seed axes."""
    sums: Dict[tuple, List[float]] = {}
    for cell in cells:
        key = tuple(
            sorted((k, v) for k, v in cell.axes.items() if k != "seed")
        )
        try:
            sums.setdefault(key, []).append(cell_metric(cell, metric))
        except KeyError:
            continue
    return {k: sum(v) / len(v) for k, v in sums.items() if v}


def render_gates_table(verdicts: Sequence[GateResult]) -> List[str]:
    if not verdicts:
        return ["_No checks declared._"]
    lines = [
        "| experiment | check | type | verdict | detail |",
        "|---|---|---|---|---|",
    ]
    for v in verdicts:
        if v.passed:
            verdict = "pass"
        elif v.advisory:
            verdict = "**fail** (advisory)"
        else:
            verdict = "**FAIL**"
        detail = v.detail.replace("|", "\\|")
        if len(detail) > 160:
            detail = detail[:157] + "..."
        lines.append(
            "| %s | %s | %s | %s | %s |"
            % (v.experiment, v.name, v.type, verdict, detail)
        )
    return lines


def _axis_values(
    cells: Sequence[CellResult], axis: str
) -> List[Any]:
    """Distinct values of one axis, first-seen (= spec) order."""
    seen: List[Any] = []
    for cell in cells:
        value = cell.axes.get(axis)
        if value not in seen:
            seen.append(value)
    return seen


def render_pivot_table(
    cells: Sequence[CellResult], res: ResultDef
) -> List[str]:
    """``rows:`` × ``columns:`` pivot of a seed-averaged metric."""
    means = _seed_mean(cells, res.metric)
    if not means:
        return ["_No cells carry metric `%s`._" % res.metric]
    row_values = _axis_values(cells, res.rows)
    col_values = _axis_values(cells, res.columns) if res.columns else [None]

    def lookup(rv: Any, cv: Any) -> Optional[float]:
        for key, value in means.items():
            axes = dict(key)
            if axes.get(res.rows) != rv:
                continue
            if res.columns and axes.get(res.columns) != cv:
                continue
            return value
        return None

    header = res.columns or res.metric
    lines = [
        "| %s \\ %s | " % (res.rows, header)
        + " | ".join(
            _fmt_value(cv) if isinstance(cv, float) else str(cv)
            for cv in (col_values if res.columns else [res.metric])
        )
        + " |",
        "|---" * (1 + len(col_values)) + "|",
    ]
    for rv in row_values:
        row = [str(rv)]
        for cv in col_values:
            row.append(_fmt_value(lookup(rv, cv)))
        lines.append("| " + " | ".join(row) + " |")
    return lines


def render_flat_table(
    cells: Sequence[CellResult], metric: str = "wamp"
) -> List[str]:
    """Default per-experiment table: one row per non-seed axes point."""
    means = _seed_mean(cells, metric)
    if not means:
        return ["_No cells carry metric `%s`._" % metric]
    axis_names: List[str] = []
    for key in means:
        for name, _ in key:
            if name not in axis_names:
                axis_names.append(name)
    # Drop axes that never vary to keep the table narrow; keep at least
    # one column so every row is identifiable.
    varying = [
        n
        for n in axis_names
        if len({dict(k).get(n) for k in means}) > 1
    ] or axis_names[:1]
    lines = [
        "| " + " | ".join(varying) + " | %s |" % metric,
        "|---" * (len(varying) + 1) + "|",
    ]
    ordered = []
    seen = set()
    for cell in cells:
        key = tuple(
            sorted((k, v) for k, v in cell.axes.items() if k != "seed")
        )
        if key in means and key not in seen:
            seen.add(key)
            ordered.append(key)
    for key in ordered:
        axes = dict(key)
        row = [str(axes.get(n, "-")) for n in varying]
        row.append(_fmt_value(means[key]))
        lines.append("| " + " | ".join(row) + " |")
    return lines


def render_convergence(
    metrics_path: str, title: str, max_series: int = 6
) -> List[str]:
    """ASCII windowed-Wamp convergence plot from a merged schema-v1
    metrics file (one series per run block)."""
    import os

    from repro.obs.export import aggregate_convergence, load_rows

    if not os.path.exists(metrics_path):
        return [
            "_No metrics captured (experiment has `obs: false`, or every "
            "cell was resumed from the manifest)._"
        ]
    blocks = aggregate_convergence(load_rows(metrics_path))
    blocks = [b for b in blocks if b["clock"]]
    if not blocks:
        return ["_Metrics file has no sample rows._"]
    clipped = blocks[:max_series]
    # Series share one x-axis; runs of equal length line up exactly and
    # shorter runs simply stop early (the plot pads with the grid).
    longest = max(clipped, key=lambda b: len(b["clock"]))
    series: Dict[str, Sequence[float]] = {}
    for i, block in enumerate(clipped):
        run = block.get("run") or {}
        label = str(run.get("label", run.get("policy", "run%d" % i)))[:24]
        if label in series:
            label = "%s#%d" % (label, i)
        series[label] = block["wamp_win"]
    chart = line_plot(
        longest["clock"],
        series,
        title=title,
        height=12,
        width=60,
    )
    lines = ["```", chart, "```"]
    if len(blocks) > max_series:
        lines.append(
            "_%d of %d runs plotted._" % (max_series, len(blocks))
        )
    return lines


def render_report(
    config: MatrixConfig,
    results: Mapping[str, Sequence[CellResult]],
    verdicts: Sequence[GateResult],
    sha: str,
    matrix_digest: str,
    resumed: int,
    metrics_paths: Optional[Mapping[str, str]] = None,
    history_path: Optional[str] = None,
    root: str = ".",
) -> str:
    """The full markdown report for one matrix run."""
    metrics_paths = metrics_paths or {}
    total = sum(len(v) for v in results.values())
    lines = [
        "# Matrix run: %s" % config.name,
        "",
    ]
    if config.description:
        lines += [config.description, ""]
    lines += [
        "- commit: `%s`" % sha,
        "- matrix digest: `%s`" % matrix_digest,
        "- cells: %d (%d executed, %d resumed)"
        % (total, total - resumed, resumed),
        "- config: `%s`" % config.source,
        "",
        "## Gates",
        "",
    ]
    lines += render_gates_table(verdicts)

    declared = list(config.results)
    covered = {
        r.experiment for r in declared if r.type == "table" and r.experiment
    }
    lines += ["", "## Results"]
    for exp in config.experiments:
        cells = list(results.get(exp.name, ()))
        if not cells:
            continue
        if exp.name not in covered:
            metric = "wamp" if exp.kind == "sim" else None
            if metric:
                lines += ["", "### %s" % exp.name, ""]
                lines += render_flat_table(cells, metric)
    for res in declared:
        if res.type == "table":
            cells = list(results.get(res.experiment, ()))
            lines += ["", "### %s" % res.experiment, ""]
            if res.rows:
                lines += render_pivot_table(cells, res)
            else:
                lines += render_flat_table(cells, res.metric)
        elif res.type == "convergence":
            lines += ["", "### %s: convergence" % res.experiment, ""]
            lines += render_convergence(
                metrics_paths.get(res.experiment, ""),
                title="windowed Wamp vs clock (%s)" % res.experiment,
            )
        elif res.type == "trend":
            lines += ["", "## Perf trend", ""]
            if history_path is None:
                from repro.bench.history import HISTORY_PATH

                history_path = HISTORY_PATH
            from repro.bench.history import load_history

            history = load_history(history_path)
            lines += render_trend(history, last=res.last)
            warnings = detect_trend_regressions(history, root=root)
            if warnings:
                lines += ["", "**Trajectory drift (report-only):**", ""]
                lines += ["- %s" % w for w in warnings]
    lines.append("")
    return "\n".join(lines)
