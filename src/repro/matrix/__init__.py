"""Declarative experiment matrices (``repro bench run config.yml``).

The matrix subsystem turns a YAML/JSON experiment config into
content-addressed cells, executes them through the sweep executor (with
resume), evaluates declarative gates — empirical baselines and the
mean-field analytical check — and renders a markdown regression report
with an SHA-keyed perf trend.  See EXPERIMENTS.md for the authoring
guide.
"""

from repro.matrix.cells import (
    CellResult,
    CellSpec,
    MatrixJobRunner,
    cells_for_experiment,
    matrix_digest,
)
from repro.matrix.config import (
    CheckDef,
    ExperimentDef,
    MatrixConfig,
    MatrixConfigError,
    ResultDef,
    default_out_dir,
    expand_experiment,
    load_config,
    parse_config,
)
from repro.matrix.gates import (
    GateResult,
    blocking_failures,
    evaluate_checks,
)
from repro.matrix.meanfield import (
    MeanFieldError,
    MeanFieldPrediction,
    hotcold_meanfield,
    predict_for_workload,
    uniform_meanfield,
)
from repro.matrix.report import render_report
from repro.matrix.runner import MatrixRunReport, run_matrix
from repro.matrix.trend import (
    detect_trend_regressions,
    load_trend,
    render_trend,
)

__all__ = [
    "CellResult",
    "CellSpec",
    "CheckDef",
    "ExperimentDef",
    "GateResult",
    "MatrixConfig",
    "MatrixConfigError",
    "MatrixJobRunner",
    "MatrixRunReport",
    "MeanFieldError",
    "MeanFieldPrediction",
    "ResultDef",
    "blocking_failures",
    "cells_for_experiment",
    "default_out_dir",
    "detect_trend_regressions",
    "evaluate_checks",
    "expand_experiment",
    "hotcold_meanfield",
    "load_config",
    "load_trend",
    "matrix_digest",
    "parse_config",
    "predict_for_workload",
    "render_report",
    "render_trend",
    "run_matrix",
    "uniform_meanfield",
]
