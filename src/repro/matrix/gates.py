"""Declarative gate evaluation for matrix runs (the ``checks:`` block).

Every check is evaluated *after* the matrix has run, over plain
:class:`~repro.matrix.cells.CellResult` values — a pure function of
(config, results, baseline files).  Tests fabricate cell results and
exercise every verdict without running a single simulation, and the CLI
gets one place that decides pass/fail for the whole run.

Check types
-----------

``metric``
    Bound a result metric (sim shorthand like ``wamp`` or a dotted path
    into the raw result) with ``min:`` and/or ``max:`` on every matching
    cell.

``baseline``
    Compare a metric against the same dotted path inside a committed
    JSON baseline file, within a fractional ``tolerance``.
    ``direction: min`` means higher-is-better (throughput must not drop
    below baseline × (1 − tol)); ``direction: max`` means
    lower-is-better (Wamp must not exceed baseline × (1 + tol)).

``meanfield``
    The analytical gate (arXiv:1303.4816; see
    :mod:`repro.matrix.meanfield`).  Matching sim cells are grouped by
    their non-seed axes, seed-averaged, and compared to the closed-form
    Wamp.  Uniform predictions are exact steady states — the seed mean
    must agree within ``tolerance`` both ways.  Hot/cold predictions
    are the optimal-split *bound* — the seed mean must not beat the
    bound by more than ``tolerance`` (a simulator beating a proven
    floor is miscounting), while any gap above it is legal.

``micro-baseline`` / ``service-floor`` / ``latency-baseline``
    Delegate to the benchmark suites' own committed-baseline checkers
    (:func:`repro.bench.micro.check_against_baseline`,
    :func:`repro.service.bench.check_service_report`,
    :func:`repro.service.latency.check_latency_regression`), so a
    matrix-driven CI job reproduces exactly the verdicts the dedicated
    smoke jobs used to compute.

``sweep-scaling``
    Delegates to :func:`repro.sweep.bench.check_sweep_report`: the
    pooled sweep's output must be byte-identical to the serial run,
    and the pool-vs-serial speedup must clear a hardware-conditional
    floor (2.0x with >= 4 effective workers on >= 4 CPUs, 0.95x when
    the executor clamp shrank the pool to one worker, 1.0x between).

A check with ``advisory: true`` reports its verdict but never fails the
run — the pattern the service gate already uses under ``--quick``,
where wall-clock throughput on shared CI runners is informative, not
binding.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.matrix.cells import CellResult, cell_metric, dig, matches_where
from repro.matrix.config import CheckDef, MatrixConfig, MatrixConfigError
from repro.matrix.meanfield import MeanFieldError, predict_for_workload

#: Default fractional tolerances per check type, used when the config
#: does not set one.  The mean-field tolerance is documented in
#: EXPERIMENTS.md next to the agreement measurement that justifies it.
DEFAULT_TOLERANCES = {
    "baseline": 0.30,
    "meanfield": 0.12,
    "micro-baseline": 0.30,
    "latency-baseline": 0.25,
}


@dataclasses.dataclass(frozen=True)
class GateResult:
    """The verdict of one check over one experiment's cells."""

    experiment: str
    name: str
    type: str
    passed: bool
    advisory: bool
    #: Human-readable verdict detail (one line per problem when failed).
    detail: str
    #: Headline observed/expected numbers where the check has them.
    observed: Optional[float] = None
    expected: Optional[float] = None

    @property
    def blocking(self) -> bool:
        """True when this result should fail the run."""
        return not self.passed and not self.advisory

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


def _load_baseline(path: str) -> Dict:
    try:
        with open(path) as fh:
            return json.load(fh)
    except OSError as exc:
        raise MatrixConfigError(
            "cannot read baseline file %s: %s" % (path, exc)
        )
    except ValueError as exc:
        raise MatrixConfigError(
            "baseline file %s is not valid JSON: %s" % (path, exc)
        )


def _matching(
    cells: Sequence[CellResult], check: CheckDef
) -> List[CellResult]:
    return [c for c in cells if matches_where(c.axes, check.where)]


def _result(
    experiment: str,
    check: CheckDef,
    passed: bool,
    detail: str,
    observed: Optional[float] = None,
    expected: Optional[float] = None,
) -> GateResult:
    return GateResult(
        experiment=experiment,
        name=check.name,
        type=check.type,
        passed=passed,
        advisory=check.advisory,
        detail=detail,
        observed=observed,
        expected=expected,
    )


def _no_match(experiment: str, check: CheckDef) -> GateResult:
    """A check whose ``where:`` selects nothing is a config bug, and it
    fails loudly instead of silently passing."""
    return _result(
        experiment,
        check,
        passed=False,
        detail="where: %r matched no cells" % (dict(check.where),),
    )


def _check_metric(
    experiment: str, check: CheckDef, cells: Sequence[CellResult]
) -> GateResult:
    problems = []
    values = []
    for cell in cells:
        try:
            value = cell_metric(cell, check.metric)
        except KeyError:
            problems.append(
                "%s: result has no metric %r" % (cell.spec.label, check.metric)
            )
            continue
        values.append(value)
        if check.min is not None and value < check.min:
            problems.append(
                "%s: %s=%.4f below min %.4f"
                % (cell.spec.label, check.metric, value, check.min)
            )
        if check.max is not None and value > check.max:
            problems.append(
                "%s: %s=%.4f above max %.4f"
                % (cell.spec.label, check.metric, value, check.max)
            )
    observed = sum(values) / len(values) if values else None
    if problems:
        return _result(
            experiment, check, False, "; ".join(problems), observed=observed
        )
    return _result(
        experiment,
        check,
        True,
        "%d cell(s) within bounds" % len(cells),
        observed=observed,
    )


def _check_baseline(
    experiment: str, check: CheckDef, cells: Sequence[CellResult]
) -> GateResult:
    baseline = _load_baseline(check.file)
    try:
        expected = float(dig(baseline, check.metric))
    except (KeyError, TypeError, ValueError):
        return _result(
            experiment,
            check,
            False,
            "baseline %s has no numeric metric %r" % (check.file, check.metric),
        )
    tolerance = (
        check.tolerance
        if check.tolerance is not None
        else DEFAULT_TOLERANCES["baseline"]
    )
    problems = []
    values = []
    for cell in cells:
        try:
            value = cell_metric(cell, check.metric)
        except KeyError:
            problems.append(
                "%s: result has no metric %r" % (cell.spec.label, check.metric)
            )
            continue
        values.append(value)
        if check.direction == "min":
            floor = expected * (1.0 - tolerance)
            if value < floor:
                problems.append(
                    "%s: %s=%.4f dropped below baseline %.4f - %.0f%%"
                    % (cell.spec.label, check.metric, value, expected,
                       100 * tolerance)
                )
        else:
            ceiling = expected * (1.0 + tolerance)
            if value > ceiling:
                problems.append(
                    "%s: %s=%.4f rose above baseline %.4f + %.0f%%"
                    % (cell.spec.label, check.metric, value, expected,
                       100 * tolerance)
                )
    observed = sum(values) / len(values) if values else None
    if problems:
        return _result(
            experiment, check, False, "; ".join(problems),
            observed=observed, expected=expected,
        )
    return _result(
        experiment,
        check,
        True,
        "%d cell(s) within %.0f%% of %s:%s"
        % (len(cells), 100 * tolerance, check.file, check.metric),
        observed=observed,
        expected=expected,
    )


def _group_key(cell: CellResult) -> Tuple:
    return tuple(
        sorted((k, v) for k, v in cell.axes.items() if k != "seed")
    )


def _check_meanfield(
    experiment: str, check: CheckDef, cells: Sequence[CellResult]
) -> GateResult:
    from repro.matrix.cells import sim_metrics
    from repro.sweep.spec import JobSpec

    tolerance = (
        check.tolerance
        if check.tolerance is not None
        else DEFAULT_TOLERANCES["meanfield"]
    )
    groups: Dict[Tuple, List[CellResult]] = {}
    for cell in cells:
        groups.setdefault(_group_key(cell), []).append(cell)
    problems = []
    lines = []
    observed = expected = None
    for key in sorted(groups):
        members = groups[key]
        spec = JobSpec.from_dict(members[0].spec.payload)
        try:
            prediction = predict_for_workload(
                spec.workload,
                spec.config.fill_factor,
                n_pages=spec.config.user_pages,
            )
        except MeanFieldError as exc:
            problems.append("%s: %s" % (members[0].spec.label, exc))
            continue
        sim_wamp = sum(
            sim_metrics(m.result)["wamp"] for m in members
        ) / len(members)
        observed, expected = sim_wamp, prediction.wamp
        rel = (sim_wamp - prediction.wamp) / prediction.wamp
        label = members[0].spec.label.rsplit("/s", 1)[0]
        if prediction.is_bound:
            # The closed form is a proven floor: simulated Wamp beating
            # it (beyond tolerance) means the simulator is miscounting.
            if rel < -tolerance:
                problems.append(
                    "%s: simulated Wamp %.4f beats the analytical bound "
                    "%.4f by %.1f%% (> %.0f%% tolerance)"
                    % (label, sim_wamp, prediction.wamp, -100 * rel,
                       100 * tolerance)
                )
            else:
                lines.append(
                    "%s: Wamp %.4f vs bound %.4f (%+.1f%%)"
                    % (label, sim_wamp, prediction.wamp, 100 * rel)
                )
        else:
            if abs(rel) > tolerance:
                problems.append(
                    "%s: simulated Wamp %.4f vs analytical %.4f differs "
                    "%.1f%% (> %.0f%% tolerance)"
                    % (label, sim_wamp, prediction.wamp, 100 * abs(rel),
                       100 * tolerance)
                )
            else:
                lines.append(
                    "%s: Wamp %.4f vs analytical %.4f (%+.1f%%)"
                    % (label, sim_wamp, prediction.wamp, 100 * rel)
                )
    if problems:
        return _result(
            experiment, check, False, "; ".join(problems),
            observed=observed, expected=expected,
        )
    return _result(
        experiment, check, True, "; ".join(lines),
        observed=observed, expected=expected,
    )


def _check_micro_baseline(
    experiment: str, check: CheckDef, cells: Sequence[CellResult]
) -> GateResult:
    from repro.bench.micro import check_against_baseline

    baseline = _load_baseline(check.file)
    tolerance = (
        check.tolerance
        if check.tolerance is not None
        else DEFAULT_TOLERANCES["micro-baseline"]
    )
    problems = []
    for cell in cells:
        for problem in check_against_baseline(
            cell.result, baseline, tolerance=tolerance
        ):
            problems.append("%s: %s" % (cell.spec.label, problem))
    if problems:
        return _result(experiment, check, False, "; ".join(problems))
    return _result(
        experiment,
        check,
        True,
        "%d run(s) within %.0f%% of %s"
        % (len(cells), 100 * tolerance, check.file),
    )


def _check_service_floor(
    experiment: str, check: CheckDef, cells: Sequence[CellResult]
) -> GateResult:
    from repro.service.bench import check_service_report

    problems = []
    for cell in cells:
        for problem in check_service_report(cell.result):
            problems.append("%s: %s" % (cell.spec.label, problem))
    if problems:
        return _result(experiment, check, False, "; ".join(problems))
    return _result(
        experiment,
        check,
        True,
        "%d run(s) at or above the serial baseline" % len(cells),
    )


def _check_latency_baseline(
    experiment: str, check: CheckDef, cells: Sequence[CellResult]
) -> GateResult:
    from repro.service.latency import check_latency_regression

    baseline = _load_baseline(check.file)
    margin = (
        check.tolerance
        if check.tolerance is not None
        else DEFAULT_TOLERANCES["latency-baseline"]
    )
    problems = []
    for cell in cells:
        for problem in check_latency_regression(
            cell.result, baseline, margin=margin
        ):
            problems.append("%s: %s" % (cell.spec.label, problem))
    if problems:
        return _result(experiment, check, False, "; ".join(problems))
    return _result(
        experiment,
        check,
        True,
        "%d run(s) hold the stall gate vs %s" % (len(cells), check.file),
    )


def _check_sweep_scaling(
    experiment: str, check: CheckDef, cells: Sequence[CellResult]
) -> GateResult:
    from repro.sweep.bench import check_sweep_report

    problems = []
    observed = None
    for cell in cells:
        report = cell.result
        speedup = report.get("speedup_pool_vs_serial")
        if speedup is not None:
            observed = float(speedup)
        for problem in check_sweep_report(report):
            problems.append("%s: %s" % (cell.spec.label, problem))
    if problems:
        return _result(
            experiment, check, False, "; ".join(problems), observed=observed
        )
    return _result(
        experiment,
        check,
        True,
        "%d run(s) identical across pool modes and above the speedup floor"
        % len(cells),
        observed=observed,
    )


def _check_slo(
    experiment: str, check: CheckDef, cells: Sequence[CellResult]
) -> GateResult:
    """Burn-rate ceiling over an embedded SLOTracker report.

    ``metric:`` is the dotted path to the report inside the cell result
    (the latency bench embeds one per mode, e.g.
    ``modes.incremental.slo``); ``max:`` is the sustained-burn ceiling,
    default 1.0 — burning the error budget no faster than allotted.
    """
    ceiling = check.max if check.max is not None else 1.0
    problems = []
    observed = None
    for cell in cells:
        try:
            report = dig(cell.result, check.metric)
        except (KeyError, TypeError):
            problems.append(
                "%s: result has no SLO report at %r"
                % (cell.spec.label, check.metric)
            )
            continue
        if not isinstance(report, Mapping) or "sustained_burn" not in report:
            problems.append(
                "%s: %r is not an SLO report (no sustained_burn)"
                % (cell.spec.label, check.metric)
            )
            continue
        burn = float(report["sustained_burn"])
        observed = burn if observed is None else max(observed, burn)
        if burn > ceiling:
            problems.append(
                "%s: sustained burn %.3f exceeds %.2f "
                "(objective %.3f, threshold %.1f pages, %s bad of %s samples)"
                % (
                    cell.spec.label,
                    burn,
                    ceiling,
                    float(report.get("objective", 0.0)),
                    float(report.get("threshold", 0.0)),
                    report.get("bad", "?"),
                    report.get("samples", "?"),
                )
            )
    if problems:
        return _result(
            experiment,
            check,
            False,
            "; ".join(problems),
            observed=observed,
            expected=ceiling,
        )
    return _result(
        experiment,
        check,
        True,
        "%d cell(s) under the burn ceiling %.2f" % (len(cells), ceiling),
        observed=observed,
        expected=ceiling,
    )


_EVALUATORS = {
    "metric": _check_metric,
    "baseline": _check_baseline,
    "meanfield": _check_meanfield,
    "micro-baseline": _check_micro_baseline,
    "service-floor": _check_service_floor,
    "latency-baseline": _check_latency_baseline,
    "sweep-scaling": _check_sweep_scaling,
    "slo": _check_slo,
}


def evaluate_checks(
    config: MatrixConfig,
    results: Mapping[str, Sequence[CellResult]],
) -> List[GateResult]:
    """Evaluate every experiment's ``checks:`` over its cell results.

    ``results`` maps experiment name → cell results (the runner builds
    it; tests fabricate it).  Returns one :class:`GateResult` per
    check, in config order.
    """
    verdicts: List[GateResult] = []
    for exp in config.experiments:
        cells = list(results.get(exp.name, ()))
        for check in exp.checks:
            matching = _matching(cells, check)
            if not matching:
                verdicts.append(_no_match(exp.name, check))
                continue
            verdicts.append(_EVALUATORS[check.type](exp.name, check, matching))
    return verdicts


def blocking_failures(verdicts: Sequence[GateResult]) -> List[GateResult]:
    """The subset of verdicts that must fail the run."""
    return [v for v in verdicts if v.blocking]
