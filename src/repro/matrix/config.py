"""Declarative experiment-matrix configs (``repro bench run config.yml``).

A config is a YAML (or JSON) document describing a set of named
**experiments**, each expanded from a parameter ``matrix:`` into
content-addressed cells, plus declarative ``checks:`` (gates) and
``results:`` (report sections).  The full grammar::

    name: ci-smoke                  # required; names the run
    description: one line for the report header
    experiments:                    # required; at least one
      - name: fig5                  # required; unique per config
        kind: sim                   # sim (default) | micro | service | latency | sweep
        matrix:                     # axes; each value list becomes a grid
          policy: [age, mdc]        #   dimension.  Scalars are allowed and
          dist: [uniform]           #   mean a fixed (non-swept) axis.
          fill: [0.5, 0.8]
        samples: 2                  # seeds seed, seed+1, ... per grid point
        seed: 0                     # base seed (default 0)
        params:                     # kind-specific fixed parameters
          write_multiplier: 6.25
        obs: true                   # sim only: record schema-v1 rows
        checks:                     # per-experiment gates
          - type: meanfield         # analytical closed-form Wamp
            where: {policy: age, dist: uniform}
            tolerance: 0.10
          - type: metric            # bound a result metric
            metric: wamp
            where: {policy: mdc}
            max: 2.0
    results:                        # optional report sections; a default
      - type: table                 #   table per experiment is always
        experiment: fig5            #   rendered
        rows: policy
        columns: fill
        metric: wamp
      - type: convergence
        experiment: fig5
      - type: trend                 # history.jsonl perf trend
        last: 10

Parsing is strict: unknown keys, wrong types, and out-of-range values
raise :class:`MatrixConfigError` with the config path of the offending
node (``experiments[1].matrix.fill``), so a typo'd config fails fast
with an actionable message instead of silently running the wrong grid.

Grid expansion is deterministic and *spec-order stable*: axes expand in
declaration order (later axes vary fastest), seeds innermost — the cell
list, and therefore every cell digest and the matrix digest, depends
only on the config content.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import os
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple


class MatrixConfigError(Exception):
    """Raised for unparseable or invalid matrix configs."""


#: Experiment kinds and the runner each maps to.
KINDS = ("sim", "micro", "service", "latency", "sweep")

#: Check types understood by :mod:`repro.matrix.gates`.
CHECK_TYPES = (
    "metric",
    "baseline",
    "meanfield",
    "micro-baseline",
    "service-floor",
    "latency-baseline",
    "sweep-scaling",
    "slo",
)

#: Result-section types understood by :mod:`repro.matrix.report`.
RESULT_TYPES = ("table", "convergence", "trend")

#: Axis/param names accepted for ``kind: sim`` cells, with defaults
#: (``None`` = required or derived).  ``dist`` uses the experiment
#: shorthand of :func:`repro.bench.experiments.make_workload`.
SIM_PARAMS: Dict[str, Any] = {
    "policy": None,
    "dist": "uniform",
    "fill": 0.8,
    "n_segments": 512,
    "segment_units": 64,
    "clean_trigger": 4,
    "clean_batch": 8,
    "sort_buffer": 0,
    "reserve_compensation": False,
    "write_multiplier": 25.0,
    "total_writes": None,
    "measure_fraction": 0.5,
}

#: Parameters accepted per bench kind (defaults mirror the CLI).
MICRO_PARAMS: Dict[str, Any] = {
    "writes": 60_000,
    "trials": 3,
    "policy": "greedy",
    "workloads": ("uniform", "hotcold", "zipfian"),
}
SERVICE_PARAMS: Dict[str, Any] = {
    "shards": (1, 2, 4),
    "ops": None,
    "quick": False,
}
LATENCY_PARAMS: Dict[str, Any] = {
    "ops": None,
    "quick": False,
}
SWEEP_PARAMS: Dict[str, Any] = {
    "grid": "fig5",
    "dist": "zipf-80-20",
    "quick": True,
    "workers": 4,
}

_BENCH_PARAMS = {
    "micro": MICRO_PARAMS,
    "service": SERVICE_PARAMS,
    "latency": LATENCY_PARAMS,
    "sweep": SWEEP_PARAMS,
}


@dataclasses.dataclass(frozen=True)
class CheckDef:
    """One declarative gate."""

    type: str
    name: str
    where: Mapping[str, Any] = dataclasses.field(default_factory=dict)
    #: Fractional tolerance for baseline / meanfield comparisons.
    tolerance: Optional[float] = None
    #: Bounds for ``metric`` checks.
    metric: Optional[str] = None
    min: Optional[float] = None
    max: Optional[float] = None
    #: Baseline file for baseline-flavoured checks.
    file: Optional[str] = None
    #: Higher-is-better (``min``) or lower-is-better (``max``) for the
    #: generic ``baseline`` check.
    direction: str = "min"
    #: A failing advisory check is reported but does not fail the run.
    advisory: bool = False


@dataclasses.dataclass(frozen=True)
class ResultDef:
    """One declarative report section."""

    type: str
    experiment: Optional[str] = None
    rows: Optional[str] = None
    columns: Optional[str] = None
    metric: str = "wamp"
    last: int = 10


@dataclasses.dataclass(frozen=True)
class ExperimentDef:
    """One named experiment: a grid of cells of one kind."""

    name: str
    kind: str
    matrix: Mapping[str, Tuple[Any, ...]]
    params: Mapping[str, Any]
    samples: int
    seed: int
    obs: bool
    checks: Tuple[CheckDef, ...]

    def axis_names(self) -> List[str]:
        """Swept axes (list-valued matrix entries), declaration order."""
        return [k for k, v in self.matrix.items() if len(v) > 1]


@dataclasses.dataclass(frozen=True)
class MatrixConfig:
    """A parsed, validated experiment-matrix config."""

    name: str
    description: str
    experiments: Tuple[ExperimentDef, ...]
    results: Tuple[ResultDef, ...]
    source: str = "<memory>"

    def experiment(self, name: str) -> ExperimentDef:
        for exp in self.experiments:
            if exp.name == name:
                return exp
        raise MatrixConfigError(
            "no experiment named %r in %s (have: %s)"
            % (name, self.source, ", ".join(e.name for e in self.experiments))
        )


# ----------------------------------------------------------------------
# Strict-walk helpers
# ----------------------------------------------------------------------

def _fail(path: str, message: str) -> "MatrixConfigError":
    return MatrixConfigError("%s: %s" % (path, message))


def _require_mapping(node: Any, path: str) -> Mapping:
    if not isinstance(node, Mapping):
        raise _fail(path, "expected a mapping, got %s" % type(node).__name__)
    return node


def _require_list(node: Any, path: str) -> List:
    if not isinstance(node, list):
        raise _fail(path, "expected a list, got %s" % type(node).__name__)
    return node


def _require_str(node: Any, path: str) -> str:
    if not isinstance(node, str) or not node.strip():
        raise _fail(path, "expected a non-empty string, got %r" % (node,))
    return node


def _require_int(node: Any, path: str, minimum: Optional[int] = None) -> int:
    if isinstance(node, bool) or not isinstance(node, int):
        raise _fail(path, "expected an integer, got %r" % (node,))
    if minimum is not None and node < minimum:
        raise _fail(path, "must be >= %d, got %d" % (minimum, node))
    return node


def _require_number(node: Any, path: str) -> float:
    if isinstance(node, bool) or not isinstance(node, (int, float)):
        raise _fail(path, "expected a number, got %r" % (node,))
    return float(node)


def _require_bool(node: Any, path: str) -> bool:
    if not isinstance(node, bool):
        raise _fail(path, "expected true/false, got %r" % (node,))
    return node


def _reject_unknown(node: Mapping, allowed: Sequence[str], path: str) -> None:
    unknown = [k for k in node if k not in allowed]
    if unknown:
        raise _fail(
            path,
            "unknown key(s) %s (allowed: %s)"
            % (", ".join(map(repr, sorted(unknown))), ", ".join(allowed)),
        )


def _scalar(node: Any, path: str) -> Any:
    if node is not None and not isinstance(node, (str, int, float, bool)):
        raise _fail(
            path, "expected a scalar value, got %s" % type(node).__name__
        )
    return node


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------

def load_config(path: str) -> MatrixConfig:
    """Load and validate a config from a ``.yml``/``.yaml``/``.json``
    file.  YAML needs the ``pyyaml`` package; the error says so rather
    than leaving an ImportError for the caller to decode."""
    try:
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
    except OSError as exc:
        raise MatrixConfigError("cannot read config %s: %s" % (path, exc))
    if path.endswith(".json"):
        try:
            raw = json.loads(text)
        except ValueError as exc:
            raise MatrixConfigError("%s is not valid JSON: %s" % (path, exc))
    else:
        try:
            import yaml
        except ImportError:
            raise MatrixConfigError(
                "parsing %s needs the pyyaml package (pip install pyyaml), "
                "or rewrite the config as .json" % path
            )
        try:
            raw = yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise MatrixConfigError("%s is not valid YAML: %s" % (path, exc))
    return parse_config(raw, source=path)


def parse_config(raw: Any, source: str = "<memory>") -> MatrixConfig:
    """Validate a raw (already-deserialized) config document."""
    root = _require_mapping(raw, source)
    _reject_unknown(
        root, ("name", "description", "experiments", "results"), source
    )
    name = _require_str(root.get("name"), "%s: name" % source)
    description = str(root.get("description", "") or "")
    raw_exps = _require_list(
        root.get("experiments"), "%s: experiments" % source
    )
    if not raw_exps:
        raise _fail("%s: experiments" % source, "at least one is required")
    experiments = []
    seen_names = set()
    for i, node in enumerate(raw_exps):
        exp = _parse_experiment(node, "experiments[%d]" % i)
        if exp.name in seen_names:
            raise _fail(
                "experiments[%d].name" % i,
                "duplicate experiment name %r" % exp.name,
            )
        seen_names.add(exp.name)
        experiments.append(exp)
    results = tuple(
        _parse_result(node, "results[%d]" % i, seen_names)
        for i, node in enumerate(
            _require_list(root.get("results", []), "results")
        )
    )
    return MatrixConfig(
        name=name,
        description=description,
        experiments=tuple(experiments),
        results=results,
        source=source,
    )


def _parse_experiment(node: Any, path: str) -> ExperimentDef:
    exp = _require_mapping(node, path)
    _reject_unknown(
        exp,
        ("name", "kind", "matrix", "params", "samples", "seed", "obs", "checks"),
        path,
    )
    name = _require_str(exp.get("name"), "%s.name" % path)
    kind = exp.get("kind", "sim")
    if kind not in KINDS:
        raise _fail(
            "%s.kind" % path,
            "unknown kind %r (have: %s)" % (kind, ", ".join(KINDS)),
        )
    allowed = SIM_PARAMS if kind == "sim" else _BENCH_PARAMS[kind]

    matrix: Dict[str, Tuple[Any, ...]] = {}
    for key, value in _require_mapping(
        exp.get("matrix", {}), "%s.matrix" % path
    ).items():
        axis_path = "%s.matrix.%s" % (path, key)
        if key not in allowed:
            raise _fail(
                axis_path,
                "unknown %s parameter (allowed: %s)"
                % (kind, ", ".join(sorted(allowed))),
            )
        values = value if isinstance(value, list) else [value]
        if not values:
            raise _fail(axis_path, "axis has no values")
        matrix[key] = tuple(
            _scalar(v, "%s[%d]" % (axis_path, j)) for j, v in enumerate(values)
        )

    params: Dict[str, Any] = {}
    for key, value in _require_mapping(
        exp.get("params", {}), "%s.params" % path
    ).items():
        param_path = "%s.params.%s" % (path, key)
        if key not in allowed:
            raise _fail(
                param_path,
                "unknown %s parameter (allowed: %s)"
                % (kind, ", ".join(sorted(allowed))),
            )
        if key in matrix:
            raise _fail(param_path, "already declared as a matrix axis")
        if isinstance(value, list):
            params[key] = tuple(
                _scalar(v, "%s[%d]" % (param_path, j))
                for j, v in enumerate(value)
            )
        else:
            params[key] = _scalar(value, param_path)

    if kind == "sim" and "policy" not in matrix and "policy" not in params:
        raise _fail("%s" % path, "sim experiments need a policy axis or param")

    samples = _require_int(exp.get("samples", 1), "%s.samples" % path, minimum=1)
    seed = _require_int(exp.get("seed", 0), "%s.seed" % path, minimum=0)
    obs = _require_bool(exp.get("obs", False), "%s.obs" % path)
    if obs and kind != "sim":
        raise _fail(
            "%s.obs" % path,
            "observability capture is only available for kind: sim",
        )
    checks = tuple(
        _parse_check(c, "%s.checks[%d]" % (path, i), kind)
        for i, c in enumerate(
            _require_list(exp.get("checks", []), "%s.checks" % path)
        )
    )
    return ExperimentDef(
        name=name,
        kind=kind,
        matrix=matrix,
        params=params,
        samples=samples,
        seed=seed,
        obs=obs,
        checks=checks,
    )


#: Which check types make sense on which experiment kinds.
_CHECK_KINDS = {
    "metric": ("sim", "micro", "service", "latency", "sweep"),
    "baseline": ("sim", "micro", "service", "latency", "sweep"),
    "meanfield": ("sim",),
    "micro-baseline": ("micro",),
    "service-floor": ("service",),
    "latency-baseline": ("latency",),
    "sweep-scaling": ("sweep",),
    # The burn-rate gate reads an SLOTracker report embedded in a cell
    # result (the latency bench emits one per mode).
    "slo": ("latency",),
}


def _parse_check(node: Any, path: str, kind: str) -> CheckDef:
    check = _require_mapping(node, path)
    _reject_unknown(
        check,
        (
            "type", "name", "where", "tolerance", "metric", "min", "max",
            "file", "direction", "advisory",
        ),
        path,
    )
    ctype = check.get("type")
    if ctype not in CHECK_TYPES:
        raise _fail(
            "%s.type" % path,
            "unknown check type %r (have: %s)"
            % (ctype, ", ".join(CHECK_TYPES)),
        )
    if kind not in _CHECK_KINDS[ctype]:
        raise _fail(
            "%s.type" % path,
            "check type %r does not apply to kind %r experiments"
            % (ctype, kind),
        )
    where = {
        k: _scalar(v, "%s.where.%s" % (path, k))
        for k, v in _require_mapping(
            check.get("where", {}), "%s.where" % path
        ).items()
    }
    tolerance = check.get("tolerance")
    if tolerance is not None:
        tolerance = _require_number(tolerance, "%s.tolerance" % path)
        if tolerance <= 0:
            raise _fail("%s.tolerance" % path, "must be positive")
    metric = check.get("metric")
    if metric is not None:
        metric = _require_str(metric, "%s.metric" % path)
    lo = check.get("min")
    hi = check.get("max")
    if lo is not None:
        lo = _require_number(lo, "%s.min" % path)
    if hi is not None:
        hi = _require_number(hi, "%s.max" % path)
    if ctype == "metric":
        if metric is None:
            raise _fail(path, "metric checks need a metric: field")
        if lo is None and hi is None:
            raise _fail(path, "metric checks need min: and/or max: bounds")
    if ctype == "baseline" and (metric is None or check.get("file") is None):
        raise _fail(path, "baseline checks need metric: and file: fields")
    if ctype == "slo" and metric is None:
        raise _fail(
            path,
            "slo checks need a metric: field (dotted path to the "
            "embedded SLO report, e.g. modes.incremental.slo)",
        )
    if ctype in ("micro-baseline", "latency-baseline") and not check.get("file"):
        raise _fail(path, "%s checks need a file: field" % ctype)
    direction = check.get("direction", "min")
    if direction not in ("min", "max"):
        raise _fail(
            "%s.direction" % path, "must be 'min' or 'max', got %r" % direction
        )
    file_ = check.get("file")
    if file_ is not None:
        file_ = _require_str(file_, "%s.file" % path)
    return CheckDef(
        type=ctype,
        name=str(check.get("name", ctype)),
        where=where,
        tolerance=tolerance,
        metric=metric,
        min=lo,
        max=hi,
        file=file_,
        direction=direction,
        advisory=_require_bool(
            check.get("advisory", False), "%s.advisory" % path
        ),
    )


def _parse_result(node: Any, path: str, experiment_names) -> ResultDef:
    res = _require_mapping(node, path)
    _reject_unknown(
        res, ("type", "experiment", "rows", "columns", "metric", "last"), path
    )
    rtype = res.get("type")
    if rtype not in RESULT_TYPES:
        raise _fail(
            "%s.type" % path,
            "unknown result type %r (have: %s)"
            % (rtype, ", ".join(RESULT_TYPES)),
        )
    experiment = res.get("experiment")
    if rtype in ("table", "convergence"):
        experiment = _require_str(experiment, "%s.experiment" % path)
        if experiment not in experiment_names:
            raise _fail(
                "%s.experiment" % path,
                "references unknown experiment %r" % experiment,
            )
    return ResultDef(
        type=rtype,
        experiment=experiment,
        rows=res.get("rows"),
        columns=res.get("columns"),
        metric=str(res.get("metric", "wamp")),
        last=_require_int(res.get("last", 10), "%s.last" % path, minimum=1),
    )


# ----------------------------------------------------------------------
# Grid expansion
# ----------------------------------------------------------------------

def expand_experiment(exp: ExperimentDef) -> List[Dict[str, Any]]:
    """Expand one experiment into its ordered list of **cell axes**.

    Each cell is the merged parameter dict (defaults ← params ← one
    matrix point) plus its ``seed``.  Axes expand in declaration order
    with later axes varying fastest; the ``samples`` seed loop is
    innermost.  The order is a pure function of the config, which is
    what makes cell digests — and resume — stable across runs.
    """
    defaults = SIM_PARAMS if exp.kind == "sim" else _BENCH_PARAMS[exp.kind]
    base: Dict[str, Any] = {
        k: v for k, v in defaults.items() if v is not None
    }
    base.update(exp.params)
    axes = list(exp.matrix.items())
    cells: List[Dict[str, Any]] = []
    value_lists = [values for _, values in axes]
    for combo in itertools.product(*value_lists) if axes else [()]:
        point = dict(base)
        for (key, _), value in zip(axes, combo):
            point[key] = value
        for sample in range(exp.samples):
            cell = dict(point)
            cell["seed"] = exp.seed + sample
            cells.append(cell)
    return cells


def default_out_dir(config: MatrixConfig) -> str:
    """Conventional output directory for a config's runs."""
    return os.path.join("bench_runs", config.name)
