"""Content-addressed matrix cells and the multi-kind job runner.

A :class:`CellSpec` is to the matrix what
:class:`repro.sweep.spec.JobSpec` is to a sweep: a canonical,
JSON-serializable description of one unit of work whose sha256 digest is
its identity.  It deliberately exposes the same duck-typed surface the
sweep executor consumes (``digest()`` / ``label`` / ``to_dict()``), so
matrix runs go through :func:`repro.sweep.executor.run_sweep` unchanged
and inherit its process isolation, retries, timeouts, and the fsynced
resume manifest — ``repro bench run --resume`` skips completed cells
exactly the way ``repro sweep --resume`` skips completed jobs.

Five cell kinds map onto the existing engines:

* ``sim`` — one :func:`repro.bench.runner.run_simulation` call, carried
  as an embedded :class:`~repro.sweep.spec.JobSpec` payload (so a sim
  cell's identity is the same content address a sweep would use).
* ``micro`` / ``service`` / ``latency`` / ``sweep`` — one run of the
  corresponding benchmark harness (:func:`repro.bench.micro.run_micro`,
  :func:`repro.service.bench.run_service_bench`,
  :func:`repro.service.latency.run_latency_bench`,
  :func:`repro.sweep.bench.run_sweep_bench`).

Observability is pure output and never enters a digest: toggling
``obs:`` on an experiment reuses the same manifest entries, but cells
*resumed* from a manifest were not re-run and contribute no rows.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import random
from typing import Any, Dict, List, Mapping, Optional

from repro.bench.experiments import make_workload
from repro.matrix.config import ExperimentDef, MatrixConfigError, expand_experiment
from repro.store import StoreConfig
from repro.store.errors import ConfigError
from repro.sweep.spec import JobSpec, result_to_dict, run_job, workload_to_spec


@dataclasses.dataclass(frozen=True)
class CellSpec:
    """One matrix cell, fully determined and serializable.

    ``axes`` carries the merged parameter point (matrix coordinates,
    fixed params, and the sample seed) for reporting and ``where:``
    filters; ``payload`` is the kind-specific runner input.  Only
    ``experiment``/``kind``/``payload`` enter the digest — ``axes`` is
    derived from the same config content, and ``obs`` is pure output.
    """

    experiment: str
    kind: str
    payload: Dict[str, Any]
    axes: Dict[str, Any]
    obs: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "experiment": self.experiment,
            "kind": self.kind,
            "payload": dict(self.payload),
            "axes": dict(self.axes),
            "obs": self.obs,
        }

    def digest(self) -> str:
        canonical = json.dumps(
            {
                "experiment": self.experiment,
                "kind": self.kind,
                "payload": self.payload,
            },
            sort_keys=True,
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    @property
    def label(self) -> str:
        if self.kind == "sim":
            return "%s/%s/%s/F%.2f/s%d" % (
                self.experiment,
                self.axes.get("policy"),
                self.axes.get("dist"),
                float(self.axes.get("fill", 0.0)),
                int(self.axes.get("seed", 0)),
            )
        return "%s/%s/s%d" % (
            self.experiment, self.kind, int(self.axes.get("seed", 0))
        )


def _sim_payload(axes: Mapping[str, Any]) -> Dict[str, Any]:
    """Translate one sim cell's axes into an embedded JobSpec dict."""
    try:
        config = StoreConfig(
            n_segments=int(axes["n_segments"]),
            segment_units=int(axes["segment_units"]),
            fill_factor=float(axes["fill"]),
            clean_trigger=int(axes["clean_trigger"]),
            clean_batch=int(axes["clean_batch"]),
            sort_buffer_segments=int(axes["sort_buffer"]),
        )
        if axes.get("reserve_compensation"):
            config = config.with_reserve_compensation()
    except (ConfigError, KeyError, TypeError, ValueError) as exc:
        raise MatrixConfigError(
            "invalid store geometry for cell %r: %s" % (dict(axes), exc)
        )
    try:
        workload = make_workload(
            str(axes["dist"]), config.user_pages, int(axes["seed"])
        )
    except ValueError as exc:
        raise MatrixConfigError(str(exc))
    total_writes = axes.get("total_writes")
    spec = JobSpec(
        policy=str(axes["policy"]),
        workload=workload_to_spec(workload),
        config=config,
        total_writes=None if total_writes is None else int(total_writes),
        write_multiplier=float(axes["write_multiplier"]),
        measure_fraction=float(axes["measure_fraction"]),
    )
    return spec.to_dict()


def _bench_payload(kind: str, axes: Mapping[str, Any]) -> Dict[str, Any]:
    """Canonical payload for a bench cell (JSON round-trip safe)."""
    payload = {k: v for k, v in axes.items()}
    # Tuples arrive from config defaults; JSON canonicalization needs
    # lists so manifest round trips compare equal.
    for key, value in payload.items():
        if isinstance(value, tuple):
            payload[key] = list(value)
    payload["kind"] = kind
    return payload


def cells_for_experiment(exp: ExperimentDef) -> List[CellSpec]:
    """Expand one experiment definition into its ordered cell list."""
    cells = []
    for axes in expand_experiment(exp):
        if exp.kind == "sim":
            payload = _sim_payload(axes)
        else:
            payload = _bench_payload(exp.kind, axes)
        cells.append(
            CellSpec(
                experiment=exp.name,
                kind=exp.kind,
                payload=payload,
                axes=dict(axes),
                obs=exp.obs,
            )
        )
    return cells


def matrix_digest(cells: List[CellSpec]) -> str:
    """Digest of a whole matrix (order-insensitive), used to reject
    resuming a manifest that belongs to a different config."""
    joined = ",".join(sorted(c.digest() for c in cells))
    return hashlib.sha256(joined.encode("utf-8")).hexdigest()[:16]


class MatrixJobRunner:
    """The ``job_runner`` handed to :func:`repro.sweep.executor.run_sweep`.

    A plain picklable class (it crosses process boundaries under spawn
    as well as fork).  Dispatches on the cell's ``kind`` and returns a
    JSON-ready ``{"kind": ..., "result": ...}`` payload; sim cells with
    ``obs`` on additionally write their schema-v1 rows to a per-cell
    file under ``metrics_dir`` (merged in cell order afterwards, the
    same protocol as :class:`repro.sweep.executor.ObsJobRunner`).
    """

    def __init__(
        self,
        metrics_dir: Optional[str] = None,
        sample_interval: Optional[int] = None,
    ) -> None:
        self.metrics_dir = None if metrics_dir is None else str(metrics_dir)
        self.sample_interval = sample_interval

    def job_metrics_path(self, digest: str) -> Optional[str]:
        if self.metrics_dir is None:
            return None
        return os.path.join(self.metrics_dir, "%s.jsonl" % digest)

    def __call__(self, cell_dict: Dict) -> Dict:
        kind = cell_dict["kind"]
        payload = cell_dict["payload"]
        # Defense-in-depth, mirroring the sweep executor: nothing in the
        # engines should reach for ambient randomness, but if anything
        # ever does, each cell still behaves deterministically.
        random.seed(
            int(
                hashlib.sha256(
                    json.dumps(payload, sort_keys=True).encode("utf-8")
                ).hexdigest()[:16],
                16,
            )
        )
        if kind == "sim":
            spec = JobSpec.from_dict(payload)
            observe = None
            if cell_dict.get("obs"):
                observe = self.job_metrics_path(spec.digest())
            result = result_to_dict(
                run_job(spec, observe=observe, sample_interval=self.sample_interval)
            )
        elif kind == "micro":
            from repro.bench.micro import run_micro

            result = run_micro(
                n_writes=int(payload["writes"]),
                trials=int(payload["trials"]),
                seed=int(payload["seed"]),
                policy=str(payload["policy"]),
                workloads=tuple(payload["workloads"]),
            )
        elif kind == "service":
            from repro.service.bench import run_service_bench

            result = run_service_bench(
                shard_counts=tuple(int(n) for n in payload["shards"]),
                quick=bool(payload["quick"]),
                seed=int(payload["seed"]),
                ops=payload.get("ops"),
            )
        elif kind == "latency":
            from repro.service.latency import run_latency_bench

            result = run_latency_bench(
                quick=bool(payload["quick"]),
                seed=int(payload["seed"]),
                ops=payload.get("ops"),
            )
        elif kind == "sweep":
            from repro.sweep.bench import run_sweep_bench

            result = run_sweep_bench(
                grid=str(payload["grid"]),
                dist=payload.get("dist"),
                quick=bool(payload["quick"]),
                workers=int(payload["workers"]),
                seed=int(payload["seed"]),
            )
        else:
            raise MatrixConfigError("unknown cell kind %r" % (kind,))
        return {"kind": kind, "result": result}


@dataclasses.dataclass(frozen=True)
class CellResult:
    """One executed (or resumed) cell joined with its result payload."""

    spec: CellSpec
    result: Dict[str, Any]
    resumed: bool = False

    @property
    def axes(self) -> Dict[str, Any]:
        return self.spec.axes


def sim_metrics(result: Dict[str, Any]) -> Dict[str, float]:
    """Headline metrics of one sim cell result (the serialized
    :class:`~repro.bench.runner.SimulationResult`)."""
    from repro.sweep.spec import result_from_dict

    sim = result_from_dict(result)
    return {
        "wamp": sim.wamp,
        "device_wamp": sim.device_wamp,
        "mean_cleaned_emptiness": sim.mean_cleaned_emptiness,
        "total_user_writes": float(sim.total_user_writes),
    }


def dig(data: Any, path: str) -> Any:
    """Resolve a dotted path (``workloads.uniform.batch.writes_per_sec``)
    into a nested dict; raises KeyError with the full path on a miss."""
    node = data
    for part in path.split("."):
        if not isinstance(node, Mapping) or part not in node:
            raise KeyError(path)
        node = node[part]
    return node


def cell_metric(cell: CellResult, path: str) -> float:
    """A metric value for gates/tables: sim shorthand names first
    (``wamp``, ``device_wamp``, ``mean_cleaned_emptiness``), then a
    dotted path into the raw result dict."""
    if cell.spec.kind == "sim":
        try:
            shorthands = sim_metrics(cell.result)
        except (KeyError, TypeError):
            shorthands = {}  # not a full SimulationResult; use the path
        if path in shorthands:
            return float(shorthands[path])
    value = dig(cell.result, path)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise MatrixConfigError(
            "metric %r of cell %s is not numeric: %r"
            % (path, cell.spec.label, value)
        )
    return float(value)


def matches_where(axes: Mapping[str, Any], where: Mapping[str, Any]) -> bool:
    """True when every ``where:`` key equals the cell's axis value."""
    return all(axes.get(k) == v for k, v in where.items())
