"""Periodic time-series capture keyed to the store's update clock.

The paper's evaluation is trajectory-shaped: write amplification and
cleaned-segment emptiness are tracked over multiples of device writes
until they stabilize (Section 6.2).  The sampler reproduces that view:
at fixed *clock marks* (multiples of ``interval`` update ticks) it
records a row of windowed and instantaneous store metrics.

Marks are positions on the update clock, not wall time and not "every N
calls", so runs that differ only in workload seed produce samples at
identical clocks — convergence curves from different seeds align
point-for-point and can be averaged across a sweep grid.

Each row carries both cumulative write amplification (includes the
initial load) and the windowed figures since the previous sample — the
windowed ones are what converge to the steady-state value (see the
``stats.py`` guidance preferring windowed measurement).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.store.reporting import emptiness_histogram, temperature_report
from repro.store.stats import StatsSnapshot


def default_interval(store) -> int:
    """One quarter of the user page population per sample: four samples
    per write-multiplier unit, matching the granularity the convergence
    plots need without inflating metrics files."""
    return max(1, store.config.user_pages // 4)


class TimeSeriesSampler:
    """Samples a store's trajectory at fixed update-clock marks.

    Args:
        store: The :class:`~repro.store.LogStructuredStore` to observe.
        interval: Ticks between marks; default :func:`default_interval`.
        hist_buckets: Buckets of the per-sample emptiness histogram.
    """

    def __init__(
        self,
        store,
        interval: Optional[int] = None,
        hist_buckets: int = 10,
    ) -> None:
        if interval is not None and interval < 1:
            raise ValueError("interval must be >= 1")
        self.store = store
        self.interval = interval or default_interval(store)
        self.hist_buckets = hist_buckets
        self.samples: List[Dict] = []
        self._last: StatsSnapshot = store.stats.snapshot()
        self._next_mark = self._mark_after(store.clock)

    def _mark_after(self, clock: int) -> int:
        """The first mark strictly after ``clock``."""
        return (clock // self.interval + 1) * self.interval

    def maybe_sample(self) -> Optional[Dict]:
        """Record a row if the clock reached the next mark.

        One row per call even when a large write batch crossed several
        marks — the row is stamped with the actual clock, so alignment
        across runs holds as long as they drive the store with the same
        batch boundaries (workload batches are fixed-size).
        """
        if self.store.clock < self._next_mark:
            return None
        row = self.sample_now()
        self._next_mark = self._mark_after(self.store.clock)
        return row

    def sample_now(self) -> Optional[Dict]:
        """Record a row unconditionally (used for the baseline row at
        attach time and the final row at export time).  Skips exact
        duplicates of the previous row's clock."""
        store = self.store
        clock = store.clock
        if self.samples and self.samples[-1]["clock"] == clock:
            return None
        snap = store.stats.snapshot()
        window = snap.delta(self._last)
        self._last = snap
        config = store.config
        row = {
            "type": "sample",
            "clock": clock,
            "user_writes": snap.user_writes,
            "device_writes_multiple": (
                (snap.user_device_writes + snap.gc_writes) / config.device_units
            ),
            "wamp_cum": (
                snap.gc_writes / snap.user_writes if snap.user_writes else 0.0
            ),
            "wamp_win": window.write_amplification,
            "device_wamp_win": window.device_write_amplification,
            "mean_cleaned_emptiness_win": window.mean_cleaned_emptiness,
            "fill": store.fill_factor_now(),
            "free_segments": store.free_segment_count,
            "live_pages": store.live_page_count(),
            "emptiness_hist": emptiness_histogram(store, self.hist_buckets),
            "temperature_cv": temperature_report(store)["cv"],
            "wear_cv": store.wear_summary()["cv"],
        }
        self.samples.append(row)
        return row
