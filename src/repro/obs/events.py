"""A typed, ring-buffered event stream for store internals.

The store's interesting moments — a segment sealing, a cleaning cycle,
a victim being chosen, the sorting buffer draining, a failpoint firing —
are *events*: discrete, timestamped on the update clock, and carrying a
small structured payload.  The bus keeps the most recent ``capacity``
events in a ring (old events are counted, then dropped), tallies every
kind cumulatively, and fans events out to subscribers.

The bus is only ever consulted through the store's ``obs`` slot, which
is ``None`` unless an observer is attached — the disabled cost on the
write path is exactly one attribute test at each (per-segment, never
per-write) hook site.  See OBSERVABILITY.md for the overhead budget.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Any, Callable, Dict, List

#: Event kinds emitted by the store hooks.
SEGMENT_SEALED = "segment_sealed"
CLEAN_CYCLE = "clean_cycle"
VICTIM_SELECTED = "victim_selected"
BUFFER_FLUSH = "buffer_flush"
FAILPOINT_FIRED = "failpoint"
#: A foreground write had to run inline cleaning to get a segment —
#: the payload carries how many GC pages it waited behind.  Cleaner
#: *steps* deliberately get no event kind: a step is per-budget-slice
#: frequency, which would flood the ring; steps are metrics-only.
WRITE_STALL = "write_stall"

#: Every kind the store itself can emit (exporters validate against it).
EVENT_KINDS = (
    SEGMENT_SEALED,
    CLEAN_CYCLE,
    VICTIM_SELECTED,
    BUFFER_FLUSH,
    FAILPOINT_FIRED,
    WRITE_STALL,
)


@dataclasses.dataclass(frozen=True)
class Event:
    """One occurrence: a global sequence number, the store clock at the
    moment of emission, the kind tag, and a JSON-ready payload."""

    seq: int
    clock: int
    kind: str
    payload: Dict[str, Any]

    def to_dict(self) -> Dict[str, Any]:
        """The JSONL row form (``type: "event"``)."""
        row = {
            "type": "event",
            "seq": self.seq,
            "clock": self.clock,
            "kind": self.kind,
        }
        row.update(self.payload)
        return row


class EventBus:
    """Ring buffer of :class:`Event` plus cumulative per-kind counts.

    Args:
        capacity: Ring size; the oldest events are dropped (and counted
            in :attr:`dropped`) once the ring is full.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._ring: "deque[Event]" = deque(maxlen=capacity)
        #: Cumulative emissions per kind — never truncated by the ring.
        self.counts: Dict[str, int] = {}
        #: Events pushed out of the ring by newer ones.
        self.dropped = 0
        self._seq = 0
        #: Callables invoked synchronously with each new event.
        self.subscribers: List[Callable[[Event], None]] = []

    def emit(self, kind: str, clock: int, **payload: Any) -> Event:
        """Record one event; returns it (mostly for tests)."""
        self._seq += 1
        event = Event(seq=self._seq, clock=clock, kind=kind, payload=payload)
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(event)
        self.counts[kind] = self.counts.get(kind, 0) + 1
        for subscriber in self.subscribers:
            subscriber(event)
        return event

    def events(self) -> List[Event]:
        """The retained events, oldest first."""
        return list(self._ring)

    def tail(self, n: int) -> List[Event]:
        """The most recent ``n`` retained events, oldest first."""
        if n <= 0:
            return []
        ring = self._ring
        if n >= len(ring):
            return list(ring)
        return list(ring)[-n:]

    def total_emitted(self) -> int:
        """Events ever emitted (retained + dropped)."""
        return self._seq

    def __len__(self) -> int:
        return len(self._ring)
