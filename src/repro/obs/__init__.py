"""Observability for the store: events, metrics, time-series, tracing.

See OBSERVABILITY.md for the model and the overhead budget.  The public
surface:

* :class:`StoreObserver` — attach to a store; captures everything.
* :class:`EventBus` / :class:`Event` — the typed ring-buffered stream.
* :class:`MetricsRegistry` — counters / gauges / histograms with
  snapshot-delta windowing.
* :class:`TimeSeriesSampler` — clock-keyed convergence sampling.
* :mod:`repro.obs.export` — JSONL/CSV writers, validation, aggregation.
"""

from repro.obs.events import (
    BUFFER_FLUSH,
    CLEAN_CYCLE,
    EVENT_KINDS,
    FAILPOINT_FIRED,
    SEGMENT_SEALED,
    VICTIM_SELECTED,
    WRITE_STALL,
    Event,
    EventBus,
)
from repro.obs.export import (
    SCHEMA_VERSION,
    MetricsWriter,
    aggregate_convergence,
    load_rows,
    samples_to_csv,
    summarize_rows,
    validate_file,
    validate_rows,
    write_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    percentile_from_buckets,
)
from repro.obs.observer import PAGES_EDGES, StoreObserver
from repro.obs.samplers import TimeSeriesSampler, default_interval

__all__ = [
    "BUFFER_FLUSH",
    "CLEAN_CYCLE",
    "EVENT_KINDS",
    "FAILPOINT_FIRED",
    "SEGMENT_SEALED",
    "VICTIM_SELECTED",
    "WRITE_STALL",
    "PAGES_EDGES",
    "SCHEMA_VERSION",
    "Counter",
    "Event",
    "EventBus",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "MetricsWriter",
    "StoreObserver",
    "TimeSeriesSampler",
    "aggregate_convergence",
    "default_interval",
    "load_rows",
    "samples_to_csv",
    "summarize_rows",
    "percentile_from_buckets",
    "validate_file",
    "validate_rows",
    "write_jsonl",
]
