"""Observability for the store: events, metrics, time-series, tracing.

See OBSERVABILITY.md for the model and the overhead budget.  The public
surface:

* :class:`StoreObserver` — attach to a store; captures everything.
* :class:`EventBus` / :class:`Event` — the typed ring-buffered stream.
* :class:`MetricsRegistry` — counters / gauges / histograms with
  snapshot-delta windowing.
* :class:`TimeSeriesSampler` — clock-keyed convergence sampling.
* :class:`Tracer` / :class:`Span` / :class:`SpanCollector` — causal
  spans with deterministic IDs and head sampling; Chrome trace export
  and the flush-stall critical-path analyzer live alongside them in
  :mod:`repro.obs.trace`.
* :class:`SLOTracker` — multi-window burn-rate evaluation backing the
  ``kind: slo`` matrix gate.
* :mod:`repro.obs.clock` — the shared monotonic wall clock every
  timing field (spans, benches, telemetry) is stamped against.
* :mod:`repro.obs.export` — JSONL/CSV writers, validation, aggregation.
* :mod:`repro.obs.top` — the ``repro top`` live telemetry dashboard
  and the poll/backoff file follower shared with ``obs tail --follow``.
"""

from repro.obs.clock import now_s, now_us
from repro.obs.events import (
    BUFFER_FLUSH,
    CLEAN_CYCLE,
    EVENT_KINDS,
    FAILPOINT_FIRED,
    SEGMENT_SEALED,
    VICTIM_SELECTED,
    WRITE_STALL,
    Event,
    EventBus,
)
from repro.obs.export import (
    SCHEMA_VERSION,
    SUPPORTED_SCHEMAS,
    MetricsWriter,
    aggregate_convergence,
    load_rows,
    samples_to_csv,
    summarize_rows,
    validate_file,
    validate_rows,
    write_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    percentile_from_buckets,
)
from repro.obs.observer import PAGES_EDGES, StoreObserver
from repro.obs.samplers import TimeSeriesSampler, default_interval
from repro.obs.slo import SLOTracker
from repro.obs.top import follow_lines, render_top, run_top
from repro.obs.trace import (
    Span,
    SpanCollector,
    Tracer,
    chrome_trace,
    critical_path_report,
    load_spans,
    write_chrome_trace,
    write_spans,
)

__all__ = [
    "BUFFER_FLUSH",
    "CLEAN_CYCLE",
    "EVENT_KINDS",
    "FAILPOINT_FIRED",
    "SEGMENT_SEALED",
    "VICTIM_SELECTED",
    "WRITE_STALL",
    "PAGES_EDGES",
    "SCHEMA_VERSION",
    "SUPPORTED_SCHEMAS",
    "Counter",
    "Event",
    "EventBus",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "MetricsWriter",
    "SLOTracker",
    "Span",
    "SpanCollector",
    "StoreObserver",
    "TimeSeriesSampler",
    "Tracer",
    "aggregate_convergence",
    "chrome_trace",
    "critical_path_report",
    "default_interval",
    "follow_lines",
    "load_rows",
    "load_spans",
    "now_s",
    "now_us",
    "render_top",
    "run_top",
    "samples_to_csv",
    "summarize_rows",
    "percentile_from_buckets",
    "validate_file",
    "validate_rows",
    "write_chrome_trace",
    "write_jsonl",
    "write_spans",
]
