"""The store-facing observer: hooks, decision tracing, and export rows.

A :class:`StoreObserver` plugs into the store's ``obs`` slot.  The store
calls six hooks — :meth:`on_seal`, :meth:`on_flush`, :meth:`on_victims`,
:meth:`on_clean`, :meth:`on_clean_step`, :meth:`on_write_stall` — all of
which fire at per-segment or per-cleaner-step frequency (a seal, a
buffer drain, a cleaning cycle or one budgeted slice of one), never once
per write.  With no observer attached each hook site costs exactly one
``store.obs is None`` test, which is how the <2% disabled-overhead
budget in OBSERVABILITY.md is met by construction.

Decision tracing answers "why this segment?" after the fact: at every
victim selection the observer records the policy's full ranking context
for the chosen victims via
:meth:`~repro.policies.base.CleaningPolicy.decision_columns` — MDC's
``A``/``C``/``up2``/decline score, and each other family's equivalents —
*before* the store resets the victims and wipes their columns.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.obs import events as ev
from repro.obs.export import SCHEMA_VERSION
from repro.obs.metrics import MetricsRegistry
from repro.obs.samplers import TimeSeriesSampler
from repro.store.stats import WindowStats
from repro.testkit.failpoints import FAILPOINTS

#: Bucket edges of the cleaned-emptiness histogram (fractions of a
#: segment; the overflow bucket is unreachable but keeps edges regular).
_EMPTINESS_EDGES = tuple((i + 1) / 10 for i in range(10))

#: Bucket edges for page-count histograms (foreground stall sizes,
#: cleaner step sizes).  Power-of-two spaced — stall sizes span from a
#: couple of pages (one incremental step) to several segments' worth of
#: relocations (a reactive batch storm) — with an explicit 0 bucket so
#: stall-free flushes keep the percentile denominator honest.  The
#: service layer shares these edges for its ``flush_stall_pages``
#: histogram so store- and service-level stalls compare bucket for
#: bucket.
PAGES_EDGES = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0,
               256.0, 512.0, 1024.0, 2048.0, 4096.0)
_PAGES_EDGES = PAGES_EDGES


def _py(value):
    """Plain-Python scalar for JSON export (numpy scalars have .item)."""
    return value.item() if hasattr(value, "item") else value


class StoreObserver:
    """Event stream + metrics + time-series sampling for one store.

    Args:
        store: The store to observe; ``attach`` links the two.
        sample_interval: Update ticks between time-series samples
            (default: :func:`~repro.obs.samplers.default_interval`).
        ring_capacity: Event ring size.
        hist_buckets: Emptiness-histogram buckets in samples.
        capture_failpoints: Subscribe to the failpoint registry so armed
            or traced failpoints show up in the event stream.
        max_decisions: Most recent decision records retained.
    """

    def __init__(
        self,
        store,
        sample_interval: Optional[int] = None,
        ring_capacity: int = 4096,
        hist_buckets: int = 10,
        capture_failpoints: bool = True,
        max_decisions: int = 1024,
    ) -> None:
        self.store = store
        self.bus = ev.EventBus(capacity=ring_capacity)
        self.metrics = MetricsRegistry()
        self.sampler = TimeSeriesSampler(
            store, interval=sample_interval, hist_buckets=hist_buckets
        )
        self.decisions: "deque[Dict]" = deque(maxlen=max_decisions)
        self.decisions_dropped = 0
        #: Optional :class:`~repro.obs.trace.Tracer` the store hooks use
        #: to open spans around stalls and clean begin/step work.  Left
        #: ``None`` unless a trace consumer attaches one — the hook
        #: sites pay one attribute test, same budget as ``store.obs``.
        self.tracer = None
        self._capture_failpoints = capture_failpoints
        self._start = store.stats.snapshot()
        self._attached = False

    # -- lifecycle -----------------------------------------------------

    def attach(self) -> "StoreObserver":
        """Install into ``store.obs`` and start capturing."""
        if self.store.obs is not None and self.store.obs is not self:
            raise RuntimeError("store already has an observer attached")
        self.store.obs = self
        if self._capture_failpoints and not self._attached:
            FAILPOINTS.add_listener(self._on_failpoint)
        self._attached = True
        return self

    def detach(self) -> None:
        """Remove from the store; the captured data stays readable."""
        if self.store.obs is self:
            self.store.obs = None
        if self._attached and self._capture_failpoints:
            FAILPOINTS.remove_listener(self._on_failpoint)
        self._attached = False

    def __enter__(self) -> "StoreObserver":
        return self.attach()

    def __exit__(self, *exc) -> None:
        self.detach()

    # -- store hooks (per-segment frequency, never per-write) ----------

    def on_seal(self, seg: int) -> None:
        segs = self.store.segments
        self.metrics.counter("segments_sealed").inc()
        self.bus.emit(
            ev.SEGMENT_SEALED,
            self.store.clock,
            seg=int(seg),
            live_count=int(segs.live_count[seg]),
            used_units=int(segs.used_units[seg]),
        )

    def on_flush(self, pages: int) -> None:
        self.metrics.counter("buffer_flushes").inc()
        self.metrics.counter("buffer_flush_pages").inc(pages)
        self.bus.emit(ev.BUFFER_FLUSH, self.store.clock, pages=int(pages))

    def on_victims(self, candidates: np.ndarray, victims: Sequence[int]) -> None:
        """Called right after victim validation, before the victims'
        segment-table columns are reset."""
        store = self.store
        policy = store.policy
        ids = np.asarray(victims, dtype=np.int64)
        columns = policy.decision_columns(store.segments, ids)
        names = list(columns)
        rows = [
            dict(
                {"seg": int(seg)},
                **{name: _py(columns[name][i]) for name in names},
            )
            for i, seg in enumerate(victims)
        ]
        if len(self.decisions) == self.decisions.maxlen:
            self.decisions_dropped += 1
        self.decisions.append(
            {
                "type": "decision",
                "clock": store.clock,
                "policy": getattr(policy, "name", type(policy).__name__),
                "candidates": int(len(candidates)),
                "victims": rows,
            }
        )
        self.metrics.counter("victim_selections").inc()
        self.bus.emit(
            ev.VICTIM_SELECTED,
            store.clock,
            victims=[int(v) for v in victims],
            candidates=int(len(candidates)),
        )

    def on_clean(
        self,
        victims: Sequence[int],
        moved: int,
        reclaimed_units: int,
        emptiness: Sequence[float],
    ) -> None:
        self.metrics.counter("clean_cycles").inc()
        self.metrics.counter("pages_relocated").inc(int(moved))
        self.metrics.counter("units_reclaimed").inc(int(reclaimed_units))
        hist = self.metrics.histogram("cleaned_emptiness", _EMPTINESS_EDGES)
        for e in emptiness:
            hist.observe(float(e))
        self.metrics.gauge("free_segments").set(self.store.free_segment_count)
        self.bus.emit(
            ev.CLEAN_CYCLE,
            self.store.clock,
            victims=[int(v) for v in victims],
            moved=int(moved),
            reclaimed_units=int(reclaimed_units),
        )

    def on_clean_step(self, relocated: int, skipped: int, remaining: int) -> None:
        """Called after each incremental cleaner step (metrics only —
        steps are too frequent for the event ring)."""
        self.metrics.counter("cleaner_steps").inc()
        self.metrics.counter("cleaner_pages_skipped").inc(int(skipped))
        self.metrics.histogram("cleaner_step_pages", _PAGES_EDGES).observe(
            float(relocated)
        )
        self.metrics.gauge("cleaner_pending").set(int(remaining))

    def on_write_stall(self, pages: int) -> None:
        """Called when a foreground write ran inline (reactive) cleaning;
        ``pages`` is how many GC relocations it waited behind."""
        self.metrics.counter("write_stalls").inc()
        self.metrics.histogram("write_stall_pages", _PAGES_EDGES).observe(
            float(pages)
        )
        self.bus.emit(ev.WRITE_STALL, self.store.clock, pages=int(pages))

    def _on_failpoint(self, name: str, ctx: Dict) -> None:
        self.metrics.counter("failpoints_hit").inc()
        self.bus.emit(ev.FAILPOINT_FIRED, self.store.clock, name=name)

    # -- sampling ------------------------------------------------------

    def maybe_sample(self) -> Optional[Dict]:
        """Sample if the store clock passed the next mark (the bench
        driver calls this once per workload batch)."""
        return self.sampler.maybe_sample()

    def sample_now(self) -> Optional[Dict]:
        """Force a sample (baseline at attach, final at export)."""
        return self.sampler.sample_now()

    # -- export --------------------------------------------------------

    def window(self) -> WindowStats:
        """Store statistics over the observed interval (since attach)."""
        return self.store.stats.window_since(self._start)

    def rows(self, meta: Optional[Dict] = None) -> Iterator[Dict]:
        """All captured data as JSONL-ready rows: one ``meta`` header,
        then samples, decision records, a metrics snapshot, and the
        retained events."""
        header = {"type": "meta", "schema": SCHEMA_VERSION}
        header["run"] = dict(meta) if meta else {}
        header["run"].setdefault(
            "policy",
            getattr(self.store.policy, "name", type(self.store.policy).__name__),
        )
        yield header
        for sample in self.sampler.samples:
            yield sample
        for decision in self.decisions:
            yield decision
        row = self.metrics.snapshot().to_dict()
        row["type"] = "metrics"
        row["clock"] = self.store.clock
        row["events_dropped"] = self.bus.dropped
        row["decisions_dropped"] = self.decisions_dropped
        row["ring_capacity"] = self.bus.capacity
        row["event_counts"] = dict(self.bus.counts)
        yield row
        for event in self.bus.events():
            yield event.to_dict()
