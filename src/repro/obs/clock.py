"""One monotonic wall clock shared by every timing consumer.

Span timestamps, latency-bench timings, harness elapsed fields, and
telemetry rows all need to be *mutually comparable*: a span that says it
started at ``t=1.204s`` should line up with a telemetry row stamped
``t_s=1.2``.  Each of those call sites used to call
``time.perf_counter()`` independently — monotonic, but with an arbitrary
per-call-site origin, so nothing could be joined across files.

This module pins one origin: the process-wide epoch is captured once at
import, and :func:`now_s` returns seconds elapsed since then.  Every
timing field in the repo that is meant to be cross-referenced goes
through here.

The clock is wall time, not the store's logical update clock — spans and
telemetry carry *both* (wall for humans and Perfetto, logical ``clock``
for joining against metrics rows, which stay byte-deterministic by
never including wall time).
"""

from __future__ import annotations

import time

#: Process-wide origin, captured once at first import.
_EPOCH = time.perf_counter()


def now_s() -> float:
    """Monotonic seconds since the process epoch (first import)."""
    return time.perf_counter() - _EPOCH


def now_us() -> int:
    """Monotonic integer microseconds since the process epoch."""
    return int((time.perf_counter() - _EPOCH) * 1_000_000)
