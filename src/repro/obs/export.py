"""JSONL/CSV export, schema validation, and aggregation for obs rows.

The on-disk format is line-delimited JSON (``metrics.jsonl``).  Each run
contributes a block of rows opened by a ``meta`` header::

    {"type": "meta", "schema": 2, "run": {"label": ..., "policy": ...}}
    {"type": "sample", "clock": ..., "wamp_win": ..., ...}
    {"type": "decision", "clock": ..., "policy": ..., "victims": [...]}
    {"type": "metrics", "counters": {...}, "gauges": {...}, ...}
    {"type": "event", "seq": ..., "kind": "clean_cycle", ...}

Schema v2 adds two row types on top of v1 (which stays valid): ``span``
rows (causal trace spans, usually in their own span file — see
:mod:`repro.obs.trace`) and ``telemetry`` rows (per-tick service state
for ``repro top``).  Metrics rows may carry ``ring_capacity`` so drop
counts can be read against the ring size.  Wall-clock fields appear
only in span/telemetry rows; the default metrics export stays
byte-deterministic across same-seed runs.

Several runs (a fig5 policy grid, a sweep) concatenate blocks in one
file; :func:`aggregate_convergence` splits them back apart on the meta
headers.  :func:`validate_rows` is the schema contract CI enforces.
"""

from __future__ import annotations

import csv
import json
import os
from typing import Dict, Iterable, List, Optional

from repro.obs.events import EVENT_KINDS

#: Version stamped into every meta row; bump on breaking row changes.
SCHEMA_VERSION = 2

#: Versions :func:`validate_rows` accepts — v1 files stay valid; v2
#: adds ``span``/``telemetry`` rows and the ``ring_capacity`` field.
SUPPORTED_SCHEMAS = (1, 2)

#: Every row type a metrics.jsonl may contain.
ROW_TYPES = ("meta", "sample", "decision", "event", "metrics", "span", "telemetry")

_SAMPLE_KEYS = (
    "clock",
    "user_writes",
    "device_writes_multiple",
    "wamp_cum",
    "wamp_win",
    "device_wamp_win",
    "mean_cleaned_emptiness_win",
    "fill",
    "free_segments",
    "live_pages",
    "emptiness_hist",
    "temperature_cv",
    "wear_cv",
)
_DECISION_KEYS = ("clock", "policy", "candidates", "victims")
_VICTIM_KEYS = ("seg", "A", "C", "up2", "score")
_EVENT_KEYS = ("seq", "clock", "kind")
_METRICS_KEYS = ("counters", "gauges", "histograms")
_SPAN_KEYS = ("trace", "span", "name", "start_us", "dur_us")
_TELEMETRY_KEYS = ("t_s", "clock", "shards", "slo")


class MetricsWriter:
    """Append-oriented JSONL writer: truncates the target on the first
    row, appends afterwards — so one writer shared across the runs of an
    experiment yields a single fresh multi-block file."""

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self.rows_written = 0

    def write_rows(self, rows: Iterable[Dict]) -> int:
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        mode = "w" if self.rows_written == 0 else "a"
        n = 0
        with open(self.path, mode, encoding="utf-8") as fh:
            for row in rows:
                fh.write(json.dumps(row, sort_keys=True))
                fh.write("\n")
                n += 1
        self.rows_written += n
        return n

    def write_row(self, row: Dict) -> None:
        self.write_rows([row])


def write_jsonl(path: str, rows: Iterable[Dict]) -> int:
    """Write ``rows`` to a fresh JSONL file; returns the row count."""
    return MetricsWriter(path).write_rows(rows)


def load_rows(path: str) -> List[Dict]:
    """Parse a JSONL file back into row dicts."""
    rows = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


def samples_to_csv(path: str, rows: Iterable[Dict]) -> int:
    """Write the ``sample`` rows among ``rows`` as a CSV time-series
    (list-valued fields are ``|``-joined); returns the sample count."""
    samples = [r for r in rows if r.get("type") == "sample"]
    parent = os.path.dirname(str(path))
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_SAMPLE_KEYS)
        for row in samples:
            writer.writerow(
                [
                    "|".join(str(v) for v in row[k])
                    if isinstance(row.get(k), list)
                    else row.get(k)
                    for k in _SAMPLE_KEYS
                ]
            )
    return len(samples)


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------


def _check_keys(row: Dict, keys, where: str, errors: List[str]) -> bool:
    missing = [k for k in keys if k not in row]
    if missing:
        errors.append("%s: missing keys %s" % (where, ", ".join(missing)))
        return False
    return True


def validate_rows(
    rows: Iterable[Dict], require_decisions: bool = False
) -> List[str]:
    """Schema-check a row stream; returns a list of problems (empty =
    valid).

    Enforced: every row typed and preceded by a ``meta`` header; meta
    carries the supported schema version; samples carry the full
    time-series key set; decisions carry non-empty victim lists with the
    common ranking keys; events carry known kinds.  With
    ``require_decisions``, every run block must contain at least one
    decision record (the fig5 acceptance criterion).
    """
    errors: List[str] = []
    runs = 0
    decisions_in_run = 0
    saw_rows_in_run = False
    for i, row in enumerate(rows):
        where = "row %d" % i
        rtype = row.get("type")
        if rtype not in ROW_TYPES:
            errors.append("%s: unknown type %r" % (where, rtype))
            continue
        if rtype == "meta":
            if runs and require_decisions and decisions_in_run == 0:
                errors.append(
                    "run %d has no decision records" % (runs - 1)
                )
            runs += 1
            decisions_in_run = 0
            saw_rows_in_run = False
            if row.get("schema") not in SUPPORTED_SCHEMAS:
                errors.append(
                    "%s: schema %r, expected one of %s"
                    % (
                        where,
                        row.get("schema"),
                        ", ".join(str(v) for v in SUPPORTED_SCHEMAS),
                    )
                )
            if not isinstance(row.get("run"), dict):
                errors.append("%s: meta.run must be an object" % where)
            continue
        if runs == 0:
            errors.append("%s: %s row before any meta header" % (where, rtype))
            continue
        saw_rows_in_run = True
        if rtype == "sample":
            if _check_keys(row, _SAMPLE_KEYS, where, errors):
                if not isinstance(row["emptiness_hist"], list):
                    errors.append("%s: emptiness_hist must be a list" % where)
        elif rtype == "decision":
            decisions_in_run += 1
            if not _check_keys(row, _DECISION_KEYS, where, errors):
                continue
            victims = row["victims"]
            if not isinstance(victims, list) or not victims:
                errors.append("%s: victims must be a non-empty list" % where)
                continue
            for j, victim in enumerate(victims):
                _check_keys(
                    victim, _VICTIM_KEYS, "%s victim %d" % (where, j), errors
                )
        elif rtype == "event":
            if _check_keys(row, _EVENT_KEYS, where, errors):
                if row["kind"] not in EVENT_KINDS:
                    errors.append(
                        "%s: unknown event kind %r" % (where, row["kind"])
                    )
        elif rtype == "metrics":
            _check_keys(row, _METRICS_KEYS, where, errors)
        elif rtype == "span":
            if _check_keys(row, _SPAN_KEYS, where, errors):
                if not isinstance(row["start_us"], int) or not isinstance(
                    row["dur_us"], int
                ):
                    errors.append(
                        "%s: start_us/dur_us must be integer microseconds" % where
                    )
                elif row["dur_us"] < 0:
                    errors.append("%s: dur_us must be non-negative" % where)
        elif rtype == "telemetry":
            if _check_keys(row, _TELEMETRY_KEYS, where, errors):
                if not isinstance(row["shards"], list):
                    errors.append("%s: shards must be a list" % where)
    if runs == 0:
        errors.append("no meta header found")
    elif require_decisions and saw_rows_in_run and decisions_in_run == 0:
        errors.append("run %d has no decision records" % (runs - 1))
    return errors


def validate_file(path: str, require_decisions: bool = False) -> List[str]:
    """:func:`validate_rows` over a JSONL file."""
    return validate_rows(load_rows(path), require_decisions=require_decisions)


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------


def _split_runs(rows: Iterable[Dict]) -> List[Dict]:
    """Group a row stream into per-run blocks on the meta headers."""
    runs: List[Dict] = []
    current: Optional[Dict] = None
    for row in rows:
        if row.get("type") == "meta":
            current = {"run": row.get("run", {}), "rows": []}
            runs.append(current)
        elif current is not None:
            current["rows"].append(row)
    return runs


def aggregate_convergence(rows: Iterable[Dict]) -> List[Dict]:
    """Per-run convergence series: parallel clock / windowed-Wamp /
    fill arrays, ready to plot or average across a sweep grid."""
    out = []
    for block in _split_runs(rows):
        samples = [r for r in block["rows"] if r.get("type") == "sample"]
        out.append(
            {
                "run": block["run"],
                "clock": [s["clock"] for s in samples],
                "wamp_win": [s["wamp_win"] for s in samples],
                "device_wamp_win": [s["device_wamp_win"] for s in samples],
                "fill": [s["fill"] for s in samples],
                "free_segments": [s["free_segments"] for s in samples],
            }
        )
    return out


def summarize_rows(rows: Iterable[Dict]) -> Dict:
    """Compact summary of a metrics file (the ``repro obs summarize``
    payload): per run, the final windowed Wamp, sample/decision/event
    counts, the policies that made decisions, and how much the capture
    rings dropped (cumulative EventBus/decision-deque drops — nonzero
    means the retained events under-count what actually happened)."""
    blocks = _split_runs(rows)
    runs = []
    total_events_dropped = 0
    total_decisions_dropped = 0
    total_spans = 0
    for block in blocks:
        samples = [r for r in block["rows"] if r.get("type") == "sample"]
        decisions = [r for r in block["rows"] if r.get("type") == "decision"]
        spans = [r for r in block["rows"] if r.get("type") == "span"]
        events: Dict[str, int] = {}
        events_dropped = 0
        decisions_dropped = 0
        ring_capacity: Optional[int] = None
        for row in block["rows"]:
            if row.get("type") == "metrics":
                for kind, n in row.get("event_counts", {}).items():
                    events[kind] = events.get(kind, 0) + n
                events_dropped += int(row.get("events_dropped", 0) or 0)
                decisions_dropped += int(row.get("decisions_dropped", 0) or 0)
                if row.get("ring_capacity") is not None:
                    cap = int(row["ring_capacity"])
                    ring_capacity = cap if ring_capacity is None else max(ring_capacity, cap)
        if ring_capacity is None and block["run"].get("ring_capacity") is not None:
            ring_capacity = int(block["run"]["ring_capacity"])
        total_events_dropped += events_dropped
        total_decisions_dropped += decisions_dropped
        total_spans += len(spans)
        last = samples[-1] if samples else None
        runs.append(
            {
                "run": block["run"],
                "samples": len(samples),
                "decisions": len(decisions),
                "spans": len(spans),
                "decision_policies": sorted({d["policy"] for d in decisions}),
                "final_clock": last["clock"] if last else None,
                "final_wamp_win": last["wamp_win"] if last else None,
                "final_fill": last["fill"] if last else None,
                "event_counts": events,
                "events_dropped": events_dropped,
                "decisions_dropped": decisions_dropped,
                "ring_capacity": ring_capacity,
            }
        )
    return {
        "schema": SCHEMA_VERSION,
        "runs": len(blocks),
        "per_run": runs,
        "spans": total_spans,
        "events_dropped": total_events_dropped,
        "decisions_dropped": total_decisions_dropped,
    }
