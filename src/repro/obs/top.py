"""`repro top`: a live terminal view over a telemetry JSONL file.

A running service (``repro serve --telemetry-out``) appends one
``type: "telemetry"`` row per tick — per-shard Wamp/fill/queue depth/
stall plus the SLO burn state.  ``repro top`` tails that file and
renders the latest row as a fixed-width frame, like ``top`` over a
procfile.

The file-following primitive (:func:`follow_lines`) is poll-based with
bounded exponential backoff — no inotify dependency — and is shared
with ``repro obs tail --follow``.  It tolerates partial trailing lines
(a writer mid-append) by buffering until the newline arrives, and
resets from the top if the file is truncated or replaced.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, TextIO

__all__ = ["follow_lines", "render_top", "run_top"]


def follow_lines(
    path: str,
    poll_s: float = 0.2,
    max_poll_s: float = 2.0,
    idle_timeout_s: Optional[float] = None,
    from_start: bool = True,
    sleep: Callable[[float], None] = time.sleep,
) -> Iterator[str]:
    """Yield complete lines from ``path`` as they are appended.

    Polls with exponential backoff from ``poll_s`` up to ``max_poll_s``
    while idle, resetting to ``poll_s`` whenever data arrives.  With an
    ``idle_timeout_s`` the generator stops after that much idle wall
    time (tests and ``--follow-for``); ``None`` follows forever.
    A shrinking file (truncate/replace) restarts from offset 0.
    """
    offset = 0 if from_start else _size_of(path)
    buffer = ""
    delay = poll_s
    idle = 0.0
    while True:
        size = _size_of(path)
        if size < offset:  # truncated or replaced: start over
            offset = 0
            buffer = ""
        chunk = ""
        if size > offset:
            with open(path, "r", encoding="utf-8") as handle:
                handle.seek(offset)
                chunk = handle.read()
                offset = handle.tell()
        if chunk:
            buffer += chunk
            lines = buffer.split("\n")
            buffer = lines.pop()  # partial trailing line (or "")
            got_line = False
            for line in lines:
                if line.strip():
                    got_line = True
                    yield line
            if got_line:
                delay = poll_s
                idle = 0.0
                continue
        if idle_timeout_s is not None and idle >= idle_timeout_s:
            return
        sleep(delay)
        idle += delay
        delay = min(delay * 2, max_poll_s)


def _size_of(path: str) -> int:
    import os

    try:
        return os.path.getsize(path)
    except OSError:
        return 0


# -- frame rendering --------------------------------------------------


def _bar(fraction: float, width: int = 10) -> str:
    fraction = min(max(fraction, 0.0), 1.0)
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def render_top(row: Mapping[str, Any]) -> str:
    """Render one telemetry row as a fixed-width text frame."""
    lines: List[str] = []
    slo = row.get("slo") or {}
    burning = bool(slo.get("burning"))
    lines.append(
        "repro top  t=%0.1fs  clock=%s  tick=%s  queue=%s  flush_p99=%s pg"
        % (
            float(row.get("t_s", 0.0)),
            row.get("clock", "?"),
            row.get("tick", "?"),
            row.get("queue_depth", "?"),
            row.get("flush_stall_p99_pages", "?"),
        )
    )
    lines.append(
        "SLO  objective=%.2f  threshold=%.0f pg  bad=%s/%s  worst_burn=%.2f  "
        "sustained_burn=%.2f  %s"
        % (
            float(slo.get("objective", 0.0)),
            float(slo.get("threshold", 0.0)),
            slo.get("bad", 0),
            slo.get("samples", 0),
            float(slo.get("worst_burn", 0.0)),
            float(slo.get("sustained_burn", 0.0)),
            "BURNING" if burning else "ok",
        )
    )
    windows = slo.get("windows") or []
    if windows:
        lines.append(
            "     burn by window: "
            + "  ".join(
                "%d:%0.2f" % (stats.get("window", 0), float(stats.get("burn_rate", 0.0)))
                for stats in windows
            )
        )
    lines.append("")
    lines.append(
        "%5s  %7s  %-16s  %6s  %7s  %6s  %10s"
        % ("shard", "wamp", "fill", "free", "queue", "stall", "stall_p99")
    )
    for shard in row.get("shards") or []:
        fill = float(shard.get("fill", 0.0))
        lines.append(
            "%5s  %7.4f  %s %0.2f  %6s  %7s  %6s  %10.1f"
            % (
                shard.get("shard", "?"),
                float(shard.get("wamp", 0.0)),
                _bar(fill),
                fill,
                shard.get("free_segments", "?"),
                shard.get("queue_depth", "?"),
                shard.get("write_stalls", 0),
                float(shard.get("stall_p99_pages", 0.0)),
            )
        )
    return "\n".join(lines)


def run_top(
    path: str,
    refresh_s: float = 1.0,
    iterations: Optional[int] = None,
    out: Optional[TextIO] = None,
    clear: bool = True,
    idle_timeout_s: Optional[float] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> int:
    """Tail ``path`` and render each new telemetry row; returns frames drawn.

    ``iterations`` bounds the number of frames (tests, ``--frames``);
    ``None`` runs until the follower stops (idle timeout) or Ctrl-C.
    """
    stream = out if out is not None else sys.stdout
    frames = 0
    try:
        for line in follow_lines(
            path,
            poll_s=min(refresh_s, 0.25),
            max_poll_s=max(refresh_s, 1.0),
            idle_timeout_s=idle_timeout_s,
            sleep=sleep,
        ):
            try:
                row = json.loads(line)
            except ValueError:
                continue
            if row.get("type") != "telemetry":
                continue
            frame = render_top(row)
            if clear:
                stream.write("\x1b[2J\x1b[H")
            stream.write(frame + "\n")
            stream.flush()
            frames += 1
            if iterations is not None and frames >= iterations:
                break
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    return frames
