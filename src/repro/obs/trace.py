"""Hierarchical causal spans for the sharded service.

A *span* is one timed region of work — a ``Service.put``, an ingest
flush, an inline clean — with a parent link, so a stalled flush can be
decomposed into the child that caused the stall instead of vanishing
into a histogram bucket.  The machinery follows the same discipline as
the rest of ``repro.obs``:

* **Deterministic IDs.**  Span and trace IDs are blake2b digests of
  ``(seed, kind, counter)`` — two identical seeded runs produce the
  same ID sequence, so span files diff cleanly and tests can assert on
  IDs.  Wall times come from :mod:`repro.obs.clock` and are *not* part
  of the identity.
* **Head-based sampling.**  The keep/drop decision is made once, at the
  root of each trace, and inherited by every descendant — a sampled-out
  trace drops atomically, so a retained child can never be orphaned.
* **Detached cost.**  Every hook site guards with
  ``tracer is not None`` (one attribute test), matching the observer
  budget: no allocation, no call, when tracing is off.

Finished spans land in a ring-buffered :class:`SpanCollector` (oldest
dropped and counted, like :class:`~repro.obs.events.EventBus`) and
export as schema-v2 JSONL rows (``type: "span"``) with their own meta
header, so ``repro obs validate`` works on span files unchanged.  A
Chrome trace-event exporter makes the same spans loadable in Perfetto,
and :func:`critical_path_report` attributes flush-stall tail samples to
their dominant child span.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from contextlib import contextmanager
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence

from .clock import now_s

__all__ = [
    "Span",
    "SpanCollector",
    "Tracer",
    "write_spans",
    "load_spans",
    "chrome_trace",
    "write_chrome_trace",
    "critical_path_report",
]

#: Sentinel: ``start(parent=_STACK)`` means "parent is the current top
#: of the span stack" (the common, nested case).  Passing an explicit
#: span (or ``None`` for a detached root) bypasses the stack — used by
#: the sweep pool, where jobs overlap and stack discipline would lie.
_STACK = object()


def _det_id(seed: int, kind: str, counter: int) -> str:
    """A 16-hex-char deterministic ID from (seed, kind, counter)."""
    raw = ("%d:%s:%d" % (seed, kind, counter)).encode("ascii")
    return hashlib.blake2b(raw, digest_size=8).hexdigest()


class Span:
    """One timed region: identity, causal links, wall interval, attrs.

    ``start_s``/``end_s`` are seconds on the shared process clock
    (:func:`repro.obs.clock.now_s`); ``clock`` optionally records the
    store's logical update clock for joining against metrics rows.
    """

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "start_s",
        "end_s",
        "clock",
        "attrs",
        "sampled",
    )

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        name: str,
        start_s: float,
        sampled: bool = True,
        clock: Optional[int] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_s = start_s
        self.end_s: Optional[float] = None
        self.clock = clock
        self.attrs: Dict[str, Any] = attrs if attrs is not None else {}
        self.sampled = sampled

    @property
    def duration_s(self) -> float:
        """Wall duration; 0.0 while the span is still open."""
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def to_row(self) -> Dict[str, Any]:
        """The schema-v2 JSONL row form (``type: "span"``)."""
        row: Dict[str, Any] = {
            "type": "span",
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start_us": int(round(self.start_s * 1_000_000)),
            "dur_us": int(round(self.duration_s * 1_000_000)),
        }
        if self.clock is not None:
            row["clock"] = self.clock
        if self.attrs:
            row["attrs"] = dict(self.attrs)
        return row

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Span(%s %s parent=%s dur=%.6fs)" % (
            self.name,
            self.span_id,
            self.parent_id,
            self.duration_s,
        )


class SpanCollector:
    """Ring buffer of finished spans, oldest dropped and counted."""

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._ring: "deque[Span]" = deque(maxlen=capacity)
        #: Finished, sampled spans pushed out of the ring by newer ones.
        self.dropped = 0

    def add(self, span: Span) -> None:
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(span)

    def spans(self) -> List[Span]:
        """Retained spans, oldest first."""
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)


class Tracer:
    """Causal span factory: deterministic IDs, a span stack, head sampling.

    Args:
        seed: Folded into every ID so identical seeded runs produce
            identical ID sequences.
        capacity: Ring size of the backing :class:`SpanCollector`.
        sample: Head-sampling probability in ``[0, 1]``.  Decided once
            per trace (at the root), deterministically from the trace
            counter, and inherited by all descendants.
    """

    def __init__(
        self,
        seed: int = 0,
        capacity: int = 65536,
        sample: float = 1.0,
        collector: Optional[SpanCollector] = None,
    ) -> None:
        if not 0.0 <= sample <= 1.0:
            raise ValueError("sample must be within [0, 1]")
        self.seed = seed
        self.sample = sample
        self.collector = collector if collector is not None else SpanCollector(capacity)
        self._stack: List[Span] = []
        self._span_counter = 0
        self._trace_counter = 0

    # -- sampling ---------------------------------------------------

    def _head_sample(self, trace_counter: int) -> bool:
        if self.sample >= 1.0:
            return True
        if self.sample <= 0.0:
            return False
        digest = hashlib.blake2b(
            ("%d:sample:%d" % (self.seed, trace_counter)).encode("ascii"),
            digest_size=8,
        ).digest()
        fraction = int.from_bytes(digest, "big") / float(1 << 64)
        return fraction < self.sample

    # -- span lifecycle ---------------------------------------------

    def start(
        self,
        name: str,
        clock: Optional[int] = None,
        parent: Any = _STACK,
        **attrs: Any,
    ) -> Span:
        """Open a span.

        With the default ``parent`` the span nests under the current
        top of the stack (and is pushed, so later ``start`` calls nest
        under it).  An explicit ``parent`` span — or ``None`` for a
        detached root — bypasses the stack entirely; that is the form
        for overlapping work like pool job dispatch.
        """
        on_stack = parent is _STACK
        parent_span: Optional[Span]
        if on_stack:
            parent_span = self._stack[-1] if self._stack else None
        else:
            parent_span = parent
        if parent_span is None:
            self._trace_counter += 1
            trace_id = _det_id(self.seed, "t", self._trace_counter)
            parent_id = None
            sampled = self._head_sample(self._trace_counter)
        else:
            trace_id = parent_span.trace_id
            parent_id = parent_span.span_id
            sampled = parent_span.sampled
        self._span_counter += 1
        span = Span(
            trace_id=trace_id,
            span_id=_det_id(self.seed, "s", self._span_counter),
            parent_id=parent_id,
            name=name,
            start_s=now_s(),
            sampled=sampled,
            clock=clock,
            attrs=dict(attrs) if attrs else None,
        )
        if on_stack:
            self._stack.append(span)
        return span

    def finish(self, span: Span, **attrs: Any) -> Span:
        """Close a span; sampled spans enter the collector ring."""
        span.end_s = now_s()
        if attrs:
            span.attrs.update(attrs)
        try:
            self._stack.remove(span)
        except ValueError:
            pass  # detached span, or already popped
        if span.sampled:
            self.collector.add(span)
        return span

    @contextmanager
    def span(
        self, name: str, clock: Optional[int] = None, **attrs: Any
    ) -> Iterator[Span]:
        """Context-manager form for non-hot-path call sites."""
        opened = self.start(name, clock=clock, **attrs)
        try:
            yield opened
        finally:
            self.finish(opened)

    # -- export ------------------------------------------------------

    @property
    def dropped(self) -> int:
        return self.collector.dropped

    def rows(self) -> List[Dict[str, Any]]:
        """Finished sampled spans as schema-v2 rows, oldest first."""
        return [span.to_row() for span in self.collector.spans()]


# -- span file I/O ---------------------------------------------------


def write_spans(
    path: str,
    source: Any,
    meta: Optional[Mapping[str, Any]] = None,
) -> int:
    """Write a span JSONL file: one schema meta header, then span rows.

    ``source`` is a :class:`Tracer`, a :class:`SpanCollector`, or an
    iterable of already-built span rows (dicts).  The header makes the
    file self-describing, so ``repro obs validate`` accepts it.
    Returns the number of span rows written.
    """
    from .export import SCHEMA_VERSION  # local import: export imports nothing from here

    if isinstance(source, Tracer):
        rows: Iterable[Dict[str, Any]] = source.rows()
        dropped = source.collector.dropped
        capacity = source.collector.capacity
    elif isinstance(source, SpanCollector):
        rows = [span.to_row() for span in source.spans()]
        dropped = source.dropped
        capacity = source.capacity
    else:
        rows = [dict(row) for row in source]
        dropped = None
        capacity = None
    run: Dict[str, Any] = dict(meta) if meta else {}
    run.setdefault("component", "trace")
    if dropped is not None:
        run.setdefault("spans_dropped", dropped)
    if capacity is not None:
        run.setdefault("ring_capacity", capacity)
    header = {"type": "meta", "schema": SCHEMA_VERSION, "run": run}
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(header, sort_keys=True) + "\n")
        for row in rows:
            handle.write(json.dumps(row, sort_keys=True) + "\n")
            count += 1
    return count


def load_spans(path: str) -> List[Dict[str, Any]]:
    """Load the span rows (``type: "span"``) from a span JSONL file."""
    from .export import load_rows

    return [row for row in load_rows(path) if row.get("type") == "span"]


# -- Chrome trace-event export ---------------------------------------


def chrome_trace(rows: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
    """Span rows as a Chrome trace-event JSON object (Perfetto-loadable).

    Complete (``ph: "X"``) events; ``ts``/``dur`` are microseconds on
    the shared process clock.  The ``tid`` lane is the span's ``shard``
    attribute when present, so per-shard work separates visually.
    """
    events: List[Dict[str, Any]] = []
    for row in rows:
        if row.get("type") not in (None, "span"):
            continue
        if "span" not in row or "start_us" not in row:
            continue
        attrs = dict(row.get("attrs") or {})
        args: Dict[str, Any] = {
            "trace": row.get("trace"),
            "span": row.get("span"),
            "parent": row.get("parent"),
        }
        if "clock" in row:
            args["clock"] = row["clock"]
        args.update(attrs)
        name = str(row.get("name", "span"))
        tid = attrs.get("shard", 0)
        if not isinstance(tid, int):
            tid = 0
        events.append(
            {
                "ph": "X",
                "name": name,
                "cat": name.split(".", 1)[0],
                "ts": int(row["start_us"]),
                "dur": max(int(row.get("dur_us", 0)), 1),
                "pid": 0,
                "tid": tid,
                "args": args,
            }
        )
    events.sort(key=lambda event: (event["ts"], event["tid"], event["name"]))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, rows: Iterable[Mapping[str, Any]]) -> int:
    """Write the Chrome trace-event form; returns the event count."""
    trace = chrome_trace(rows)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, sort_keys=True)
        handle.write("\n")
    return len(trace["traceEvents"])


# -- critical-path analysis ------------------------------------------


def _quantile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank quantile over an ascending sequence."""
    if not sorted_values:
        return 0.0
    rank = max(int(len(sorted_values) * q) - 1, 0)
    rank = min(rank, len(sorted_values) - 1)
    return sorted_values[rank]


def _dominant_path(
    row: Mapping[str, Any],
    children: Mapping[Optional[str], List[Dict[str, Any]]],
) -> List[Dict[str, Any]]:
    """Follow the longest-duration child repeatedly; the drilled chain."""
    path: List[Dict[str, Any]] = []
    current = row
    seen = set()
    while True:
        span_id = current.get("span")
        if span_id in seen:  # defensive: malformed cyclic input
            break
        seen.add(span_id)
        kids = children.get(span_id)
        if not kids:
            break
        dominant = max(kids, key=lambda kid: (kid.get("dur_us", 0), kid.get("span", "")))
        path.append(dominant)
        current = dominant
    return path


def critical_path_report(
    rows: Iterable[Mapping[str, Any]],
    flush_name: str = "queue.flush",
    stall_key: str = "stall_pages",
    tail_quantile: float = 0.99,
) -> Dict[str, Any]:
    """Attribute flush-stall tail samples to their dominant child span.

    Selects the flush spans whose ``stall_pages`` attribute sits at or
    above the ``tail_quantile`` of the (nonzero-stall) flush
    distribution, then walks each one's dominant-child chain — the
    deepest span on that chain is the *cause* (e.g. ``store.clean_step``
    for an inline clean, ``pool.maintain`` for governance work).
    """
    spans = [dict(row) for row in rows if row.get("type") in (None, "span")]
    children: Dict[Optional[str], List[Dict[str, Any]]] = {}
    for span in spans:
        children.setdefault(span.get("parent"), []).append(span)
    flushes = [span for span in spans if span.get("name") == flush_name]
    stalls = sorted(
        float((span.get("attrs") or {}).get(stall_key, 0.0)) for span in flushes
    )
    nonzero = [value for value in stalls if value > 0]
    threshold = _quantile(nonzero, tail_quantile) if nonzero else 0.0
    tail = [
        span
        for span in flushes
        if float((span.get("attrs") or {}).get(stall_key, 0.0)) >= threshold
        and float((span.get("attrs") or {}).get(stall_key, 0.0)) > 0
    ]
    by_cause: Dict[str, int] = {}
    attributed = 0
    samples: List[Dict[str, Any]] = []
    for span in tail:
        path = _dominant_path(span, children)
        if path:
            cause = str(path[-1].get("name"))
            attributed += 1
        else:
            cause = "(self)"
        by_cause[cause] = by_cause.get(cause, 0) + 1
        samples.append(
            {
                "span": span.get("span"),
                "stall_pages": float((span.get("attrs") or {}).get(stall_key, 0.0)),
                "cause": cause,
                "chain": [str(step.get("name")) for step in path],
            }
        )
    fraction = (attributed / len(tail)) if tail else 1.0
    return {
        "spans": len(spans),
        "flushes": len(flushes),
        "stalled_flushes": len(nonzero),
        "tail_quantile": tail_quantile,
        "tail_threshold_pages": threshold,
        "tail_samples": len(tail),
        "attributed": attributed,
        "attribution_fraction": fraction,
        "by_cause": dict(sorted(by_cause.items(), key=lambda kv: (-kv[1], kv[0]))),
        "samples": samples[:32],
    }
