"""Counters, gauges, and fixed-bucket histograms with snapshot/delta
semantics.

The store's own :class:`~repro.store.stats.StoreStats` follows a
snapshot-then-delta discipline: cumulative counters, immutable
snapshots, windows as snapshot differences.  This module generalizes
that to arbitrary named instruments so observers can measure anything
(events per kind, cleaned-emptiness distributions, free-pool depth)
with the same windowing model — :meth:`MetricsSnapshot.delta` is to
:meth:`MetricsRegistry.snapshot` exactly what
:meth:`~repro.store.stats.StatsSnapshot.delta` is to
:meth:`~repro.store.stats.StoreStats.snapshot`.

Counters and histogram bucket counts subtract in a delta; gauges are
instantaneous, so a delta carries the *later* snapshot's value.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Optional, Sequence, Tuple


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only increase; got %d" % n)
        self.value += n


class Gauge:
    """An instantaneous value (free segments, fill factor, ...)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


def percentile_from_buckets(
    edges: Sequence[float],
    counts: Sequence[int],
    q: float,
    lo: float = 0.0,
    hi: Optional[float] = None,
) -> float:
    """Estimate the ``q``-quantile (``q`` in [0, 1]) of a fixed-bucket
    histogram by linear interpolation inside the covering bucket.

    ``counts`` has one entry per edge plus the overflow bucket.  Bucket
    ``i`` spans ``(edges[i-1], edges[i]]`` (the first spans ``[lo,
    edges[0]]``); the overflow bucket spans ``(edges[-1], hi]``.

    ``hi`` — the largest value actually observed, when the caller
    tracked it — clamps every bucket's upper bound.  That is the
    small-sample-count fix: with a handful of observations, naive
    interpolation against a bucket's full width reads far above any
    real observation (one sample of 3 in a ``(2, 64]`` bucket would
    "interpolate" to ~64 at every quantile), and the overflow bucket
    has no finite upper edge at all without it.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]; got %r" % (q,))
    total = sum(counts)
    if total <= 0:
        return 0.0
    target = q * total
    cum = 0.0
    for i, n in enumerate(counts):
        if n <= 0:
            continue
        lower = lo if i == 0 else float(edges[i - 1])
        if i < len(edges):
            upper = float(edges[i])
        else:
            # Overflow bucket: without a tracked max the last edge is
            # the only finite bound we have.
            upper = float(edges[-1]) if hi is None else hi
        if hi is not None:
            upper = min(upper, hi)
        lower = min(lower, upper)
        if cum + n >= target:
            frac = (target - cum) / n
            return lower + frac * (upper - lower)
        cum += n
    # Rounding fallthrough (q == 1.0 with float accumulation).
    return hi if hi is not None else float(edges[-1])


class Histogram:
    """Fixed-bucket histogram.

    ``edges`` are ascending upper bounds; an observation lands in the
    first bucket whose edge is ``>= value``, or in the overflow bucket
    beyond the last edge.  Running ``total``/``count`` support a mean
    without retaining observations, and ``max_observed`` bounds
    percentile interpolation (see :func:`percentile_from_buckets`).
    """

    __slots__ = ("edges", "bucket_counts", "total", "count", "max_observed")

    def __init__(self, edges: Sequence[float]) -> None:
        edges = tuple(float(e) for e in edges)
        if not edges:
            raise ValueError("a histogram needs at least one bucket edge")
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError("bucket edges must be strictly ascending")
        self.edges = edges
        #: One count per edge plus the overflow bucket.
        self.bucket_counts = [0] * (len(edges) + 1)
        self.total = 0.0
        self.count = 0
        #: Largest value observed; caps percentile interpolation.
        self.max_observed = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        idx = len(self.edges)
        for i, edge in enumerate(self.edges):
            if value <= edge:
                idx = i
                break
        self.bucket_counts[idx] += 1
        self.total += value
        self.count += 1
        if value > self.max_observed:
            self.max_observed = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Interpolated ``q``-quantile (``q`` in [0, 1]) of everything
        observed so far, clamped to the largest real observation."""
        return percentile_from_buckets(
            self.edges,
            self.bucket_counts,
            q,
            hi=self.max_observed if self.count else None,
        )


@dataclasses.dataclass(frozen=True)
class MetricsSnapshot:
    """Immutable copy of a registry's instruments at one instant."""

    counters: Mapping[str, int]
    gauges: Mapping[str, float]
    #: name -> (edges, bucket counts incl. overflow, total, count)
    histograms: Mapping[
        str, Tuple[Tuple[float, ...], Tuple[int, ...], float, int]
    ]

    def delta(self, earlier: "MetricsSnapshot") -> "MetricsSnapshot":
        """The window from ``earlier`` to this snapshot.

        Counters and histogram buckets subtract (an instrument absent
        from ``earlier`` counts from zero); gauges keep this snapshot's
        instantaneous value.
        """
        counters = {
            name: value - earlier.counters.get(name, 0)
            for name, value in self.counters.items()
        }
        histograms = {}
        for name, (edges, buckets, total, count) in self.histograms.items():
            prev = earlier.histograms.get(name)
            if prev is None:
                histograms[name] = (edges, buckets, total, count)
                continue
            p_edges, p_buckets, p_total, p_count = prev
            if p_edges != edges:
                raise ValueError(
                    "histogram %r changed bucket edges between snapshots" % name
                )
            histograms[name] = (
                edges,
                tuple(b - pb for b, pb in zip(buckets, p_buckets)),
                total - p_total,
                count - p_count,
            )
        return MetricsSnapshot(
            counters=counters, gauges=dict(self.gauges), histograms=histograms
        )

    def to_dict(self) -> Dict:
        """JSON-ready form (the ``type: "metrics"`` export row body).

        Each histogram carries interpolated ``p99``/``p999`` estimates
        alongside its raw buckets; snapshots don't retain the observed
        maximum, so the estimates are clamped at the last bucket edge.
        """
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: {
                    "edges": list(edges),
                    "counts": list(buckets),
                    "total": total,
                    "count": count,
                    "p99": percentile_from_buckets(edges, buckets, 0.99),
                    "p999": percentile_from_buckets(edges, buckets, 0.999),
                }
                for name, (edges, buckets, total, count) in self.histograms.items()
            },
        }


class MetricsRegistry:
    """Named instruments, created on first use."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter()
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge()
        return gauge

    def histogram(
        self, name: str, edges: Optional[Sequence[float]] = None
    ) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            if edges is None:
                raise KeyError(
                    "histogram %r does not exist yet; pass bucket edges" % name
                )
            histogram = self._histograms[name] = Histogram(edges)
        elif edges is not None and tuple(float(e) for e in edges) != histogram.edges:
            raise ValueError("histogram %r already exists with other edges" % name)
        return histogram

    def names(self) -> List[str]:
        """All instrument names, sorted."""
        return sorted(
            set(self._counters) | set(self._gauges) | set(self._histograms)
        )

    def snapshot(self) -> MetricsSnapshot:
        """Immutable copy of every instrument."""
        return MetricsSnapshot(
            counters={n: c.value for n, c in self._counters.items()},
            gauges={n: g.value for n, g in self._gauges.items()},
            histograms={
                n: (h.edges, tuple(h.bucket_counts), h.total, h.count)
                for n, h in self._histograms.items()
            },
        )

    def window_since(self, earlier: MetricsSnapshot) -> MetricsSnapshot:
        """Instrument deltas since ``earlier`` (gauges stay current)."""
        return self.snapshot().delta(earlier)
