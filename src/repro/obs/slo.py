"""Multi-window SLO burn-rate tracking over stall/latency samples.

The latency gate from PR 6 compares *aggregate* percentiles; a burn
rate answers the operational question instead: *at the current bad-event
rate, how fast is the error budget being spent?*  With an objective of
``0.95`` ("95% of flushes stall at most ``threshold`` pages"), the
budget is the 5% of events allowed to be bad; a burn rate of 1.0 means
bad events arrive exactly at budget, 2.0 means twice as fast.

Following multi-window alerting practice, the tracker evaluates the
same budget over several trailing windows (by sample count — the
service is tick-driven, not wall-clock-driven, so sample windows keep
the math deterministic).  The *sustained* burn — the minimum across
windows — only rises when every window is burning, which filters
one-flush blips; the *worst* burn (maximum) surfaces short spikes.
The ``kind: slo`` matrix gate compares sustained burn against a
ceiling.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, List, Sequence

__all__ = ["SLOTracker"]


class SLOTracker:
    """Burn-rate evaluation of a good/bad event stream.

    Args:
        objective: Target good fraction in ``[0, 1)`` — e.g. ``0.95``
            allows 5% of events to exceed the threshold.
        threshold: A recorded value strictly above this is a bad event.
            The default of 32.0 pages matches one incremental cleaner
            step budget: a flush that stalls behind more than one step's
            worth of GC writes is out of budget.
        windows: Trailing window lengths, in samples, shortest first.
    """

    def __init__(
        self,
        objective: float = 0.95,
        threshold: float = 32.0,
        windows: Sequence[int] = (16, 64, 256),
    ) -> None:
        if not 0.0 <= objective < 1.0:
            raise ValueError("objective must be within [0, 1)")
        if not windows:
            raise ValueError("at least one window is required")
        if any(window < 1 for window in windows):
            raise ValueError("windows must be positive sample counts")
        self.objective = objective
        self.threshold = threshold
        self.windows = tuple(sorted(int(window) for window in windows))
        self._ring: "deque[bool]" = deque(maxlen=self.windows[-1])
        self.samples = 0
        self.bad = 0

    @property
    def budget(self) -> float:
        """The allowed bad fraction (error budget)."""
        return 1.0 - self.objective

    def record(self, value: float) -> bool:
        """Record one sample; returns whether it was bad."""
        is_bad = value > self.threshold
        self._ring.append(is_bad)
        self.samples += 1
        if is_bad:
            self.bad += 1
        return is_bad

    def _window_stats(self, window: int) -> Dict[str, Any]:
        recent = list(self._ring)[-window:]
        count = len(recent)
        bad = sum(recent)
        bad_fraction = (bad / count) if count else 0.0
        return {
            "window": window,
            "samples": count,
            "bad": bad,
            "bad_fraction": round(bad_fraction, 6),
            "burn_rate": round(bad_fraction / self.budget, 6),
        }

    def burn_rates(self) -> List[Dict[str, Any]]:
        """Per-window burn stats, shortest window first."""
        return [self._window_stats(window) for window in self.windows]

    @property
    def worst_burn(self) -> float:
        """Max burn across windows — surfaces short spikes."""
        return max(stats["burn_rate"] for stats in self.burn_rates())

    @property
    def sustained_burn(self) -> float:
        """Min burn across windows — nonzero only when all are burning."""
        return min(stats["burn_rate"] for stats in self.burn_rates())

    def report(self) -> Dict[str, Any]:
        """JSON-ready summary embedded in bench results/telemetry rows."""
        windows = self.burn_rates()
        worst = max(stats["burn_rate"] for stats in windows)
        sustained = min(stats["burn_rate"] for stats in windows)
        return {
            "objective": self.objective,
            "threshold": self.threshold,
            "samples": self.samples,
            "bad": self.bad,
            "bad_fraction": round((self.bad / self.samples) if self.samples else 0.0, 6),
            "windows": windows,
            "worst_burn": worst,
            "sustained_burn": sustained,
            "burning": sustained > 1.0,
        }
