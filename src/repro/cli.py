"""Command-line entry point: regenerate any of the paper's experiments.

Usage (installed as ``repro``, or ``python -m repro``):

    repro table1                 # Table 1: fixpoint analysis vs simulation
    repro table2                 # Table 2: hot/cold minimum cost
    repro fig3                   # Figure 3: MDC ablation breakdown
    repro fig4                   # Figure 4: sort-buffer sweep
    repro fig5 --dist zipf-80-20 # Figure 5: policy comparison
    repro fig6                   # Figure 6: TPC-C traces
    repro ablation               # estimator + batch-size ablations
    repro simulate --policy mdc --dist zipf-80-20 --fill 0.8
    repro sweep fig5 --workers 4 --out runs/fig5 --resume
    repro bench micro            # scalar vs batch write-engine benchmark
    repro bench service          # sharded-service scaling vs serial baseline
    repro serve --shards 4       # drive the sharded service front-end
    repro loadgen ops.jsonl      # record a deterministic client op trace
    repro top telemetry.jsonl    # live per-shard dashboard + SLO burn
    repro policies               # list registered cleaning policies
    repro replay trace.jsonl     # re-run a recorded op trace, verify digest
    repro difftest --ops 10000   # store-vs-oracle differential harness

``repro replay`` replays an operation trace recorded by the testkit
(e.g. a divergence repro saved by the differential harness) and checks
the resulting store state digest against the one recorded in the trace,
so a repro case is self-verifying.  ``repro difftest`` cross-validates
every registered cleaning policy against the dict-based oracle model on
the synthetic workload families (see ``repro.testkit``).

Quick variants of the heavy experiments accept ``--quick`` to shrink
write counts by ~4x (coarser numbers, same shapes).  Every experiment
takes ``--seed`` so single runs are reproducible from the command line.

``repro serve`` runs the sharded service front-end (``repro.service``)
under its deterministic concurrent client harness — or, with
``--from``, replays an op trace recorded by ``repro loadgen`` — and
reports aggregate writes/sec, per-shard Wamp, and queue depth.  The
same seed and parameters reproduce the same load byte for byte, so a
recorded trace and the in-process generator are interchangeable.

``repro sweep`` runs a whole experiment grid through the parallel
orchestrator (``repro.sweep``): jobs fan out over worker processes, each
finished job is journaled to ``<out>/manifest.jsonl``, and a killed
sweep re-invoked with ``--resume`` skips completed jobs and still
produces byte-identical aggregated output.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench import (
    ablation_batch_experiment,
    ablation_estimator_experiment,
    fig3_experiment,
    fig4_experiment,
    fig5_experiment,
    fig6_experiment,
    run_simulation,
    table1_experiment,
    table2_experiment,
)
from repro.bench.experiments import _standard_config, make_workload
from repro.policies import available_policies
from repro.tpcc import TpccScale


def _add_quick(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--quick", action="store_true",
        help="~4x fewer writes per point (coarser numbers, same shapes)",
    )


def _add_seed(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--seed", type=int, default=0,
        help="workload seed (same seed + same parameters = same numbers)",
    )


def _multiplier(base: float, quick: bool) -> float:
    return base / 4.0 if quick else base


def _add_metrics_out(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics-out", default=None, metavar="JSONL",
        help="record observability rows (time series, cleaning decisions, "
        "events) for every simulation of this experiment into one "
        "metrics.jsonl file",
    )
    parser.add_argument(
        "--sample-interval", type=int, default=None, metavar="TICKS",
        help="clock ticks between time-series samples (default: a quarter "
        "of the store's user pages); only with --metrics-out",
    )


def _add_harness_flags(parser: argparse.ArgumentParser) -> None:
    """Flags shared by ``repro serve`` and ``repro loadgen`` (the
    :class:`repro.service.HarnessConfig` surface)."""
    parser.add_argument(
        "--shards", type=int, default=None,
        help="store shards behind the router (default 4)",
    )
    parser.add_argument(
        "--clients", type=int, default=None,
        help="simulated concurrent clients (default 8)",
    )
    parser.add_argument(
        "--tenants", type=int, default=None,
        help="tenants; clients are assigned round-robin (default 4)",
    )
    parser.add_argument(
        "--ops", type=int, default=None,
        help="total client ops (default 200000; --quick: 24000)",
    )
    parser.add_argument(
        "--keys-per-tenant", type=int, default=None,
        help="keyspace size per tenant (default 4096; --quick: 1024)",
    )
    parser.add_argument(
        "--dist", default=None,
        choices=["uniform", "zipf-80-20", "zipf-90-10", "hotcold"],
        help="per-tenant keyspace skew (default zipf-80-20)",
    )
    parser.add_argument(
        "--value-bytes", type=int, default=None,
        help="max value size; sizes draw uniformly from 1..N (default 96)",
    )
    parser.add_argument(
        "--delete-frac", type=float, default=None,
        help="fraction of ops that are deletes (default 0.03)",
    )
    parser.add_argument(
        "--policy", default=None, choices=available_policies(),
        help="per-shard cleaning policy (default mdc)",
    )
    parser.add_argument(
        "--batch-size", type=int, default=None,
        help="ingest flush-on-size threshold in ops (default 256)",
    )
    parser.add_argument(
        "--flush-interval", type=int, default=None,
        help="ticks before flush-on-tick kicks in (default 4)",
    )
    parser.add_argument(
        "--max-depth", type=int, default=None,
        help="queued ops before backpressure flushes (default 4096)",
    )
    parser.add_argument(
        "--tick-every", type=int, default=None,
        help="client ops between service clock ticks (default 512)",
    )
    parser.add_argument(
        "--tenant-spread", type=float, default=None,
        help="fraction of the ring one tenant's keys cover (default 1.0)",
    )
    parser.add_argument(
        "--gc-budget", type=int, default=None,
        help="page relocations per maintenance round, pool-wide "
        "(default: two segments' worth)",
    )
    parser.add_argument(
        "--gc-max-share", type=float, default=None,
        help="largest budget fraction one shard may spend (default 0.5)",
    )
    parser.add_argument(
        "--cleaner", default=None, choices=["batch", "incremental"],
        help="cleaning mode: whole cycles per maintenance visit (batch, "
        "default) or bounded preemptible steps (incremental)",
    )
    parser.add_argument(
        "--pages-per-step", type=int, default=None,
        help="relocations per incremental cleaner step (default 32; "
        "only with --cleaner incremental)",
    )
    _add_quick(parser)
    _add_seed(parser)


def _harness_config(args: argparse.Namespace):
    """Build a :class:`repro.service.HarnessConfig` from parsed flags
    (``--quick`` picks the small base shape; explicit flags override)."""
    from repro.service import HarnessConfig

    base = (
        HarnessConfig.quick(seed=args.seed)
        if args.quick
        else HarnessConfig(seed=args.seed)
    )
    flag_to_field = {
        "shards": "n_shards",
        "clients": "n_clients",
        "tenants": "n_tenants",
        "ops": "ops",
        "keys_per_tenant": "keys_per_tenant",
        "dist": "dist",
        "value_bytes": "value_bytes",
        "delete_frac": "delete_frac",
        "policy": "policy",
        "batch_size": "batch_size",
        "flush_interval": "flush_interval",
        "max_depth": "max_depth",
        "tick_every": "tick_every",
        "tenant_spread": "tenant_spread",
        "gc_budget": "gc_budget",
        "gc_max_share": "gc_max_share",
        "cleaner": "cleaner",
        "pages_per_step": "pages_per_step",
        "sample_interval": "sample_interval",
    }
    overrides = {}
    for flag, field in flag_to_field.items():
        value = getattr(args, flag, None)
        if value is not None:
            overrides[field] = value
    return base.scaled(**overrides) if overrides else base


def _experiment_runner(args: argparse.Namespace):
    """The ``runner=`` for an experiment: an observing one when
    ``--metrics-out`` was given, else None (the serial default)."""
    if getattr(args, "metrics_out", None) is None:
        return None
    from repro.bench import observed_runner

    return observed_runner(
        args.metrics_out, sample_interval=args.sample_interval
    )


def main(argv: Optional[List[str]] = None) -> int:
    """Parse arguments and dispatch one subcommand; returns exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the experiments of 'Efficiently Reclaiming "
        "Space in a Log Structured Store' (Lomet & Luo, ICDE 2021).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table1", help="Table 1: analysis vs simulation")
    _add_quick(p)
    _add_seed(p)
    _add_metrics_out(p)
    p = sub.add_parser("table2", help="Table 2: hot/cold minimum cost")
    _add_quick(p)
    _add_seed(p)
    _add_metrics_out(p)
    p = sub.add_parser("fig3", help="Figure 3: MDC ablation breakdown")
    _add_quick(p)
    _add_seed(p)
    _add_metrics_out(p)
    p = sub.add_parser("fig4", help="Figure 4: sort-buffer size sweep")
    _add_quick(p)
    _add_seed(p)
    _add_metrics_out(p)
    p = sub.add_parser("fig5", help="Figure 5: policy comparison")
    p.add_argument(
        "--dist",
        default="zipf-80-20",
        choices=["uniform", "zipf-80-20", "zipf-90-10"],
    )
    p.add_argument(
        "--fills", default=None, metavar="F1,F2,...",
        help="comma-separated fill factors (default: the paper's grid); "
        "e.g. --fills 0.5 for a single-fill run",
    )
    _add_quick(p)
    _add_seed(p)
    _add_metrics_out(p)
    p = sub.add_parser("fig6", help="Figure 6: TPC-C trace replay")
    p.add_argument("--warehouses", type=int, default=1)
    _add_seed(p)
    p = sub.add_parser("ablation", help="estimator and batch-size ablations")
    _add_quick(p)
    _add_seed(p)
    _add_metrics_out(p)

    p = sub.add_parser(
        "sweep",
        help="run an experiment grid in parallel with checkpointed resume",
    )
    from repro.sweep import SWEEP_DISTS, sweep_grid_names

    p.add_argument("grid", choices=sweep_grid_names())
    p.add_argument(
        "--dist", default=None, choices=list(SWEEP_DISTS),
        help="distribution for grids that take one (fig5)",
    )
    p.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: CPU count)",
    )
    p.add_argument(
        "--out", default=None,
        help="output directory for manifest.jsonl, summary.json, and the "
        "rendered table (default: sweep_runs/<grid>)",
    )
    p.add_argument(
        "--resume", action="store_true",
        help="continue an interrupted sweep, skipping journaled jobs",
    )
    p.add_argument(
        "--timeout", type=float, default=None,
        help="per-job wall-clock limit in seconds",
    )
    p.add_argument(
        "--retries", type=int, default=1,
        help="extra attempts for a crashed or failed job (default 1)",
    )
    p.add_argument(
        "--no-progress", action="store_true",
        help="suppress the live progress line on stderr",
    )
    p.add_argument(
        "--obs", action="store_true",
        help="record each job's observability rows; merged into "
        "<out>/metrics.jsonl (with <out>/convergence.json) after the sweep",
    )
    p.add_argument(
        "--sample-interval", type=int, default=None, metavar="TICKS",
        help="clock ticks between time-series samples (only with --obs)",
    )
    _add_quick(p)
    _add_seed(p)

    p = sub.add_parser(
        "bench",
        help="performance micro-benchmarks of the simulator itself",
    )
    bench_sub = p.add_subparsers(dest="bench_command", required=True)
    p = bench_sub.add_parser(
        "micro",
        help="scalar vs vectorized write engine on the fig5 quick grid",
    )
    p.add_argument(
        "--writes", type=int, default=None,
        help="updates per workload (default 200000; --quick: 60000)",
    )
    p.add_argument(
        "--trials", type=int, default=3,
        help="timed passes per cell; the fastest wall clock wins",
    )
    p.add_argument(
        "--policy", default="greedy", choices=available_policies(),
        help="cleaning policy to drive (default greedy)",
    )
    p.add_argument(
        "--out", default=None,
        help="write the JSON report here (default: BENCH_store.json when "
        "no --check, else nowhere)",
    )
    p.add_argument(
        "--check", default=None, metavar="BASELINE",
        help="compare against a committed BENCH_store.json; exit 1 when "
        "batch writes/sec regresses beyond --tolerance",
    )
    p.add_argument(
        "--tolerance", type=float, default=0.30,
        help="allowed fractional regression for --check (default 0.30)",
    )
    p.add_argument(
        "--profile", default=None, metavar="PROF", nargs="?", const="micro.prof",
        help="also cProfile the batch path and dump stats to PROF "
        "(default micro.prof)",
    )
    p.add_argument(
        "--history", default=None, metavar="JSONL",
        help="append the headline numbers, keyed by git SHA, to this "
        "JSONL trajectory (default benchmarks/history.jsonl)",
    )
    p.add_argument(
        "--no-history", action="store_true",
        help="skip the benchmarks/history.jsonl append",
    )
    _add_quick(p)
    _add_seed(p)
    p = bench_sub.add_parser(
        "service",
        help="sharded-service scaling: serial baseline vs the batched "
        "service at several shard counts (BENCH_service.json)",
    )
    p.add_argument(
        "--shards-list", default="1,2,4", metavar="N1,N2,...",
        help="shard counts to benchmark (default 1,2,4)",
    )
    p.add_argument(
        "--ops", type=int, default=None,
        help="client ops per configuration (default 200000; --quick: 24000)",
    )
    p.add_argument(
        "--out", default=None,
        help="write the JSON report here (default BENCH_service.json)",
    )
    p.add_argument(
        "--history", default=None, metavar="JSONL",
        help="append the headline numbers, keyed by git SHA, to this "
        "JSONL trajectory (default benchmarks/history.jsonl)",
    )
    p.add_argument(
        "--no-history", action="store_true",
        help="skip the benchmarks/history.jsonl append",
    )
    _add_quick(p)
    _add_seed(p)
    p = bench_sub.add_parser(
        "latency",
        help="tail-latency contrast: batch vs incremental cleaning at "
        "equal GC budget (BENCH_latency.json)",
    )
    p.add_argument(
        "--ops", type=int, default=None,
        help="client ops per mode (default 200000; --quick: 24000)",
    )
    p.add_argument(
        "--out", default=None,
        help="write the JSON report here (default BENCH_latency.json)",
    )
    p.add_argument(
        "--check", default=None, metavar="BASELINE",
        help="compare against a committed BENCH_latency.json; exit 1 "
        "when the p99 stall ratio regresses past the baseline",
    )
    p.add_argument(
        "--history", default=None, metavar="JSONL",
        help="append the headline numbers, keyed by git SHA, to this "
        "JSONL trajectory (default benchmarks/history.jsonl)",
    )
    p.add_argument(
        "--no-history", action="store_true",
        help="skip the benchmarks/history.jsonl append",
    )
    _add_quick(p)
    _add_seed(p)
    p = bench_sub.add_parser(
        "profile",
        help="cProfile the hot paths (write_batch / clean_step / "
        "rank_columns) and emit a ranked-cumtime artifact",
    )
    p.add_argument(
        "--writes", type=int, default=None,
        help="updates in the write phase (default 120000; --quick: 30000)",
    )
    p.add_argument(
        "--policy", default="greedy", choices=available_policies(),
        help="cleaning policy to drive (default greedy)",
    )
    p.add_argument(
        "--workload", default="zipfian",
        choices=("uniform", "hotcold", "zipfian"),
        help="update stream family (default zipfian)",
    )
    p.add_argument(
        "--top", type=int, default=15,
        help="functions kept per phase, ranked by cumulative time "
        "(default 15)",
    )
    p.add_argument(
        "--out", default=None,
        help="write the JSON artifact here (default "
        "benchmarks/results/PROFILE_store.json)",
    )
    _add_quick(p)
    _add_seed(p)
    p = bench_sub.add_parser(
        "run",
        help="run a declarative experiment-matrix config: expand the "
        "matrix, execute every cell (resumably), evaluate the gates, "
        "and render a markdown regression report",
    )
    p.add_argument(
        "config", metavar="CONFIG",
        help="YAML or JSON matrix config (see benchmarks/configs/ and "
        "EXPERIMENTS.md for the grammar)",
    )
    p.add_argument(
        "--out", default=None, metavar="DIR",
        help="output directory for the manifest, metrics, report.md and "
        "gates.json (default bench_runs/<config name>)",
    )
    p.add_argument(
        "--resume", action="store_true",
        help="continue an interrupted run from the manifest in --out; "
        "completed cells are skipped",
    )
    p.add_argument(
        "--workers", type=int, default=None,
        help="concurrent worker processes (default: CPU count; clamped "
        "to the CPU count)",
    )
    p.add_argument(
        "--timeout", type=float, default=None,
        help="per-cell wall-clock limit in seconds",
    )
    p.add_argument(
        "--retries", type=int, default=1,
        help="extra attempts for a failing cell (default 1)",
    )
    p.add_argument(
        "--sample-interval", type=int, default=None,
        help="clock ticks between time-series samples for obs "
        "experiments (default: a quarter of the store's user pages)",
    )
    p.add_argument(
        "--history", default=None, metavar="JSONL",
        help="append executed bench cells' headline numbers, keyed by "
        "git SHA, to this trajectory (default benchmarks/history.jsonl)",
    )
    p.add_argument(
        "--no-history", action="store_true",
        help="skip the benchmarks/history.jsonl append",
    )
    p = bench_sub.add_parser(
        "report",
        help="render the SHA-keyed perf trend dashboard from the "
        "benchmark history trajectory (no benchmarks are run)",
    )
    p.add_argument(
        "--history", default=None, metavar="JSONL",
        help="trajectory to read (default benchmarks/history.jsonl)",
    )
    p.add_argument(
        "--last", type=int, default=10,
        help="entries shown per benchmark family (default 10)",
    )
    p.add_argument(
        "--out", default=None, metavar="MD",
        help="also write the markdown to this file",
    )

    p = sub.add_parser(
        "serve",
        help="drive the sharded service front-end under the concurrent "
        "client harness (or replay a recorded op trace)",
    )
    _add_harness_flags(p)
    p.add_argument(
        "--from", dest="from_file", default=None, metavar="OPS_JSONL",
        help="replay an op trace recorded by 'repro loadgen' instead of "
        "generating load in-process (the trace's embedded config is "
        "used; --shards still overrides the shard count)",
    )
    p.add_argument(
        "--metrics-out", default=None, metavar="JSONL",
        help="export the service + per-shard observability rows "
        "(schema v1; byte-identical across same-seed runs)",
    )
    p.add_argument(
        "--sample-interval", type=int, default=None, metavar="TICKS",
        help="store clock ticks between per-shard time-series samples",
    )
    p.add_argument(
        "--trace-out", default=None, metavar="JSONL",
        help="record causal spans (service.put -> flush -> shard put "
        "-> write-stall/clean) to this span file; inspect with 'repro "
        "obs critical' or export with 'repro obs chrome'",
    )
    p.add_argument(
        "--trace-sample", type=float, default=1.0, metavar="FRAC",
        help="head-based trace sampling fraction, decided at each trace "
        "root and inherited by all its spans (default 1.0 = keep all)",
    )
    p.add_argument(
        "--telemetry-out", default=None, metavar="JSONL",
        help="append one per-tick telemetry row (per-shard Wamp/fill/"
        "queue/stall + SLO burn state) to this file; watch live with "
        "'repro top'",
    )
    p.add_argument(
        "--history", default=None, metavar="JSONL",
        help="append aggregate writes/sec, keyed by git SHA, to this "
        "JSONL trajectory (default benchmarks/history.jsonl)",
    )
    p.add_argument(
        "--no-history", action="store_true",
        help="skip the benchmarks/history.jsonl append",
    )

    p = sub.add_parser(
        "loadgen",
        help="record the harness's deterministic client op trace as "
        "JSONL for later 'repro serve --from' replay",
    )
    p.add_argument("out", help="output path for the op-trace JSONL")
    _add_harness_flags(p)

    p = sub.add_parser("simulate", help="one custom simulation")
    p.add_argument("--policy", default="mdc", choices=available_policies())
    p.add_argument("--dist", default="zipf-80-20")
    p.add_argument("--fill", type=float, default=0.8)
    p.add_argument("--sort-buffer", type=int, default=16)
    p.add_argument("--multiplier", type=float, default=25.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--report", action="store_true",
        help="print the full store report (occupancy, wear, emptiness "
        "histogram) after the run",
    )

    sub.add_parser("policies", help="list registered cleaning policies")

    p = sub.add_parser(
        "obs",
        help="inspect a metrics.jsonl produced by --metrics-out / --obs",
    )
    obs_sub = p.add_subparsers(dest="obs_command", required=True)
    p = obs_sub.add_parser(
        "summarize", help="per-run sample/decision/event counts + final Wamp"
    )
    p.add_argument("file", help="path to a metrics.jsonl")
    p.add_argument(
        "--json", action="store_true", help="emit the summary as JSON"
    )
    p = obs_sub.add_parser(
        "report", help="per-run convergence table (clock vs windowed Wamp)"
    )
    p.add_argument("file", help="path to a metrics.jsonl")
    p.add_argument(
        "--csv", default=None, metavar="OUT",
        help="also write the sample time-series as CSV",
    )
    p = obs_sub.add_parser("tail", help="print the last N event rows")
    p.add_argument("file", help="path to a metrics.jsonl")
    p.add_argument(
        "-n", type=int, default=20, help="events to show (default 20)"
    )
    p.add_argument(
        "--kind", default=None,
        help="only events of this kind (e.g. clean_cycle)",
    )
    p.add_argument(
        "--follow", action="store_true",
        help="after the initial tail, keep polling the file for new "
        "rows (bounded-backoff polling; ctrl-c to stop)",
    )
    p.add_argument(
        "--idle-timeout", type=float, default=None, metavar="S",
        help="with --follow: stop after this many idle seconds "
        "(default: follow forever)",
    )
    p = obs_sub.add_parser(
        "validate", help="schema-check a metrics.jsonl; exit 1 on problems"
    )
    p.add_argument("file", help="path to a metrics.jsonl")
    p.add_argument(
        "--require-decisions", action="store_true",
        help="additionally require >=1 cleaning-decision record per run",
    )
    p = obs_sub.add_parser(
        "chrome",
        help="export a span file to Chrome trace-event JSON "
        "(open in Perfetto / chrome://tracing)",
    )
    p.add_argument("file", help="path to a span .jsonl (--trace-out)")
    p.add_argument(
        "--out", default=None, metavar="JSON",
        help="output path (default: <file> with a .trace.json suffix)",
    )
    p = obs_sub.add_parser(
        "critical",
        help="critical-path report: attribute each tail flush-stall "
        "sample to its dominant child span",
    )
    p.add_argument("file", help="path to a span .jsonl (--trace-out)")
    p.add_argument(
        "--quantile", type=float, default=0.99,
        help="tail quantile over nonzero flush stalls (default 0.99)",
    )
    p.add_argument(
        "--min-attribution", type=float, default=None, metavar="FRAC",
        help="exit 1 unless at least this fraction of tail samples "
        "is attributed to a concrete child span",
    )
    p.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )

    p = sub.add_parser(
        "top",
        help="live terminal dashboard over a --telemetry-out file: "
        "per-shard Wamp/fill/queue/stall plus SLO burn state",
    )
    p.add_argument("file", help="path to a telemetry .jsonl")
    p.add_argument(
        "--refresh", type=float, default=1.0, metavar="S",
        help="minimum seconds between frame redraws (default 1.0)",
    )
    p.add_argument(
        "--frames", type=int, default=None,
        help="stop after rendering N frames (default: run until ctrl-c)",
    )
    p.add_argument(
        "--idle-timeout", type=float, default=None, metavar="S",
        help="stop after this many seconds without new rows",
    )
    p.add_argument(
        "--no-clear", action="store_true",
        help="do not clear the screen between frames (scrolling output)",
    )

    p = sub.add_parser(
        "replay",
        help="replay a recorded op trace and verify its state digest",
    )
    p.add_argument("trace", help="path to a trace .jsonl (testkit format)")
    p.add_argument(
        "--upto", type=int, default=None,
        help="replay only the first N ops (skips digest verification)",
    )
    p.add_argument(
        "--no-verify", action="store_true",
        help="do not compare against the digest recorded in the trace",
    )

    p = sub.add_parser(
        "difftest",
        help="differential store-vs-oracle harness over all policies",
    )
    p.add_argument(
        "--policy", action="append", default=None, dest="policies",
        choices=available_policies(),
        help="restrict to one policy (repeatable; default: the "
        "differential line-up)",
    )
    p.add_argument(
        "--workload", action="append", default=None, dest="workloads",
        choices=["uniform", "hotcold", "zipfian"],
        help="restrict to one workload family (repeatable; default: all)",
    )
    p.add_argument(
        "--ops", type=int, default=10_000,
        help="update operations per policy/workload pair (default 10000)",
    )
    p.add_argument(
        "--checkpoint-every", type=int, default=1_000,
        help="ops between store/oracle equivalence checks",
    )
    p.add_argument(
        "--trim-prob", type=float, default=0.02,
        help="per-op probability of a trim instead of a write",
    )
    p.add_argument(
        "--divergence-dir", default="divergences",
        help="directory for minimized divergence traces (default: "
        "./divergences)",
    )
    _add_seed(p)

    args = parser.parse_args(argv)

    if args.command == "table1":
        print(
            table1_experiment(
                write_multiplier=_multiplier(8, args.quick),
                seed=args.seed,
                runner=_experiment_runner(args),
            )
        )
        _note_metrics(args)
    elif args.command == "table2":
        print(
            table2_experiment(
                write_multiplier=_multiplier(30, args.quick),
                seed=args.seed,
                runner=_experiment_runner(args),
            )
        )
        _note_metrics(args)
    elif args.command == "fig3":
        print(
            fig3_experiment(
                write_multiplier=_multiplier(30, args.quick),
                seed=args.seed,
                runner=_experiment_runner(args),
            )
        )
        _note_metrics(args)
    elif args.command == "fig4":
        print(
            fig4_experiment(
                write_multiplier=_multiplier(30, args.quick),
                seed=args.seed,
                runner=_experiment_runner(args),
            )
        )
        _note_metrics(args)
    elif args.command == "fig5":
        fig5_kwargs = {}
        if args.fills:
            fig5_kwargs["fills"] = tuple(
                float(x) for x in args.fills.split(",") if x.strip()
            )
        print(
            fig5_experiment(
                args.dist,
                write_multiplier=_multiplier(25, args.quick),
                seed=args.seed,
                runner=_experiment_runner(args),
                **fig5_kwargs,
            )
        )
        _note_metrics(args)
    elif args.command == "fig6":
        print(
            fig6_experiment(
                scale=TpccScale(warehouses=args.warehouses), seed=args.seed
            )
        )
    elif args.command == "ablation":
        runner = _experiment_runner(args)  # shared: one merged metrics file
        print(
            ablation_estimator_experiment(
                write_multiplier=_multiplier(30, args.quick),
                seed=args.seed,
                runner=runner,
            )
        )
        print()
        print(
            ablation_batch_experiment(
                write_multiplier=_multiplier(30, args.quick),
                seed=args.seed,
                runner=runner,
            )
        )
        _note_metrics(args)
    elif args.command == "sweep":
        return _run_sweep_command(args)
    elif args.command == "bench":
        return _run_bench_command(args)
    elif args.command == "serve":
        return _run_serve_command(args)
    elif args.command == "loadgen":
        return _run_loadgen_command(args)
    elif args.command == "simulate":
        config = _standard_config(args.fill, args.sort_buffer)
        if args.report:
            from repro.bench import drive, prepare_store
            from repro.obs import StoreObserver
            from repro.store.reporting import describe

            workload = make_workload(args.dist, config.user_pages, args.seed)
            store = prepare_store(config, args.policy, workload)
            # Observe the post-load drive so the report shows the steady
            # -state (windowed) Wamp next to the cumulative one.
            with StoreObserver(store) as observer:
                drive(store, workload, int(args.multiplier * workload.n_pages))
                print(describe(store, window=observer.window()))
        else:
            workload = make_workload(args.dist, config.user_pages, args.seed)
            result = run_simulation(
                config, args.policy, workload, write_multiplier=args.multiplier
            )
            print(result.summary())
    elif args.command == "policies":
        for name in available_policies():
            print(name)
    elif args.command == "obs":
        return _run_obs_command(args)
    elif args.command == "top":
        return _run_top_command(args)
    elif args.command == "replay":
        return _run_replay_command(args)
    elif args.command == "difftest":
        return _run_difftest_command(args)
    return 0


def _note_metrics(args: argparse.Namespace) -> None:
    """Tell the user where --metrics-out landed (no-op without it)."""
    if getattr(args, "metrics_out", None):
        print("observability rows written to %s" % args.metrics_out)


def _obs_label(meta: dict) -> str:
    """Display label of a run block: the sweep job id when present,
    the service/shard identity for service exports, else
    policy/workload."""
    label = meta.get("job")
    if label:
        return label
    component = meta.get("component")
    if component == "service":
        return "service (%s shards, %s)" % (meta.get("shards"), meta.get("policy"))
    if component == "shard":
        return "shard %s/%s (%s)" % (
            meta.get("shard"), meta.get("shards"), meta.get("policy"),
        )
    return "%s/%s" % (meta.get("policy"), meta.get("workload"))


def _run_obs_command(args: argparse.Namespace) -> int:
    """Dispatch ``repro obs``: inspect/validate a metrics.jsonl."""
    import json

    from repro.obs import (
        aggregate_convergence,
        load_rows,
        samples_to_csv,
        summarize_rows,
        validate_rows,
    )

    try:
        rows = load_rows(args.file)
    except (OSError, ValueError) as exc:
        print("obs error: %s" % exc, file=sys.stderr)
        return 1

    if args.obs_command == "validate":
        problems = validate_rows(
            rows, require_decisions=args.require_decisions
        )
        if problems:
            for problem in problems:
                print("schema violation: %s" % problem, file=sys.stderr)
            return 1
        runs = sum(1 for r in rows if r.get("type") == "meta")
        print(
            "%s: %d rows across %d runs, schema valid"
            % (args.file, len(rows), runs)
        )
    elif args.obs_command == "summarize":
        summary = summarize_rows(rows)
        if args.json:
            print(json.dumps(summary, indent=2, sort_keys=True))
            return 0
        print(
            "%s: schema %d, %d runs"
            % (args.file, summary["schema"], summary["runs"])
        )
        for run in summary["per_run"]:
            label = _obs_label(run["run"])
            wamp = (
                "%.4f" % run["final_wamp_win"]
                if run["final_wamp_win"] is not None
                else "n/a"
            )
            dropped = ""
            if run.get("events_dropped") or run.get("decisions_dropped"):
                dropped = " dropped=%d ev/%d dec (ring=%s)" % (
                    run.get("events_dropped", 0),
                    run.get("decisions_dropped", 0),
                    run.get("ring_capacity", "?"),
                )
            elif run.get("ring_capacity") is not None:
                dropped = " ring=%s" % run["ring_capacity"]
            if run.get("spans"):
                dropped += " spans=%d" % run["spans"]
            print(
                "  %-40s samples=%-4d decisions=%-5d clock=%-9s Wamp=%s%s"
                % (
                    label,
                    run["samples"],
                    run["decisions"],
                    run["final_clock"],
                    wamp,
                    dropped,
                )
            )
        if summary.get("events_dropped") or summary.get("decisions_dropped"):
            print(
                "  capture rings dropped %d event(s) and %d decision "
                "record(s) across all runs; retained events under-count "
                "the run (grow ring_capacity/max_decisions to keep more)"
                % (
                    summary.get("events_dropped", 0),
                    summary.get("decisions_dropped", 0),
                )
            )
    elif args.obs_command == "report":
        series = aggregate_convergence(rows)
        for block in series:
            print("%s:" % _obs_label(block["run"]))
            print(
                "  %10s %10s %12s %8s %8s"
                % ("clock", "wamp_win", "dev_wamp_win", "fill", "free")
            )
            for i in range(len(block["clock"])):
                print(
                    "  %10d %10.4f %12.4f %8.4f %8d"
                    % (
                        block["clock"][i],
                        block["wamp_win"][i],
                        block["device_wamp_win"][i],
                        block["fill"][i],
                        block["free_segments"][i],
                    )
                )
        if args.csv:
            n = samples_to_csv(args.csv, rows)
            print("%d samples written to %s" % (n, args.csv))
    elif args.obs_command == "tail":

        def show(event: dict) -> None:
            extras = {
                k: v
                for k, v in event.items()
                if k not in ("type", "seq", "clock", "kind")
            }
            print(
                "seq=%-6d clock=%-9d %-16s %s"
                % (
                    event["seq"],
                    event["clock"],
                    event["kind"],
                    json.dumps(extras, sort_keys=True),
                )
            )

        def wanted(row: dict) -> bool:
            if row.get("type") != "event":
                return False
            return not args.kind or row.get("kind") == args.kind

        events = [r for r in rows if wanted(r)]
        for event in events[-args.n:]:
            show(event)
        if args.follow:
            from repro.obs import follow_lines

            try:
                for line in follow_lines(
                    args.file,
                    from_start=False,
                    idle_timeout_s=args.idle_timeout,
                ):
                    try:
                        row = json.loads(line)
                    except ValueError:
                        continue
                    if wanted(row):
                        show(row)
            except KeyboardInterrupt:
                pass
    elif args.obs_command == "chrome":
        from repro.obs import write_chrome_trace

        out = args.out
        if out is None:
            base = args.file
            if base.endswith(".jsonl"):
                base = base[: -len(".jsonl")]
            out = base + ".trace.json"
        span_rows = [r for r in rows if r.get("type") == "span"]
        if not span_rows:
            print("obs error: %s has no span rows" % args.file, file=sys.stderr)
            return 1
        n = write_chrome_trace(out, span_rows)
        print(
            "%d span(s) exported to %s (load in Perfetto via "
            "https://ui.perfetto.dev or chrome://tracing)" % (n, out)
        )
    elif args.obs_command == "critical":
        from repro.obs import critical_path_report

        report = critical_path_report(rows, tail_quantile=args.quantile)
        if args.json:
            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            print(
                "%s: %d span(s), %d flush(es), %d stalled, tail p%g >= "
                "%.1f pages -> %d tail sample(s)"
                % (
                    args.file,
                    report["spans"],
                    report["flushes"],
                    report["stalled_flushes"],
                    100 * report["tail_quantile"],
                    report["tail_threshold_pages"],
                    report["tail_samples"],
                )
            )
            print(
                "attributed %d/%d tail sample(s) (%.1f%%) to a dominant "
                "child span"
                % (
                    report["attributed"],
                    report["tail_samples"],
                    100 * report["attribution_fraction"],
                )
            )
            for cause, count in report["by_cause"].items():
                print("  %-28s %4d sample(s)" % (cause, count))
        if (
            args.min_attribution is not None
            and report["attribution_fraction"] < args.min_attribution
        ):
            print(
                "critical-path attribution %.3f below required %.3f"
                % (report["attribution_fraction"], args.min_attribution),
                file=sys.stderr,
            )
            return 1
    return 0


def _run_serve_command(args: argparse.Namespace) -> int:
    """Dispatch ``repro serve``: generate or replay load, report."""
    from repro.service import read_ops_jsonl, replay_ops, run_harness
    from repro.service.bench import append_serve_history

    if args.from_file:
        try:
            file_cfg, ops = read_ops_jsonl(args.from_file)
        except (OSError, ValueError, KeyError) as exc:
            print("serve error: %s" % exc, file=sys.stderr)
            return 1
        cfg = file_cfg if file_cfg is not None else _harness_config(args)
        if args.shards is not None:
            cfg = cfg.scaled(n_shards=args.shards)
        if args.sample_interval is not None:
            cfg = cfg.scaled(sample_interval=args.sample_interval)
        result = replay_ops(
            cfg,
            ops,
            metrics_out=args.metrics_out,
            trace_out=args.trace_out,
            trace_sample=args.trace_sample,
            telemetry_out=args.telemetry_out,
        )
        print("replayed %d ops from %s" % (len(ops), args.from_file))
    else:
        cfg = _harness_config(args)
        result = run_harness(
            cfg,
            metrics_out=args.metrics_out,
            trace_out=args.trace_out,
            trace_sample=args.trace_sample,
            telemetry_out=args.telemetry_out,
        )
    print(result.report())
    if args.metrics_out:
        print("observability rows written to %s" % args.metrics_out)
    if args.trace_out:
        print("causal spans written to %s" % args.trace_out)
    if args.telemetry_out:
        print("telemetry rows written to %s" % args.telemetry_out)
    if not args.no_history:
        from repro.bench.micro import HISTORY_PATH

        history_path = args.history or HISTORY_PATH
        entry = append_serve_history(result, cfg.seed, path=history_path)
        print(
            "headline appended to %s (sha %s)" % (history_path, entry["sha"])
        )
    return 0


def _run_top_command(args: argparse.Namespace) -> int:
    """Dispatch ``repro top``: live dashboard over a telemetry file."""
    from repro.obs import run_top

    frames = run_top(
        args.file,
        refresh_s=args.refresh,
        iterations=args.frames,
        clear=not args.no_clear,
        idle_timeout_s=args.idle_timeout,
    )
    if frames == 0:
        print(
            "no telemetry rows in %s (produce one with "
            "'repro serve --telemetry-out %s')" % (args.file, args.file),
            file=sys.stderr,
        )
        return 1
    return 0


def _run_loadgen_command(args: argparse.Namespace) -> int:
    """Dispatch ``repro loadgen``: record the deterministic op trace."""
    from repro.service import write_ops_jsonl

    cfg = _harness_config(args)
    n = write_ops_jsonl(cfg, args.out)
    print(
        "%d ops (%d clients, %d tenants, %s) written to %s"
        % (n, cfg.n_clients, cfg.n_tenants, cfg.dist, args.out)
    )
    return 0


def _run_bench_command(args: argparse.Namespace) -> int:
    """Dispatch ``repro bench ...``: run, render, optionally gate."""
    if args.bench_command == "service":
        return _run_bench_service_command(args)
    if args.bench_command == "latency":
        return _run_bench_latency_command(args)
    if args.bench_command == "profile":
        return _run_bench_profile_command(args)
    if args.bench_command == "run":
        return _run_bench_matrix_command(args)
    if args.bench_command == "report":
        return _run_bench_report_command(args)
    from repro.bench.micro import (
        HISTORY_PATH,
        append_history,
        check_against_baseline,
        load_report,
        render_micro,
        run_micro,
        write_report,
    )

    writes = args.writes
    if writes is None:
        writes = 60_000 if args.quick else 200_000
    report = run_micro(
        n_writes=writes,
        trials=args.trials,
        seed=args.seed,
        policy=args.policy,
        profile_path=args.profile,
    )
    print(render_micro(report))
    out = args.out
    if out is None and args.check is None:
        out = "BENCH_store.json"
    if out:
        write_report(report, out)
        print("report written to %s" % out)
    if not args.no_history:
        history_path = args.history or HISTORY_PATH
        entry = append_history(report, path=history_path)
        print(
            "headline appended to %s (sha %s)" % (history_path, entry["sha"])
        )
    if args.check:
        baseline = load_report(args.check)
        problems = check_against_baseline(report, baseline, args.tolerance)
        if problems:
            for problem in problems:
                print("perf regression: %s" % problem, file=sys.stderr)
            return 1
        print(
            "no perf regression vs %s (tolerance %.0f%%)"
            % (args.check, args.tolerance * 100.0)
        )
    return 0


def _run_bench_profile_command(args: argparse.Namespace) -> int:
    """Dispatch ``repro bench profile``: ranked-cumtime hot-path report."""
    from repro.bench.profile import (
        PROFILE_PATH,
        render_profile,
        run_profile,
        write_profile,
    )

    writes = args.writes
    if writes is None:
        writes = 30_000 if args.quick else 120_000
    report = run_profile(
        n_writes=writes,
        seed=args.seed,
        policy=args.policy,
        workload=args.workload,
        top=args.top,
    )
    print(render_profile(report))
    out = args.out or PROFILE_PATH
    write_profile(report, out)
    print("profile artifact written to %s" % out)
    return 0


def _run_bench_service_command(args: argparse.Namespace) -> int:
    """Dispatch ``repro bench service``: scaling report + gate."""
    from repro.bench.micro import HISTORY_PATH
    from repro.service.bench import (
        BENCH_PATH,
        append_service_history,
        check_service_report,
        render_service_bench,
        run_service_bench,
        write_service_report,
    )

    try:
        shard_counts = tuple(
            int(x) for x in args.shards_list.split(",") if x.strip()
        )
    except ValueError:
        print(
            "bench service: --shards-list must be comma-separated "
            "integers, got %r" % args.shards_list,
            file=sys.stderr,
        )
        return 1
    report = run_service_bench(
        shard_counts=shard_counts,
        quick=args.quick,
        seed=args.seed,
        ops=args.ops,
    )
    print(render_service_bench(report))
    out = args.out or BENCH_PATH
    write_service_report(report, out)
    print("report written to %s" % out)
    if not args.no_history:
        history_path = args.history or HISTORY_PATH
        entry = append_service_history(report, path=history_path)
        print(
            "headline appended to %s (sha %s)" % (history_path, entry["sha"])
        )
    problems = check_service_report(report)
    if problems:
        for problem in problems:
            print("service regression: %s" % problem, file=sys.stderr)
        if args.quick:
            # At --quick op counts fixed overheads dominate and the
            # batching advantage has no room to show; report, don't gate.
            print(
                "bench service: throughput gate is advisory under --quick",
                file=sys.stderr,
            )
            return 0
        return 1
    return 0


def _run_bench_latency_command(args: argparse.Namespace) -> int:
    """Dispatch ``repro bench latency``: stall contrast + gates."""
    from repro.bench.micro import HISTORY_PATH
    from repro.service.latency import (
        BENCH_PATH,
        append_latency_history,
        check_latency_regression,
        check_latency_report,
        load_latency_report,
        render_latency_report,
        run_latency_bench,
        write_latency_report,
    )

    report = run_latency_bench(quick=args.quick, seed=args.seed, ops=args.ops)
    print(render_latency_report(report))
    out = args.out or BENCH_PATH
    write_latency_report(report, out)
    print("report written to %s" % out)
    if not args.no_history:
        history_path = args.history or HISTORY_PATH
        entry = append_latency_history(report, path=history_path)
        print(
            "headline appended to %s (sha %s)" % (history_path, entry["sha"])
        )
    if args.check:
        baseline = load_latency_report(args.check)
        problems = check_latency_regression(report, baseline)
    else:
        problems = check_latency_report(report)
    if problems:
        for problem in problems:
            print("latency regression: %s" % problem, file=sys.stderr)
        return 1
    if args.check:
        print("no latency regression vs %s" % args.check)
    return 0


def _run_bench_matrix_command(args: argparse.Namespace) -> int:
    """Dispatch ``repro bench run CONFIG``: the declarative matrix."""
    from repro.bench.history import HISTORY_PATH
    from repro.matrix import MatrixConfigError, load_config, run_matrix
    from repro.matrix.gates import blocking_failures
    from repro.sweep.report import ProgressPrinter
    from repro.sweep.spec import SweepError

    try:
        config = load_config(args.config)
    except MatrixConfigError as exc:
        print("matrix config error: %s" % exc, file=sys.stderr)
        return 1
    try:
        run = run_matrix(
            config,
            out_dir=args.out,
            resume=args.resume,
            workers=args.workers,
            timeout=args.timeout,
            retries=args.retries,
            progress=ProgressPrinter(),
            history=not args.no_history,
            history_path=args.history or HISTORY_PATH,
            sample_interval=args.sample_interval,
        )
    except (MatrixConfigError, SweepError) as exc:
        print("matrix run error: %s" % exc, file=sys.stderr)
        return 1
    print(run.markdown)
    print("report written to %s" % run.report_path)
    print("gate verdicts written to %s" % run.gates_path)
    for entry in run.history_entries:
        print(
            "headline appended to history (%s, sha %s)"
            % (entry.get("benchmark"), entry.get("sha"))
        )
    failed = False
    if run.stats.failed:
        for f in run.stats.failed:
            print(
                "matrix cell failed: %s after %d attempt(s): %s"
                % (f.label, f.attempts, f.error),
                file=sys.stderr,
            )
        failed = True
    for problem in run.obs_problems:
        print("obs schema problem: %s" % problem, file=sys.stderr)
        failed = True
    for verdict in blocking_failures(run.verdicts):
        print(
            "gate FAILED: %s/%s (%s): %s"
            % (verdict.experiment, verdict.name, verdict.type, verdict.detail),
            file=sys.stderr,
        )
        failed = True
    if failed:
        return 1
    advisories = [
        v for v in run.verdicts if not v.passed and v.advisory
    ]
    for verdict in advisories:
        print(
            "gate failed (advisory): %s/%s: %s"
            % (verdict.experiment, verdict.name, verdict.detail),
            file=sys.stderr,
        )
    print(
        "matrix %s: %d cell(s), %d resumed, %d gate(s) passed"
        % (
            config.name,
            run.stats.total,
            run.stats.skipped,
            sum(1 for v in run.verdicts if v.passed),
        )
    )
    return 0


def _run_bench_report_command(args: argparse.Namespace) -> int:
    """Dispatch ``repro bench report``: trend dashboard, report-only."""
    import os

    from repro.bench.history import HISTORY_PATH
    from repro.matrix.trend import load_trend

    history_path = args.history or HISTORY_PATH
    if not os.path.exists(history_path):
        print(
            "bench report: no trajectory at %s (run a benchmark first)"
            % history_path,
            file=sys.stderr,
        )
        return 1
    lines, warnings = load_trend(history_path, last=args.last)
    markdown = "\n".join(["# Benchmark trend"] + lines) + "\n"
    if warnings:
        markdown += "\n**Trajectory drift (report-only):**\n\n"
        markdown += "\n".join("- %s" % w for w in warnings) + "\n"
    print(markdown)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(markdown)
        print("trend written to %s" % args.out)
    return 0


def _run_replay_command(args: argparse.Namespace) -> int:
    """Dispatch ``repro replay``: rebuild, re-run, verify the digest."""
    from repro.testkit.trace import OpTrace, TraceError, state_digest

    try:
        trace, end = OpTrace.load(args.trace)
    except (TraceError, OSError) as exc:
        print("replay error: %s" % exc, file=sys.stderr)
        return 1
    store = trace.replay(upto=args.upto)
    digest = state_digest(store)
    stats = store.stats
    print(
        "replayed %d/%d ops: policy=%s clock=%d user_writes=%d gc_writes=%d "
        "Wamp=%.4f"
        % (
            len(trace) if args.upto is None else min(args.upto, len(trace)),
            len(trace),
            trace.policy,
            store.clock,
            stats.user_writes,
            stats.gc_writes,
            stats.write_amplification,
        )
    )
    print("state digest: %s" % digest)
    if end.get("divergence"):
        print("trace records a store/oracle divergence:")
        for problem in end["divergence"]:
            print("  - %s" % problem)
    if args.upto is None and not args.no_verify and "digest" in end:
        if digest != end["digest"]:
            print(
                "DIGEST MISMATCH: trace recorded %s" % end["digest"],
                file=sys.stderr,
            )
            return 1
        print("digest matches the recording (byte-identical replay)")
    return 0


def _run_difftest_command(args: argparse.Namespace) -> int:
    """Dispatch ``repro difftest``: the store-vs-oracle grid."""
    from repro.testkit.differential import (
        DEFAULT_WORKLOADS,
        DivergenceError,
        run_differential_grid,
    )

    workloads = args.workloads if args.workloads else DEFAULT_WORKLOADS
    try:
        outcomes = run_differential_grid(
            policies=args.policies,
            workloads=workloads,
            n_ops=args.ops,
            checkpoint_every=args.checkpoint_every,
            trim_prob=args.trim_prob,
            seed=args.seed,
            divergence_dir=args.divergence_dir,
        )
    except DivergenceError as exc:
        print("difftest FAILED:\n%s" % exc, file=sys.stderr)
        return 1
    for out in outcomes:
        print(
            "%-14s %-18s ops=%-6d checkpoints=%-3d Wamp=%.4f  ok"
            % (out.policy, out.workload, out.n_ops, out.checkpoints, out.wamp)
        )
    print(
        "differential harness: %d policy/workload pairs equivalent to the "
        "oracle" % len(outcomes)
    )
    return 0


def _run_sweep_command(args: argparse.Namespace) -> int:
    """Dispatch ``repro sweep``: orchestrate, print the table, report."""
    from repro.sweep import ProgressPrinter, SweepError, run_named_sweep

    out_dir = args.out if args.out is not None else "sweep_runs/%s" % args.grid
    progress = None if args.no_progress else ProgressPrinter()
    try:
        report = run_named_sweep(
            args.grid,
            workers=args.workers,
            out_dir=out_dir,
            resume=args.resume,
            quick=args.quick,
            seed=args.seed,
            dist=args.dist,
            timeout=args.timeout,
            retries=args.retries,
            progress=progress,
            obs=args.obs,
            sample_interval=args.sample_interval,
        )
    except SweepError as exc:
        print("sweep error: %s" % exc, file=sys.stderr)
        return 1
    print(report.output.rendered)
    s = report.summary
    print(
        "\nsweep %s: %d jobs (%d run, %d resumed) in %.1fs with %d workers "
        "(serial estimate %.1fs, speedup %.2fx) -> %s"
        % (
            s["experiment"],
            s["jobs"],
            s["executed"],
            s["skipped"],
            s["wall_clock_s"],
            s["workers"],
            s["serial_estimate_s"],
            s["speedup_vs_serial_estimate"],
            report.out_dir,
        )
    )
    if "obs" in s:
        print(
            "observability: %s/%s (%d jobs with rows)"
            % (
                report.out_dir,
                s["obs"]["metrics_file"],
                s["obs"]["jobs_with_metrics"],
            )
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
