"""A page-oriented B+-tree over the buffer pool.

Supports insert, point update, point lookup, deletion, and ordered range
scans — everything the TPC-C transactions need.  Capacities derive from
per-entry byte sizes (see :mod:`repro.btree.page`), so wide rows (stock,
customer) produce low-fanout leaves and hot narrow tables (new-order)
produce high-fanout ones, shaping the page-write skew realistically.

Deletes do not rebalance (underfull leaves are allowed, and an empty
leaf is unlinked lazily); this is the common engineering shortcut and it
matches the workload — TPC-C only deletes NEW-ORDER rows, queue-style.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, List, Optional, Tuple

from repro.btree.bufferpool import BufferPool
from repro.btree.page import INTERNAL, LEAF, Node, entries_per_page, split_internal, split_leaf


class BPlusTree:
    """One table or index.

    Args:
        pool: Shared buffer pool.
        key_bytes: Estimated encoded key width.
        value_bytes: Estimated encoded payload width (0 for pure
            indexes whose payload is just a key reference).
        name: For diagnostics.
    """

    def __init__(
        self,
        pool: BufferPool,
        key_bytes: int,
        value_bytes: int,
        name: str = "tree",
    ) -> None:
        self.pool = pool
        self.name = name
        self.leaf_capacity = entries_per_page(key_bytes + max(value_bytes, 8))
        self.internal_capacity = entries_per_page(key_bytes + 8)
        root = pool.allocate(LEAF)
        self.root_id = root.page_id
        self.height = 1
        self.n_entries = 0

    # -- lookups -----------------------------------------------------------

    def search(self, key: Any) -> Optional[Any]:
        """Point lookup; None when absent."""
        leaf = self._descend(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return leaf.values[idx]
        return None

    def __contains__(self, key: Any) -> bool:
        return self.search(key) is not None

    def __len__(self) -> int:
        return self.n_entries

    def scan(
        self, low: Any, high: Any, inclusive: bool = False
    ) -> Iterator[Tuple[Any, Any]]:
        """Yield ``(key, value)`` for ``low <= key < high`` (or ``<=``
        when ``inclusive``)."""
        leaf = self._descend(low)
        idx = bisect.bisect_left(leaf.keys, low)
        while True:
            while idx < len(leaf.keys):
                key = leaf.keys[idx]
                if key > high or (key == high and not inclusive):
                    return
                yield key, leaf.values[idx]
                idx += 1
            if leaf.next_leaf < 0:
                return
            leaf = self.pool.get(leaf.next_leaf)
            idx = 0

    def scan_prefix(self, prefix: Tuple) -> Iterator[Tuple[Any, Any]]:
        """All entries whose (tuple) key starts with ``prefix``."""
        low = prefix
        leaf = self._descend(low)
        idx = bisect.bisect_left(leaf.keys, low)
        n = len(prefix)
        while True:
            while idx < len(leaf.keys):
                key = leaf.keys[idx]
                if tuple(key[:n]) != prefix:
                    return
                yield key, leaf.values[idx]
                idx += 1
            if leaf.next_leaf < 0:
                return
            leaf = self.pool.get(leaf.next_leaf)
            idx = 0

    def last_key_with_prefix(self, prefix: Tuple) -> Optional[Any]:
        """Largest key starting with ``prefix`` (e.g. a district's max
        order id); None when the prefix is empty."""
        last = None
        for key, _ in self.scan_prefix(prefix):
            last = key
        return last

    # -- mutations ----------------------------------------------------------

    def insert(self, key: Any, value: Any) -> bool:
        """Insert; returns False (and changes nothing) if the key exists."""
        return self._put(key, value, overwrite=False, must_exist=False)

    def update(self, key: Any, value: Any) -> bool:
        """Overwrite an existing key; returns False if absent."""
        return self._put(key, value, overwrite=True, must_exist=True)

    def upsert(self, key: Any, value: Any) -> None:
        """Insert or overwrite unconditionally."""
        self._put(key, value, overwrite=True, must_exist=False)

    def delete(self, key: Any) -> bool:
        """Remove a key; returns False if absent.  No rebalancing."""
        leaf = self._descend(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx >= len(leaf.keys) or leaf.keys[idx] != key:
            return False
        del leaf.keys[idx]
        del leaf.values[idx]
        self.pool.mark_dirty(leaf.page_id)
        self.n_entries -= 1
        return True

    # -- internals ------------------------------------------------------------

    def _descend(self, key: Any) -> Node:
        node = self.pool.get(self.root_id)
        while not node.is_leaf:
            idx = bisect.bisect_right(node.keys, key)
            node = self.pool.get(node.children[idx])
        return node

    def _put(self, key: Any, value: Any, overwrite: bool, must_exist: bool) -> bool:
        pool = self.pool
        # Descend, remembering the path for splits.
        path: List[Node] = []
        node = pool.get(self.root_id)
        while not node.is_leaf:
            path.append(node)
            idx = bisect.bisect_right(node.keys, key)
            node = pool.get(node.children[idx])
        leaf = node
        idx = bisect.bisect_left(leaf.keys, key)
        present = idx < len(leaf.keys) and leaf.keys[idx] == key
        if present:
            if not overwrite:
                return False
            leaf.values[idx] = value
            pool.mark_dirty(leaf.page_id)
            return True
        if must_exist:
            return False
        leaf.keys.insert(idx, key)
        leaf.values.insert(idx, value)
        pool.mark_dirty(leaf.page_id)
        self.n_entries += 1
        if len(leaf.keys) > self.leaf_capacity:
            self._split(leaf, path)
        return True

    def _split(self, node: Node, path: List[Node]) -> None:
        pool = self.pool
        while True:
            if node.is_leaf:
                new_node = pool.allocate(LEAF)
                separator, new_node = split_leaf(node, new_node)
            else:
                new_node = pool.allocate(INTERNAL)
                separator, new_node = split_internal(node, new_node)
            pool.mark_dirty(node.page_id)
            pool.mark_dirty(new_node.page_id)
            if path:
                parent = path.pop()
                idx = bisect.bisect_right(parent.keys, separator)
                parent.keys.insert(idx, separator)
                parent.children.insert(idx + 1, new_node.page_id)
                pool.mark_dirty(parent.page_id)
                if len(parent.keys) <= self.internal_capacity:
                    return
                node = parent
            else:
                new_root = pool.allocate(INTERNAL)
                new_root.keys = [separator]
                new_root.children = [node.page_id, new_node.page_id]
                self.root_id = new_root.page_id
                self.height += 1
                return

    # -- diagnostics --------------------------------------------------------

    def check_structure(self) -> None:
        """Walk the whole tree verifying ordering and linkage; raises
        AssertionError on breakage (test/debug aid)."""
        seen_leaves = []

        def walk(page_id: int, lo: Any, hi: Any, depth: int) -> int:
            node = self.pool.get(page_id)
            keys = node.keys
            assert keys == sorted(keys), "%s: unsorted keys" % node
            if lo is not None:
                assert all(k >= lo for k in keys), "%s: key below bound" % node
            if hi is not None:
                assert all(k < hi for k in keys), "%s: key above bound" % node
            if node.is_leaf:
                seen_leaves.append(node)
                return 1
            assert len(node.children) == len(keys) + 1
            depths = set()
            bounds = [lo] + list(keys) + [hi]
            for i, child in enumerate(node.children):
                depths.add(walk(child, bounds[i], bounds[i + 1], depth + 1))
            assert len(depths) == 1, "uneven subtree depth below %s" % node
            return depths.pop() + 1

        height = walk(self.root_id, None, None, 1)
        assert height == self.height, "recorded height stale"
        # Leaf chain visits every leaf left-to-right.
        count = sum(len(leaf.keys) for leaf in seen_leaves)
        assert count == self.n_entries, "entry count drifted"

    def __repr__(self) -> str:
        return "<BPlusTree %s entries=%d height=%d>" % (
            self.name, self.n_entries, self.height,
        )
