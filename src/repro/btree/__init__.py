"""Page-oriented B+-tree storage engine with an LRU buffer pool.

Substrate for the TPC-C experiment (paper Section 6.3): the buffer
pool's dirty-page write-backs form the I/O trace that the cleaning
simulator replays.
"""

from repro.btree.btree import BPlusTree
from repro.btree.bufferpool import BufferPool, BufferPoolError, PoolStats
from repro.btree.codec import CodecError, decode_node, encode_node, encoded_size
from repro.btree.page import (
    INTERNAL,
    LEAF,
    PAGE_BYTES,
    PAGE_HEADER_BYTES,
    Node,
    entries_per_page,
)

__all__ = [
    "BPlusTree",
    "BufferPool",
    "BufferPoolError",
    "CodecError",
    "INTERNAL",
    "decode_node",
    "encode_node",
    "encoded_size",
    "LEAF",
    "Node",
    "PAGE_BYTES",
    "PAGE_HEADER_BYTES",
    "PoolStats",
    "entries_per_page",
]
