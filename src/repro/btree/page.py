"""B+-tree node pages.

The paper's TPC-C traces come from "a B+-tree-based storage engine" with
4 KB pages.  Nodes here are page-sized objects: capacity is derived from
a byte budget (page size minus a header) divided by the per-entry size,
so record width — not an arbitrary fanout constant — determines the
tree's shape, as it would on a real slotted page.

Leaf pages hold ``(key, value)`` pairs and are chained for range scans;
internal pages hold separator keys and child page ids.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

#: Matches the paper's simulator setup (Section 6.1.1).
PAGE_BYTES = 4096
#: Slotted-page header + slot directory overhead estimate.
PAGE_HEADER_BYTES = 96

LEAF = 0
INTERNAL = 1


def entries_per_page(entry_bytes: int) -> int:
    """How many fixed-width entries fit in one page."""
    if entry_bytes < 1:
        raise ValueError("entry_bytes must be positive")
    capacity = (PAGE_BYTES - PAGE_HEADER_BYTES) // entry_bytes
    if capacity < 3:
        raise ValueError(
            "entries of %d bytes leave room for only %d per page; "
            "a B+-tree needs at least 3" % (entry_bytes, capacity)
        )
    return capacity


class Node:
    """One B+-tree page (leaf or internal)."""

    __slots__ = ("page_id", "kind", "keys", "values", "children", "next_leaf")

    def __init__(self, page_id: int, kind: int) -> None:
        self.page_id = page_id
        self.kind = kind
        self.keys: List[Any] = []
        #: Leaf payloads (None on internal nodes).
        self.values: Optional[List[Any]] = [] if kind == LEAF else None
        #: Child page ids (None on leaves).  len(children) == len(keys)+1.
        self.children: Optional[List[int]] = [] if kind == INTERNAL else None
        #: Right-sibling page id for leaf scans (-1 = none).
        self.next_leaf = -1

    @property
    def is_leaf(self) -> bool:
        return self.kind == LEAF

    def __len__(self) -> int:
        return len(self.keys)

    def __repr__(self) -> str:
        return "<%s page=%d n=%d>" % (
            "leaf" if self.is_leaf else "internal",
            self.page_id,
            len(self.keys),
        )


def split_leaf(node: Node, new_page: Node) -> Tuple[Any, Node]:
    """Move the upper half of a full leaf into ``new_page``.

    Returns ``(separator_key, new_page)``; the separator is the first
    key of the new (right) page, as usual for B+-trees.
    """
    mid = len(node.keys) // 2
    new_page.keys = node.keys[mid:]
    new_page.values = node.values[mid:]
    node.keys = node.keys[:mid]
    node.values = node.values[:mid]
    new_page.next_leaf = node.next_leaf
    node.next_leaf = new_page.page_id
    return new_page.keys[0], new_page


def split_internal(node: Node, new_page: Node) -> Tuple[Any, Node]:
    """Move the upper half of a full internal node into ``new_page``.

    The middle key is pushed up (not copied), B-tree style.
    """
    mid = len(node.keys) // 2
    separator = node.keys[mid]
    new_page.keys = node.keys[mid + 1:]
    new_page.children = node.children[mid + 1:]
    node.keys = node.keys[:mid]
    node.children = node.children[: mid + 1]
    return separator, new_page
