"""LRU buffer pool over B+-tree pages.

The paper's TPC-C experiment runs the benchmark "on a B+-tree-based
storage engine" with a buffer cache and replays the resulting *I/O
trace* through the cleaning simulator.  This pool is where that trace is
born: every dirty-page write-back — LRU eviction or checkpoint — appends
the page id to a :class:`~repro.workloads.TraceRecorder`.

The pool holds live node objects; the "disk" is a dict of evicted nodes.
Reads of uncached pages count as physical reads (reported in stats), and
the replacement policy is plain LRU over unpinned pages.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from typing import Dict, Optional

from repro.btree.page import Node
from repro.workloads.trace import TraceRecorder


class BufferPoolError(Exception):
    """Raised when the pool cannot make room (everything pinned)."""


@dataclasses.dataclass
class PoolStats:
    """Physical I/O counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    page_writes: int = 0

    @property
    def hit_ratio(self) -> float:
        """Fraction of page fetches served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class BufferPool:
    """Fixed-capacity LRU cache of tree pages with write-back."""

    def __init__(
        self,
        capacity_pages: int,
        recorder: Optional[TraceRecorder] = None,
        serialize: bool = False,
    ):
        if capacity_pages < 4:
            raise ValueError("capacity_pages must be at least 4")
        self.capacity = capacity_pages
        self.recorder = recorder if recorder is not None else TraceRecorder()
        self.stats = PoolStats()
        #: When True, evicted pages round-trip through the binary page
        #: codec (real serialization); when False (default, faster) the
        #: "disk" holds the node objects directly — only the write
        #: *trace* matters to the cleaning experiments either way.
        self.serialize = serialize
        self._cached: "OrderedDict[int, Node]" = OrderedDict()
        self._dirty: Dict[int, bool] = {}
        self._pins: Dict[int, int] = {}
        self._disk: Dict[int, object] = {}
        self._next_page_id = 0

    # -- page lifecycle --------------------------------------------------

    def allocate(self, kind: int) -> Node:
        """Create a brand-new page, cached and dirty."""
        node = Node(self._next_page_id, kind)
        self._next_page_id += 1
        self._admit(node, dirty=True)
        return node

    def get(self, page_id: int) -> Node:
        """Fetch a page, reading it from disk on a miss."""
        node = self._cached.get(page_id)
        if node is not None:
            self._cached.move_to_end(page_id)
            self.stats.hits += 1
            return node
        self.stats.misses += 1
        try:
            stored = self._disk.pop(page_id)
        except KeyError:
            raise KeyError("page %d does not exist" % page_id) from None
        if self.serialize:
            from repro.btree.codec import decode_node

            node = decode_node(page_id, stored)
        else:
            node = stored
        self._admit(node, dirty=False)
        return node

    def mark_dirty(self, page_id: int) -> None:
        """Record that a cached page was modified."""
        self._dirty[page_id] = True

    def pin(self, page_id: int) -> None:
        """Protect a page from eviction (nested pins stack)."""
        self._pins[page_id] = self._pins.get(page_id, 0) + 1

    def unpin(self, page_id: int) -> None:
        """Release one pin."""
        count = self._pins.get(page_id, 0)
        if count <= 1:
            self._pins.pop(page_id, None)
        else:
            self._pins[page_id] = count - 1

    def free(self, page_id: int) -> None:
        """Drop a page entirely (B+-tree page deallocation)."""
        self._cached.pop(page_id, None)
        self._dirty.pop(page_id, None)
        self._pins.pop(page_id, None)
        self._disk.pop(page_id, None)

    # -- write-back -------------------------------------------------------

    def checkpoint(self) -> int:
        """Write back every dirty cached page; returns pages written."""
        written = 0
        for page_id in list(self._cached):
            if self._dirty.get(page_id):
                self._write_back(page_id)
                written += 1
        return written

    def flush_all(self) -> None:
        """Checkpoint and then drop the cache (engine shutdown)."""
        self.checkpoint()
        for page_id, node in list(self._cached.items()):
            self._disk[page_id] = self._to_disk(node)
        self._cached.clear()
        self._pins.clear()

    def _to_disk(self, node: Node):
        if self.serialize:
            from repro.btree.codec import encode_node

            return encode_node(node)
        return node

    # -- internals ---------------------------------------------------------

    def _admit(self, node: Node, dirty: bool) -> None:
        while len(self._cached) >= self.capacity:
            self._evict_one()
        self._cached[node.page_id] = node
        if dirty:
            self._dirty[node.page_id] = True

    def _evict_one(self) -> None:
        for page_id in self._cached:
            if page_id not in self._pins:
                victim = page_id
                break
        else:
            raise BufferPoolError("all %d cached pages are pinned" % len(self._cached))
        if self._dirty.get(victim):
            self._write_back(victim)
        node = self._cached.pop(victim)
        self._disk[victim] = self._to_disk(node)
        self.stats.evictions += 1

    def _write_back(self, page_id: int) -> None:
        self.recorder.record(page_id)
        self.stats.page_writes += 1
        self._dirty[page_id] = False

    # -- introspection -----------------------------------------------------

    @property
    def allocated_pages(self) -> int:
        """Total pages ever allocated (the storage footprint)."""
        return self._next_page_id

    def cached_count(self) -> int:
        """Pages currently resident in the cache."""
        return len(self._cached)

    def __repr__(self) -> str:
        return "<BufferPool %d/%d cached, %d allocated, %d writes>" % (
            len(self._cached),
            self.capacity,
            self._next_page_id,
            self.stats.page_writes,
        )
