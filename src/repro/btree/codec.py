"""Byte-level page serialization for B+-tree nodes.

The engine normally keeps evicted nodes as Python objects (only the
write *trace* matters to the cleaning experiments).  This codec provides
the real thing — a self-describing binary page image — so the buffer
pool can round-trip nodes through bytes (``BufferPool(serialize=True)``),
which the tests use to prove eviction is genuinely lossless and to keep
the capacity estimates honest against actual encoded sizes.

Layout::

    header:  kind(u8) next_leaf(i64) n_keys(u32) n_children(u32)
    keys:    tagged values
    values/children: tagged values / i64 ids

Tagged values support the key/payload types the engine uses: ints,
floats, strings, bytes, None, and (nested) tuples.
"""

from __future__ import annotations

import struct
from typing import Any, Tuple

from repro.btree.page import INTERNAL, LEAF, Node

_HEADER = struct.Struct("<Bqii")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_U32 = struct.Struct("<I")

_T_NONE = 0
_T_INT = 1
_T_FLOAT = 2
_T_STR = 3
_T_BYTES = 4
_T_TUPLE = 5


class CodecError(ValueError):
    """Unsupported value type or corrupt page image."""


def _encode_value(value: Any, out: bytearray) -> None:
    if value is None:
        out.append(_T_NONE)
    elif isinstance(value, bool):
        raise CodecError("booleans are not a storage type")
    elif isinstance(value, int):
        out.append(_T_INT)
        out += _I64.pack(value)
    elif isinstance(value, float):
        out.append(_T_FLOAT)
        out += _F64.pack(value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(_T_STR)
        out += _U32.pack(len(raw))
        out += raw
    elif isinstance(value, (bytes, bytearray)):
        out.append(_T_BYTES)
        out += _U32.pack(len(value))
        out += bytes(value)
    elif isinstance(value, tuple):
        out.append(_T_TUPLE)
        out += _U32.pack(len(value))
        for item in value:
            _encode_value(item, out)
    else:
        raise CodecError("cannot encode %s" % type(value).__name__)


def _decode_value(data: bytes, pos: int) -> Tuple[Any, int]:
    tag = data[pos]
    pos += 1
    if tag == _T_NONE:
        return None, pos
    if tag == _T_INT:
        return _I64.unpack_from(data, pos)[0], pos + 8
    if tag == _T_FLOAT:
        return _F64.unpack_from(data, pos)[0], pos + 8
    if tag == _T_STR:
        n = _U32.unpack_from(data, pos)[0]
        pos += 4
        if pos + n > len(data):
            raise CodecError("page image truncated inside a string")
        return data[pos:pos + n].decode("utf-8"), pos + n
    if tag == _T_BYTES:
        n = _U32.unpack_from(data, pos)[0]
        pos += 4
        if pos + n > len(data):
            raise CodecError("page image truncated inside a byte string")
        return bytes(data[pos:pos + n]), pos + n
    if tag == _T_TUPLE:
        n = _U32.unpack_from(data, pos)[0]
        pos += 4
        items = []
        for _ in range(n):
            item, pos = _decode_value(data, pos)
            items.append(item)
        return tuple(items), pos
    raise CodecError("corrupt page image: unknown tag %d" % tag)


def encode_node(node: Node) -> bytes:
    """Serialize a node to a self-describing page image."""
    out = bytearray()
    n_children = len(node.children) if node.children is not None else 0
    out += _HEADER.pack(node.kind, node.next_leaf, len(node.keys), n_children)
    for key in node.keys:
        _encode_value(key, out)
    if node.is_leaf:
        for value in node.values:
            _encode_value(value, out)
    else:
        for child in node.children:
            out += _I64.pack(child)
    return bytes(out)


def decode_node(page_id: int, data: bytes) -> Node:
    """Rebuild a node from :func:`encode_node` output."""
    try:
        kind, next_leaf, n_keys, n_children = _HEADER.unpack_from(data, 0)
        if kind not in (LEAF, INTERNAL):
            raise CodecError("corrupt page image: bad kind %d" % kind)
        node = Node(page_id, kind)
        node.next_leaf = next_leaf
        pos = _HEADER.size
        for _ in range(n_keys):
            key, pos = _decode_value(data, pos)
            node.keys.append(key)
        if kind == LEAF:
            for _ in range(n_keys):
                value, pos = _decode_value(data, pos)
                node.values.append(value)
        else:
            for _ in range(n_children):
                node.children.append(_I64.unpack_from(data, pos)[0])
                pos += 8
    except (IndexError, struct.error) as exc:
        raise CodecError("page image truncated or corrupt") from exc
    return node


def encoded_size(node: Node) -> int:
    """Bytes the node occupies on its page image."""
    return len(encode_node(node))
