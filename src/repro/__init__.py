"""repro — reproduction of *Efficiently Reclaiming Space in a Log
Structured Store* (Lomet & Luo, ICDE 2021).

The package implements, from scratch:

* a log-structured store simulator (:mod:`repro.store`);
* the paper's MDC cleaning algorithm and its ablations
  (:mod:`repro.core`), plus every baseline it is compared against
  (:mod:`repro.policies`);
* the closed-form cleaning-cost analysis (:mod:`repro.analysis`);
* the synthetic and TPC-C workloads (:mod:`repro.workloads`,
  :mod:`repro.tpcc`, :mod:`repro.btree`);
* the experiment harness that regenerates every table and figure of the
  paper's evaluation (:mod:`repro.bench`, plus the ``benchmarks/``
  directory of the repository);
* two applications of the cleaned log — a value-log key-value store
  (:mod:`repro.kvstore`) and a log-structured file system
  (:mod:`repro.lfs`).

Quickstart::

    from repro import StoreConfig, run_simulation
    from repro.workloads import ZipfianWorkload

    cfg = StoreConfig(n_segments=128, segment_units=64, fill_factor=0.8,
                      sort_buffer_segments=4)
    wl = ZipfianWorkload.eighty_twenty(cfg.user_pages)
    result = run_simulation(cfg, "mdc", wl)
    print(result.summary())
"""

from repro.analysis import emptiness_fixpoint, table1, table2
from repro.bench import run_simulation, run_until_converged
from repro.core import MdcPolicy
from repro.policies import available_policies, make_policy
from repro.store import LogStructuredStore, StoreConfig

__version__ = "1.0.0"

__all__ = [
    "LogStructuredStore",
    "MdcPolicy",
    "StoreConfig",
    "available_policies",
    "emptiness_fixpoint",
    "make_policy",
    "run_simulation",
    "run_until_converged",
    "table1",
    "table2",
    "__version__",
]
