"""Workload combinators: mixtures and phases.

Real storage workloads are rarely one clean distribution; these
combinators compose the primitives:

* :class:`MixedWorkload` — a weighted blend (e.g. 70 % Zipfian user
  traffic plus 30 % uniform background scans);
* :class:`PhasedWorkload` — sequential regimes (e.g. a bulk-load phase,
  then OLTP churn), generalizing the shifting hot set to arbitrary
  phase schedules.

Both expose the exact long-run ``frequencies()`` (the oracle view), with
the same caveat as the shifting workload: for non-stationary phases the
long-run average can mislead a static oracle — which is the point of
the paper's Section 8.2 discussion.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.workloads.base import Workload


class MixedWorkload(Workload):
    """A weighted mixture of component workloads over one page space.

    Every component must cover the same ``n_pages``; each write is drawn
    from component ``i`` with probability ``weights[i]``.
    """

    def __init__(
        self,
        components: Sequence[Workload],
        weights: Sequence[float],
        seed: int = 0,
    ) -> None:
        if not components:
            raise ValueError("need at least one component")
        if len(components) != len(weights):
            raise ValueError("one weight per component")
        if any(w <= 0 for w in weights):
            raise ValueError("weights must be positive")
        n_pages = components[0].n_pages
        if any(c.n_pages != n_pages for c in components):
            raise ValueError("components must share one page space")
        super().__init__(n_pages, seed)
        self.components = list(components)
        total = float(sum(weights))
        self.weights = [w / total for w in weights]
        self._cdf = np.cumsum(self.weights)

    def frequencies(self) -> np.ndarray:
        out = np.zeros(self.n_pages)
        for component, weight in zip(self.components, self.weights):
            out += weight * component.frequencies()
        return out

    def _sample(self, n: int) -> np.ndarray:
        choice = np.searchsorted(self._cdf, self._rng.random(n), side="right")
        choice = np.minimum(choice, len(self.components) - 1)
        out = np.empty(n, dtype=np.int64)
        for i, component in enumerate(self.components):
            mask = choice == i
            count = int(mask.sum())
            if count:
                out[mask] = component._sample(count)
        return out

    def reset(self) -> None:
        super().reset()
        for component in self.components:
            component.reset()


class PhasedWorkload(Workload):
    """Sequential phases: ``(workload, n_writes)`` pairs, cycled.

    After the last phase the schedule wraps around, so the stream is
    infinite like every other workload.
    """

    def __init__(
        self,
        phases: Sequence[Tuple[Workload, int]],
        seed: int = 0,
    ) -> None:
        if not phases:
            raise ValueError("need at least one phase")
        if any(length <= 0 for _, length in phases):
            raise ValueError("phase lengths must be positive")
        n_pages = phases[0][0].n_pages
        if any(w.n_pages != n_pages for w, _ in phases):
            raise ValueError("phases must share one page space")
        super().__init__(n_pages, seed)
        self.phases: List[Tuple[Workload, int]] = list(phases)
        self._phase_idx = 0
        self._into_phase = 0

    @property
    def current_phase(self) -> Workload:
        return self.phases[self._phase_idx][0]

    def frequencies(self) -> np.ndarray:
        """Long-run average, weighted by phase length per cycle."""
        total = sum(length for _, length in self.phases)
        out = np.zeros(self.n_pages)
        for workload, length in self.phases:
            out += (length / total) * workload.frequencies()
        return out

    def _sample(self, n: int) -> np.ndarray:
        out = np.empty(n, dtype=np.int64)
        filled = 0
        while filled < n:
            workload, length = self.phases[self._phase_idx]
            take = min(n - filled, length - self._into_phase)
            out[filled:filled + take] = workload._sample(take)
            filled += take
            self._into_phase += take
            if self._into_phase >= length:
                self._into_phase = 0
                self._phase_idx = (self._phase_idx + 1) % len(self.phases)
        return out

    def reset(self) -> None:
        super().reset()
        self._phase_idx = 0
        self._into_phase = 0
        for workload, _ in self.phases:
            workload.reset()
