"""Shifting hot-set workload.

The paper observes (Section 6.3) that TPC-C "has a shifting pattern where
hot pages become cold over time", and that this degrades
timestamp-based frequency estimation.  This synthetic workload isolates
that effect: a hot-cold distribution whose hot set slides through a
(seeded, permuted) page ordering every ``shift_every`` updates.

Because the hot set visits the whole population, the long-run per-page
frequency is (near) uniform — so the "exact frequency" oracle is actively
misleading here, which is precisely the phenomenon the paper attributes
its TPC-C estimation gap to.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import Workload


class ShiftingHotSetWorkload(Workload):
    """Hot-cold updates with a hot set that slides over time.

    Args:
        n_pages: Page population.
        update_fraction: Fraction of updates hitting the current hot set.
        data_fraction: Size of the hot set as a fraction of pages.
        shift_every: Updates between hot-set advances.
        shift_pages: How many pages enter/leave the hot set per advance.
    """

    def __init__(
        self,
        n_pages: int,
        update_fraction: float = 0.8,
        data_fraction: float = 0.2,
        shift_every: int = 10_000,
        shift_pages: int = None,
        seed: int = 0,
    ) -> None:
        super().__init__(n_pages, seed)
        if not 0.0 < update_fraction < 1.0:
            raise ValueError("update_fraction must be in (0, 1)")
        if not 0.0 < data_fraction < 1.0:
            raise ValueError("data_fraction must be in (0, 1)")
        if shift_every < 1:
            raise ValueError("shift_every must be positive")
        self.update_fraction = update_fraction
        self.data_fraction = data_fraction
        self.shift_every = shift_every
        self._hot_size = max(1, int(data_fraction * n_pages))
        self.shift_pages = (
            max(1, self._hot_size // 8) if shift_pages is None else shift_pages
        )
        order_rng = np.random.default_rng(seed ^ 0x2545F491)
        self._order = order_rng.permutation(n_pages)
        self._hot_start = 0
        self._since_shift = 0

    def frequencies(self) -> np.ndarray:
        """Long-run average: uniform, because the hot window visits every
        page.  (This is the oracle's blind spot — see module docstring.)"""
        return np.full(self.n_pages, 1.0 / self.n_pages)

    def current_hot_pages(self) -> np.ndarray:
        """Page ids of the hot window right now."""
        idx = (self._hot_start + np.arange(self._hot_size)) % self.n_pages
        return self._order[idx]

    def current_frequencies(self) -> np.ndarray:
        """Instantaneous per-page update probabilities.

        What a *workload-aware* (dynamic) oracle would report right now
        — the paper's Section 8.2 suggestion — as opposed to the
        misleading long-run :meth:`frequencies`.  Note the cold draw
        samples the whole population, so hot pages also receive a share
        of the cold mass.
        """
        freqs = np.full(self.n_pages, (1.0 - self.update_fraction) / self.n_pages)
        freqs[self.current_hot_pages()] += self.update_fraction / self._hot_size
        return freqs

    def _sample(self, n: int) -> np.ndarray:
        out = np.empty(n, dtype=np.int64)
        filled = 0
        while filled < n:
            take = min(n - filled, self.shift_every - self._since_shift)
            hot = self.current_hot_pages()
            hot_mask = self._rng.random(take) < self.update_fraction
            n_hot = int(hot_mask.sum())
            chunk = np.empty(take, dtype=np.int64)
            chunk[hot_mask] = hot[self._rng.integers(0, len(hot), size=n_hot)]
            # Cold draws sample the whole population; the hot set is small
            # enough that the overlap barely perturbs the distribution.
            chunk[~hot_mask] = self._rng.integers(0, self.n_pages, size=take - n_hot)
            out[filled : filled + take] = chunk
            filled += take
            self._since_shift += take
            if self._since_shift >= self.shift_every:
                self._since_shift = 0
                self._hot_start = (self._hot_start + self.shift_pages) % self.n_pages
        return out

    def reset(self) -> None:
        super().reset()
        self._hot_start = 0
        self._since_shift = 0
