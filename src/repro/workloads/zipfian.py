"""Zipfian update distribution (paper Section 6.2, Figures 4, 5b, 5c).

Page update probabilities follow ``p(rank i) ∝ 1 / i^θ``.  The paper
evaluates θ = 0.99 (which it calls the "80-20 Zipfian") and θ = 1.35
(the "90-10 Zipfian").  Unlike the two-population hot-cold distribution,
every page has a unique update frequency, which is why the paper uses it
to exercise the sorting buffer (Figure 4).

Rank-to-page assignment is a seeded random permutation, so hot pages are
scattered across the id space.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import Workload

#: The paper's named skews.
ZIPF_80_20 = 0.99
ZIPF_90_10 = 1.35


class ZipfianWorkload(Workload):
    """Zipf-distributed page updates with factor ``theta``."""

    def __init__(self, n_pages: int, theta: float = ZIPF_80_20, seed: int = 0) -> None:
        super().__init__(n_pages, seed)
        if theta <= 0.0:
            raise ValueError("theta must be positive")
        self.theta = theta
        ranks = np.arange(1, n_pages + 1, dtype=float)
        weights = ranks ** -theta
        probs = weights / weights.sum()
        perm_rng = np.random.default_rng(seed ^ 0x5851F42D)
        #: rank i (0-based) -> page id.
        self._rank_to_page = perm_rng.permutation(n_pages)
        self._probs_by_rank = probs
        self._cdf = np.cumsum(probs)
        self._cdf[-1] = 1.0  # guard float round-off at the tail

    @classmethod
    def eighty_twenty(cls, n_pages: int, seed: int = 0) -> "ZipfianWorkload":
        """The paper's "80-20 Zipfian" (θ = 0.99)."""
        return cls(n_pages, theta=ZIPF_80_20, seed=seed)

    @classmethod
    def ninety_ten(cls, n_pages: int, seed: int = 0) -> "ZipfianWorkload":
        """The paper's "90-10 Zipfian" (θ = 1.35)."""
        return cls(n_pages, theta=ZIPF_90_10, seed=seed)

    def frequencies(self) -> np.ndarray:
        freqs = np.empty(self.n_pages, dtype=float)
        freqs[self._rank_to_page] = self._probs_by_rank
        return freqs

    def update_share_of_top(self, data_fraction: float) -> float:
        """Fraction of updates hitting the hottest ``data_fraction`` of
        pages (e.g. ~0.8 at 0.2 for θ = 0.99 and large populations)."""
        k = max(1, int(data_fraction * self.n_pages))
        return float(self._probs_by_rank[:k].sum())

    def _sample(self, n: int) -> np.ndarray:
        u = self._rng.random(n)
        ranks = np.searchsorted(self._cdf, u, side="right")
        return self._rank_to_page[ranks]
