"""Workload generators for the cleaning experiments."""

from repro.workloads.base import DEFAULT_BATCH, Workload
from repro.workloads.combinators import MixedWorkload, PhasedWorkload
from repro.workloads.hotcold import HotColdWorkload
from repro.workloads.shifting import ShiftingHotSetWorkload
from repro.workloads.trace import TraceRecorder, TraceWorkload
from repro.workloads.uniform import UniformWorkload
from repro.workloads.zipfian import ZIPF_80_20, ZIPF_90_10, ZipfianWorkload

__all__ = [
    "DEFAULT_BATCH",
    "HotColdWorkload",
    "MixedWorkload",
    "PhasedWorkload",
    "ShiftingHotSetWorkload",
    "TraceRecorder",
    "TraceWorkload",
    "UniformWorkload",
    "Workload",
    "ZIPF_80_20",
    "ZIPF_90_10",
    "ZipfianWorkload",
]
