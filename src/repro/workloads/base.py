"""Workload protocol: streams of page updates with known statistics.

A workload knows its page population and (for the synthetic
distributions) the exact per-page update probability — which is exactly
what the paper's ``-opt`` policy variants consume as their oracle.
Generators yield page ids in **batches** (numpy arrays) so the sampling
cost is vectorized away from the per-write simulation loop.
"""

from __future__ import annotations

import abc
from typing import Iterator

import numpy as np

DEFAULT_BATCH = 1 << 14


class Workload(abc.ABC):
    """A reproducible stream of page updates."""

    def __init__(self, n_pages: int, seed: int = 0) -> None:
        if n_pages < 1:
            raise ValueError("n_pages must be positive")
        self.n_pages = n_pages
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    @abc.abstractmethod
    def frequencies(self) -> np.ndarray:
        """Exact per-page update probability (sums to 1).

        For non-stationary workloads this is the long-run average; the
        docstring of each such workload says so explicitly, because it is
        what makes oracle-based policies degrade there (as the paper
        observes for TPC-C's shifting pattern).
        """

    @abc.abstractmethod
    def _sample(self, n: int) -> np.ndarray:
        """Draw ``n`` page ids."""

    def batches(self, n_writes: int, batch: int = DEFAULT_BATCH) -> Iterator[np.ndarray]:
        """Yield ``n_writes`` page ids in arrays of at most ``batch``."""
        remaining = n_writes
        while remaining > 0:
            take = batch if remaining > batch else remaining
            yield self._sample(take)
            remaining -= take

    def reset(self) -> None:
        """Restart the stream from the seed (full reproducibility)."""
        self._rng = np.random.default_rng(self.seed)

    @property
    def name(self) -> str:
        """Display name used in experiment results."""
        return type(self).__name__

    def __repr__(self) -> str:
        return "<%s n_pages=%d seed=%d>" % (self.name, self.n_pages, self.seed)
