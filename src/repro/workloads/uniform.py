"""Uniform update distribution: every page equally likely (Upf = 1).

The baseline of the paper's Section 2 analysis and Figure 5a.  Under it,
age-based and greedy cleaning are optimal and the Table 1 fixpoint
predicts the emptiness at cleaning time.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import Workload


class UniformWorkload(Workload):
    """Independent uniform page updates."""

    def frequencies(self) -> np.ndarray:
        return np.full(self.n_pages, 1.0 / self.n_pages)

    def _sample(self, n: int) -> np.ndarray:
        return self._rng.integers(0, self.n_pages, size=n)
