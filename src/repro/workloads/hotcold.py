"""Hot-cold (``m : 1-m``) update distribution (paper Section 3, Figure 3).

``m`` of the updates go to ``1-m`` of the data — e.g. 80:20 sends 80 % of
updates to a hot set holding 20 % of the pages — with updates uniform
*within* each set.  This is the two-population distribution the paper's
gedanken analysis optimizes, so the analytic minimum cost of Table 2
applies exactly.

The hot set is a random subset of the page ids (seeded), so the initial
sequential load interleaves hot and cold pages; any separation a policy
achieves is earned, not inherited from the load order.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import Workload


class HotColdWorkload(Workload):
    """Two uniform populations with different update rates.

    Args:
        n_pages: Total page population.
        update_fraction: ``m`` — fraction of updates hitting the hot set.
        data_fraction: Fraction of pages in the hot set (defaults to
            ``1 - m``, the paper's ``m : 1-m`` family).
    """

    def __init__(
        self,
        n_pages: int,
        update_fraction: float = 0.8,
        data_fraction: float = None,
        seed: int = 0,
    ) -> None:
        super().__init__(n_pages, seed)
        if not 0.0 < update_fraction < 1.0:
            raise ValueError("update_fraction must be in (0, 1)")
        if data_fraction is None:
            data_fraction = 1.0 - update_fraction
        if not 0.0 < data_fraction < 1.0:
            raise ValueError("data_fraction must be in (0, 1)")
        self.update_fraction = update_fraction
        self.data_fraction = data_fraction
        n_hot = max(1, min(n_pages - 1, round(data_fraction * n_pages)))
        membership_rng = np.random.default_rng(seed ^ 0x9E3779B9)
        permutation = membership_rng.permutation(n_pages)
        self.hot_pages = np.sort(permutation[:n_hot])
        self.cold_pages = np.sort(permutation[n_hot:])

    @classmethod
    def from_skew(cls, n_pages: int, m_percent: int, seed: int = 0) -> "HotColdWorkload":
        """The paper's ``m : 1-m`` shorthand, e.g. ``from_skew(p, 80)``
        for the 80-20 distribution."""
        if not 50 <= m_percent <= 99:
            raise ValueError("m_percent must be in [50, 99]")
        return cls(n_pages, update_fraction=m_percent / 100.0, seed=seed)

    @property
    def skew_label(self) -> str:
        """The paper's shorthand, e.g. ``"80-20"``."""
        m = round(self.update_fraction * 100)
        return "%d-%d" % (m, 100 - m)

    def frequencies(self) -> np.ndarray:
        freqs = np.empty(self.n_pages, dtype=float)
        freqs[self.hot_pages] = self.update_fraction / len(self.hot_pages)
        freqs[self.cold_pages] = (1.0 - self.update_fraction) / len(self.cold_pages)
        return freqs

    def _sample(self, n: int) -> np.ndarray:
        hot_mask = self._rng.random(n) < self.update_fraction
        n_hot = int(hot_mask.sum())
        out = np.empty(n, dtype=np.int64)
        out[hot_mask] = self.hot_pages[
            self._rng.integers(0, len(self.hot_pages), size=n_hot)
        ]
        out[~hot_mask] = self.cold_pages[
            self._rng.integers(0, len(self.cold_pages), size=n - n_hot)
        ]
        return out
