"""Trace workloads: record, persist, and replay page-write sequences.

The paper's TPC-C experiment (Section 6.3) collects I/O traces from a
B+-tree storage engine and replays them through the cleaning simulator.
:class:`TraceWorkload` is the replay half; :class:`TraceRecorder` is the
collection half (the buffer pool in :mod:`repro.btree` writes into one).

Traces are plain integer page-id sequences.  "Exact" frequencies for the
``-opt`` policies are the empirical per-page write shares of the whole
trace — the paper's "pre-analyzing page update frequencies".
"""

from __future__ import annotations

import pathlib
from typing import Iterable, List, Union

import numpy as np

from repro.core.frequency import empirical_frequencies
from repro.workloads.base import Workload


class TraceRecorder:
    """Accumulates page writes emitted by a storage engine."""

    def __init__(self) -> None:
        self._chunks: List[np.ndarray] = []
        self._pending: List[int] = []

    def record(self, page_id: int) -> None:
        """Append one page write to the trace."""
        self._pending.append(page_id)
        if len(self._pending) >= 1 << 16:
            self._compact()

    def record_many(self, page_ids: Iterable[int]) -> None:
        """Append a batch of page writes."""
        self._pending.extend(page_ids)
        if len(self._pending) >= 1 << 16:
            self._compact()

    def _compact(self) -> None:
        if self._pending:
            self._chunks.append(np.asarray(self._pending, dtype=np.int64))
            self._pending = []

    def __len__(self) -> int:
        return sum(len(c) for c in self._chunks) + len(self._pending)

    def to_array(self) -> np.ndarray:
        """The full trace as one int64 array."""
        self._compact()
        if not self._chunks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(self._chunks)


class TraceWorkload(Workload):
    """Replay a recorded page-write trace, in order.

    Iterating past the end wraps around (with a warning flag), so short
    traces can still drive long convergence runs when needed; benchmarks
    size their runs to the trace instead.
    """

    def __init__(self, trace: Union[np.ndarray, List[int]], seed: int = 0) -> None:
        trace = np.asarray(trace, dtype=np.int64)
        if trace.size == 0:
            raise ValueError("trace is empty")
        if trace.min() < 0:
            raise ValueError("trace contains negative page ids")
        super().__init__(int(trace.max()) + 1, seed)
        self.trace = trace
        self._pos = 0
        self.wrapped = False

    @classmethod
    def load(cls, path: Union[str, pathlib.Path]) -> "TraceWorkload":
        """Read a trace saved with :meth:`save`."""
        data = np.load(str(path))
        return cls(data["trace"])

    def save(self, path: Union[str, pathlib.Path]) -> None:
        """Persist the trace as a compressed ``.npz``."""
        np.savez_compressed(str(path), trace=self.trace)

    def __len__(self) -> int:
        return len(self.trace)

    def frequencies(self) -> np.ndarray:
        return empirical_frequencies(self.trace, self.n_pages)

    def distinct_pages(self) -> int:
        """Number of unique page ids the trace touches."""
        return int(np.unique(self.trace).size)

    def _sample(self, n: int) -> np.ndarray:
        out = np.empty(n, dtype=np.int64)
        filled = 0
        total = len(self.trace)
        while filled < n:
            take = min(n - filled, total - self._pos)
            out[filled : filled + take] = self.trace[self._pos : self._pos + take]
            filled += take
            self._pos += take
            if self._pos >= total:
                self._pos = 0
                if filled < n:
                    # Only flag a wrap when repeated data is actually
                    # emitted; consuming the trace exactly once is clean.
                    self.wrapped = True
        return out

    def reset(self) -> None:
        super().reset()
        self._pos = 0
        self.wrapped = False
