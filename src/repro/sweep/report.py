"""Sweep aggregation, live progress, and machine-readable summaries.

The pipeline is *discover → execute → replay*:

1. :func:`repro.sweep.spec.expand_grid` records the experiment's
   simulation calls as job specs;
2. :func:`repro.sweep.executor.run_sweep` runs them (in parallel, with
   retries and a resumable manifest);
3. the experiment function runs once more with a **replaying** runner
   that serves each simulation call from the stored results.

Step 3 reuses the experiment's own aggregation code — analytic columns,
rendering, everything — so a swept run's ``ExperimentOutput`` is
byte-identical to the serial one, whether or not the sweep was
interrupted and resumed along the way.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import sys
from typing import Any, Callable, Dict, Optional, Union

from repro.bench.experiments import ExperimentOutput
from repro.sweep.executor import (
    ObsJobRunner,
    ProgressEvent,
    SweepStats,
    default_workers,
    execute_job,
    run_sweep,
)
from repro.sweep.manifest import Manifest
from repro.sweep.spec import (
    SWEEP_GRIDS,
    SweepError,
    expand_grid,
    grid_digest,
    result_from_dict,
    spec_from_call,
)

#: File name of the machine-readable summary inside an output dir.
SUMMARY_NAME = "summary.json"

#: Merged observability rows of every job, in spec order.
METRICS_NAME = "metrics.jsonl"

#: Aggregated per-job convergence curves (clock vs windowed Wamp).
CONVERGENCE_NAME = "convergence.json"


class ProgressPrinter:
    """Single-line live progress: ``[12/42] 28% mdc/... eta 26.3s``.

    Writes carriage-return-terminated lines to ``stream`` (stderr by
    default) so the line updates in place; :meth:`close` finishes it
    with a newline.  Disable by passing ``progress=None`` to the
    functions below.
    """

    def __init__(self, stream=None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self._wrote = False

    def __call__(self, event: ProgressEvent) -> None:
        finished = event.done + event.skipped + event.failed
        pct = 100.0 * finished / event.total if event.total else 100.0
        eta = " eta %.1fs" % event.eta if event.eta is not None else ""
        failed = " failed=%d" % event.failed if event.failed else ""
        skipped = " resumed=%d" % event.skipped if event.skipped else ""
        line = "[%d/%d] %3.0f%% %-40s elapsed %.1fs%s%s%s" % (
            finished,
            event.total,
            pct,
            event.label[:40],
            event.elapsed,
            eta,
            skipped,
            failed,
        )
        self.stream.write("\r" + line)
        self.stream.flush()
        self._wrote = True

    def close(self) -> None:
        if self._wrote:
            self.stream.write("\n")
            self.stream.flush()
            self._wrote = False


@dataclasses.dataclass
class SweepReport:
    """Everything one sweep run produced."""

    output: ExperimentOutput
    stats: SweepStats
    summary: Dict[str, Any]
    out_dir: Optional[pathlib.Path] = None


def _replay_runner(results: Dict[str, Dict]) -> Callable:
    """A runner serving ``run_simulation`` calls from stored results."""

    def runner(config, policy, workload, **run_kwargs):
        spec = spec_from_call(config, policy, workload, **run_kwargs)
        digest = spec.digest()
        try:
            return result_from_dict(results[digest])
        except KeyError:
            raise SweepError(
                "no stored result for job %s (%s); the manifest does not "
                "cover this grid" % (digest, spec.label)
            )

    return runner


def build_summary(
    name: str,
    kwargs: Dict[str, Any],
    stats: SweepStats,
    digest: str,
) -> Dict[str, Any]:
    """The machine-readable sweep summary (written as summary.json)."""
    return {
        "experiment": name,
        "args": {k: v for k, v in kwargs.items() if k != "runner"},
        "grid_digest": digest,
        "jobs": stats.total,
        "executed": stats.executed,
        "skipped": stats.skipped,
        "failed": len(stats.failed),
        "workers": stats.workers,
        "workers_requested": stats.workers_requested,
        "workers_effective": stats.workers_effective,
        "pool_mode": stats.pool_mode,
        "cpu_count": os.cpu_count(),
        "wall_clock_s": round(stats.wall_seconds, 3),
        "job_wall_s": round(stats.job_seconds, 3),
        "skipped_job_wall_s": round(stats.skipped_job_seconds, 3),
        "serial_estimate_s": round(stats.job_seconds, 3),
        "speedup_vs_serial_estimate": round(stats.speedup_vs_serial, 3),
        "pool_overhead_s": {
            "spawn": round(stats.spawn_seconds, 3),
            "dispatch": round(stats.dispatch_seconds, 3),
            "drain": round(stats.drain_seconds, 3),
        },
        "worker_recycles": stats.worker_recycles,
    }


def _merge_job_metrics(specs, out_path: pathlib.Path, job_runner) -> int:
    """Merge per-job observability files into one ``metrics.jsonl``.

    Jobs run in separate processes, so each writes its own
    ``metrics/<digest>.jsonl``; this concatenates them in spec order
    (stable across worker counts and scheduling) and aggregates the
    convergence curves.  Returns the number of jobs that produced rows
    (resumed jobs did not re-run and have none).
    """
    from repro.obs import MetricsWriter, aggregate_convergence, load_rows

    writer = MetricsWriter(str(out_path / METRICS_NAME))
    merged = 0
    all_rows = []
    seen = set()
    for spec in specs:
        digest = spec.digest()
        if digest in seen:
            continue
        seen.add(digest)
        job_path = job_runner.job_metrics_path(digest)
        if not os.path.exists(job_path):
            continue
        rows = load_rows(job_path)
        if rows:
            writer.write_rows(rows)
            all_rows.extend(rows)
            merged += 1
    (out_path / CONVERGENCE_NAME).write_text(
        json.dumps(aggregate_convergence(all_rows), indent=2, sort_keys=True)
        + "\n"
    )
    return merged


def parallel_experiment(
    experiment: Callable[..., ExperimentOutput],
    workers: Optional[int] = None,
    out_dir: Optional[Union[str, pathlib.Path]] = None,
    resume: bool = False,
    timeout: Optional[float] = None,
    retries: int = 1,
    progress: Optional[Callable[[ProgressEvent], None]] = None,
    name: Optional[str] = None,
    obs: bool = False,
    sample_interval: Optional[int] = None,
    start_method: Optional[str] = None,
    **kwargs,
) -> SweepReport:
    """Run any experiment function through the sweep engine.

    Args:
        experiment: A function from :mod:`repro.bench.experiments` (or
            anything with the same ``runner`` contract).
        workers: Worker processes; defaults to the CPU count.  The
            executor clamps the pool to ``min(workers, jobs, cpus)`` —
            oversubscribing a CPU-bound sweep only adds scheduling
            overhead.  Both the requested and effective counts land in
            the summary and the manifest's run record.
        out_dir: Where the manifest, rendered output, and summary.json
            land.  ``None`` keeps everything in memory (no resume).
        resume: Allow continuing from an existing manifest.  Without it
            an existing manifest is an error, so two sweeps cannot
            silently interleave in one directory.
        timeout / retries / progress: Passed to
            :func:`repro.sweep.executor.run_sweep`.
        obs: Record each job's observability rows (time series, cleaning
            decisions, events).  Requires ``out_dir``; the per-job files
            land in ``out_dir/metrics/`` and are merged, in spec order,
            into ``out_dir/metrics.jsonl``, with the convergence curves
            aggregated into ``out_dir/convergence.json``.  Observability
            never enters job digests, so obs and non-obs sweeps share
            manifests — but jobs *resumed* from a manifest were not
            re-run and contribute no rows.
        sample_interval: Clock ticks between time-series samples
            (default: a quarter of the store's user pages).
        start_method: Multiprocessing start method of the worker pool
            (``"fork"``, ``"spawn"``, ``"forkserver"``; None = platform
            default).  Results are identical across methods.
        kwargs: Forwarded to the experiment function (grid parameters).

    Returns:
        A :class:`SweepReport`; ``report.output`` is byte-identical to
        ``experiment(**kwargs)`` run serially.
    """
    if obs and out_dir is None:
        raise SweepError(
            "observability (obs=True / --obs) needs an output directory "
            "to write metrics.jsonl into; pass out_dir (--out)"
        )
    if workers is None:
        workers = default_workers()
    run_name = name or getattr(experiment, "__name__", "experiment")

    specs = expand_grid(experiment, **kwargs)
    digest = grid_digest(specs)

    manifest = None
    out_path: Optional[pathlib.Path] = None
    if out_dir is not None:
        out_path = pathlib.Path(out_dir)
        out_path.mkdir(parents=True, exist_ok=True)
        manifest = Manifest.in_dir(out_path)
        if manifest.exists() and not resume:
            raise SweepError(
                "%s already has a manifest; pass resume=True (--resume) to "
                "continue it or use a fresh output directory" % (out_path,)
            )
        manifest.ensure_header(run_name, digest)

    job_runner: Callable[[Dict], Dict] = execute_job
    if obs:
        metrics_dir = out_path / "metrics"
        metrics_dir.mkdir(parents=True, exist_ok=True)
        job_runner = ObsJobRunner(str(metrics_dir), sample_interval)

    try:
        results, stats = run_sweep(
            specs,
            workers=workers,
            manifest=manifest,
            timeout=timeout,
            retries=retries,
            job_runner=job_runner,
            progress=progress,
            start_method=start_method,
        )
    finally:
        if manifest is not None:
            manifest.close()
        if isinstance(progress, ProgressPrinter):
            progress.close()

    if stats.failed:
        details = "; ".join(
            "%s after %d attempts: %s" % (f.label, f.attempts, f.error)
            for f in stats.failed[:5]
        )
        raise SweepError(
            "%d/%d jobs failed (%s); completed jobs are journaled — fix "
            "the cause and re-run with resume" % (
                len(stats.failed), stats.total, details,
            )
        )

    output = experiment(runner=_replay_runner(results), **kwargs)
    summary = build_summary(run_name, kwargs, stats, digest)

    if obs:
        merged = _merge_job_metrics(specs, out_path, job_runner)
        summary["obs"] = {
            "metrics_file": METRICS_NAME,
            "convergence_file": CONVERGENCE_NAME,
            "jobs_with_metrics": merged,
        }

    if out_path is not None:
        (out_path / SUMMARY_NAME).write_text(
            json.dumps(summary, indent=2, sort_keys=True) + "\n"
        )
        (out_path / ("%s.txt" % output.name)).write_text(output.rendered + "\n")

    return SweepReport(
        output=output, stats=stats, summary=summary, out_dir=out_path
    )


def run_named_sweep(
    grid: str,
    workers: Optional[int] = None,
    out_dir: Optional[Union[str, pathlib.Path]] = None,
    resume: bool = False,
    quick: bool = False,
    seed: int = 0,
    dist: Optional[str] = None,
    timeout: Optional[float] = None,
    retries: int = 1,
    progress: Optional[Callable[[ProgressEvent], None]] = None,
    obs: bool = False,
    sample_interval: Optional[int] = None,
    start_method: Optional[str] = None,
) -> SweepReport:
    """Run one of the registered experiment grids (``repro sweep``)."""
    try:
        grid_def = SWEEP_GRIDS[grid]
    except KeyError:
        raise SweepError(
            "unknown grid %r (have: %s)" % (grid, ", ".join(sorted(SWEEP_GRIDS)))
        )
    experiment, kwargs, run_name = grid_def.resolve(
        quick=quick, seed=seed, dist=dist
    )
    return parallel_experiment(
        experiment,
        workers=workers,
        out_dir=out_dir,
        resume=resume,
        timeout=timeout,
        retries=retries,
        progress=progress,
        name=run_name,
        obs=obs,
        sample_interval=sample_interval,
        start_method=start_method,
        **kwargs,
    )
