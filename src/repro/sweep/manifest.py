"""Checkpointed run journal: one JSONL file per sweep.

The first line is a header identifying the grid; every subsequent line
records one finished job::

    {"kind": "sweep", "version": 1, "experiment": "fig5-zipf-80-20",
     "grid_digest": "ab12..."}
    {"kind": "job", "digest": "9f3c...", "label": "mdc/zipfian-0.99/...",
     "elapsed": 0.81, "attempts": 1, "result": {...}}

Each executor invocation additionally appends one ``run`` record when it
finishes — the pool configuration (requested and effective workers, pool
mode) and the phase overheads (spawn/dispatch/drain), so a manifest
tells the full story of how its results were produced, including every
resume.

Appends are flushed and fsynced, so after a crash or kill at most the
line being written is lost.  :meth:`Manifest.load` therefore tolerates a
torn *final* line (the kill case) but refuses corruption anywhere else,
which would mean something other than an interrupted append happened to
the file.

Job identity is the spec's content digest: any change to policy, seed,
config, or run length produces a different digest, so a resumed sweep
can never serve a stale result for a changed job.  The header's
``grid_digest`` (hash of all job digests) additionally rejects resuming
a manifest that belongs to a different grid outright.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Any, Dict, Optional, Union

from repro.sweep.spec import SweepError
from repro.testkit.failpoints import failpoint

#: File name used inside a sweep output directory.
MANIFEST_NAME = "manifest.jsonl"

_VERSION = 1


class Manifest:
    """Append-only journal of completed sweep jobs."""

    def __init__(self, path: Union[str, pathlib.Path]) -> None:
        self.path = pathlib.Path(path)
        self._fh = None
        self._completed: Optional[Dict[str, Dict[str, Any]]] = None
        self._header: Optional[Dict[str, Any]] = None
        self._runs: Optional[list] = None
        #: Byte offset to truncate to before the first append, set when
        #: :meth:`load` found a torn final line.  Appending after a torn
        #: tail without truncating would glue the new record onto the
        #: partial line, corrupting the file for every later load.
        self._truncate_to: Optional[int] = None

    @classmethod
    def in_dir(cls, out_dir: Union[str, pathlib.Path]) -> "Manifest":
        """The conventional manifest location inside an output dir."""
        return cls(pathlib.Path(out_dir) / MANIFEST_NAME)

    def exists(self) -> bool:
        return self.path.exists()

    # -- reading -------------------------------------------------------

    def load(self) -> Dict[str, Dict[str, Any]]:
        """Parse the journal; returns completed jobs keyed by digest.

        A torn final line (interrupted append) is dropped silently;
        malformed content elsewhere raises :class:`SweepError`.
        """
        completed: Dict[str, Dict[str, Any]] = {}
        header: Optional[Dict[str, Any]] = None
        runs: list = []
        self._truncate_to = None
        if not self.path.exists():
            self._completed, self._header = completed, header
            self._runs = runs
            return completed
        raw = self.path.read_text()
        lines = raw.splitlines()
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                if index == len(lines) - 1:
                    # Torn tail from a mid-append kill: drop it, and
                    # remember where it starts so the next append
                    # truncates it away instead of gluing onto it.
                    tail = len(line.encode("utf-8"))
                    if raw.endswith("\n"):
                        tail += 1
                    self._truncate_to = len(raw.encode("utf-8")) - tail
                    break
                raise SweepError(
                    "corrupt manifest line %d in %s" % (index + 1, self.path)
                )
            kind = record.get("kind")
            if kind == "sweep":
                header = record
            elif kind == "job":
                completed[record["digest"]] = record
            elif kind == "run":
                runs.append(record)
            else:
                raise SweepError(
                    "unknown record kind %r in %s" % (kind, self.path)
                )
        self._completed, self._header = completed, header
        self._runs = runs
        return completed

    def completed(self) -> Dict[str, Dict[str, Any]]:
        """Completed job records (loads the file on first use)."""
        if self._completed is None:
            self.load()
        return self._completed

    def runs(self) -> list:
        """Executor run records, in append order (one per invocation
        that touched this manifest, so resumes are visible)."""
        if self._runs is None:
            self.load()
        return list(self._runs)

    # -- writing -------------------------------------------------------

    def ensure_header(self, experiment: str, grid_digest: str) -> None:
        """Write the header, or verify an existing one matches.

        A mismatched ``grid_digest`` means the manifest was produced by
        a different grid (other parameters, other seed, other
        ``--quick``) — resuming would silently merge unrelated runs, so
        it is an error.
        """
        if self._completed is None:
            self.load()
        if self._header is not None:
            if self._header.get("grid_digest") != grid_digest:
                raise SweepError(
                    "manifest %s belongs to grid %s of experiment %r, not "
                    "the requested grid %s; use a fresh --out directory"
                    % (
                        self.path,
                        self._header.get("grid_digest"),
                        self._header.get("experiment"),
                        grid_digest,
                    )
                )
            return
        self._append(
            {
                "kind": "sweep",
                "version": _VERSION,
                "experiment": experiment,
                "grid_digest": grid_digest,
            }
        )
        self._header = {
            "kind": "sweep",
            "version": _VERSION,
            "experiment": experiment,
            "grid_digest": grid_digest,
        }

    def record(
        self,
        digest: str,
        label: str,
        result: Dict[str, Any],
        elapsed: float,
        attempts: int,
    ) -> None:
        """Journal one finished job (durable before returning)."""
        record = {
            "kind": "job",
            "digest": digest,
            "label": label,
            "elapsed": round(elapsed, 6),
            "attempts": attempts,
            "result": result,
        }
        self._append(record)
        if self._completed is not None:
            self._completed[digest] = record

    def record_run(self, info: Dict[str, Any]) -> None:
        """Journal one executor invocation's pool configuration."""
        record = dict(info)
        record["kind"] = "run"
        self._append(record)
        if self._runs is not None:
            self._runs.append(record)

    def _append(self, record: Dict[str, Any]) -> None:
        failpoint("sweep.manifest.pre_append", record=record, path=self.path)
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            if self._truncate_to is not None and self.path.exists():
                with open(self.path, "r+b") as tail_fh:
                    tail_fh.truncate(self._truncate_to)
            self._truncate_to = None
            self._fh = open(self.path, "a", encoding="utf-8")
        line = json.dumps(record, sort_keys=True) + "\n"
        # The torn-write failpoint lets crash tests leave exactly the
        # partial line a mid-append kill would: its context carries the
        # handle and full line so a hook can write a prefix, then raise.
        failpoint(
            "sweep.manifest.torn_write", fh=self._fh, line=line, path=self.path
        )
        self._fh.write(line)
        self._fh.flush()
        failpoint("sweep.manifest.pre_fsync", record=record, path=self.path)
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "Manifest":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
