"""Serializable job specifications and experiment grid expansion.

A sweep decomposes an experiment (a table or figure of the paper) into
independent **jobs** — one simulation each.  :class:`JobSpec` captures
everything a worker process needs to reproduce that simulation exactly:
the policy name, a reconstructible workload description, the
:class:`~repro.store.config.StoreConfig`, and the run-length parameters
of :func:`repro.bench.runner.run_simulation`.  The spec is canonically
JSON-serializable and content-addressed (:meth:`JobSpec.digest`), which
is what lets the run manifest identify finished jobs across process
restarts.

Grids are not hand-enumerated: :func:`expand_grid` calls the existing
experiment function from :mod:`repro.bench.experiments` with a
*recording* runner that captures every simulation request as a
:class:`JobSpec`.  Because discovery, serial execution, and sweep
aggregation all walk the identical loops, the sweep engine cannot drift
from the serial code path.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.bench.experiments import (
    ablation_batch_experiment,
    ablation_estimator_experiment,
    demo_experiment,
    fig3_experiment,
    fig4_experiment,
    fig5_experiment,
    table1_experiment,
    table2_experiment,
)
from repro.bench.runner import SimulationResult, run_simulation
from repro.store import StoreConfig, WindowStats
from repro.workloads import (
    HotColdWorkload,
    UniformWorkload,
    Workload,
    ZipfianWorkload,
)


class SweepError(Exception):
    """Raised for orchestration failures (unserializable jobs, missing
    results at aggregation time, incompatible manifests, failed jobs)."""


# ----------------------------------------------------------------------
# Workload (de)serialization
# ----------------------------------------------------------------------

def workload_to_spec(workload: Workload) -> Dict[str, Any]:
    """Describe a workload as a small JSON dict from which
    :func:`workload_from_spec` rebuilds an identical instance.

    Only the stationary synthetic distributions are supported; trace
    workloads (Figure 6's TPC-C replay) would need the full trace in the
    spec, so they stay on the serial path.
    """
    if isinstance(workload, ZipfianWorkload):
        return {
            "kind": "zipfian",
            "n_pages": workload.n_pages,
            "theta": workload.theta,
            "seed": workload.seed,
        }
    if isinstance(workload, HotColdWorkload):
        return {
            "kind": "hotcold",
            "n_pages": workload.n_pages,
            "update_fraction": workload.update_fraction,
            "data_fraction": workload.data_fraction,
            "seed": workload.seed,
        }
    if isinstance(workload, UniformWorkload):
        return {
            "kind": "uniform",
            "n_pages": workload.n_pages,
            "seed": workload.seed,
        }
    raise SweepError(
        "workload %r cannot be expressed as a sweep job spec; "
        "run this experiment on the serial path" % (workload,)
    )


def workload_from_spec(spec: Dict[str, Any]) -> Workload:
    """Rebuild a workload from :func:`workload_to_spec` output."""
    kind = spec.get("kind")
    if kind == "uniform":
        return UniformWorkload(spec["n_pages"], seed=spec["seed"])
    if kind == "zipfian":
        return ZipfianWorkload(
            spec["n_pages"], theta=spec["theta"], seed=spec["seed"]
        )
    if kind == "hotcold":
        return HotColdWorkload(
            spec["n_pages"],
            update_fraction=spec["update_fraction"],
            data_fraction=spec["data_fraction"],
            seed=spec["seed"],
        )
    raise SweepError("unknown workload kind %r" % (kind,))


# ----------------------------------------------------------------------
# Job specs
# ----------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class JobSpec:
    """One simulation of a sweep, fully determined and serializable.

    ``seed`` lives inside ``workload`` (the only source of randomness in
    the simulator), so equal specs are bit-reproducible by construction.
    """

    policy: str
    workload: Dict[str, Any]
    config: StoreConfig
    total_writes: Optional[int] = None
    write_multiplier: float = 30.0
    measure_fraction: float = 0.5

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-ready form."""
        return {
            "policy": self.policy,
            "workload": dict(self.workload),
            "config": dataclasses.asdict(self.config),
            "total_writes": self.total_writes,
            "write_multiplier": self.write_multiplier,
            "measure_fraction": self.measure_fraction,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobSpec":
        return cls(
            policy=data["policy"],
            workload=dict(data["workload"]),
            config=StoreConfig(**data["config"]),
            total_writes=data.get("total_writes"),
            write_multiplier=data.get("write_multiplier", 30.0),
            measure_fraction=data.get("measure_fraction", 0.5),
        )

    def digest(self) -> str:
        """Content address: equal specs hash equal, any parameter change
        (policy, seed, config field, run length) changes the digest."""
        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    @property
    def label(self) -> str:
        """Short human-readable name for progress lines and manifests."""
        wl = self.workload
        extra = ""
        if wl["kind"] == "zipfian":
            extra = "-%g" % wl["theta"]
        elif wl["kind"] == "hotcold":
            extra = "-%d" % round(wl["update_fraction"] * 100)
        return "%s/%s%s/F%.2f/s%d" % (
            self.policy,
            wl["kind"],
            extra,
            self.config.fill_factor,
            wl["seed"],
        )


def spec_from_call(
    config: StoreConfig,
    policy,
    workload: Workload,
    total_writes: Optional[int] = None,
    write_multiplier: float = 30.0,
    measure_fraction: float = 0.5,
) -> JobSpec:
    """Build the :class:`JobSpec` for one ``run_simulation`` call.

    Mirrors :func:`repro.bench.runner.run_simulation`'s signature so the
    recording and replaying runners can translate calls mechanically.
    """
    if not isinstance(policy, str):
        raise SweepError(
            "sweep jobs need policy names, got instance %r" % (policy,)
        )
    return JobSpec(
        policy=policy,
        workload=workload_to_spec(workload),
        config=config,
        total_writes=total_writes,
        write_multiplier=write_multiplier,
        measure_fraction=measure_fraction,
    )


def run_job(
    spec: JobSpec,
    observe=None,
    sample_interval: Optional[int] = None,
) -> SimulationResult:
    """Execute one job deterministically (same spec ⇒ same result).

    ``observe``/``sample_interval`` pass through to
    :func:`repro.bench.runner.run_simulation`; observability is pure
    output, so it never enters the spec or its digest (observed and
    unobserved runs of the same spec share manifest entries).
    """
    workload = workload_from_spec(spec.workload)
    return run_simulation(
        spec.config,
        spec.policy,
        workload,
        total_writes=spec.total_writes,
        write_multiplier=spec.write_multiplier,
        measure_fraction=spec.measure_fraction,
        observe=observe,
        sample_interval=sample_interval,
        meta=None if observe is None else {"job": spec.label, "digest": spec.digest()},
    )


# ----------------------------------------------------------------------
# SimulationResult (de)serialization
# ----------------------------------------------------------------------

def result_to_dict(result: SimulationResult) -> Dict[str, Any]:
    """Serialize a result for the manifest (window counters included so
    aggregation can recompute every derived metric exactly)."""
    return {
        "policy": result.policy,
        "workload": result.workload,
        "config": dataclasses.asdict(result.config),
        "total_user_writes": result.total_user_writes,
        "window": dataclasses.asdict(result.window),
        "extras": dict(result.extras),
    }


def result_from_dict(data: Dict[str, Any]) -> SimulationResult:
    """Rebuild a :class:`SimulationResult` from manifest JSON."""
    return SimulationResult(
        policy=data["policy"],
        workload=data["workload"],
        config=StoreConfig(**data["config"]),
        total_user_writes=data["total_user_writes"],
        window=WindowStats(**data["window"]),
        extras=dict(data["extras"]),
    )


# ----------------------------------------------------------------------
# Grid expansion
# ----------------------------------------------------------------------

def _placeholder_result(spec: JobSpec) -> SimulationResult:
    """A zeroed result so discovery can run an experiment's aggregation
    code without simulating (all derived metrics degrade to 0.0)."""
    return SimulationResult(
        policy=spec.policy,
        workload=spec.workload["kind"],
        config=spec.config,
        total_user_writes=0,
        window=WindowStats(0, 0, 0, 0, 0, 0.0, 0),
        extras={},
    )


def expand_grid(experiment: Callable, **kwargs) -> List[JobSpec]:
    """Expand an experiment function into its ordered, de-duplicated job
    list by calling it with a recording runner.

    ``kwargs`` are forwarded verbatim (``write_multiplier``, ``seed``,
    custom fill/skew sequences, ...), so the grid reflects exactly the
    simulations the serial call would run.
    """
    specs: List[JobSpec] = []
    seen = set()

    def recorder(config, policy, workload, **run_kwargs):
        spec = spec_from_call(config, policy, workload, **run_kwargs)
        key = spec.digest()
        if key not in seen:
            seen.add(key)
            specs.append(spec)
        return _placeholder_result(spec)

    experiment(runner=recorder, **kwargs)
    return specs


def grid_digest(specs: List[JobSpec]) -> str:
    """Digest of a whole grid (order-insensitive), used to detect that a
    resumed manifest belongs to a different grid."""
    joined = ",".join(sorted(s.digest() for s in specs))
    return hashlib.sha256(joined.encode("utf-8")).hexdigest()[:16]


# ----------------------------------------------------------------------
# Named grids (the CLI's `repro sweep <grid>`)
# ----------------------------------------------------------------------

#: Distributions accepted by grids that take ``--dist``.
SWEEP_DISTS = ("uniform", "zipf-80-20", "zipf-90-10")


@dataclasses.dataclass(frozen=True)
class GridDef:
    """A named, CLI-invocable experiment grid."""

    name: str
    experiment: Callable
    base_multiplier: float
    takes_dist: bool = False

    def resolve(
        self, quick: bool = False, seed: int = 0, dist: Optional[str] = None
    ) -> Tuple[Callable, Dict[str, Any], str]:
        """Return ``(experiment_fn, kwargs, run_name)`` for one
        invocation.  ``--quick`` quarters the write multiplier, matching
        the serial CLI's convention."""
        multiplier = self.base_multiplier / 4.0 if quick else self.base_multiplier
        kwargs: Dict[str, Any] = {
            "write_multiplier": multiplier, "seed": seed,
        }
        run_name = self.name
        if self.takes_dist:
            chosen = dist or "zipf-80-20"
            if chosen not in SWEEP_DISTS:
                raise SweepError("unknown distribution %r" % (chosen,))
            kwargs["dist"] = chosen
            run_name = "%s-%s" % (self.name, chosen)
        elif dist is not None:
            raise SweepError("grid %r does not take --dist" % (self.name,))
        return self.experiment, kwargs, run_name


#: Figure 6 is absent: TPC-C trace workloads are generated (expensively)
#: in-process and are not spec-serializable; it stays on the serial path.
SWEEP_GRIDS: Dict[str, GridDef] = {
    g.name: g
    for g in (
        GridDef("table1", table1_experiment, base_multiplier=8.0),
        GridDef("table2", table2_experiment, base_multiplier=30.0),
        GridDef("fig3", fig3_experiment, base_multiplier=30.0),
        GridDef("fig4", fig4_experiment, base_multiplier=30.0),
        GridDef("fig5", fig5_experiment, base_multiplier=25.0, takes_dist=True),
        GridDef(
            "ablation-estimator", ablation_estimator_experiment,
            base_multiplier=30.0,
        ),
        GridDef("ablation-batch", ablation_batch_experiment, base_multiplier=30.0),
        GridDef("demo", demo_experiment, base_multiplier=4.0),
    )
}


def sweep_grid_names() -> List[str]:
    """Names accepted by ``repro sweep``."""
    return sorted(SWEEP_GRIDS)
