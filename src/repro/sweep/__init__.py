"""Parallel experiment orchestration with checkpointed resume.

The paper's tables and figures are parameter grids (policy ×
distribution × fill factor) of mutually independent simulations; this
package fans them out over worker processes and journals every finished
job so an interrupted sweep resumes where it stopped.

Layers (see DESIGN.md):

* :mod:`repro.sweep.spec` — serializable :class:`JobSpec`, grid
  expansion from the existing experiment functions, named CLI grids;
* :mod:`repro.sweep.executor` — process-per-job worker pool with
  deterministic per-job seeding, timeout, and crash retry;
* :mod:`repro.sweep.manifest` — JSONL journal keyed by spec digest;
* :mod:`repro.sweep.report` — replay-based aggregation (byte-identical
  to serial output), live progress, JSON summaries.

Entry points: ``repro sweep <grid>`` on the command line, or
:func:`parallel_experiment` / :func:`run_named_sweep` from code.
"""

from repro.sweep.executor import (
    FailedJob,
    ProgressEvent,
    SweepStats,
    default_workers,
    execute_job,
    run_sweep,
)
from repro.sweep.manifest import MANIFEST_NAME, Manifest
from repro.sweep.report import (
    SUMMARY_NAME,
    ProgressPrinter,
    SweepReport,
    build_summary,
    parallel_experiment,
    run_named_sweep,
)
from repro.sweep.spec import (
    SWEEP_DISTS,
    SWEEP_GRIDS,
    GridDef,
    JobSpec,
    SweepError,
    expand_grid,
    grid_digest,
    result_from_dict,
    result_to_dict,
    run_job,
    spec_from_call,
    sweep_grid_names,
    workload_from_spec,
    workload_to_spec,
)

__all__ = [
    "FailedJob",
    "GridDef",
    "JobSpec",
    "MANIFEST_NAME",
    "Manifest",
    "ProgressEvent",
    "ProgressPrinter",
    "SUMMARY_NAME",
    "SWEEP_DISTS",
    "SWEEP_GRIDS",
    "SweepError",
    "SweepReport",
    "SweepStats",
    "build_summary",
    "default_workers",
    "execute_job",
    "expand_grid",
    "grid_digest",
    "parallel_experiment",
    "result_from_dict",
    "result_to_dict",
    "run_job",
    "run_named_sweep",
    "run_sweep",
    "spec_from_call",
    "sweep_grid_names",
    "workload_from_spec",
    "workload_to_spec",
]
