"""Sweep-pool scaling benchmark (``benchmarks/bench_sweep.py``, matrix
kind ``sweep``).

Times one named grid through the sweep engine twice — serial
(``workers=1``, inline) and pooled (``workers=4`` by default) — checks
the aggregated experiment outputs are byte-identical, and reports the
pool's phase overheads (worker spawn, spec dispatch, result drain) next
to the wall clocks.  The report is written to ``BENCH_sweep.json`` at
the repo root so the orchestration-scaling trajectory is tracked across
changes, and the same dict is what a ``kind: sweep`` matrix cell
returns, gated by the ``sweep-scaling`` check.

The speedup bound is hardware-conditional, because the recorded numbers
must gate meaningfully on both a 4-core CI runner and a 1-core dev
container:

* with >= 4 effective workers on >= 4 CPUs, the pool must beat serial
  by at least 2.0x;
* when the executor clamp shrinks the pool to a single worker (1-core
  box), the pool must stay within 5% of serial (>= 0.95x) — the bound
  that catches per-job process overhead creeping back in;
* in between (2-3 effective workers) the pool must at least not lose
  to serial (>= 1.0x).

``outputs_identical`` is unconditional: parallelism must never change
results.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

from repro.sweep.report import run_named_sweep

#: Default report location (committed at the repo root).
BENCH_PATH = "BENCH_sweep.json"

#: Pool-vs-serial floors, keyed by the hardware tier (see module doc).
MIN_SPEEDUP_AT_4 = 2.0
MIN_SPEEDUP_SMALL = 1.0
MIN_SPEEDUP_POOL_OF_1 = 0.95


def run_sweep_bench(
    grid: str = "fig5",
    dist: Optional[str] = "zipf-80-20",
    quick: bool = True,
    workers: int = 4,
    seed: int = 0,
    start_method: Optional[str] = None,
) -> Dict:
    """Time ``grid`` serial vs pooled; returns the report dict."""
    dist = dist if grid == "fig5" else None
    outputs = {}
    summaries = {}
    for n in (1, workers):
        report = run_named_sweep(
            grid,
            workers=n,
            quick=quick,
            seed=seed,
            dist=dist,
            progress=None,
            start_method=start_method,
        )
        outputs[n] = report.output.rendered
        summaries[n] = report.summary
    serial, pool = summaries[1], summaries[workers]
    identical = outputs[1] == outputs[workers]
    speedup = (
        round(serial["wall_clock_s"] / pool["wall_clock_s"], 3)
        if pool["wall_clock_s"]
        else None
    )
    return {
        "benchmark": "sweep-pool-scaling",
        "grid": serial["experiment"],
        "quick": quick,
        "seed": seed,
        "jobs": serial["jobs"],
        "cpu_count": os.cpu_count(),
        "outputs_identical": identical,
        "serial": {
            "workers": 1,
            "wall_clock_s": serial["wall_clock_s"],
            "job_wall_s": serial["job_wall_s"],
        },
        "pool": {
            "workers_requested": pool["workers_requested"],
            "workers_effective": pool["workers_effective"],
            "pool_mode": pool["pool_mode"],
            "wall_clock_s": pool["wall_clock_s"],
            "job_wall_s": pool["job_wall_s"],
            "overhead_s": dict(pool["pool_overhead_s"]),
            "worker_recycles": pool["worker_recycles"],
        },
        "speedup_pool_vs_serial": speedup,
    }


def speedup_floor(workers_effective: int, cpu_count: int) -> float:
    """The gate's minimum pool-vs-serial speedup for this hardware."""
    if workers_effective >= 4 and cpu_count >= 4:
        return MIN_SPEEDUP_AT_4
    if workers_effective <= 1:
        return MIN_SPEEDUP_POOL_OF_1
    return MIN_SPEEDUP_SMALL


def check_sweep_report(report: Dict) -> List[str]:
    """The scaling gate; returns violations (empty = pass)."""
    problems: List[str] = []
    if not report.get("outputs_identical"):
        problems.append(
            "pooled sweep output differs from the serial run — "
            "parallelism changed results"
        )
    speedup = report.get("speedup_pool_vs_serial")
    pool = report.get("pool", {})
    effective = int(pool.get("workers_effective", 0))
    cpus = int(report.get("cpu_count") or 1)
    floor = speedup_floor(effective, cpus)
    if speedup is None or speedup < floor:
        problems.append(
            "pool speedup %s below the %.2fx floor for %d effective "
            "worker(s) on %d CPU(s)"
            % (
                "%.3fx" % speedup if speedup is not None else "n/a",
                floor,
                effective,
                cpus,
            )
        )
    return problems


def render_sweep_bench(report: Dict) -> str:
    """One-paragraph human summary."""
    pool = report["pool"]
    overhead = pool["overhead_s"]
    return (
        "sweep-pool scaling on %s (%d jobs, %s CPUs):\n"
        "  serial  (inline):      %8.2fs wall\n"
        "  pool    (%d/%d %s):  %8.2fs wall  -> %.2fx\n"
        "  pool overhead: spawn %.3fs, dispatch %.3fs, drain %.3fs, "
        "%d recycle(s)\n"
        "  outputs identical: %s"
        % (
            report["grid"],
            report["jobs"],
            report["cpu_count"],
            report["serial"]["wall_clock_s"],
            pool["workers_effective"],
            pool["workers_requested"],
            pool["pool_mode"],
            pool["wall_clock_s"],
            report["speedup_pool_vs_serial"] or 0.0,
            overhead["spawn"],
            overhead["dispatch"],
            overhead["drain"],
            pool["worker_recycles"],
            report["outputs_identical"],
        )
    )


def write_sweep_report(report: Dict, path: str = BENCH_PATH) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
