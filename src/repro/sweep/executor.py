"""Parallel job execution for experiment sweeps.

Each job runs in its own worker process (one process per job, a pool of
at most ``workers`` concurrent slots).  Per-process isolation is what
buys the orchestration guarantees:

* a job that raises reports the exception and can be retried;
* a job whose process dies (segfault, OOM-kill, ``os._exit``) is
  detected through its exit, not by poisoning a shared pool;
* a job that exceeds its wall-clock ``timeout`` is terminated cleanly.

Results travel back over a per-job pipe as plain dicts (see
:func:`repro.sweep.spec.result_to_dict`), so the parent never unpickles
arbitrary objects from a half-dead child.

Determinism: a job's behavior is fully determined by its
:class:`~repro.sweep.spec.JobSpec` (the workload seed is part of the
spec), so scheduling order, worker count, and retries cannot change any
result — only wall-clock time.
"""

from __future__ import annotations

import collections
import dataclasses
import multiprocessing
import multiprocessing.connection
import os
import random
import time
from typing import Callable, Dict, List, Optional, Sequence

from repro.sweep.manifest import Manifest
from repro.sweep.spec import JobSpec, result_to_dict, run_job
from repro.testkit.failpoints import failpoint

#: How long the parent sleeps waiting for worker messages, seconds.
_POLL_INTERVAL = 0.05


def execute_job(spec_dict: Dict) -> Dict:
    """Default job runner: rebuild the spec, simulate, serialize.

    Runs inside the worker process.  The simulator draws randomness only
    from the workload's own seeded generator; the global ``random`` seed
    below is defense-in-depth so a policy that ever reached for ambient
    randomness would still be deterministic per job.
    """
    spec = JobSpec.from_dict(spec_dict)
    failpoint("sweep.executor.pre_job", spec=spec)
    random.seed(int(spec.digest(), 16))
    payload = result_to_dict(run_job(spec))
    failpoint("sweep.executor.post_job", spec=spec, payload=payload)
    return payload


class ObsJobRunner:
    """A job runner that also records each job's observability rows.

    Mirrors :func:`execute_job` but threads a per-job JSONL file
    (``<metrics_dir>/<digest>.jsonl``) through
    :func:`~repro.sweep.spec.run_job` — per-job files because jobs run
    in separate processes that cannot share one append stream.  The
    report layer merges them into the sweep's ``metrics.jsonl`` in spec
    order after the sweep finishes.

    A plain picklable class (not a closure) so it survives the spawn
    start method as well as fork.
    """

    def __init__(
        self, metrics_dir: str, sample_interval: Optional[int] = None
    ) -> None:
        self.metrics_dir = str(metrics_dir)
        self.sample_interval = sample_interval

    def job_metrics_path(self, digest: str) -> str:
        return os.path.join(self.metrics_dir, "%s.jsonl" % digest)

    def __call__(self, spec_dict: Dict) -> Dict:
        spec = JobSpec.from_dict(spec_dict)
        failpoint("sweep.executor.pre_job", spec=spec)
        random.seed(int(spec.digest(), 16))
        payload = result_to_dict(
            run_job(
                spec,
                observe=self.job_metrics_path(spec.digest()),
                sample_interval=self.sample_interval,
            )
        )
        failpoint("sweep.executor.post_job", spec=spec, payload=payload)
        return payload


def _worker_entry(job_runner: Callable, spec_dict: Dict, conn) -> None:
    """Worker process body: run one job, send one message, exit."""
    try:
        payload = job_runner(spec_dict)
    except BaseException as exc:  # report crashes of any stripe
        try:
            conn.send(("error", "%s: %s" % (type(exc).__name__, exc)))
        except Exception:
            pass
    else:
        try:
            conn.send(("ok", payload))
        except Exception:
            pass
    finally:
        conn.close()


@dataclasses.dataclass(frozen=True)
class FailedJob:
    """A job that exhausted its retries."""

    digest: str
    label: str
    attempts: int
    error: str


@dataclasses.dataclass(frozen=True)
class ProgressEvent:
    """Snapshot passed to the ``progress`` callback after every job."""

    done: int
    skipped: int
    failed: int
    total: int
    elapsed: float
    eta: Optional[float]
    label: str
    status: str  # "done" | "skipped" | "retry" | "failed"


@dataclasses.dataclass
class SweepStats:
    """Outcome accounting for one :func:`run_sweep` call."""

    total: int = 0
    executed: int = 0
    skipped: int = 0
    failed: List[FailedJob] = dataclasses.field(default_factory=list)
    wall_seconds: float = 0.0
    job_seconds: float = 0.0
    skipped_job_seconds: float = 0.0
    #: Effective concurrency the sweep ran with.
    workers: int = 1
    #: The pre-clamp request (:func:`repro.sweep.report
    #: .parallel_experiment` records it; plain :func:`run_sweep` honors
    #: ``workers`` literally so the two are then equal).
    workers_requested: int = 1

    @property
    def speedup_vs_serial(self) -> float:
        """Sum of per-job wall time over sweep wall time — what a
        one-at-a-time run of the executed jobs would have cost."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.job_seconds / self.wall_seconds


@dataclasses.dataclass
class _Running:
    spec: JobSpec
    attempt: int
    proc: multiprocessing.Process
    conn: "multiprocessing.connection.Connection"
    started: float


def run_sweep(
    specs: Sequence[JobSpec],
    workers: int = 1,
    manifest: Optional[Manifest] = None,
    timeout: Optional[float] = None,
    retries: int = 1,
    job_runner: Callable[[Dict], Dict] = execute_job,
    progress: Optional[Callable[[ProgressEvent], None]] = None,
) -> "tuple[Dict[str, Dict], SweepStats]":
    """Run a job grid, return ``(results_by_digest, stats)``.

    Args:
        specs: The grid; duplicate digests are collapsed.
        workers: Concurrent worker processes, honored literally —
            callers wanting per-process isolation (crash containment,
            timeouts) get it even on a single-CPU machine.  The
            CPU-count clamp that protects interactive sweeps from
            oversubscription lives one layer up, in
            :func:`repro.sweep.report.parallel_experiment`.  ``<= 1``
            runs jobs inline in this process (no fork overhead;
            ``timeout`` is then not enforced, since there is no process
            to kill).
        manifest: Optional journal.  Jobs already recorded in it are
            skipped and their stored results returned; newly finished
            jobs are appended, so a killed sweep resumes where it died.
        timeout: Per-job wall-clock limit in seconds; an overrunning
            worker is terminated and the attempt counts as a failure.
        retries: Additional attempts after a failed first one.  A job
            still failing after ``1 + retries`` attempts lands in
            ``stats.failed`` (the sweep itself keeps going).
        job_runner: The function executed in the worker; tests inject
            misbehaving runners to exercise the failure paths.
        progress: Callback invoked after every skip/finish/retry/failure.
    """
    start = time.perf_counter()
    workers = max(1, workers)
    stats = SweepStats(workers=workers, workers_requested=workers)

    unique: Dict[str, JobSpec] = {}
    for spec in specs:
        unique.setdefault(spec.digest(), spec)
    stats.total = len(unique)

    results: Dict[str, Dict] = {}
    done_records = manifest.completed() if manifest is not None else {}

    def emit(label: str, status: str) -> None:
        if progress is None:
            return
        elapsed = time.perf_counter() - start
        remaining = stats.total - stats.skipped - stats.executed - len(stats.failed)
        eta = None
        if stats.executed > 0 and remaining > 0:
            per_job = elapsed / stats.executed
            eta = per_job * remaining / max(1, workers)
        progress(
            ProgressEvent(
                done=stats.executed,
                skipped=stats.skipped,
                failed=len(stats.failed),
                total=stats.total,
                elapsed=elapsed,
                eta=eta,
                label=label,
                status=status,
            )
        )

    pending: "collections.deque[tuple[JobSpec, int]]" = collections.deque()
    for digest, spec in unique.items():
        record = done_records.get(digest)
        if record is not None:
            results[digest] = record["result"]
            stats.skipped += 1
            stats.skipped_job_seconds += record.get("elapsed", 0.0)
            emit(spec.label, "skipped")
        else:
            pending.append((spec, 1))

    def finish_ok(spec: JobSpec, attempt: int, payload: Dict, took: float) -> None:
        digest = spec.digest()
        failpoint("sweep.executor.pre_record", spec=spec, digest=digest)
        results[digest] = payload
        stats.executed += 1
        stats.job_seconds += took
        if manifest is not None:
            manifest.record(
                digest=digest,
                label=spec.label,
                result=payload,
                elapsed=took,
                attempts=attempt,
            )
        emit(spec.label, "done")

    def finish_failure(spec: JobSpec, attempt: int, error: str) -> bool:
        """Requeue if attempts remain; returns True when requeued."""
        if attempt <= retries:
            pending.append((spec, attempt + 1))
            emit(spec.label, "retry")
            return True
        stats.failed.append(
            FailedJob(
                digest=spec.digest(),
                label=spec.label,
                attempts=attempt,
                error=error,
            )
        )
        emit(spec.label, "failed")
        return False

    if workers <= 1:
        while pending:
            spec, attempt = pending.popleft()
            t0 = time.perf_counter()
            try:
                payload = job_runner(spec.to_dict())
            except Exception as exc:
                finish_failure(spec, attempt, "%s: %s" % (type(exc).__name__, exc))
            else:
                finish_ok(spec, attempt, payload, time.perf_counter() - t0)
        stats.wall_seconds = time.perf_counter() - start
        return results, stats

    ctx = multiprocessing.get_context()
    running: Dict[str, _Running] = {}
    try:
        while pending or running:
            while pending and len(running) < workers:
                spec, attempt = pending.popleft()
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                proc = ctx.Process(
                    target=_worker_entry,
                    args=(job_runner, spec.to_dict(), child_conn),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                running[spec.digest()] = _Running(
                    spec=spec,
                    attempt=attempt,
                    proc=proc,
                    conn=parent_conn,
                    started=time.perf_counter(),
                )

            waitables = [r.conn for r in running.values()]
            waitables += [r.proc.sentinel for r in running.values()]
            multiprocessing.connection.wait(waitables, timeout=_POLL_INTERVAL)

            now = time.perf_counter()
            for digest in list(running):
                r = running[digest]
                outcome = None
                crashed = False
                if r.conn.poll():
                    try:
                        outcome = r.conn.recv()
                    except EOFError:
                        crashed = True
                elif not r.proc.is_alive():
                    crashed = True
                elif timeout is not None and now - r.started > timeout:
                    _terminate(r.proc)
                    outcome = (
                        "error",
                        "timeout: exceeded %.1fs wall clock" % timeout,
                    )
                else:
                    continue

                del running[digest]
                r.conn.close()
                r.proc.join(timeout=5)
                if crashed:
                    outcome = (
                        "error",
                        "worker died without reporting (exitcode %s)"
                        % (r.proc.exitcode,),
                    )
                status, payload = outcome
                took = now - r.started
                if status == "ok":
                    finish_ok(r.spec, r.attempt, payload, took)
                else:
                    finish_failure(r.spec, r.attempt, payload)
    finally:
        for r in running.values():
            _terminate(r.proc)
            r.conn.close()

    stats.wall_seconds = time.perf_counter() - start
    return results, stats


def _terminate(proc: multiprocessing.Process) -> None:
    """Terminate, escalating to SIGKILL if the worker ignores SIGTERM."""
    if not proc.is_alive():
        return
    proc.terminate()
    proc.join(timeout=2)
    if proc.is_alive():
        proc.kill()
        proc.join(timeout=2)


def default_workers() -> int:
    """Default worker count: the machine's CPUs (at least 1)."""
    return max(1, os.cpu_count() or 1)
