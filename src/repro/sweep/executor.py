"""Parallel job execution for experiment sweeps: a persistent worker
pool.

Workers are started **once per sweep** (forked by default; any
multiprocessing start method works, spawn pays a one-time interpreter
bootstrap per worker) and then stream jobs: the parent ships each
pre-expanded spec dict over the worker's pipe and the worker sends one
result message back.  Per job, the only thing pickled is the small spec
dict and the result payload — the job runner callable crosses the
process boundary exactly once per worker, at start — which is what
removed the fork-per-job overhead that made 4-worker sweeps run slower
than serial.

Supervision lives entirely in the parent (pool level):

* a job that raises reports the exception over the pipe and can be
  retried on any worker;
* a worker that dies mid-job (segfault, OOM-kill, ``os._exit``) is
  detected through its process sentinel; the job is retried and the
  worker is **recycled** — a fresh replacement is started, so one crash
  never poisons the pool;
* a job that exceeds its wall-clock ``timeout`` gets its worker killed
  (the only way to preempt a stuck simulation) and recycled the same
  way.

Results travel back as plain dicts (see
:func:`repro.sweep.spec.result_to_dict`), so the parent never unpickles
arbitrary objects from a half-dead child.

Determinism: a job's behavior is fully determined by its
:class:`~repro.sweep.spec.JobSpec` (the workload seed is part of the
spec), so scheduling order, worker count, pool start method, and
retries cannot change any result — only wall-clock time.  The
determinism suite asserts sweeps are byte-identical across ``workers=1``,
a fork pool, and a spawn pool.
"""

from __future__ import annotations

import collections
import dataclasses
import multiprocessing
import multiprocessing.connection
import os
import random
import time
from typing import Callable, Dict, List, Optional, Sequence

from repro.sweep.manifest import Manifest
from repro.sweep.spec import JobSpec, result_to_dict, run_job
from repro.testkit.failpoints import failpoint

#: How long the parent sleeps waiting for worker messages, seconds.
_POLL_INTERVAL = 0.05

#: Worker-bound message telling the worker to exit its job loop.
_SHUTDOWN = None


def execute_job(spec_dict: Dict) -> Dict:
    """Default job runner: rebuild the spec, simulate, serialize.

    Runs inside the worker process.  The simulator draws randomness only
    from the workload's own seeded generator; the global ``random`` seed
    below is defense-in-depth so a policy that ever reached for ambient
    randomness would still be deterministic per job.
    """
    spec = JobSpec.from_dict(spec_dict)
    failpoint("sweep.executor.pre_job", spec=spec)
    random.seed(int(spec.digest(), 16))
    payload = result_to_dict(run_job(spec))
    failpoint("sweep.executor.post_job", spec=spec, payload=payload)
    return payload


class ObsJobRunner:
    """A job runner that also records each job's observability rows.

    Mirrors :func:`execute_job` but threads a per-job JSONL file
    (``<metrics_dir>/<digest>.jsonl``) through
    :func:`~repro.sweep.spec.run_job` — per-job files because jobs run
    in separate processes that cannot share one append stream.  The
    report layer merges them into the sweep's ``metrics.jsonl`` in spec
    order after the sweep finishes.

    A plain picklable class (not a closure) so it survives the spawn
    start method as well as fork.
    """

    def __init__(
        self, metrics_dir: str, sample_interval: Optional[int] = None
    ) -> None:
        self.metrics_dir = str(metrics_dir)
        self.sample_interval = sample_interval

    def job_metrics_path(self, digest: str) -> str:
        return os.path.join(self.metrics_dir, "%s.jsonl" % digest)

    def __call__(self, spec_dict: Dict) -> Dict:
        spec = JobSpec.from_dict(spec_dict)
        failpoint("sweep.executor.pre_job", spec=spec)
        random.seed(int(spec.digest(), 16))
        payload = result_to_dict(
            run_job(
                spec,
                observe=self.job_metrics_path(spec.digest()),
                sample_interval=self.sample_interval,
            )
        )
        failpoint("sweep.executor.post_job", spec=spec, payload=payload)
        return payload


def _pool_worker_main(job_runner: Callable, conn) -> None:
    """Worker process body: receive specs, run them, reply, repeat.

    The runner arrives once, through the process arguments; each loop
    iteration moves only one spec dict in and one result message out.
    A ``None`` message is the shutdown signal.
    """
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message is _SHUTDOWN or message is None:
                break
            job_id, spec_dict = message
            try:
                payload = job_runner(spec_dict)
                outcome = (job_id, "ok", payload)
            except BaseException as exc:  # report failures of any stripe
                outcome = (job_id, "error", "%s: %s" % (type(exc).__name__, exc))
            try:
                conn.send(outcome)
            except Exception:
                break
    finally:
        try:
            conn.close()
        except Exception:
            pass


@dataclasses.dataclass(frozen=True)
class FailedJob:
    """A job that exhausted its retries."""

    digest: str
    label: str
    attempts: int
    error: str


@dataclasses.dataclass(frozen=True)
class ProgressEvent:
    """Snapshot passed to the ``progress`` callback after every job."""

    done: int
    skipped: int
    failed: int
    total: int
    elapsed: float
    eta: Optional[float]
    label: str
    status: str  # "done" | "skipped" | "retry" | "failed"


@dataclasses.dataclass
class SweepStats:
    """Outcome accounting for one :func:`run_sweep` call."""

    total: int = 0
    executed: int = 0
    skipped: int = 0
    failed: List[FailedJob] = dataclasses.field(default_factory=list)
    wall_seconds: float = 0.0
    job_seconds: float = 0.0
    skipped_job_seconds: float = 0.0
    #: Effective concurrency the sweep ran with, after the executor
    #: clamp (never more workers than runnable jobs or CPUs).
    workers: int = 1
    #: The caller's pre-clamp request.
    workers_requested: int = 1
    #: ``"inline"`` (workers<=1, no processes) or the multiprocessing
    #: start method of the pool (``"fork"`` / ``"spawn"`` /
    #: ``"forkserver"``).
    pool_mode: str = "inline"
    #: Wall time spent starting (and recycling) worker processes.
    spawn_seconds: float = 0.0
    #: Wall time the parent spent shipping specs to workers.
    dispatch_seconds: float = 0.0
    #: Wall time the parent spent receiving result messages.
    drain_seconds: float = 0.0
    #: Workers replaced after a crash or a timeout kill.
    worker_recycles: int = 0

    @property
    def workers_effective(self) -> int:
        """Alias for :attr:`workers` (the post-clamp pool size)."""
        return self.workers

    @property
    def speedup_vs_serial(self) -> float:
        """Sum of per-job wall time over sweep wall time — what a
        one-at-a-time run of the executed jobs would have cost."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.job_seconds / self.wall_seconds


class _PoolWorker:
    """Parent-side handle of one pool worker."""

    __slots__ = ("proc", "conn", "spec", "attempt", "started", "span")

    def __init__(self, proc, conn) -> None:
        self.proc = proc
        self.conn = conn
        #: The job currently on this worker (None = idle).
        self.spec: Optional[JobSpec] = None
        self.attempt = 0
        self.started = 0.0
        #: Parent-side dispatch span for the in-flight job, if traced.
        self.span = None

    @property
    def busy(self) -> bool:
        return self.spec is not None


def run_sweep(
    specs: Sequence[JobSpec],
    workers: int = 1,
    manifest: Optional[Manifest] = None,
    timeout: Optional[float] = None,
    retries: int = 1,
    job_runner: Callable[[Dict], Dict] = execute_job,
    progress: Optional[Callable[[ProgressEvent], None]] = None,
    start_method: Optional[str] = None,
    tracer=None,
) -> "tuple[Dict[str, Dict], SweepStats]":
    """Run a job grid, return ``(results_by_digest, stats)``.

    Args:
        specs: The grid; duplicate digests are collapsed.
        workers: Requested concurrency.  The executor clamps the pool to
            ``min(workers, runnable jobs, cpu_count)`` — extra workers
            past either bound only add scheduling overhead — and records
            both the request and the effective size in the stats (and
            the manifest's run record).  Any request ``> 1`` still buys
            per-process isolation: even when the clamp shrinks the pool
            to one, jobs run in a worker process with crash containment
            and timeouts.  ``<= 1`` runs jobs inline in this process (no
            process overhead; ``timeout`` is then not enforced, since
            there is no process to kill).
        manifest: Optional journal.  Jobs already recorded in it are
            skipped and their stored results returned; newly finished
            jobs are appended, so a killed sweep resumes where it died.
            A ``run`` record with the pool configuration and phase
            overheads is appended when the sweep completes.
        timeout: Per-job wall-clock limit in seconds; an overrunning
            worker is killed (and recycled) and the attempt counts as a
            failure.
        retries: Additional attempts after a failed first one.  A job
            still failing after ``1 + retries`` attempts lands in
            ``stats.failed`` (the sweep itself keeps going).
        job_runner: The callable executed in the workers.  Shipped to
            each worker once, at pool start — it must be picklable (a
            module-level function, ``functools.partial`` of one, or a
            picklable class instance; never a closure).  Tests inject
            misbehaving runners to exercise the failure paths.
        progress: Callback invoked after every skip/finish/retry/failure.
        start_method: Multiprocessing start method for the pool
            (``"fork"``, ``"spawn"``, ``"forkserver"``); None uses the
            platform default.  Results are identical either way — only
            the bootstrap cost differs.
        tracer: Optional :class:`repro.obs.Tracer`.  The parent records
            one detached ``sweep.run`` root span plus a ``sweep.job``
            span per dispatch (covering ship-to-worker through
            result-drained, i.e. job wall time as the parent sees it).
            Jobs run in other processes, so the spans are parent-side
            and detached from the tracer's span stack — overlapping
            jobs cannot nest.
    """
    start = time.perf_counter()
    requested = max(1, workers)
    stats = SweepStats(workers=requested, workers_requested=requested)
    sweep_root = (
        tracer.start("sweep.run", parent=None, workers=requested)
        if tracer is not None
        else None
    )

    def job_span(spec: JobSpec, attempt: int):
        if tracer is None:
            return None
        return tracer.start(
            "sweep.job", parent=sweep_root, label=spec.label, attempt=attempt
        )

    def finish_span(span, status: str) -> None:
        if span is not None:
            tracer.finish(span, status=status)

    unique: Dict[str, JobSpec] = {}
    for spec in specs:
        unique.setdefault(spec.digest(), spec)
    stats.total = len(unique)

    results: Dict[str, Dict] = {}
    done_records = manifest.completed() if manifest is not None else {}

    def emit(label: str, status: str) -> None:
        if progress is None:
            return
        elapsed = time.perf_counter() - start
        remaining = stats.total - stats.skipped - stats.executed - len(stats.failed)
        eta = None
        if stats.executed > 0 and remaining > 0:
            per_job = elapsed / stats.executed
            eta = per_job * remaining / max(1, stats.workers)
        progress(
            ProgressEvent(
                done=stats.executed,
                skipped=stats.skipped,
                failed=len(stats.failed),
                total=stats.total,
                elapsed=elapsed,
                eta=eta,
                label=label,
                status=status,
            )
        )

    pending: "collections.deque[tuple[JobSpec, int]]" = collections.deque()
    for digest, spec in unique.items():
        record = done_records.get(digest)
        if record is not None:
            results[digest] = record["result"]
            stats.skipped += 1
            stats.skipped_job_seconds += record.get("elapsed", 0.0)
            emit(spec.label, "skipped")
        else:
            pending.append((spec, 1))

    def finish_ok(spec: JobSpec, attempt: int, payload: Dict, took: float) -> None:
        digest = spec.digest()
        failpoint("sweep.executor.pre_record", spec=spec, digest=digest)
        results[digest] = payload
        stats.executed += 1
        stats.job_seconds += took
        if manifest is not None:
            manifest.record(
                digest=digest,
                label=spec.label,
                result=payload,
                elapsed=took,
                attempts=attempt,
            )
        emit(spec.label, "done")

    def finish_failure(spec: JobSpec, attempt: int, error: str) -> bool:
        """Requeue if attempts remain; returns True when requeued."""
        if attempt <= retries:
            pending.append((spec, attempt + 1))
            emit(spec.label, "retry")
            return True
        stats.failed.append(
            FailedJob(
                digest=spec.digest(),
                label=spec.label,
                attempts=attempt,
                error=error,
            )
        )
        emit(spec.label, "failed")
        return False

    if requested <= 1 or not pending:
        # Inline execution: no pool, no isolation, no timeout.
        stats.workers = 1 if requested <= 1 else 0
        while pending:
            spec, attempt = pending.popleft()
            span = job_span(spec, attempt)
            t0 = time.perf_counter()
            try:
                payload = job_runner(spec.to_dict())
            except Exception as exc:
                finish_span(span, "error")
                finish_failure(spec, attempt, "%s: %s" % (type(exc).__name__, exc))
            else:
                finish_span(span, "ok")
                finish_ok(spec, attempt, payload, time.perf_counter() - t0)
        stats.wall_seconds = time.perf_counter() - start
        if sweep_root is not None:
            tracer.finish(sweep_root, executed=stats.executed)
        _record_run(manifest, stats)
        return results, stats

    # ------------------------------------------------------------------
    # Pool execution
    # ------------------------------------------------------------------
    ctx = multiprocessing.get_context(start_method)
    stats.pool_mode = ctx.get_start_method()
    # Executor-layer clamp: never more workers than runnable jobs or
    # CPUs (a request > 1 keeps process isolation even when clamped to
    # a single worker).
    pool_size = max(1, min(requested, len(pending), default_workers()))
    stats.workers = pool_size

    def spawn_worker() -> _PoolWorker:
        t0 = time.perf_counter()
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        # Not daemonic: a job may legitimately spawn its own pool (the
        # sweep-scaling bench runs as a matrix cell inside a worker),
        # and daemonic processes cannot have children.  An orphaned
        # worker still exits on its own — losing the parent closes the
        # pipe and the worker's recv sees EOF.
        proc = ctx.Process(
            target=_pool_worker_main,
            args=(job_runner, child_conn),
        )
        proc.start()
        child_conn.close()
        stats.spawn_seconds += time.perf_counter() - t0
        return _PoolWorker(proc, parent_conn)

    def dispatch(worker: _PoolWorker) -> None:
        spec, attempt = pending.popleft()
        t0 = time.perf_counter()
        worker.conn.send((spec.digest(), spec.to_dict()))
        stats.dispatch_seconds += time.perf_counter() - t0
        worker.spec = spec
        worker.attempt = attempt
        worker.started = t0
        worker.span = job_span(spec, attempt)

    def recycle(worker: _PoolWorker, pool: List[_PoolWorker]) -> None:
        """Replace a dead/killed worker if there is still work for it."""
        _terminate(worker.proc)
        try:
            worker.conn.close()
        except Exception:
            pass
        pool.remove(worker)
        if pending:
            stats.worker_recycles += 1
            pool.append(spawn_worker())

    pool: List[_PoolWorker] = [spawn_worker() for _ in range(pool_size)]
    try:
        while pending or any(w.busy for w in pool):
            for worker in pool:
                if pending and not worker.busy:
                    dispatch(worker)

            waitables = [w.conn for w in pool if w.busy]
            waitables += [w.proc.sentinel for w in pool]
            if not waitables:
                continue
            # Block until a result or a worker death wakes us — polling
            # would steal CPU from the workers (measurable on a one-core
            # box).  Only an armed per-job timeout needs a deadline, and
            # then exactly the earliest one.
            if timeout is None:
                wait_timeout = None
            else:
                started = [w.started for w in pool if w.busy]
                wait_timeout = (
                    max(0.0, min(started) + timeout - time.perf_counter())
                    + 0.01
                    if started
                    else _POLL_INTERVAL
                )
            multiprocessing.connection.wait(waitables, timeout=wait_timeout)

            now = time.perf_counter()
            for worker in list(pool):
                if not worker.busy:
                    if not worker.proc.is_alive():
                        # A worker died between jobs (startup failure or
                        # an exit after replying); replace it if needed.
                        recycle(worker, pool)
                    continue
                outcome = None
                crashed = False
                if worker.conn.poll():
                    t0 = time.perf_counter()
                    try:
                        outcome = worker.conn.recv()
                    except EOFError:
                        crashed = True
                    stats.drain_seconds += time.perf_counter() - t0
                elif not worker.proc.is_alive():
                    crashed = True
                elif timeout is not None and now - worker.started > timeout:
                    spec, attempt = worker.spec, worker.attempt
                    worker.spec = None
                    finish_span(worker.span, "timeout")
                    worker.span = None
                    # Requeue (finish_failure) BEFORE the recycle
                    # decision, so the replacement worker is spawned
                    # when the retry is the only work left.
                    finish_failure(
                        spec,
                        attempt,
                        "timeout: exceeded %.1fs wall clock" % timeout,
                    )
                    recycle(worker, pool)
                    continue
                else:
                    continue

                spec, attempt = worker.spec, worker.attempt
                took = now - worker.started
                if crashed:
                    worker.spec = None
                    finish_span(worker.span, "crashed")
                    worker.span = None
                    finish_failure(
                        spec,
                        attempt,
                        "worker died without reporting (exitcode %s)"
                        % (worker.proc.exitcode,),
                    )
                    recycle(worker, pool)
                    continue
                worker.spec = None
                _, status, payload = outcome
                finish_span(worker.span, status)
                worker.span = None
                if status == "ok":
                    finish_ok(spec, attempt, payload, took)
                else:
                    finish_failure(spec, attempt, payload)
    finally:
        for worker in pool:
            try:
                worker.conn.send(_SHUTDOWN)
            except Exception:
                pass
        deadline = time.monotonic() + 5.0
        for worker in pool:
            worker.proc.join(timeout=max(0.0, deadline - time.monotonic()))
            _terminate(worker.proc)
            try:
                worker.conn.close()
            except Exception:
                pass

    stats.wall_seconds = time.perf_counter() - start
    if sweep_root is not None:
        tracer.finish(sweep_root, executed=stats.executed)
    _record_run(manifest, stats)
    return results, stats


def _record_run(manifest: Optional[Manifest], stats: SweepStats) -> None:
    """Append the sweep's pool configuration to the manifest."""
    if manifest is None:
        return
    manifest.record_run(
        {
            "workers_requested": stats.workers_requested,
            "workers_effective": stats.workers,
            "pool_mode": stats.pool_mode,
            "cpu_count": os.cpu_count(),
            "executed": stats.executed,
            "skipped": stats.skipped,
            "failed": len(stats.failed),
            "wall_s": round(stats.wall_seconds, 6),
            "job_wall_s": round(stats.job_seconds, 6),
            "spawn_s": round(stats.spawn_seconds, 6),
            "dispatch_s": round(stats.dispatch_seconds, 6),
            "drain_s": round(stats.drain_seconds, 6),
            "worker_recycles": stats.worker_recycles,
        }
    )


def _terminate(proc: multiprocessing.process.BaseProcess) -> None:
    """Terminate, escalating to SIGKILL if the worker ignores SIGTERM."""
    if not proc.is_alive():
        return
    proc.terminate()
    proc.join(timeout=2)
    if proc.is_alive():
        proc.kill()
        proc.join(timeout=2)


def default_workers() -> int:
    """Default worker count: the machine's CPUs (at least 1)."""
    return max(1, os.cpu_count() or 1)
