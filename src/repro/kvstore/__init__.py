"""Log-structured key-value store: the paper's value-log use case."""

from repro.kvstore.kv import KVError, LogStructuredKVStore

__all__ = ["KVError", "LogStructuredKVStore"]
