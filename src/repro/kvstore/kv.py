"""A log-structured key-value store (value-log design).

The paper motivates MDC with "the key-value separation design [5, 14,
16] for LSM-trees", where values live in an append-only *value log* and
"cleaning is often the new bottleneck".  This module is that
application, built on the repository's own substrate:

* values are variable-size records appended to the log-structured store
  (one store page per key, re-pointed on every update — exercising the
  Section 4.4 variable-size machinery);
* an in-memory key index maps keys to record slots (the LSM index /
  hash-table of the cited designs, abstracted);
* deletes are TRIMs: the record's space becomes reclaimable immediately;
* space reclamation is whatever cleaning policy the store was built
  with — so the paper's headline applies directly: run it with ``mdc``
  and the value-log GC cost drops.

Like the rest of the simulator, record *contents* are kept in RAM (the
store tracks ids and sizes); the I/O economics — placement, relocation,
write amplification — are exact.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.policies import make_policy
from repro.policies.base import CleaningPolicy
from repro.store import LogStructuredStore, StoreConfig

Key = Union[str, bytes, int, Tuple]


class KVError(Exception):
    """Key-value layer errors (oversized values, bad keys)."""


class LogStructuredKVStore:
    """A key-value store whose value log is cleaned by a pluggable
    policy.

    Args:
        config: Geometry of the simulated value-log device.  One unit =
            ``unit_bytes`` of value payload.
        policy: Cleaning policy name or instance (default ``"mdc"``).
        unit_bytes: Bytes per storage unit; values are rounded up to
            whole units (the slotted-record granularity).

    Example:
        >>> kv = LogStructuredKVStore(StoreConfig(n_segments=64,
        ...     segment_units=32, fill_factor=0.5, clean_trigger=2,
        ...     clean_batch=4), policy="mdc", unit_bytes=16)
        >>> kv.put("user:1", b"alice")
        >>> kv.get("user:1")
        b'alice'
    """

    def __init__(
        self,
        config: StoreConfig,
        policy: Union[str, CleaningPolicy] = "mdc",
        unit_bytes: int = 64,
    ) -> None:
        if unit_bytes < 1:
            raise KVError("unit_bytes must be positive")
        if isinstance(policy, str):
            policy = make_policy(policy)
        self.unit_bytes = unit_bytes
        self.store = LogStructuredStore(config, policy)
        self._slot_of: Dict[Key, int] = {}
        self._values: Dict[Key, bytes] = {}
        self._free_slots: List[int] = []
        self._next_slot = 0

    # -- sizing ----------------------------------------------------------

    @property
    def max_value_bytes(self) -> int:
        """Largest storable value (one whole segment of units)."""
        return self.store.config.segment_units * self.unit_bytes

    def _units_for(self, value: bytes) -> int:
        return max(1, math.ceil(len(value) / self.unit_bytes))

    # -- CRUD -------------------------------------------------------------

    def put(self, key: Key, value: bytes) -> None:
        """Insert or overwrite; the old record's space is reclaimable
        from this moment."""
        if not isinstance(value, (bytes, bytearray)):
            raise KVError("values must be bytes, got %s" % type(value).__name__)
        units = self._units_for(bytes(value))
        if units > self.store.config.segment_units:
            raise KVError(
                "value of %d bytes exceeds the %d-byte record limit"
                % (len(value), self.max_value_bytes)
            )
        slot = self._slot_of.get(key)
        if slot is None:
            slot = self._free_slots.pop() if self._free_slots else self._next_slot
            if slot == self._next_slot:
                self._next_slot += 1
            self._slot_of[key] = slot
        self.store.write(slot, size=units)
        self._values[key] = bytes(value)

    def put_many(self, items: Iterable[Tuple[Key, bytes]]) -> int:
        """Insert or overwrite a batch of ``(key, value)`` pairs through
        the store's vectorized :meth:`~repro.store.LogStructuredStore.
        write_batch` engine; returns the number of pairs applied.

        State-identical to calling :meth:`put` once per pair, in order —
        including duplicate keys inside the batch (the last value wins,
        and every occurrence counts as a user write) and the error
        position (an invalid pair raises :class:`KVError` *after* the
        valid prefix was applied, exactly as a ``put`` loop would).
        This is the service ingest fast path: one coalesced multi-key
        batch costs one ``write_batch`` call instead of a per-key loop.
        """
        staged: List[Tuple[Key, bytes]] = []
        slots: List[int] = []
        units: List[int] = []

        def apply(count: int) -> None:
            if count:
                self.store.write_batch(
                    np.asarray(slots[:count], dtype=np.int64),
                    np.asarray(units[:count], dtype=np.int64),
                )
                for key, value in staged[:count]:
                    self._values[key] = value

        for key, value in items:
            if not isinstance(value, (bytes, bytearray)):
                apply(len(staged))
                raise KVError(
                    "values must be bytes, got %s" % type(value).__name__
                )
            value = bytes(value)
            u = self._units_for(value)
            if u > self.store.config.segment_units:
                apply(len(staged))
                raise KVError(
                    "value of %d bytes exceeds the %d-byte record limit"
                    % (len(value), self.max_value_bytes)
                )
            slot = self._slot_of.get(key)
            if slot is None:
                slot = self._free_slots.pop() if self._free_slots else self._next_slot
                if slot == self._next_slot:
                    self._next_slot += 1
                self._slot_of[key] = slot
            staged.append((key, value))
            slots.append(slot)
            units.append(u)
        apply(len(staged))
        return len(staged)

    def get(self, key: Key, default: Optional[bytes] = None) -> Optional[bytes]:
        """Fetch a value; ``default`` when the key is absent."""
        return self._values.get(key, default)

    def delete(self, key: Key) -> bool:
        """Remove a key; returns False if absent.  The record is TRIMmed
        (space freed without a rewrite)."""
        slot = self._slot_of.pop(key, None)
        if slot is None:
            return False
        self.store.trim(slot)
        self._free_slots.append(slot)
        del self._values[key]
        return True

    def __contains__(self, key: Key) -> bool:
        return key in self._slot_of

    def __len__(self) -> int:
        return len(self._slot_of)

    def keys(self) -> Iterator[Key]:
        """Iterate over live keys (insertion order)."""
        return iter(self._slot_of)

    def items(self) -> Iterator[Tuple[Key, bytes]]:
        """Iterate over live ``(key, value)`` pairs."""
        return iter(self._values.items())

    # -- introspection ------------------------------------------------------

    @property
    def write_amplification(self) -> float:
        """Value-log GC writes per user put, since creation."""
        return self.store.stats.write_amplification

    def space_report(self) -> Dict[str, float]:
        """Occupancy of the value log."""
        cfg = self.store.config
        live_units = sum(self.store.segments.live_units)
        if self.store.buffer is not None:
            live_units += self.store.buffer.used_units
        return {
            "keys": len(self._slot_of),
            "live_bytes": live_units * self.unit_bytes,
            "device_bytes": cfg.device_units * self.unit_bytes,
            "utilization": live_units / cfg.device_units,
        }

    def check_consistency(self) -> None:
        """Index, value map, and store must agree (test/debug aid)."""
        assert set(self._slot_of) == set(self._values)
        slots = list(self._slot_of.values())
        assert len(slots) == len(set(slots)), "slot double-booked"
        for key, slot in self._slot_of.items():
            seg, slot_idx = self.store.pages.location(slot)
            assert seg != -1, "live key %r has no stored record" % (key,)
            expected = self._units_for(self._values[key])
            assert self.store.pages.size[slot] == expected
        self.store.check_invariants()

    def __repr__(self) -> str:
        report = self.space_report()
        return "<LogStructuredKVStore keys=%d util=%.0f%% policy=%s>" % (
            report["keys"],
            100 * report["utilization"],
            self.store.policy.name,
        )
