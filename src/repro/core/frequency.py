"""Update-frequency estimation (paper Section 4.3 and 5.2.2).

The paper's estimator deliberately avoids per-page statistics: each
*segment* remembers the times of the last two updates that hit it
(``up1``, ``up2``), giving the two-interval estimate::

    Upf = 2 / (u_now - up2)

Pages inherit an estimate from their containing segment when they move:

* a page relocated by the cleaner carries its source segment's ``up2``;
* a page rewritten by the user carries the midpoint
  ``up2 + 0.5 * (u_now - up2)`` (the paper assumes the unobserved ``up1``
  sat midway between ``up2`` and now);
* a never-written page gets the oldest ``up2`` of the batch it is placed
  with ("pages mostly contain cold data").

The store maintains these rules inline for speed
(:meth:`repro.store.LogStructuredStore._invalidate` and friends); this
module provides the same arithmetic as standalone functions for analysis,
tests, and the oracle helpers used by the ``-opt`` policy variants.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

import numpy as np

__all__ = [
    "estimated_upf",
    "generalized_upf",
    "midpoint_carry",
    "empirical_frequencies",
    "normalize_frequencies",
]


def estimated_upf(u_now: float, up2: float) -> float:
    """Two-interval update-frequency estimate ``2 / (u_now - up2)``.

    Clamps the interval to at least one tick so a segment updated twice
    at the current instant reads as maximally hot rather than dividing
    by zero.
    """
    return 2.0 / max(1.0, u_now - up2)


def generalized_upf(n: int, u_now: float, up_n: float) -> float:
    """The ``n``-interval generalization ``Upf = n / (u_now - up_n)``.

    The paper notes this tracks slowly-changing frequencies worse as
    ``n`` grows, which is why it settles on ``n = 2``.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    return n / max(1.0, u_now - up_n)


def midpoint_carry(old_up2: float, u_now: float) -> float:
    """Carried up2 for a user-rewritten page (Section 5.2.2)."""
    return old_up2 + 0.5 * (u_now - old_up2)


def empirical_frequencies(trace: Iterable[int], n_pages: int = 0) -> np.ndarray:
    """Exact per-page update frequencies measured from a write trace.

    This is how the ``-opt`` variants "pre-analyze page update
    frequencies" for trace workloads (paper Section 6.3): frequency is
    the page's share of all writes in the trace.

    Args:
        trace: Iterable of page ids.
        n_pages: Minimum length of the returned array (grows further if
            the trace references higher page ids).

    Returns:
        Float array where entry ``p`` is ``count(p) / len(trace)``.
    """
    counts: Dict[int, int] = {}
    total = 0
    top = n_pages - 1
    for pid in trace:
        counts[pid] = counts.get(pid, 0) + 1
        if pid > top:
            top = pid
        total += 1
    freqs = np.zeros(top + 1 if top >= 0 else 0, dtype=float)
    if total == 0:
        return freqs
    for pid, count in counts.items():
        freqs[pid] = count / total
    return freqs


def normalize_frequencies(weights: Sequence[float]) -> np.ndarray:
    """Scale per-page update weights so they sum to 1 (a probability
    distribution over pages, the form the oracle expects)."""
    arr = np.asarray(weights, dtype=float)
    if arr.size == 0:
        return arr
    if np.any(arr < 0):
        raise ValueError("frequencies must be non-negative")
    total = arr.sum()
    if total == 0:
        raise ValueError("at least one page must have positive frequency")
    return arr / total
