"""The paper's primary contribution: MDC cleaning.

* :class:`MdcPolicy` — the Minimum Declining Cost policy and its
  ablation variants.
* :mod:`repro.core.priority` — the priority functions (MDC decline,
  greedy, age, cost-benefit) as pure numpy functions.
* :mod:`repro.core.frequency` — update-frequency estimation and the
  oracle helpers for the ``-opt`` variants.
* :mod:`repro.core.sorter` — frequency-sorted packing of write batches.
"""

from repro.core.frequency import (
    empirical_frequencies,
    estimated_upf,
    generalized_upf,
    midpoint_carry,
    normalize_frequencies,
)
from repro.core.mdc import ESTIMATOR_EXACT, ESTIMATOR_UP2, MdcPolicy
from repro.core.priority import (
    age_priority,
    cost_benefit_paper_priority,
    cost_benefit_priority,
    greedy_priority,
    mdc_decline,
    mdc_decline_exact,
)

__all__ = [
    "ESTIMATOR_EXACT",
    "ESTIMATOR_UP2",
    "MdcPolicy",
    "age_priority",
    "cost_benefit_paper_priority",
    "cost_benefit_priority",
    "empirical_frequencies",
    "estimated_upf",
    "generalized_upf",
    "greedy_priority",
    "mdc_decline",
    "mdc_decline_exact",
    "midpoint_carry",
    "normalize_frequencies",
]
