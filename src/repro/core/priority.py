"""Cleaning-priority functions (the heart of the paper).

All functions return arrays where **lower value = clean earlier**, so a
priority is an ascending sort key over candidate segments.  They are pure
numpy functions over column arrays, usable both by the policy classes and
directly in analysis/tests.

The paper's central result (Section 4) is the *minimum declining cost*
(MDC) order: process first the segments whose per-page cleaning cost will
decline the least if we wait.  For a segment of size ``B`` with available
space ``A``, live pages ``C`` and penultimate update time ``up2``, the
transformed decline (Section 5.1.3) is::

    -d(Cost)/du  ∝  ((B - A) / A)^2  *  1 / (C * (u_now - up2))

The two-interval estimator ``Upf = 2 / (u_now - up2)`` is already folded
in.  The oracle variant replaces the estimator with exact per-page update
frequencies; substituting ``Upf = freq_sum / C`` into the Section 4.2
derivation gives::

    -d(Cost)/du  ∝  ((B - A) / (A * C))^2  *  freq_sum

(The two coincide for fixed-size pages, where ``B - A = C``.)

Edge conventions shared by every priority here:

* ``C == 0`` (fully empty segment): priority ``-inf`` — reclaiming it is
  free, always do it first.
* ``A == 0`` (no reclaimable space): priority ``+inf`` — cleaning it
  gains nothing, defer as long as possible.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "age_priority",
    "cost_benefit_priority",
    "cost_benefit_paper_priority",
    "greedy_priority",
    "mdc_decline",
    "mdc_decline_exact",
]


def _with_edges(priority: np.ndarray, avail: np.ndarray, live_count: np.ndarray) -> np.ndarray:
    """Apply the shared C==0 / A==0 edge conventions."""
    priority = np.where(avail == 0, np.inf, priority)
    return np.where(live_count == 0, -np.inf, priority)


def mdc_decline(
    avail: np.ndarray,
    live_count: np.ndarray,
    capacity: float,
    age_since_up2: np.ndarray,
) -> np.ndarray:
    """Minimum-declining-cost priority with the two-interval estimator.

    Args:
        avail: ``A`` per segment (reclaimable units).
        live_count: ``C`` per segment.
        capacity: ``B`` (segment size in units).
        age_since_up2: ``u_now - up2`` per segment, in update ticks.
    """
    avail = np.asarray(avail, dtype=float)
    live_count = np.asarray(live_count, dtype=float)
    age = np.maximum(np.asarray(age_since_up2, dtype=float), 1.0)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = (capacity - avail) / avail
        decline = ratio * ratio / (live_count * age)
    return _with_edges(decline, avail, live_count)


def mdc_decline_exact(
    avail: np.ndarray,
    live_count: np.ndarray,
    capacity: float,
    freq_sum: np.ndarray,
) -> np.ndarray:
    """MDC priority with exact update frequencies (the ``-opt`` variants).

    ``freq_sum`` is the sum of exact per-page update frequencies of the
    live pages in each segment; tiny negative values from floating-point
    subtraction during invalidation are clamped to zero.
    """
    avail = np.asarray(avail, dtype=float)
    live_count = np.asarray(live_count, dtype=float)
    freq_sum = np.maximum(np.asarray(freq_sum, dtype=float), 0.0)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = (capacity - avail) / (avail * live_count)
        decline = ratio * ratio * freq_sum
    return _with_edges(decline, avail, live_count)


def greedy_priority(avail: np.ndarray) -> np.ndarray:
    """Greedy: clean the segment with the most available space first."""
    return -np.asarray(avail, dtype=float)


def age_priority(seal_time: np.ndarray) -> np.ndarray:
    """Age-based: clean the segment sealed longest ago first."""
    return np.asarray(seal_time, dtype=float)


def cost_benefit_priority(
    avail: np.ndarray,
    capacity: float,
    age: np.ndarray,
) -> np.ndarray:
    """LFS cost-benefit (Rosenblum & Ousterhout): clean the segment with
    the largest ``benefit/cost = (E * age) / (2 - E)``.

    ``E = A / B`` is the empty fraction; the denominator ``2 - E`` is the
    cost of reading the whole segment and re-writing its ``1 - E`` live
    fraction.  Returned negated so that larger benefit sorts first.
    """
    emptiness = np.asarray(avail, dtype=float) / capacity
    age = np.asarray(age, dtype=float)
    return -(emptiness * age) / (2.0 - emptiness)


def cost_benefit_paper_priority(
    avail: np.ndarray,
    capacity: float,
    age: np.ndarray,
) -> np.ndarray:
    """The cost-benefit formula exactly as printed in the paper's
    Section 6.1.3: ``(1 - E) * age / E`` with ``E`` the *empty* fraction.

    Read literally this prefers fuller segments (it is the Rosenblum
    formula with ``E`` meaning utilization); we keep it available so the
    discrepancy can be measured.  Larger value sorts first.
    """
    emptiness = np.asarray(avail, dtype=float) / capacity
    age = np.asarray(age, dtype=float)
    with np.errstate(divide="ignore", invalid="ignore"):
        benefit = (1.0 - emptiness) * age / emptiness
    benefit = np.where(emptiness == 0.0, np.inf, benefit)
    return -benefit
