"""Sorting pages by update frequency (paper Section 5.3).

Cleaning performance improves when pages of similar update frequency are
clustered into the same segments.  MDC achieves this by *sorting* each
batch of pending writes by its frequency proxy before packing the batch
into segments: after sorting, consecutive pages — and therefore
consecutive destination segments — hold pages of similar hotness.

The proxy is ``up2`` for the estimating policies (a *larger* ``up2``
means a more recent penultimate update, i.e. a hotter page) and the exact
update frequency for the ``-opt`` variants.  Only the clustering matters,
not the direction, but we fix "coldest first" so tests can rely on a
deterministic layout.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = ["order_by_key", "up2_keys", "oracle_keys"]


def up2_keys(pages, pids: Sequence[int]) -> np.ndarray:
    """Sort keys that cluster by carried ``up2`` (coldest first).

    ``pages`` is the store's :class:`~repro.store.PageTable`.
    """
    return pages.carried_up2[np.asarray(pids, dtype=np.int64)]


def oracle_keys(pages, pids: Sequence[int]) -> np.ndarray:
    """Sort keys that cluster by exact update frequency (coldest first)."""
    return pages.oracle_freq[np.asarray(pids, dtype=np.int64)]


def order_by_key(pids: Sequence[int], keys: Sequence[float]) -> List[int]:
    """Return ``pids`` reordered ascending by ``keys`` (stable)."""
    order = np.argsort(np.asarray(keys, dtype=float), kind="stable")
    return [pids[i] for i in order]
