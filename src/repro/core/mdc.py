"""The MDC (Minimum Declining Cost) cleaning policy — the paper's
primary contribution (Sections 4 and 5).

MDC combines three mechanisms:

1. **Victim order** — clean first the segments whose per-page cleaning
   cost is expected to decline the *least* if cleaning waited (the
   Maximality Lemma argument of Section 4.1).  The decline estimate uses
   the two-interval update-frequency estimator ``Upf = 2/(u_now - up2)``
   or, for the ``-opt`` oracle variant, exact page update frequencies.
2. **User-write separation** — user writes pass through a sorting buffer
   and are packed into segments ordered by their frequency proxy, so
   hot and cold pages end up in different segments (Section 5.3,
   Figure 4).
3. **GC-write separation** — relocated pages are likewise sorted by
   their carried frequency estimate before being packed into new
   segments, and are kept apart from fresh user writes.

The ablation variants of Figure 3 are expressed as constructor flags:
``MdcPolicy(separate_user=False)`` is *MDC-no-sep-user*, and
``MdcPolicy(separate_user=False, separate_gc=False)`` is
*MDC-no-sep-user-GC* (identical to greedy except for victim order).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import sorter
from repro.core.priority import mdc_decline, mdc_decline_exact
from repro.policies.base import CleaningPolicy
from repro.store.log_store import GC_STREAM

#: Accepted values for the ``estimator`` argument.
ESTIMATOR_UP2 = "up2"
ESTIMATOR_EXACT = "exact"
#: Single-interval estimator (update period = u_now - up1).  The paper
#: rejects it as "very inaccurate" (Section 4.3); provided for the
#: ablation benchmark.
ESTIMATOR_UP1 = "up1"


class MdcPolicy(CleaningPolicy):
    """Minimum Declining Cost cleaning.

    Args:
        estimator: ``"up2"`` for the paper's two-interval estimator
            (plain *MDC*), ``"exact"`` to use the oracle frequencies
            installed via
            :meth:`repro.store.LogStructuredStore.set_oracle_frequencies`
            (*MDC-opt*).
        separate_user: Sort buffered user writes by frequency before
            packing them into segments.  Requires the store to be
            configured with ``sort_buffer_segments > 0``; with a zero
            buffer this flag has no effect (Figure 4's buffer=0 point).
        separate_gc: Sort relocated pages by frequency before packing.
    """

    uses_sort_buffer = True

    def __init__(
        self,
        estimator: str = ESTIMATOR_UP2,
        separate_user: bool = True,
        separate_gc: bool = True,
    ) -> None:
        super().__init__()
        if estimator not in (ESTIMATOR_UP2, ESTIMATOR_EXACT, ESTIMATOR_UP1):
            raise ValueError("unknown estimator %r" % (estimator,))
        self.estimator = estimator
        self.separate_user = separate_user
        self.separate_gc = separate_gc
        self.uses_sort_buffer = separate_user
        # The exact-frequency variant ranks purely from segment columns
        # (freq_sum replaces the clock-anchored estimator), so its
        # priorities are cacheable per segment epoch.
        self.clock_dependent_rank = estimator != ESTIMATOR_EXACT
        self.name = self._derive_name()

    def _derive_name(self) -> str:
        if self.estimator == ESTIMATOR_EXACT:
            base = "mdc-opt"
        elif self.estimator == ESTIMATOR_UP1:
            base = "mdc-up1"
        else:
            base = "mdc"
        if self.separate_user and self.separate_gc:
            return base
        if self.separate_gc:
            return base + "-no-sep-user"
        if not self.separate_user:
            return base + "-no-sep-user-gc"
        return base + "-no-sep-gc"

    # -- placement -----------------------------------------------------

    def _keys(self, page_ids: Sequence[int]) -> np.ndarray:
        pages = self.store.pages
        if self.estimator == ESTIMATOR_EXACT:
            return sorter.oracle_keys(pages, page_ids)
        return sorter.up2_keys(pages, page_ids)

    def user_sort_key(self, page_ids: Sequence[int]) -> Optional[Sequence[float]]:
        if not self.separate_user:
            return None
        return self._keys(page_ids)

    def place_gc(
        self, page_ids: List[int], src_segs: List[int]
    ) -> Iterable[Tuple[int, int]]:
        if self.separate_gc and len(page_ids) > 1:
            page_ids = sorter.order_by_key(page_ids, self._keys(page_ids))
        return [(pid, GC_STREAM) for pid in page_ids]

    def place_gc_batch(
        self, page_ids: np.ndarray, src_segs: np.ndarray
    ) -> Tuple[np.ndarray, None]:
        if self.separate_gc and len(page_ids) > 1:
            order = np.argsort(self._keys(page_ids), kind="stable")
            page_ids = page_ids[order]
        return page_ids, None

    # -- victim selection ------------------------------------------------

    def rank_columns(self, segs, ids: np.ndarray) -> np.ndarray:
        capacity = segs.capacity
        avail = capacity - segs.live_units[ids]
        count = segs.live_count[ids]
        if self.estimator == ESTIMATOR_EXACT:
            return mdc_decline_exact(avail, count, capacity, segs.freq_sum[ids])
        anchor = segs.up1 if self.estimator == ESTIMATOR_UP1 else segs.up2
        age_since_update = self.store.clock - anchor[ids]
        return mdc_decline(avail, count, capacity, age_since_update)

    def decision_columns(self, segs, ids: np.ndarray) -> dict:
        columns = super().decision_columns(segs, ids)
        # The score *is* the decline estimate; name it so traces read in
        # the paper's vocabulary.
        columns["decline"] = columns["score"]
        if self.estimator == ESTIMATOR_EXACT:
            columns["freq_sum"] = segs.freq_sum[ids].copy()
        else:
            anchor = segs.up1 if self.estimator == ESTIMATOR_UP1 else segs.up2
            columns["age_since_update"] = self.store.clock - anchor[ids]
        return columns

    def describe(self) -> str:
        return "%s (estimator=%s, sep_user=%s, sep_gc=%s)" % (
            self.name,
            self.estimator,
            self.separate_user,
            self.separate_gc,
        )
