"""Optional compiled kernels for the store's two hottest loops.

The vectorized write engine spends most of its non-numpy time in two
places: *run folding* (``prev_occurrence`` — mapping each write in a
batch to the previous write of the same page) and *victim scoring*
(``ascending_prefix`` — the partial stable argsort behind
``select_victims``), plus the strict left-to-right float folds
(``fold_add``) that keep batch execution bit-identical to the scalar
path.  This module puts all three behind one dispatch point with an
optional `numba <https://numba.pydata.org>`_ implementation:

* numba is **feature-detected at import** — it is not a dependency, and
  a machine without it silently runs the pure numpy/python fallbacks;
* ``REPRO_KERNEL=python`` forces the fallbacks even when numba is
  present (the CI bench-gates job runs the tier-1 suite both ways);
* ``REPRO_KERNEL=numba`` *requires* numba and raises if it is missing,
  so a perf run can never silently measure the fallback.

The contract is **bit-identity**: every kernel performs the exact same
sequence of IEEE-754 operations as its fallback (the numba bodies are
plain sequential loops — same adds in the same order), so the
differential oracle and the trace state digests cannot tell the two
apart.  The Hypothesis parity suite in ``tests/store/test_kernels.py``
asserts this wherever numba is available, and the fallbacks themselves
are the reference the rest of the test suite runs against.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = [
    "ACTIVE",
    "HAVE_NUMBA",
    "MODE",
    "ascending_prefix",
    "fold_add",
    "kernel_info",
    "prev_occurrence",
]

#: Requested mode: ``auto`` (default), ``python``, or ``numba``.
MODE = os.environ.get("REPRO_KERNEL", "auto").strip().lower() or "auto"
if MODE not in ("auto", "python", "numba"):
    raise ValueError(
        "REPRO_KERNEL must be 'auto', 'python', or 'numba', got %r" % MODE
    )

HAVE_NUMBA = False
if MODE != "python":
    try:
        import numba  # noqa: F401

        HAVE_NUMBA = True
    except ImportError:
        if MODE == "numba":
            raise ImportError(
                "REPRO_KERNEL=numba but numba is not importable; install "
                "numba or unset REPRO_KERNEL"
            )

#: Which implementation is live: ``"numba"`` or ``"python"``.
ACTIVE = "numba" if HAVE_NUMBA else "python"

#: Below this many values the float fold runs as a plain Python loop —
#: identical adds, no temporary array, faster for the short runs the
#: write engine mostly sees.
_FOLD_LOOP_MAX = 32


def kernel_info() -> dict:
    """Provenance block for benchmark artifacts."""
    return {"mode": MODE, "active": ACTIVE, "have_numba": HAVE_NUMBA}


# ----------------------------------------------------------------------
# Pure fallbacks (the reference implementations)
# ----------------------------------------------------------------------


def _prev_occurrence_py(pids: np.ndarray) -> np.ndarray:
    """For each batch position, the previous position holding the same
    page id (-1 if none).  One stable argsort for the whole batch."""
    n = pids.size
    prev = np.full(n, -1, dtype=np.int64)
    if n > 1:
        order = np.argsort(pids, kind="stable")
        sorted_pids = pids[order]
        idx = np.flatnonzero(sorted_pids[1:] == sorted_pids[:-1]) + 1
        prev[order[idx]] = order[idx - 1]
    return prev


def _fold_add_py(current: float, values: np.ndarray) -> float:
    """``current + v0 + v1 + ...`` as a strict left-to-right float fold —
    bit-identical to a scalar ``+=`` loop (cumsum accumulates in order,
    and so does the small-run Python loop: same IEEE adds, same order).
    """
    n = values.size
    if n <= _FOLD_LOOP_MAX:
        acc = float(current)
        for v in values.tolist():
            acc += v
        return acc
    tmp = np.empty(n + 1, dtype=np.float64)
    tmp[0] = current
    tmp[1:] = values
    return float(np.cumsum(tmp)[-1])


def _prefix_gather_py(priorities: np.ndarray, need: int) -> np.ndarray:
    """Indices of every priority <= the ``need``-th smallest, stable
    sorted — exactly a prefix of ``argsort(priorities, kind='stable')``.

    Returns an empty array to signal "fall back to the full stable
    sort" (a NaN landed in the selected prefix, so the cut is
    undefined)."""
    part = np.argpartition(priorities, need - 1)[:need]
    cut = priorities[part].max()
    if np.isnan(cut):
        return np.empty(0, dtype=np.int64)
    eligible = np.flatnonzero(priorities <= cut)
    return eligible[np.argsort(priorities[eligible], kind="stable")]


# ----------------------------------------------------------------------
# numba kernels
# ----------------------------------------------------------------------

if HAVE_NUMBA:
    from numba import njit

    @njit(cache=True)
    def _prev_occurrence_nb(pids):  # pragma: no cover - needs numba
        n = pids.size
        prev = np.full(n, -1, dtype=np.int64)
        if n == 0:
            return prev
        hi = np.int64(0)
        for i in range(n):
            if pids[i] > hi:
                hi = pids[i]
        last = np.full(hi + 1, -1, dtype=np.int64)
        for i in range(n):
            p = pids[i]
            prev[i] = last[p]
            last[p] = i
        return prev

    @njit(cache=True)
    def _fold_add_nb(current, values):  # pragma: no cover - needs numba
        acc = current
        for i in range(values.size):
            acc += values[i]
        return acc

    @njit(cache=True)
    def _prefix_gather_nb(priorities, need):  # pragma: no cover
        n = priorities.size
        # Partial selection: the largest of the `need` smallest values is
        # the cut; everything <= it is exactly the stable-argsort prefix.
        part = np.partition(priorities.copy(), need - 1)
        cut = part[need - 1]
        if np.isnan(cut):
            return np.empty(0, dtype=np.int64)
        count = 0
        for i in range(n):
            if priorities[i] <= cut:
                count += 1
        eligible = np.empty(count, dtype=np.int64)
        j = 0
        for i in range(n):
            if priorities[i] <= cut:
                eligible[j] = i
                j += 1
        # mergesort is stable, and `eligible` is already in index order,
        # so ties keep their original relative positions.
        order = np.argsort(priorities[eligible], kind="mergesort")
        return eligible[order]


# ----------------------------------------------------------------------
# Dispatch points
# ----------------------------------------------------------------------


def prev_occurrence(pids: np.ndarray) -> np.ndarray:
    """Previous occurrence of each page id within the batch (-1: none)."""
    if HAVE_NUMBA and pids.size > 1:
        return _prev_occurrence_nb(pids)
    return _prev_occurrence_py(pids)


def fold_add(current: float, values: np.ndarray) -> float:
    """Strict left-to-right float fold of ``current`` with ``values``."""
    if HAVE_NUMBA and values.size > _FOLD_LOOP_MAX:
        return float(_fold_add_nb(float(current), values))
    return _fold_add_py(current, values)


def ascending_prefix(
    priorities: np.ndarray, need: int, partition_factor: int = 4
) -> np.ndarray:
    """The first ``>= need`` entries of ``argsort(priorities, stable)``
    without sorting everything (the victim-scoring selection).

    ``argpartition`` finds the ``need`` smallest values; every index
    whose priority is <= the largest of those is gathered and
    stable-sorted.  Anything outside that set has a strictly larger
    priority, so the result is exactly a prefix of the full stable
    argsort — same victims, same tie-breaking, at O(n + k log k).  NaN
    priorities (and small candidate sets, where partitioning cannot
    win) fall back to the full stable sort.
    """
    count = priorities.size
    if need * partition_factor >= count:
        return np.argsort(priorities, kind="stable")
    if HAVE_NUMBA:
        out = _prefix_gather_nb(priorities, need)
    else:
        out = _prefix_gather_py(priorities, need)
    if out.size == 0:
        return np.argsort(priorities, kind="stable")
    return out
