"""Configuration for the log-structured store simulator.

The paper's simulator (Section 6.1.1) uses 4 KB pages, 2 MB segments
(512 pages), a 100 GB device, a cleaning trigger of 32 free segments and a
cleaning batch of 64 segments.  The paper notes (footnote 2) that the
absolute device size does not affect write amplification, so the default
configuration here is scaled down to keep pure-Python simulations fast;
every benchmark states the configuration it uses.

All space quantities are expressed in abstract *units*.  In the fixed-size
experiments one unit is one 4 KB page and a segment holds
``segment_units`` pages.  Variable-size pages (paper Section 4.4) are
supported by giving pages sizes larger than one unit.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.store.errors import ConfigError

#: Paper values (Section 6.1.1), for reference and for full-scale runs.
PAPER_PAGE_BYTES = 4 * 1024
PAPER_SEGMENT_BYTES = 2 * 1024 * 1024
PAPER_SEGMENT_PAGES = PAPER_SEGMENT_BYTES // PAPER_PAGE_BYTES  # 512
PAPER_DEVICE_BYTES = 100 * 1024 ** 3
PAPER_DEVICE_SEGMENTS = PAPER_DEVICE_BYTES // PAPER_SEGMENT_BYTES  # 51200
PAPER_CLEAN_TRIGGER = 32
PAPER_CLEAN_BATCH = 64


@dataclasses.dataclass(frozen=True)
class StoreConfig:
    """Parameters of a simulated log-structured store.

    Attributes:
        n_segments: Number of physical segments on the device.
        segment_units: Capacity of one segment, in units (pages for the
            fixed-size experiments).
        fill_factor: Fraction ``F`` of physical space occupied by current
            user data.  The user-visible page count is derived from it in
            fixed-size mode; for trace replay the caller sizes the device
            instead.
        clean_trigger: Cleaning starts when the number of free segments
            falls below this threshold.
        clean_batch: Number of in-use segments cleaned per cleaning cycle
            (the paper uses 64; the multi-log policies override this to 1
            to match the evaluation in the paper).
        sort_buffer_segments: Size of the user-write sorting buffer, in
            segments (Figure 4's x-axis).  ``0`` disables buffering: user
            writes go straight to an open segment.  The buffer is RAM, so
            it does not consume device segments.
        user_pages_override: Explicit user page count.  By default the
            page count is ``fill_factor * device``; precision benchmarks
            override it to compensate for the standing free-segment
            reserve (negligible at the paper's 51,200-segment scale but a
            visible bite out of the slack on small simulated devices).
        seed: Seed for any internal randomization (currently none, kept
            for forward compatibility of recorded experiment configs).
    """

    n_segments: int = 512
    segment_units: int = 64
    fill_factor: float = 0.8
    clean_trigger: int = 4
    clean_batch: int = 8
    sort_buffer_segments: int = 0
    user_pages_override: Optional[int] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_segments < 4:
            raise ConfigError("n_segments must be at least 4, got %d" % self.n_segments)
        if self.segment_units < 1:
            raise ConfigError("segment_units must be positive, got %d" % self.segment_units)
        if not 0.0 < self.fill_factor < 1.0:
            raise ConfigError(
                "fill_factor must be in (0, 1), got %r" % (self.fill_factor,)
            )
        if self.clean_trigger < 1:
            raise ConfigError("clean_trigger must be >= 1, got %d" % self.clean_trigger)
        if self.clean_batch < 1:
            raise ConfigError("clean_batch must be >= 1, got %d" % self.clean_batch)
        if self.sort_buffer_segments < 0:
            raise ConfigError(
                "sort_buffer_segments must be >= 0, got %d" % self.sort_buffer_segments
            )
        if self.user_pages_override is not None:
            usable = (self.n_segments - self.clean_trigger - 2) * self.segment_units
            if not 0 < self.user_pages_override <= usable:
                raise ConfigError(
                    "user_pages_override=%d outside (0, %d]"
                    % (self.user_pages_override, usable)
                )
        slack_segments = self.n_segments * (1.0 - self.fill_factor)
        if slack_segments <= self.clean_trigger + 2:
            raise ConfigError(
                "device slack (%.1f segments at fill_factor=%.3f) must exceed "
                "clean_trigger=%d plus open-segment overhead; enlarge the device "
                "or lower the fill factor"
                % (slack_segments, self.fill_factor, self.clean_trigger)
            )

    @property
    def device_units(self) -> int:
        """Total device capacity in units."""
        return self.n_segments * self.segment_units

    @property
    def user_pages(self) -> int:
        """Number of user-visible fixed-size pages, ``P = F * device``
        (or the explicit override)."""
        if self.user_pages_override is not None:
            return self.user_pages_override
        return int(self.fill_factor * self.device_units)

    def with_reserve_compensation(self) -> "StoreConfig":
        """Enlarge the device by the standing reserve overhead while
        keeping the user page count at ``F`` times the *original* device.

        The standing overhead is the cleaning trigger (the free pool
        hovers there) plus two open segments.  At the paper's scale this
        is ~0.07 % of the device; on a few-hundred-segment simulation it
        would otherwise consume a visible share of the slack and bias
        emptiness measurements low.
        """
        overhead = self.clean_trigger + 2
        return dataclasses.replace(
            self,
            n_segments=self.n_segments + overhead,
            user_pages_override=int(self.fill_factor * self.device_units),
        )

    def scaled(self, **overrides) -> "StoreConfig":
        """Return a copy with some fields replaced."""
        return dataclasses.replace(self, **overrides)


def paper_config(fill_factor: float = 0.8, **overrides) -> StoreConfig:
    """The full-scale configuration from the paper (100 GB device).

    Provided for completeness; pure-Python simulation at this scale takes
    hours per data point, so the benchmarks use scaled-down configs.
    """
    base = StoreConfig(
        n_segments=PAPER_DEVICE_SEGMENTS,
        segment_units=PAPER_SEGMENT_PAGES,
        fill_factor=fill_factor,
        clean_trigger=PAPER_CLEAN_TRIGGER,
        clean_batch=PAPER_CLEAN_BATCH,
    )
    return base.scaled(**overrides) if overrides else base
