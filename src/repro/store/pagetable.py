"""Page table: the dynamic page-id to (segment, slot) mapping.

Log structuring never updates in place; every write relocates its page, so
the mapping is re-pointed on every write (the LFS inode map / FTL mapping
table).  A page's old slot is implicitly invalidated by the re-pointing: a
slot is live iff the table still points at it.

Besides the location, the table carries the per-page values the cleaning
policies need:

* ``carried_up2`` — the page's update-history estimate carried between
  segments (Section 5.2.2 of the paper),
* ``last_write`` — previous update timestamp (multi-log's estimator),
* ``size`` — page size in units (1 for the fixed-size experiments),
* ``oracle_freq`` — exact update frequency, populated by workloads that
  know it, consumed only by the ``-opt`` policy variants.

The table grows on demand so trace workloads (TPC-C) can allocate new
pages while running.
"""

from __future__ import annotations

from typing import List

#: Location sentinel: page has never been written.
NEVER_WRITTEN = -1
#: Location sentinel: the page's current version sits in the user-write
#: sorting buffer (RAM), not in any segment.
IN_BUFFER = -2
#: Location sentinel: the page is being placed right now (its old slot is
#: already invalidated, its new slot not yet assigned).  Cleaning can run
#: between the two moments — the sentinel keeps the stale old pointer
#: from making the page look live in a victim segment.
IN_FLIGHT = -3

#: carried_up2 sentinel: no update history yet; resolved to a "coldish"
#: value when the page is first placed (Section 5.2.2, "First Write").
NO_HISTORY = float("nan")


class PageTable:
    """Column-wise per-page state, indexed by dense integer page ids."""

    __slots__ = ("seg", "slot", "carried_up2", "last_write", "size", "oracle_freq")

    def __init__(self, n_pages: int = 0) -> None:
        self.seg: List[int] = [NEVER_WRITTEN] * n_pages
        self.slot: List[int] = [0] * n_pages
        self.carried_up2: List[float] = [NO_HISTORY] * n_pages
        self.last_write: List[int] = [0] * n_pages
        self.size: List[int] = [1] * n_pages
        self.oracle_freq: List[float] = [0.0] * n_pages

    def __len__(self) -> int:
        return len(self.seg)

    def ensure(self, page_id: int) -> None:
        """Grow the table so ``page_id`` is addressable."""
        missing = page_id + 1 - len(self.seg)
        if missing > 0:
            self.seg.extend([NEVER_WRITTEN] * missing)
            self.slot.extend([0] * missing)
            self.carried_up2.extend([NO_HISTORY] * missing)
            self.last_write.extend([0] * missing)
            self.size.extend([1] * missing)
            self.oracle_freq.extend([0.0] * missing)

    def is_live_slot(self, seg: int, slot: int, page_id: int) -> bool:
        """True iff segment ``seg`` slot ``slot`` holds the current version
        of ``page_id``."""
        return self.seg[page_id] == seg and self.slot[page_id] == slot

    def location(self, page_id: int):
        """Return ``(seg, slot)``; ``seg`` may be a sentinel (< 0)."""
        return self.seg[page_id], self.slot[page_id]

    def live_pages_of(self, segments, seg: int) -> List[int]:
        """All page ids whose current version lives in ``seg``.

        ``segments`` is the :class:`~repro.store.segments.SegmentTable`
        owning the slot lists.
        """
        seg_col, slot_col = self.seg, self.slot
        return [
            pid
            for slot, pid in enumerate(segments.slots[seg])
            if seg_col[pid] == seg and slot_col[pid] == slot
        ]
