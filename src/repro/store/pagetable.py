"""Page table: the dynamic page-id to (segment, slot) mapping.

Log structuring never updates in place; every write relocates its page, so
the mapping is re-pointed on every write (the LFS inode map / FTL mapping
table).  A page's old slot is implicitly invalidated by the re-pointing: a
slot is live iff the table still points at it.

Besides the location, the table carries the per-page values the cleaning
policies need:

* ``carried_up2`` — the page's update-history estimate carried between
  segments (Section 5.2.2 of the paper),
* ``last_write`` — previous update timestamp (multi-log's estimator),
* ``size`` — page size in units (1 for the fixed-size experiments),
* ``oracle_freq`` — exact update frequency, populated by workloads that
  know it, consumed only by the ``-opt`` policy variants.

The columns are numpy arrays so the batch write engine
(:meth:`repro.store.LogStructuredStore.write_batch`) can gather and
scatter whole runs of writes with fancy indexing.  The table grows on
demand — trace workloads (TPC-C) allocate new pages while running — via
capacity doubling: the public column properties expose views of the
first ``len(table)`` entries, so growth is amortized O(1) per page and
existing scalar call sites (``pages.seg[pid]``) are unchanged.
"""

from __future__ import annotations

import numpy as np

#: Location sentinel: page has never been written.
NEVER_WRITTEN = -1
#: Location sentinel: the page's current version sits in the user-write
#: sorting buffer (RAM), not in any segment.
IN_BUFFER = -2
#: Location sentinel: the page is being placed right now (its old slot is
#: already invalidated, its new slot not yet assigned).  Cleaning can run
#: between the two moments — the sentinel keeps the stale old pointer
#: from making the page look live in a victim segment.
IN_FLIGHT = -3

#: Location sentinel: the page's current version is staged by an
#: *incremental* cleaning cycle — its victim segment has been freed but
#: the relocation has not happened yet.  Foreground writes and trims that
#: land on a staged page clear the sentinel, which is how the cleaner
#: knows to skip the now-obsolete staged copy when its step resumes.
IN_RELOCATION = -4

#: carried_up2 sentinel: no update history yet; resolved to a "coldish"
#: value when the page is first placed (Section 5.2.2, "First Write").
NO_HISTORY = float("nan")

_MIN_CAPACITY = 64


class PageTable:
    """Column-wise per-page state, indexed by dense integer page ids."""

    __slots__ = (
        "_n",
        "_seg",
        "_slot",
        "_carried_up2",
        "_last_write",
        "_size",
        "_oracle_freq",
        "oracle_active",
    )

    def __init__(self, n_pages: int = 0) -> None:
        self._n = n_pages
        cap = max(n_pages, _MIN_CAPACITY)
        self._seg = np.full(cap, NEVER_WRITTEN, dtype=np.int64)
        self._slot = np.zeros(cap, dtype=np.int64)
        self._carried_up2 = np.full(cap, NO_HISTORY, dtype=np.float64)
        self._last_write = np.zeros(cap, dtype=np.int64)
        self._size = np.ones(cap, dtype=np.int64)
        self._oracle_freq = np.zeros(cap, dtype=np.float64)
        #: True once any oracle frequency has been installed; lets the
        #: batch write path skip ``freq_sum`` bookkeeping entirely when
        #: every frequency is the default 0.0.
        self.oracle_active = False

    # Each property returns a length-``_n`` *view* of the backing array;
    # writes through the view mutate the table.  Views go stale across
    # :meth:`ensure` (the backing array may be reallocated), so callers
    # must re-read the property after any call that can grow the table.

    @property
    def seg(self) -> np.ndarray:
        return self._seg[: self._n]

    @property
    def slot(self) -> np.ndarray:
        return self._slot[: self._n]

    @property
    def carried_up2(self) -> np.ndarray:
        return self._carried_up2[: self._n]

    @property
    def last_write(self) -> np.ndarray:
        return self._last_write[: self._n]

    @property
    def size(self) -> np.ndarray:
        return self._size[: self._n]

    @property
    def oracle_freq(self) -> np.ndarray:
        return self._oracle_freq[: self._n]

    def __len__(self) -> int:
        return self._n

    def ensure(self, page_id: int) -> None:
        """Grow the table so ``page_id`` is addressable."""
        need = page_id + 1
        if need <= self._n:
            return
        cap = len(self._seg)
        if need > cap:
            new_cap = max(need, 2 * cap)
            self._seg = self._grown(self._seg, new_cap, NEVER_WRITTEN)
            self._slot = self._grown(self._slot, new_cap, 0)
            self._carried_up2 = self._grown(
                self._carried_up2, new_cap, NO_HISTORY
            )
            self._last_write = self._grown(self._last_write, new_cap, 0)
            self._size = self._grown(self._size, new_cap, 1)
            self._oracle_freq = self._grown(self._oracle_freq, new_cap, 0.0)
        self._n = need

    @staticmethod
    def _grown(arr: np.ndarray, new_cap: int, fill) -> np.ndarray:
        out = np.full(new_cap, fill, dtype=arr.dtype)
        out[: len(arr)] = arr
        return out

    def is_live_slot(self, seg: int, slot: int, page_id: int) -> bool:
        """True iff segment ``seg`` slot ``slot`` holds the current version
        of ``page_id``."""
        return self.seg[page_id] == seg and self.slot[page_id] == slot

    def location(self, page_id: int):
        """Return ``(seg, slot)``; ``seg`` may be a sentinel (< 0)."""
        return self.seg[page_id], self.slot[page_id]

    def live_pages_of(self, segments, seg: int):
        """All page ids whose current version lives in ``seg``, in slot
        order, as plain Python ints.

        ``segments`` is the :class:`~repro.store.segments.SegmentTable`
        owning the slot lists.
        """
        return self.live_pages_arr(segments, seg).tolist()

    def live_pages_arr(self, segments, seg: int) -> np.ndarray:
        """Array form of :meth:`live_pages_of` (same pages, slot order)."""
        pids = segments.slot_pages_of(seg)
        if pids.size == 0:
            return np.empty(0, dtype=np.int64)
        live = (self._seg[pids] == seg) & (
            self._slot[pids] == np.arange(pids.size)
        )
        return pids[live]
