"""Per-segment metadata for the log-structured store.

Section 5.1 of the paper identifies the information a cleaner must keep
for each segment:

* ``A`` — available (reclaimable) storage in the segment,
* ``C`` — number of pages containing current state,
* ``up2`` — the penultimate update time of pages in the segment,

plus global values ``B`` (segment size) and ``u_now`` (the update-count
clock).  This module keeps those, together with the auxiliary values the
different cleaning policies need: seal time (for age and cost-benefit),
the last update time ``up1`` (so ``up2`` can be advanced as updates
arrive), and the running sum of exact page update frequencies for the
oracle-assisted ``-opt`` policy variants.

The metadata is stored column-wise in plain Python lists: the write path
touches one scalar per field per write, and CPython list indexing is
faster than numpy scalar indexing.  Policies that want vectorized math
snapshot the columns they need with :func:`numpy.asarray` over the
(small) candidate set at cleaning time.
"""

from __future__ import annotations

from typing import List

#: Segment states.
FREE = 0
OPEN = 1
SEALED = 2

_STATE_NAMES = {FREE: "free", OPEN: "open", SEALED: "sealed"}


class SegmentTable:
    """Column-wise metadata for all physical segments."""

    __slots__ = (
        "capacity",
        "state",
        "live_count",
        "live_units",
        "used_units",
        "seal_time",
        "up1",
        "up2",
        "up2_sum",
        "freq_sum",
        "slots",
        "slot_sizes",
        "erase_count",
    )

    def __init__(self, n_segments: int, capacity: int) -> None:
        self.capacity = capacity
        self.state: List[int] = [FREE] * n_segments
        #: C — live (current) pages in the segment.
        self.live_count: List[int] = [0] * n_segments
        #: capacity - A — units occupied by live pages.
        self.live_units: List[int] = [0] * n_segments
        #: Units appended so far (the write cursor); never decreases while
        #: the segment is open, unlike ``live_units``.
        self.used_units: List[int] = [0] * n_segments
        #: Update-clock value when the segment was sealed.
        self.seal_time: List[int] = [0] * n_segments
        #: Times of the last two updates that hit (invalidated a page of)
        #: the segment.  ``Upf = 2 / (u_now - up2)`` per Section 4.3.
        self.up1: List[float] = [0.0] * n_segments
        self.up2: List[float] = [0.0] * n_segments
        #: Sum of carried per-page up2 estimates of appended pages; at seal
        #: time the average initializes the segment's up2 (Section 5.2.2).
        self.up2_sum: List[float] = [0.0] * n_segments
        #: Sum of exact per-page update frequencies of live pages; only
        #: maintained when the store has a frequency oracle attached.
        self.freq_sum: List[float] = [0.0] * n_segments
        #: Append-ordered page ids per segment.  A slot ``i`` of segment
        #: ``s`` is live iff the page table still maps ``slots[s][i]`` to
        #: ``(s, i)``.
        self.slots: List[List[int]] = [[] for _ in range(n_segments)]
        #: Unit sizes parallel to ``slots`` (needed to reconstruct space
        #: accounting for variable-size pages).
        self.slot_sizes: List[List[int]] = [[] for _ in range(n_segments)]
        #: Times this segment has been reclaimed — in SSD terms, its
        #: erase count (flash wear).  Never reset.
        self.erase_count: List[int] = [0] * n_segments

    def __len__(self) -> int:
        return len(self.state)

    def reset(self, seg: int) -> None:
        """Return a segment to FREE state (an erase, in SSD terms)."""
        self.erase_count[seg] += 1
        self.state[seg] = FREE
        self.live_count[seg] = 0
        self.live_units[seg] = 0
        self.used_units[seg] = 0
        self.seal_time[seg] = 0
        self.up1[seg] = 0.0
        self.up2[seg] = 0.0
        self.up2_sum[seg] = 0.0
        self.freq_sum[seg] = 0.0
        self.slots[seg] = []
        self.slot_sizes[seg] = []

    def available_units(self, seg: int) -> int:
        """``A`` — reclaimable space of a segment, in units."""
        return self.capacity - self.live_units[seg]

    def emptiness(self, seg: int) -> float:
        """``E = A / B`` — the fraction of the segment that is empty."""
        return self.available_units(seg) / self.capacity

    def state_name(self, seg: int) -> str:
        """Human-readable state (``free`` / ``open`` / ``sealed``)."""
        return _STATE_NAMES[self.state[seg]]

    def describe(self, seg: int) -> str:
        """Human-readable one-line summary (debugging aid)."""
        return (
            "segment %d: %s, C=%d, A=%d/%d, E=%.3f, sealed@%d, up1=%.0f, up2=%.0f"
            % (
                seg,
                self.state_name(seg),
                self.live_count[seg],
                self.available_units(seg),
                self.capacity,
                self.emptiness(seg),
                self.seal_time[seg],
                self.up1[seg],
                self.up2[seg],
            )
        )
