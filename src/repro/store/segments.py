"""Per-segment metadata for the log-structured store.

Section 5.1 of the paper identifies the information a cleaner must keep
for each segment:

* ``A`` — available (reclaimable) storage in the segment,
* ``C`` — number of pages containing current state,
* ``up2`` — the penultimate update time of pages in the segment,

plus global values ``B`` (segment size) and ``u_now`` (the update-count
clock).  This module keeps those, together with the auxiliary values the
different cleaning policies need: seal time (for age and cost-benefit),
the last update time ``up1`` (so ``up2`` can be advanced as updates
arrive), and the running sum of exact page update frequencies for the
oracle-assisted ``-opt`` policy variants.

The metadata is stored column-wise in numpy arrays: the batch write
engine updates whole runs of writes with fancy indexing and
``np.add.at``, and victim selection ranks candidates directly from the
columns (:meth:`repro.policies.base.CleaningPolicy.rank_columns`)
without per-segment Python gathering.

``epoch`` is a bookkeeping counter, not simulator state: it advances
whenever a segment's cleaning-priority inputs change (invalidation,
seal, reset, oracle-frequency adjustment), which lets policies cache
per-segment priorities between cleaning cycles and re-score only the
segments whose epoch moved.  It is deliberately excluded from state
digests and checkpoints.
"""

from __future__ import annotations

from typing import List

import numpy as np

#: Segment states.
FREE = 0
OPEN = 1
SEALED = 2

_STATE_NAMES = {FREE: "free", OPEN: "open", SEALED: "sealed"}


class SegmentTable:
    """Column-wise metadata for all physical segments."""

    __slots__ = (
        "capacity",
        "state",
        "live_count",
        "live_units",
        "used_units",
        "seal_time",
        "up1",
        "up2",
        "up2_sum",
        "freq_sum",
        "slots",
        "slot_sizes",
        "erase_count",
        "epoch",
    )

    def __init__(self, n_segments: int, capacity: int) -> None:
        self.capacity = capacity
        self.state = np.full(n_segments, FREE, dtype=np.int64)
        #: C — live (current) pages in the segment.
        self.live_count = np.zeros(n_segments, dtype=np.int64)
        #: capacity - A — units occupied by live pages.
        self.live_units = np.zeros(n_segments, dtype=np.int64)
        #: Units appended so far (the write cursor); never decreases while
        #: the segment is open, unlike ``live_units``.
        self.used_units = np.zeros(n_segments, dtype=np.int64)
        #: Update-clock value when the segment was sealed.
        self.seal_time = np.zeros(n_segments, dtype=np.int64)
        #: Times of the last two updates that hit (invalidated a page of)
        #: the segment.  ``Upf = 2 / (u_now - up2)`` per Section 4.3.
        self.up1 = np.zeros(n_segments, dtype=np.float64)
        self.up2 = np.zeros(n_segments, dtype=np.float64)
        #: Sum of carried per-page up2 estimates of appended pages; at seal
        #: time the average initializes the segment's up2 (Section 5.2.2).
        self.up2_sum = np.zeros(n_segments, dtype=np.float64)
        #: Sum of exact per-page update frequencies of live pages; only
        #: maintained when the store has a frequency oracle attached.
        self.freq_sum = np.zeros(n_segments, dtype=np.float64)
        #: Append-ordered page ids per segment.  A slot ``i`` of segment
        #: ``s`` is live iff the page table still maps ``slots[s][i]`` to
        #: ``(s, i)``.
        self.slots: List[List[int]] = [[] for _ in range(n_segments)]
        #: Unit sizes parallel to ``slots`` (needed to reconstruct space
        #: accounting for variable-size pages).
        self.slot_sizes: List[List[int]] = [[] for _ in range(n_segments)]
        #: Times this segment has been reclaimed — in SSD terms, its
        #: erase count (flash wear).  Never reset.
        self.erase_count = np.zeros(n_segments, dtype=np.int64)
        #: Change counter for priority caching; see the module docstring.
        self.epoch = np.zeros(n_segments, dtype=np.int64)

    def __len__(self) -> int:
        return len(self.state)

    def reset(self, seg: int) -> None:
        """Return a segment to FREE state (an erase, in SSD terms)."""
        self.erase_count[seg] += 1
        self.state[seg] = FREE
        self.live_count[seg] = 0
        self.live_units[seg] = 0
        self.used_units[seg] = 0
        self.seal_time[seg] = 0
        self.up1[seg] = 0.0
        self.up2[seg] = 0.0
        self.up2_sum[seg] = 0.0
        self.freq_sum[seg] = 0.0
        self.slots[seg] = []
        self.slot_sizes[seg] = []
        self.epoch[seg] += 1

    def available_units(self, seg: int) -> int:
        """``A`` — reclaimable space of a segment, in units."""
        return int(self.capacity - self.live_units[seg])

    def emptiness(self, seg: int) -> float:
        """``E = A / B`` — the fraction of the segment that is empty."""
        return self.available_units(seg) / self.capacity

    def state_name(self, seg: int) -> str:
        """Human-readable state (``free`` / ``open`` / ``sealed``)."""
        return _STATE_NAMES[int(self.state[seg])]

    def describe(self, seg: int) -> str:
        """Human-readable one-line summary (debugging aid)."""
        return (
            "segment %d: %s, C=%d, A=%d/%d, E=%.3f, sealed@%d, up1=%.0f, up2=%.0f"
            % (
                seg,
                self.state_name(seg),
                self.live_count[seg],
                self.available_units(seg),
                self.capacity,
                self.emptiness(seg),
                self.seal_time[seg],
                self.up1[seg],
                self.up2[seg],
            )
        )
