"""Per-segment metadata for the log-structured store.

Section 5.1 of the paper identifies the information a cleaner must keep
for each segment:

* ``A`` — available (reclaimable) storage in the segment,
* ``C`` — number of pages containing current state,
* ``up2`` — the penultimate update time of pages in the segment,

plus global values ``B`` (segment size) and ``u_now`` (the update-count
clock).  This module keeps those, together with the auxiliary values the
different cleaning policies need: seal time (for age and cost-benefit),
the last update time ``up1`` (so ``up2`` can be advanced as updates
arrive), and the running sum of exact page update frequencies for the
oracle-assisted ``-opt`` policy variants.

Layout: structure of arrays
---------------------------

Every column is a contiguous numpy array indexed by segment id — there
is no per-segment Python object anywhere.  The slot log (which page
sits in which append position) is two dense ``(n_segments, capacity)``
int64 matrices plus a ``slot_count`` column: segment ``s``'s append log
is ``slot_page[s, :slot_count[s]]``.  Dense is affordable because a
page occupies at least one unit, so a segment can never hold more than
``capacity`` slots, and it is what makes the hot paths array-shaped:

* the batch write engine appends whole runs with one slice assignment
  (``slot_page[s, cnt:cnt+k] = run``) instead of list ``extend``;
* ``clean_begin`` gathers every victim's slots in one 2-D fancy-index +
  mask, with no Python loop over victims or slots;
* erase (:meth:`reset`) is O(1) — it rewinds ``slot_count`` instead of
  rebuilding per-segment lists.

``stream`` records which placement stream (policy log) last opened the
segment — the store maintains it on open/reset so policies and decision
tracing can read stream ancestry straight from a column.

``epoch`` is a bookkeeping counter, not simulator state: it advances
whenever a segment's cleaning-priority inputs change (invalidation,
seal, reset, oracle-frequency adjustment), which lets policies cache
per-segment priorities between cleaning cycles and re-score only the
segments whose epoch moved.  It is deliberately excluded from state
digests and checkpoints.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

#: Segment states.
FREE = 0
OPEN = 1
SEALED = 2

#: ``stream`` column sentinel: the segment has never been opened (or was
#: erased since).  Distinct from every real stream id, including the
#: store's GC stream (-1).
NO_STREAM = np.iinfo(np.int64).min

_STATE_NAMES = {FREE: "free", OPEN: "open", SEALED: "sealed"}


class SegmentTable:
    """Column-wise (structure-of-arrays) metadata for all segments."""

    __slots__ = (
        "capacity",
        "state",
        "live_count",
        "live_units",
        "used_units",
        "seal_time",
        "up1",
        "up2",
        "up2_sum",
        "freq_sum",
        "slot_page",
        "slot_size",
        "slot_count",
        "stream",
        "erase_count",
        "epoch",
    )

    def __init__(self, n_segments: int, capacity: int) -> None:
        self.capacity = capacity
        self.state = np.full(n_segments, FREE, dtype=np.int64)
        #: C — live (current) pages in the segment.
        self.live_count = np.zeros(n_segments, dtype=np.int64)
        #: capacity - A — units occupied by live pages.
        self.live_units = np.zeros(n_segments, dtype=np.int64)
        #: Units appended so far (the write cursor); never decreases while
        #: the segment is open, unlike ``live_units``.
        self.used_units = np.zeros(n_segments, dtype=np.int64)
        #: Update-clock value when the segment was sealed.
        self.seal_time = np.zeros(n_segments, dtype=np.int64)
        #: Times of the last two updates that hit (invalidated a page of)
        #: the segment.  ``Upf = 2 / (u_now - up2)`` per Section 4.3.
        self.up1 = np.zeros(n_segments, dtype=np.float64)
        self.up2 = np.zeros(n_segments, dtype=np.float64)
        #: Sum of carried per-page up2 estimates of appended pages; at seal
        #: time the average initializes the segment's up2 (Section 5.2.2).
        self.up2_sum = np.zeros(n_segments, dtype=np.float64)
        #: Sum of exact per-page update frequencies of live pages; only
        #: maintained when the store has a frequency oracle attached.
        self.freq_sum = np.zeros(n_segments, dtype=np.float64)
        #: Append-ordered page ids: slot ``i`` of segment ``s`` is
        #: ``slot_page[s, i]`` for ``i < slot_count[s]``, and it is live
        #: iff the page table still maps that page to ``(s, i)``.
        self.slot_page = np.zeros((n_segments, capacity), dtype=np.int64)
        #: Unit sizes parallel to ``slot_page`` (needed to reconstruct
        #: space accounting for variable-size pages).
        self.slot_size = np.ones((n_segments, capacity), dtype=np.int64)
        #: Occupied prefix length of ``slot_page[s]`` / ``slot_size[s]``.
        self.slot_count = np.zeros(n_segments, dtype=np.int64)
        #: Stream id that (last) opened the segment; NO_STREAM when free.
        self.stream = np.full(n_segments, NO_STREAM, dtype=np.int64)
        #: Times this segment has been reclaimed — in SSD terms, its
        #: erase count (flash wear).  Never reset.
        self.erase_count = np.zeros(n_segments, dtype=np.int64)
        #: Change counter for priority caching; see the module docstring.
        self.epoch = np.zeros(n_segments, dtype=np.int64)

    def __len__(self) -> int:
        return len(self.state)

    def reset(self, seg: int) -> None:
        """Return a segment to FREE state (an erase, in SSD terms)."""
        self.erase_count[seg] += 1
        self.state[seg] = FREE
        self.live_count[seg] = 0
        self.live_units[seg] = 0
        self.used_units[seg] = 0
        self.seal_time[seg] = 0
        self.up1[seg] = 0.0
        self.up2[seg] = 0.0
        self.up2_sum[seg] = 0.0
        self.freq_sum[seg] = 0.0
        self.slot_count[seg] = 0
        self.stream[seg] = NO_STREAM
        self.epoch[seg] += 1

    # -- slot log access ------------------------------------------------

    def slot_pages_of(self, seg: int) -> np.ndarray:
        """Append-ordered page ids of ``seg`` (a read-only-by-convention
        view of the backing matrix)."""
        return self.slot_page[seg, : self.slot_count[seg]]

    def slot_sizes_of(self, seg: int) -> np.ndarray:
        """Unit sizes parallel to :meth:`slot_pages_of`."""
        return self.slot_size[seg, : self.slot_count[seg]]

    def slot_list(self, seg: int) -> List[int]:
        """Plain-list form of :meth:`slot_pages_of` (tests, digests)."""
        return self.slot_pages_of(seg).tolist()

    def slot_size_list(self, seg: int) -> List[int]:
        """Plain-list form of :meth:`slot_sizes_of`."""
        return self.slot_sizes_of(seg).tolist()

    def set_slots(
        self,
        seg: int,
        pids: Sequence[int],
        sizes: Optional[Sequence[int]] = None,
    ) -> None:
        """Replace a segment's slot log wholesale (tests and restore
        paths; the write engine appends in place instead)."""
        pids = np.asarray(pids, dtype=np.int64)
        n = pids.size
        if n > self.capacity:
            raise ValueError(
                "segment %d cannot hold %d slots (capacity %d)"
                % (seg, n, self.capacity)
            )
        self.slot_page[seg, :n] = pids
        if sizes is None:
            self.slot_size[seg, :n] = 1
        else:
            self.slot_size[seg, :n] = np.asarray(sizes, dtype=np.int64)
        self.slot_count[seg] = n

    def append_slot(self, seg: int, page_id: int, size: int) -> int:
        """Append one page to a segment's slot log; returns its slot."""
        cnt = int(self.slot_count[seg])
        self.slot_page[seg, cnt] = page_id
        self.slot_size[seg, cnt] = size
        self.slot_count[seg] = cnt + 1
        return cnt

    def gather_slots(self, segs: np.ndarray):
        """Concatenated slot logs of ``segs`` in the given order.

        Returns ``(pids, owners, local_slots)`` — page ids in (segment,
        slot) order, the owning segment of each entry, and its slot
        index.  One 2-D gather + mask; no Python loop over segments.
        """
        counts = self.slot_count[segs]
        width = int(counts.max()) if counts.size else 0
        cols = np.arange(width, dtype=np.int64)
        mask = cols < counts[:, None]
        pids = self.slot_page[segs, :width][mask]
        owners = np.repeat(segs, counts)
        local = np.broadcast_to(cols, mask.shape)[mask]
        return pids, owners, local

    # -- derived values -------------------------------------------------

    def available_units(self, seg: int) -> int:
        """``A`` — reclaimable space of a segment, in units."""
        return int(self.capacity - self.live_units[seg])

    def emptiness(self, seg: int) -> float:
        """``E = A / B`` — the fraction of the segment that is empty."""
        return self.available_units(seg) / self.capacity

    def state_name(self, seg: int) -> str:
        """Human-readable state (``free`` / ``open`` / ``sealed``)."""
        return _STATE_NAMES[int(self.state[seg])]

    def describe(self, seg: int) -> str:
        """Human-readable one-line summary (debugging aid)."""
        return (
            "segment %d: %s, C=%d, A=%d/%d, E=%.3f, sealed@%d, up1=%.0f, up2=%.0f"
            % (
                seg,
                self.state_name(seg),
                self.live_count[seg],
                self.available_units(seg),
                self.capacity,
                self.emptiness(seg),
                self.seal_time[seg],
                self.up1[seg],
                self.up2[seg],
            )
        )
